//! Project lint pass for the metric-tree-embedding workspace.
//!
//! `cargo xtask analyze` enforces determinism and soundness rules that
//! rustc/clippy cannot express (see `docs/ANALYSIS.md`):
//!
//! 1. **nondet-iteration** — no `HashMap`/`HashSet` in the
//!    determinism-critical crates unless waived with
//!    `// analyze: ordered-ok(reason)`;
//! 2. **unsafe-safety** — every `unsafe` block/fn/impl carries a
//!    `// SAFETY:` comment (or a `# Safety` doc contract), and the
//!    workspace manifests pin the supporting rustc/clippy lints;
//! 3. **fault-registry** — fault-plan spec literals use registered
//!    site/kind names, the shared name tables cover every enum variant,
//!    and no registered site is dead;
//! 4. **hygiene** — no wall-clock, ad-hoc threading, or non-shim
//!    randomness in engine/oracle/kernel code, and `Ordering::Relaxed`
//!    only in allowlisted files;
//! 5. **atomic-write** — no raw `fs::write`/`File::create`/`OpenOptions`
//!    in engine crates: durable state goes through the crash-safe
//!    snapshot writer in `crates/persist` (or is waived with
//!    `// analyze: atomic-write-ok(reason)`);
//! 6. **serving-no-panic** — no `unwrap()`/`expect()` in
//!    `crates/serving/src`: the serving layer's contract is typed
//!    `ServeError`s, never panics (waiver:
//!    `// analyze: serve-ok(reason)`);
//! 7. **shard-isolation** — shard mirrors are touched only through the
//!    commit/quarantine seam in `crates/core/src/shard.rs`; cross-shard
//!    state moves as validated exchange messages (waiver:
//!    `// analyze: shard-ok(reason)`).

pub mod lexer;
pub mod rules;
