//! `cargo xtask analyze` — the project lint pass. See `docs/ANALYSIS.md`
//! and the crate docs in `lib.rs` for the rule families.

use std::path::{Path, PathBuf};

use xtask::lexer::{self, Scan};
use xtask::rules::{self, Finding};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => std::process::exit(analyze()),
        _ => {
            eprintln!("usage: cargo xtask analyze");
            std::process::exit(2);
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask lives directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

/// Directories never scanned (build output, VCS, lint fixtures — the
/// fixtures *intentionally* violate every rule).
fn skip_dir(rel: &str) -> bool {
    rel == "target"
        || rel.ends_with("/target")
        || rel.starts_with('.')
        || rel.contains("/.")
        || rel == "xtask/tests/fixtures"
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(read) => read.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(_) => return,
    };
    // Deterministic walk order — the pass practices what it preaches.
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if !skip_dir(&rel) {
                collect_rs(root, &path, out);
            }
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn load_relaxed_allowlist(root: &Path) -> Vec<String> {
    std::fs::read_to_string(root.join("xtask/relaxed-allowlist.txt"))
        .unwrap_or_default()
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Member crate manifests that must opt into the shared lint policy.
fn member_manifests(root: &Path) -> Vec<String> {
    let mut out = vec!["Cargo.toml".to_owned()];
    for dir in ["crates", "crates/shims"] {
        let Ok(read) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        let mut entries: Vec<_> = read.filter_map(Result::ok).map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.join("Cargo.toml").is_file() {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(format!("{rel}/Cargo.toml"));
            }
        }
    }
    out.push("xtask/Cargo.toml".to_owned());
    out.retain(|m| m != "crates/shims/Cargo.toml"); // not a crate
    out
}

fn analyze() -> i32 {
    let root = repo_root();
    let mut files = Vec::new();
    collect_rs(&root, &root, &mut files);

    let scans: Vec<(String, Scan)> = files
        .iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(path).ok()?;
            Some((rel, lexer::scan(&src)))
        })
        .collect();

    let relaxed_allowlist = load_relaxed_allowlist(&root);
    let mut findings: Vec<Finding> = Vec::new();

    // Per-file rules.
    for (rel, scan) in &scans {
        rules::nondet_iter::check(rel, scan, &mut findings);
        rules::unsafe_safety::check(rel, scan, &mut findings);
        rules::hygiene::check(rel, scan, &relaxed_allowlist, &mut findings);
        rules::atomic_write::check(rel, scan, &mut findings);
        rules::serving::check(rel, scan, &mut findings);
        rules::shard_isolation::check(rel, scan, &mut findings);
    }

    // Fault registry: parse the shared name tables, then validate specs
    // per file and reference coverage globally.
    const FAULTS: &str = "crates/faults/src/lib.rs";
    match scans.iter().find(|(rel, _)| rel == FAULTS) {
        Some((_, faults_scan)) => {
            let reg = rules::fault_registry::load(faults_scan);
            rules::fault_registry::check_registry(&reg, FAULTS, &mut findings);
            for (rel, scan) in &scans {
                rules::fault_registry::check_specs(&reg, rel, scan, &mut findings);
            }
            rules::fault_registry::check_dead_sites(&reg, &scans, FAULTS, &mut findings);
        }
        None => findings.push(Finding::new(
            rules::fault_registry::RULE,
            FAULTS,
            0,
            "fault registry source not found".to_owned(),
        )),
    }

    rules::unsafe_safety::check_manifests(&root, &member_manifests(&root), &mut findings);
    rules::hygiene::check_allowlist(&relaxed_allowlist, &scans, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    for finding in &findings {
        eprintln!("{finding}");
    }
    if findings.is_empty() {
        println!("analyze: {} files checked, 0 findings", scans.len());
        0
    } else {
        eprintln!(
            "analyze: {} files checked, {} finding(s)",
            scans.len(),
            findings.len()
        );
        1
    }
}
