//! Rule family 1: **nondet-iteration**.
//!
//! The engine's determinism contract (bit-identical output across
//! `MTE_THREADS` and backends) dies the moment anything iterates a
//! hash-ordered container, because `RandomState` seeds differ per
//! process. Rather than prove "this particular map is never iterated",
//! the determinism-critical crates ban `HashMap`/`HashSet` outright:
//! every occurrence of those types (including `use … as` aliases of
//! them) is an error unless the line carries an
//! `// analyze: ordered-ok(reason)` waiver. Waived *bindings* are still
//! tracked: calling an iteration method on one, or `for`-looping over
//! it, needs its own waiver at the use site.

use super::Finding;
use crate::lexer::{find_word, has_word, waived, Scan};

pub const RULE: &str = "nondet-iteration";

/// Crates whose output feeds the determinism contract.
const DET_CRITICAL: [&str; 5] = [
    "crates/core/",
    "crates/algebra/",
    "crates/graph/",
    "crates/congest/",
    "crates/shims/rayon/",
];

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods whose call on a hash container observes hash order.
const ITER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

pub fn applies(path: &str) -> bool {
    DET_CRITICAL.iter().any(|prefix| path.starts_with(prefix))
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `let [mut] name` binding introduced on this line, if any.
fn let_binding(code: &str) -> Option<String> {
    let pos = find_word(code, "let")?;
    let rest = code[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// `… as Alias` following a hash-type token on this line, if any.
fn type_alias(code: &str, ty: &str) -> Option<String> {
    let pos = find_word(code, ty)?;
    let mut rest = code[pos + ty.len()..].trim_start();
    // Skip over generic args: `HashMap<K, V> as Alias` (rare but legal).
    if let Some(close) = rest.starts_with('<').then(|| rest.find('>')).flatten() {
        rest = rest[close + 1..].trim_start();
    }
    let rest = rest.strip_prefix("as ")?;
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|&c| is_ident(c))
        .collect();
    (!name.is_empty()).then_some(name)
}

pub fn check(path: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if !applies(path) {
        return;
    }
    // Pass 1: aliases of the banned types and (waived) hash bindings.
    let mut flagged_types: Vec<String> = HASH_TYPES.iter().map(|&t| t.to_owned()).collect();
    let mut bindings: Vec<String> = Vec::new();
    for code in &scan.code {
        for ty in HASH_TYPES {
            if let Some(alias) = type_alias(code, ty) {
                flagged_types.push(alias);
            }
            if has_word(code, ty) {
                if let Some(name) = let_binding(code) {
                    bindings.push(name);
                }
            }
        }
    }
    // Pass 2: flag occurrences.
    for (idx, code) in scan.code.iter().enumerate() {
        if let Some(ty) = flagged_types.iter().find(|t| has_word(code, t)) {
            if !waived(scan, idx, "ordered") {
                out.push(Finding::new(
                    RULE,
                    path,
                    idx,
                    format!(
                        "`{ty}` in a determinism-critical crate: iteration order is \
                         hash-seeded; use BTreeMap/BTreeSet or an index-keyed Vec, or \
                         waive with `// analyze: ordered-ok(reason)`"
                    ),
                ));
            }
            continue; // one finding per line
        }
        // Iteration over a tracked (possibly waived) hash binding.
        for name in &bindings {
            let iterated = (has_word(code, name) && ITER_METHODS.iter().any(|m| code.contains(m)))
                || (code.trim_start().starts_with("for ")
                    && code
                        .find(" in ")
                        .map(|p| has_word(&code[p + 4..], name))
                        .unwrap_or(false));
            if iterated && !waived(scan, idx, "ordered") {
                out.push(Finding::new(
                    RULE,
                    path,
                    idx,
                    format!(
                        "iterates hash-ordered binding `{name}`: order is hash-seeded; \
                         collect-and-sort first or waive with \
                         `// analyze: ordered-ok(reason)`"
                    ),
                ));
                break;
            }
        }
    }
}
