//! Rule family 6: **serving-no-panic**.
//!
//! The serving layer's contract is *typed errors, never panics*: a
//! query against a corrupt artifact, a poisoned cache entry, or an
//! exhausted budget must surface as a `ServeError` the caller can
//! match on. `unwrap()` / `expect()` are the two easiest ways to break
//! that contract silently, so they are banned outright in
//! `crates/serving/src`. Word-boundary matching keeps the combinators
//! (`unwrap_or_else`, `unwrap_or_default`, `expect_err`, …) legal —
//! those *are* the sanctioned replacements. A deliberate exception
//! (e.g. an invariant provably established by `OracleArtifact`
//! validation) carries an `// analyze: serve-ok(reason)` waiver.

use super::Finding;
use crate::lexer::{has_word, waived, Scan};

pub const RULE: &str = "serving-no-panic";

/// The no-panic scope: serving *library* code. Integration tests and
/// benches assert on serving results and may unwrap freely.
const SCOPE: &str = "crates/serving/src";

const BANNED: [(&str, &str); 2] = [
    (
        "unwrap",
        "the serving layer returns typed ServeErrors, it never panics: \
         match, `?`, or an `unwrap_or_*` combinator instead",
    ),
    (
        "expect",
        "the serving layer returns typed ServeErrors, it never panics: \
         match, `?`, or an `unwrap_or_*` combinator instead",
    ),
];

pub fn check(path: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if !path.starts_with(SCOPE) {
        return;
    }
    for (idx, code) in scan.code.iter().enumerate() {
        for (needle, why) in BANNED {
            if has_word(code, needle) && !waived(scan, idx, "serve") {
                out.push(Finding::new(
                    RULE,
                    path,
                    idx,
                    format!("`{needle}` in serving-layer code: {why}"),
                ));
            }
        }
    }
}
