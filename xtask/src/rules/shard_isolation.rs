//! Rule family 7: **shard-isolation**.
//!
//! The sharded engine's correctness proof leans on one structural
//! invariant: a shard's `mirror` is written only through the
//! commit/quarantine seam in `crates/core/src/shard.rs`, never poked
//! at from outside. Cross-shard state moves exclusively as validated
//! `ExchangeMsg`s — that is what makes a failed hop re-executable
//! from its hop-entry state and a quarantined shard's mirror safe to
//! copy from.
//!
//! Two checks enforce the seam lexically:
//!
//! * any `.mirror` access in `crates/` **outside** `shard.rs` is a
//!   finding — other crates consume `ShardedRun::states`, not live
//!   mirrors;
//! * **inside** `shard.rs`, a line that indexes the shard table *and*
//!   dereferences a mirror (`shards[…].mirror`-shaped code) is a
//!   finding — cross-shard reads must go through the exchange or one
//!   of the audited seams.
//!
//! Each sanctioned seam line (commit, quarantine takeover, final
//! gather) carries an `// analyze: shard-ok(reason)` waiver.

use super::Finding;
use crate::lexer::{waived, Scan};

pub const RULE: &str = "shard-isolation";

/// The lexical seam: the one file allowed to touch shard mirrors.
const SEAM: &str = "crates/core/src/shard.rs";

/// The enforcement scope. Tests, benches, and xtask fixtures assert on
/// run *results* and never see a live mirror, so `crates/` library and
/// example code is the meaningful perimeter.
const SCOPE: &str = "crates/";

pub fn check(path: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if !path.starts_with(SCOPE) {
        return;
    }
    let in_seam = path == SEAM;
    for (idx, code) in scan.code.iter().enumerate() {
        if !code.contains(".mirror") || waived(scan, idx, "shard") {
            continue;
        }
        if !in_seam {
            out.push(Finding::new(
                RULE,
                path,
                idx,
                "`.mirror` access outside the shard seam: shard state \
                 crosses boundaries only as validated ExchangeMsgs; \
                 consume ShardedRun::states instead"
                    .to_owned(),
            ));
        } else if code.contains("shards[") {
            out.push(Finding::new(
                RULE,
                path,
                idx,
                "cross-shard mirror access inside the seam: reads of \
                 another shard's mirror must go through the exchange \
                 or an audited seam line (waiver: \
                 `// analyze: shard-ok(reason)`)"
                    .to_owned(),
            ));
        }
    }
}
