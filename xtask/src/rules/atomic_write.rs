//! Rule family 5: **atomic-write**.
//!
//! Durable state must flow through `mte_persist`'s crash-safe writer
//! (temp sibling + fsync + atomic rename): a raw `std::fs::write` or
//! `File::create` in engine/oracle/kernel code can tear on crash,
//! leaving a half-written file the snapshot loader then has to treat as
//! corruption. The engine crates therefore ban the raw file-creation
//! entry points outright; `crates/persist` itself (the one place the
//! atomic protocol lives) and `crates/bench` (artifact dumps, no
//! recovery story) are outside the scope. A deliberate exception — a
//! debug dump, say — carries an `// analyze: atomic-write-ok(reason)`
//! waiver.

use super::Finding;
use crate::lexer::{has_word, waived, Scan};

pub const RULE: &str = "atomic-write";

/// Crates whose file writes must go through the snapshot store. Same
/// scope as the hygiene bans; `crates/persist` is deliberately absent.
const ENGINE_SCOPE: [&str; 5] = [
    "crates/core/",
    "crates/algebra/",
    "crates/graph/",
    "crates/congest/",
    "crates/serving/",
];

const BANNED: [(&str, &str); 3] = [
    (
        "fs::write",
        "raw whole-file write can tear on crash; durable state goes through \
         mte_persist::SnapshotWriter::write_to",
    ),
    (
        "File::create",
        "raw file creation truncates in place and can tear on crash; durable \
         state goes through mte_persist::SnapshotWriter::write_to",
    ),
    (
        "OpenOptions",
        "raw file opening bypasses the atomic temp-file + rename protocol; \
         durable state goes through mte_persist::SnapshotWriter::write_to",
    ),
];

pub fn applies(path: &str) -> bool {
    ENGINE_SCOPE.iter().any(|prefix| path.starts_with(prefix))
}

pub fn check(path: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if !applies(path) {
        return;
    }
    for (idx, code) in scan.code.iter().enumerate() {
        for (needle, why) in BANNED {
            if has_word(code, needle) && !waived(scan, idx, "atomic-write") {
                out.push(Finding::new(
                    RULE,
                    path,
                    idx,
                    format!("`{needle}` in engine/oracle/kernel code: {why}"),
                ));
            }
        }
    }
}
