//! Rule family 2: **unsafe-safety**.
//!
//! Every `unsafe` block, fn, or impl in the workspace must state *why*
//! it is sound: a `// SAFETY:` comment directly above (clippy's
//! `undocumented_unsafe_blocks` convention), or — for `unsafe fn` — a
//! doc comment carrying the `# Safety` contract the caller must uphold.
//! The rule walks upward from the `unsafe` token over comments,
//! attributes (`#[target_feature]`, `#[inline]`, …), and continuation
//! lines of the same statement; the first *completed* code line without
//! a marker ends the search.
//!
//! The manifest half of the rule pins the compiler-side support: the
//! root manifest must deny `unsafe_op_in_unsafe_fn` (every unsafe
//! operation inside an `unsafe fn` gets its own commented block) and
//! clippy's `undocumented_unsafe_blocks`, and every member crate must
//! opt into the shared `[workspace.lints]` table.

use super::Finding;
use crate::lexer::{has_word, waived, Scan};

pub const RULE: &str = "unsafe-safety";

/// Whether the `unsafe` on line `idx` is covered by a SAFETY marker.
fn covered(scan: &Scan, idx: usize) -> bool {
    if scan.comments[idx].contains("SAFETY:") {
        return true;
    }
    let mut k = idx;
    let mut steps = 0;
    while k > 0 && steps < 64 {
        k -= 1;
        steps += 1;
        let comment = scan.comments[k].trim();
        if comment.contains("SAFETY:") {
            return true;
        }
        if (comment.starts_with("///") || comment.starts_with("//!")) && comment.contains("Safety")
        {
            return true;
        }
        let code = scan.code[k].trim();
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            continue; // comment-only, blank, or attribute line: keep walking
        }
        // A completed statement above means no marker precedes this
        // `unsafe`; an unterminated line (`let x =`, an open paren list,
        // …) is part of the same statement, so keep walking.
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false;
        }
    }
    false
}

pub fn check(path: &str, scan: &Scan, out: &mut Vec<Finding>) {
    for idx in 0..scan.code.len() {
        if !has_word(&scan.code[idx], "unsafe") {
            continue;
        }
        if waived(scan, idx, "safety") || covered(scan, idx) {
            continue;
        }
        out.push(Finding::new(
            RULE,
            path,
            idx,
            "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
             contract for an `unsafe fn`) directly above"
                .to_owned(),
        ));
    }
}

/// Manifest half: the workspace lint table and every member's opt-in.
pub fn check_manifests(root: &std::path::Path, manifests: &[String], out: &mut Vec<Finding>) {
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest).unwrap_or_default();
    for (needle, what) in [
        (
            "unsafe_op_in_unsafe_fn = \"deny\"",
            "rust lint `unsafe_op_in_unsafe_fn` must be denied workspace-wide",
        ),
        (
            "undocumented_unsafe_blocks = \"deny\"",
            "clippy lint `undocumented_unsafe_blocks` must be denied workspace-wide",
        ),
    ] {
        if !text.contains(needle) {
            out.push(Finding::new(RULE, "Cargo.toml", 0, what.to_owned()));
        }
    }
    for rel in manifests {
        let text = std::fs::read_to_string(root.join(rel)).unwrap_or_default();
        if !(text.contains("[lints]") && text.contains("workspace = true")) {
            out.push(Finding::new(
                RULE,
                rel,
                0,
                "crate does not opt into the shared lint policy \
                 (`[lints]\\nworkspace = true`)"
                    .to_owned(),
            ));
        }
    }
}
