//! Rule family 4: **determinism hygiene**.
//!
//! Engine/oracle/kernel code must not read wall clocks, spawn ad-hoc
//! threads, or draw non-shim randomness: all three smuggle
//! run-to-run-varying inputs into computations whose outputs the test
//! suite pins bit-for-bit. Threading goes through the pool shim
//! (`rayon`), randomness through the seeded `rand` shim, and timing
//! belongs in `crates/bench` / the criterion shim only.
//!
//! `Ordering::Relaxed` is flagged *workspace-wide* unless the file is
//! listed in `xtask/relaxed-allowlist.txt`: relaxed atomics are fine for
//! monotonic flags and claim counters whose protocols have been argued
//! through (pool chunk claiming, fault-arming status), but each new use
//! should force that argument, not inherit it silently.

use super::Finding;
use crate::lexer::{has_word, waived, Scan};

pub const RULE: &str = "hygiene";

/// Crates holding engine/oracle/kernel code (scope of the wall-clock /
/// threading / randomness bans). `crates/bench` and the criterion shim
/// are deliberately outside: timing is their job.
const ENGINE_SCOPE: [&str; 5] = [
    "crates/core/",
    "crates/algebra/",
    "crates/graph/",
    "crates/congest/",
    "crates/serving/",
];

const BANNED: [(&str, &str); 6] = [
    (
        "thread::spawn",
        "ad-hoc threads bypass the pool shim's deterministic chunking",
    ),
    (
        "Instant::now",
        "wall-clock reads belong in crates/bench, not engine code",
    ),
    (
        "SystemTime",
        "wall-clock reads belong in crates/bench, not engine code",
    ),
    (
        "thread_rng",
        "non-shim randomness: use the seeded generators from the rand shim",
    ),
    (
        "from_entropy",
        "non-shim randomness: use the seeded generators from the rand shim",
    ),
    (
        "rand::random",
        "non-shim randomness: use the seeded generators from the rand shim",
    ),
];

fn in_engine_scope(path: &str) -> bool {
    ENGINE_SCOPE.iter().any(|prefix| path.starts_with(prefix))
}

pub fn check(path: &str, scan: &Scan, relaxed_allowlist: &[String], out: &mut Vec<Finding>) {
    if in_engine_scope(path) {
        for (idx, code) in scan.code.iter().enumerate() {
            for (needle, why) in BANNED {
                if has_word(code, needle) && !waived(scan, idx, "hygiene") {
                    out.push(Finding::new(
                        RULE,
                        path,
                        idx,
                        format!("`{needle}` in engine/oracle/kernel code: {why}"),
                    ));
                }
            }
        }
    }
    if !relaxed_allowlist.iter().any(|allowed| allowed == path) {
        for (idx, code) in scan.code.iter().enumerate() {
            if has_word(code, "Ordering::Relaxed") {
                out.push(Finding::new(
                    RULE,
                    path,
                    idx,
                    "`Ordering::Relaxed` outside the allowlist \
                     (xtask/relaxed-allowlist.txt): argue the protocol and add \
                     the file, or use Acquire/Release"
                        .to_owned(),
                ));
            }
        }
    }
}

/// Allowlist hygiene: entries must name files that exist and still use
/// relaxed atomics — stale entries would quietly widen the waiver.
pub fn check_allowlist(
    relaxed_allowlist: &[String],
    scans: &[(String, Scan)],
    out: &mut Vec<Finding>,
) {
    for allowed in relaxed_allowlist {
        match scans.iter().find(|(path, _)| path == allowed) {
            None => out.push(Finding::new(
                RULE,
                "xtask/relaxed-allowlist.txt",
                0,
                format!("allowlist entry `{allowed}` matches no scanned file"),
            )),
            Some((_, scan)) => {
                if !scan.code.iter().any(|c| has_word(c, "Ordering::Relaxed")) {
                    out.push(Finding::new(
                        RULE,
                        "xtask/relaxed-allowlist.txt",
                        0,
                        format!(
                            "stale allowlist entry: `{allowed}` no longer uses \
                             `Ordering::Relaxed`"
                        ),
                    ));
                }
            }
        }
    }
}
