//! The seven rule families of `cargo xtask analyze`.

pub mod atomic_write;
pub mod fault_registry;
pub mod hygiene;
pub mod nondet_iter;
pub mod serving;
pub mod shard_isolation;
pub mod unsafe_safety;

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Rule family identifier (e.g. `nondet-iteration`).
    pub rule: &'static str,
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub msg: String,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line0: usize, msg: String) -> Self {
        Finding {
            rule,
            file: file.to_owned(),
            line: line0 + 1,
            msg,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}
