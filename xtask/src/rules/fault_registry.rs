//! Rule family 3: **fault-registry**.
//!
//! The fault-injection harness addresses sites and kinds by *name* in
//! `MTE_FAULT_PLAN` specs (`site:kind:nth[:hits][;…]`). A misspelled
//! name in a test or doc silently arms nothing, and a site registered
//! but never referenced is dead weight that suggests a hook was removed
//! without cleaning up. This rule parses the shared name tables
//! (`SITE_NAMES` / `KIND_NAMES` in `crates/faults/src/lib.rs` — the
//! single source of truth the runtime `name()`/`parse()` functions also
//! read) and checks:
//!
//! * the tables cover every enum variant exactly once, with unique names;
//! * every string literal shaped like a plan spec uses registered
//!   site/kind names (waiver: `// analyze: fault-spec-ok(reason)` for
//!   intentional negative-parse tests);
//! * every registered site is referenced outside the faults crate
//!   (as `FaultSite::Variant` or by name in some literal).

use super::Finding;
use crate::lexer::{has_word, waived, Scan};

pub const RULE: &str = "fault-registry";

/// The parsed name tables plus enum variant lists.
pub struct Registry {
    /// `(variant, name)` rows of `SITE_NAMES`.
    pub sites: Vec<(String, String)>,
    /// `(variant, name)` rows of `KIND_NAMES`.
    pub kinds: Vec<(String, String)>,
    /// Variants of `enum FaultSite` in declaration order.
    pub site_variants: Vec<String>,
    /// Variants of `enum FaultKind` in declaration order.
    pub kind_variants: Vec<String>,
}

fn enum_variants(scan: &Scan, enum_name: &str) -> Vec<String> {
    let header = format!("pub enum {enum_name}");
    let mut variants = Vec::new();
    let mut inside = false;
    for code in &scan.code {
        let t = code.trim();
        if !inside {
            if t.contains(&header) {
                inside = true;
            }
            continue;
        }
        if t.starts_with('}') {
            break;
        }
        if t.starts_with("#[") || t.is_empty() {
            continue;
        }
        let name: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.chars().next().map(char::is_uppercase).unwrap_or(false) {
            variants.push(name);
        }
    }
    variants
}

fn table_rows(scan: &Scan, table: &str, enum_name: &str) -> Vec<(String, String)> {
    let header = format!("{table}:");
    let variant_prefix = format!("{enum_name}::");
    let mut rows = Vec::new();
    let mut inside = false;
    for (idx, code) in scan.code.iter().enumerate() {
        let t = code.trim();
        if !inside {
            if t.contains(&header) {
                inside = true;
            }
            continue;
        }
        if t.starts_with("];") || t == "]" {
            break;
        }
        let Some(pos) = t.find(&variant_prefix) else {
            continue;
        };
        let variant: String = t[pos + variant_prefix.len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // The row's name is the string literal starting on this line.
        let name = scan
            .strings
            .iter()
            .find(|(line, _)| *line == idx)
            .map(|(_, s)| s.clone());
        if let (false, Some(name)) = (variant.is_empty(), name) {
            rows.push((variant, name));
        }
    }
    rows
}

/// Parses the registry out of the faults crate's source scan.
pub fn load(faults_scan: &Scan) -> Registry {
    Registry {
        sites: table_rows(faults_scan, "SITE_NAMES", "FaultSite"),
        kinds: table_rows(faults_scan, "KIND_NAMES", "FaultKind"),
        site_variants: enum_variants(faults_scan, "FaultSite"),
        kind_variants: enum_variants(faults_scan, "FaultKind"),
    }
}

/// Whether `s` is shaped like a fault-plan spec: `site:kind:nth[:hits]`
/// segments joined by `;`.
pub fn looks_like_plan_spec(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    s.split(';').all(|seg| {
        let parts: Vec<&str> = seg.trim().split(':').collect();
        (parts.len() == 3 || parts.len() == 4)
            && parts[..2]
                .iter()
                .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_lowercase() || c == '_'))
            && parts[2..]
                .iter()
                .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
    })
}

/// Registry self-consistency: tables total, names unique.
pub fn check_registry(reg: &Registry, faults_path: &str, out: &mut Vec<Finding>) {
    for (variants, rows, what) in [
        (&reg.site_variants, &reg.sites, "FaultSite/SITE_NAMES"),
        (&reg.kind_variants, &reg.kinds, "FaultKind/KIND_NAMES"),
    ] {
        for v in variants.iter() {
            let n = rows.iter().filter(|(rv, _)| rv == v).count();
            if n != 1 {
                out.push(Finding::new(
                    RULE,
                    faults_path,
                    0,
                    format!("{what}: variant `{v}` has {n} table rows (want exactly 1)"),
                ));
            }
        }
        for (rv, _) in rows.iter() {
            if !variants.contains(rv) {
                out.push(Finding::new(
                    RULE,
                    faults_path,
                    0,
                    format!("{what}: table row `{rv}` is not an enum variant"),
                ));
            }
        }
        let mut names: Vec<&str> = rows.iter().map(|(_, n)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != rows.len() {
            out.push(Finding::new(
                RULE,
                faults_path,
                0,
                format!("{what}: duplicate names in the table"),
            ));
        }
    }
}

/// Per-file half: plan-spec literals must use registered names.
pub fn check_specs(reg: &Registry, path: &str, scan: &Scan, out: &mut Vec<Finding>) {
    for (line, lit) in &scan.strings {
        if !looks_like_plan_spec(lit) || waived(scan, *line, "fault-spec") {
            continue;
        }
        for seg in lit.split(';') {
            let parts: Vec<&str> = seg.trim().split(':').collect();
            let (site, kind) = (parts[0], parts[1]);
            if !reg.sites.iter().any(|(_, n)| n == site) {
                out.push(Finding::new(
                    RULE,
                    path,
                    *line,
                    format!(
                        "fault-plan spec names unknown site `{site}` (registered: {}); \
                         waive negative tests with `// analyze: fault-spec-ok(reason)`",
                        reg.sites
                            .iter()
                            .map(|(_, n)| n.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
            if !reg.kinds.iter().any(|(_, n)| n == kind) {
                out.push(Finding::new(
                    RULE,
                    path,
                    *line,
                    format!(
                        "fault-plan spec names unknown kind `{kind}` (registered: {})",
                        reg.kinds
                            .iter()
                            .map(|(_, n)| n.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
    }
}

/// Global half: every registered site is referenced outside the faults
/// crate, by variant or by name.
pub fn check_dead_sites(
    reg: &Registry,
    scans: &[(String, Scan)],
    faults_path: &str,
    out: &mut Vec<Finding>,
) {
    for (variant, name) in &reg.sites {
        let token = format!("FaultSite::{variant}");
        let referenced = scans.iter().any(|(path, scan)| {
            if path.starts_with("crates/faults/") {
                return false;
            }
            scan.code
                .iter()
                .any(|code| code.contains(&token) && has_word(code, variant))
                || scan.strings.iter().any(|(_, s)| s.contains(name.as_str()))
        });
        if !referenced {
            out.push(Finding::new(
                RULE,
                faults_path,
                0,
                format!(
                    "registered fault site `{name}` ({token}) is never referenced \
                     outside the registry — dead site or missing hook"
                ),
            ));
        }
    }
}
