//! A minimal Rust source scanner.
//!
//! The lint rules need to tell *code* apart from *comments* and *literal
//! contents* — `"HashMap"` inside a string must not trip the iteration
//! rule, and `// SAFETY:` must be recognised as a comment even when the
//! same line also holds code. A full parser (`syn`) is unavailable in the
//! offline build image, and the rules only need token-level structure, so
//! this hand-rolled scanner classifies every byte of a file into one of
//! three channels:
//!
//! * `code`  — the source line with comments and string/char-literal
//!   contents blanked to spaces (delimiters kept), so column positions
//!   survive for reporting;
//! * `comments` — the comment text that appeared on each line (line
//!   comments, doc comments, and block comments all land here);
//! * `strings` — every string literal's content with its starting line,
//!   for rules that inspect literals (fault-plan specs).
//!
//! Handled syntax: `//`/`///`/`//!` line comments, nested `/* */` block
//! comments, `"…"` strings with escapes, byte strings `b"…"`, raw strings
//! `r"…"` / `r#"…"#` (any hash count) and their byte variants, char
//! literals (including escapes), and the char-vs-lifetime ambiguity of a
//! lone `'`.

/// Per-line classification of one source file (see module docs).
pub struct Scan {
    /// Verbatim source lines (without trailing `\n`).
    pub lines: Vec<String>,
    /// Source lines with comments and literal contents blanked to spaces.
    pub code: Vec<String>,
    /// Comment text per line (empty string when the line has none).
    pub comments: Vec<String>,
    /// String-literal contents: `(0-based starting line, content)`.
    pub strings: Vec<(usize, String)>,
}

enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// `hashes` is `None` for an escaped string, `Some(n)` for `r#{n}"…"#{n}`.
    Str {
        hashes: Option<u32>,
    },
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into per-line code/comment/string channels.
pub fn scan(src: &str) -> Scan {
    let b: Vec<char> = src.chars().collect();
    let mut state = State::Code;
    let mut out = Scan {
        lines: src.lines().map(str::to_owned).collect(),
        code: Vec::new(),
        comments: Vec::new(),
        strings: Vec::new(),
    };
    let mut cur_code = String::new();
    let mut cur_comment = String::new();
    let mut cur_str = String::new();
    let mut str_line = 0usize;
    let mut line = 0usize;
    let mut prev_code_char = ' ';
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            out.code.push(std::mem::take(&mut cur_code));
            out.comments.push(std::mem::take(&mut cur_comment));
            line += 1;
            if let State::Str { .. } = state {
                cur_str.push('\n');
            }
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = b.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur_comment.push_str("//");
                    cur_code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur_comment.push_str("/*");
                    cur_code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str { hashes: None };
                    cur_code.push('"');
                    cur_str.clear();
                    str_line = line;
                    prev_code_char = '"';
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident(prev_code_char) {
                    // Possible raw / byte string: r" r#" b" br" br#" …
                    let mut j = i + 1;
                    if c == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = j > i + 1 || c == 'r';
                    if b.get(j) == Some(&'"') && (raw || c == 'b') {
                        for &d in &b[i..=j] {
                            cur_code.push(d);
                        }
                        state = State::Str {
                            hashes: if raw { Some(hashes) } else { None },
                        };
                        cur_str.clear();
                        str_line = line;
                        prev_code_char = '"';
                        i = j + 1;
                    } else {
                        cur_code.push(c);
                        prev_code_char = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                    // `'\n'`): an ident char after the quote with no
                    // closing quote right behind it means lifetime.
                    let n1 = b.get(i + 1).copied().unwrap_or(' ');
                    let n2 = b.get(i + 2).copied().unwrap_or(' ');
                    cur_code.push('\'');
                    prev_code_char = '\'';
                    if (n1.is_alphabetic() || n1 == '_') && n2 != '\'' {
                        i += 1; // lifetime: the quote alone; idents follow as code
                    } else {
                        state = State::CharLit;
                        i += 1;
                    }
                } else {
                    cur_code.push(c);
                    prev_code_char = c;
                    i += 1;
                }
            }
            State::LineComment => {
                cur_comment.push(c);
                cur_code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = b.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur_comment.push_str("*/");
                    cur_code.push_str("  ");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    cur_comment.push_str("/*");
                    cur_code.push_str("  ");
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur_comment.push(c);
                    cur_code.push(' ');
                    i += 1;
                }
            }
            State::Str { hashes } => match hashes {
                None => {
                    if c == '\\' {
                        cur_str.push(c);
                        if let Some(&e) = b.get(i + 1) {
                            cur_str.push(e);
                            cur_code.push_str("  ");
                            i += 2;
                        } else {
                            cur_code.push(' ');
                            i += 1;
                        }
                        continue;
                    }
                    if c == '"' {
                        out.strings.push((str_line, std::mem::take(&mut cur_str)));
                        cur_code.push('"');
                        state = State::Code;
                    } else {
                        cur_str.push(c);
                        cur_code.push(' ');
                    }
                    i += 1;
                }
                Some(n) => {
                    let closes = c == '"' && (1..=n as usize).all(|k| b.get(i + k) == Some(&'#'));
                    if closes {
                        out.strings.push((str_line, std::mem::take(&mut cur_str)));
                        cur_code.push('"');
                        for _ in 0..n {
                            cur_code.push('#');
                        }
                        state = State::Code;
                        i += 1 + n as usize;
                    } else {
                        cur_str.push(c);
                        cur_code.push(' ');
                        i += 1;
                    }
                }
            },
            State::CharLit => {
                if c == '\\' {
                    cur_code.push(' ');
                    if b.get(i + 1).is_some() {
                        cur_code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '\'' {
                    cur_code.push('\'');
                    state = State::Code;
                } else {
                    cur_code.push(' ');
                }
                i += 1;
            }
        }
    }
    out.code.push(cur_code);
    out.comments.push(cur_comment);
    // `str::lines` drops a trailing newline's empty line; keep the three
    // channels the same length.
    while out.lines.len() < out.code.len() {
        out.lines.push(String::new());
    }
    while out.code.len() < out.lines.len() {
        out.code.push(String::new());
        out.comments.push(String::new());
    }
    out
}

/// Whether `line` contains `word` as a standalone token (not part of a
/// longer identifier).
pub fn has_word(line: &str, word: &str) -> bool {
    find_word(line, word).is_some()
}

/// Byte offset of the first standalone occurrence of `word` in `line`.
pub fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .map(is_ident)
                .unwrap_or(false);
        let after = at + word.len();
        let after_ok =
            after >= line.len() || !line[after..].chars().next().map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

/// Whether line `idx` carries an `// analyze: <key>-ok(reason)` waiver —
/// trailing on the same line, or on a comment-only line directly above
/// (a *trailing* comment on the line above waives only its own line).
pub fn waived(scan: &Scan, idx: usize, key: &str) -> bool {
    let marker = format!("analyze: {key}-ok(");
    if scan.comments.get(idx).map(|c| c.contains(&marker)) == Some(true) {
        return true;
    }
    idx.checked_sub(1)
        .map(|p| scan.comments[p].contains(&marker) && scan.code[p].trim().is_empty())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let s = scan("let x = \"HashMap\"; // HashMap here\nlet m: HashMap<u32, u32>;\n");
        assert!(!has_word(&s.code[0], "HashMap"));
        assert!(s.comments[0].contains("HashMap"));
        assert_eq!(s.strings, vec![(0, "HashMap".to_owned())]);
        assert!(has_word(&s.code[1], "HashMap"));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let s =
            scan("let r = r#\"unsafe \" quote\"#;\n/* outer /* unsafe */ still */ let y = 1;\n");
        assert!(!has_word(&s.code[0], "unsafe"));
        assert_eq!(s.strings[0].1, "unsafe \" quote");
        assert!(!has_word(&s.code[1], "unsafe"));
        assert!(has_word(&s.code[1], "let"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }\nlet nl = '\\n';\n");
        assert!(has_word(&s.code[0], "str"));
        assert!(has_word(&s.code[0], "char"));
        assert!(has_word(&s.code[1], "let"));
    }

    #[test]
    fn waiver_applies_to_same_and_next_line() {
        let s = scan(
            "// analyze: ordered-ok(lookup only)\nlet m = HashMap::new();\nlet n = HashMap::new(); // analyze: ordered-ok(x)\nlet o = HashMap::new();\n",
        );
        assert!(waived(&s, 1, "ordered"));
        assert!(waived(&s, 2, "ordered"));
        assert!(!waived(&s, 3, "ordered"));
    }
}
