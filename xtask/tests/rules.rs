//! Fixture-based self-tests for the analyze rules: each rule family must
//! fire on its bad fixture and stay silent on the good/waived one.

use std::path::Path;

use xtask::lexer::{self, Scan};
use xtask::rules::{
    atomic_write, fault_registry, hygiene, nondet_iter, serving, shard_isolation, unsafe_safety,
    Finding,
};

fn fixture(name: &str) -> Scan {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    lexer::scan(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("reading fixture {}: {e}", path.display());
    }))
}

/// Fixtures are checked as-if they lived in a determinism-critical crate.
const AS_IF: &str = "crates/core/src/fixture.rs";

#[test]
fn nondet_iteration_fires_on_bad_fixture() {
    let scan = fixture("nondet_iter_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    nondet_iter::check(AS_IF, &scan, &mut findings);
    // use-import, aliased import, `let counts`, `Seen::new`, `.keys()`.
    assert!(
        findings.len() >= 4,
        "expected ≥4 findings, got: {findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.msg.contains("HashMap") || f.msg.contains("HashSet")));
}

#[test]
fn nondet_iteration_respects_waivers() {
    let scan = fixture("nondet_iter_waived.rs");
    let mut findings: Vec<Finding> = Vec::new();
    nondet_iter::check(AS_IF, &scan, &mut findings);
    assert!(findings.is_empty(), "waived fixture tripped: {findings:?}");
}

#[test]
fn nondet_iteration_catches_iteration_of_waived_binding() {
    let scan = fixture("nondet_iter_waived_binding_iterated.rs");
    let mut findings: Vec<Finding> = Vec::new();
    nondet_iter::check(AS_IF, &scan, &mut findings);
    assert_eq!(
        findings.len(),
        1,
        "exactly the iteration site should trip: {findings:?}"
    );
    assert!(findings[0].msg.contains("counts"));
}

#[test]
fn nondet_iteration_scoped_to_det_critical_crates() {
    let scan = fixture("nondet_iter_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    nondet_iter::check("crates/bench/src/fixture.rs", &scan, &mut findings);
    assert!(findings.is_empty(), "bench is out of scope: {findings:?}");
}

#[test]
fn unsafe_safety_fires_on_bad_fixture() {
    let scan = fixture("unsafe_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    unsafe_safety::check(AS_IF, &scan, &mut findings);
    // `unsafe impl`, `unsafe fn` without # Safety, two bare blocks.
    assert_eq!(findings.len(), 4, "got: {findings:?}");
}

#[test]
fn unsafe_safety_accepts_documented_forms() {
    let scan = fixture("unsafe_good.rs");
    let mut findings: Vec<Finding> = Vec::new();
    unsafe_safety::check(AS_IF, &scan, &mut findings);
    assert!(findings.is_empty(), "good fixture tripped: {findings:?}");
}

fn toy_registry() -> fault_registry::Registry {
    let src = r#"
pub enum FaultSite {
    EngineHopCommit,
    GrParser,
}
pub enum FaultKind {
    Panic,
    Io,
}
pub const SITE_NAMES: [(FaultSite, &str); 2] = [
    (FaultSite::EngineHopCommit, "engine_hop_commit"),
    (FaultSite::GrParser, "gr_parser"),
];
pub const KIND_NAMES: [(FaultKind, &str); 2] = [
    (FaultKind::Panic, "panic"),
    (FaultKind::Io, "io"),
];
"#;
    fault_registry::load(&lexer::scan(src))
}

#[test]
fn fault_registry_parses_tables_and_variants() {
    let reg = toy_registry();
    assert_eq!(reg.site_variants, vec!["EngineHopCommit", "GrParser"]);
    assert_eq!(reg.kind_variants, vec!["Panic", "Io"]);
    assert_eq!(reg.sites[0].1, "engine_hop_commit");
    assert_eq!(reg.kinds[1].1, "io");
    let mut findings: Vec<Finding> = Vec::new();
    fault_registry::check_registry(&reg, "toy.rs", &mut findings);
    assert!(
        findings.is_empty(),
        "consistent registry tripped: {findings:?}"
    );
}

#[test]
fn fault_registry_flags_missing_table_row() {
    let mut reg = toy_registry();
    reg.sites.pop();
    let mut findings: Vec<Finding> = Vec::new();
    fault_registry::check_registry(&reg, "toy.rs", &mut findings);
    assert!(
        findings.iter().any(|f| f.msg.contains("GrParser")),
        "got: {findings:?}"
    );
}

#[test]
fn fault_registry_fires_on_bad_specs_and_respects_waiver() {
    let reg = toy_registry();
    let scan = fixture("fault_spec_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    fault_registry::check_specs(&reg, AS_IF, &scan, &mut findings);
    // Unknown site `no_such_site`, unknown kind `panik`; the waived
    // literal stays silent.
    assert_eq!(findings.len(), 2, "got: {findings:?}");
    assert!(findings.iter().any(|f| f.msg.contains("no_such_site")));
    assert!(findings.iter().any(|f| f.msg.contains("panik")));
}

#[test]
fn fault_registry_flags_dead_sites() {
    let reg = toy_registry();
    // Only gr_parser referenced anywhere outside the registry.
    let user = lexer::scan("fn f() { trigger(FaultSite::GrParser); }\n");
    let scans = vec![("crates/core/src/user.rs".to_owned(), user)];
    let mut findings: Vec<Finding> = Vec::new();
    fault_registry::check_dead_sites(&reg, &scans, "toy.rs", &mut findings);
    assert_eq!(findings.len(), 1, "got: {findings:?}");
    assert!(findings[0].msg.contains("engine_hop_commit"));
}

#[test]
fn plan_spec_shape_detection() {
    // analyze: fault-spec-ok(shape-detection test data)
    assert!(fault_registry::looks_like_plan_spec("a_site:panic:0"));
    assert!(fault_registry::looks_like_plan_spec(
        "engine_hop_commit:panic:1;gr_parser:io:2:3"
    ));
    assert!(!fault_registry::looks_like_plan_spec("a plain sentence"));
    assert!(!fault_registry::looks_like_plan_spec("key:value"));
    assert!(!fault_registry::looks_like_plan_spec("a:b:c"));
}

#[test]
fn hygiene_fires_on_bad_fixture() {
    let scan = fixture("hygiene_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    hygiene::check(AS_IF, &scan, &[], &mut findings);
    let relaxed = findings
        .iter()
        .filter(|f| f.msg.contains("Ordering::Relaxed"))
        .count();
    assert_eq!(relaxed, 2, "both Relaxed uses flagged: {findings:?}");
    for needle in ["Instant::now", "SystemTime", "thread::spawn", "thread_rng"] {
        assert!(
            findings.iter().any(|f| f.msg.contains(needle)),
            "missing `{needle}` finding in: {findings:?}"
        );
    }
}

#[test]
fn hygiene_allowlist_and_scope() {
    let scan = fixture("hygiene_bad.rs");
    // Allowlisted file: Relaxed is fine; engine bans don't apply outside
    // the engine scope.
    let mut findings: Vec<Finding> = Vec::new();
    hygiene::check(
        "crates/bench/src/fixture.rs",
        &scan,
        &["crates/bench/src/fixture.rs".to_owned()],
        &mut findings,
    );
    assert!(findings.is_empty(), "got: {findings:?}");
}

#[test]
fn atomic_write_fires_on_bad_fixture_and_respects_waiver() {
    let scan = fixture("atomic_write_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    atomic_write::check(AS_IF, &scan, &mut findings);
    // The `use` line (File::create is absent there, but OpenOptions is
    // imported), plus the three raw-write sites; the waived `fs::write`
    // and the string mention stay silent.
    for needle in ["fs::write", "File::create", "OpenOptions"] {
        assert!(
            findings.iter().any(|f| f.msg.contains(needle)),
            "missing `{needle}` finding in: {findings:?}"
        );
    }
    let waived_line = scan
        .lines
        .iter()
        .position(|l| l.contains("debug.txt"))
        .unwrap()
        + 1;
    assert!(
        findings.iter().all(|f| f.line != waived_line),
        "waived write tripped: {findings:?}"
    );
}

#[test]
fn atomic_write_scoped_outside_persist_and_bench() {
    let scan = fixture("atomic_write_bad.rs");
    for out_of_scope in ["crates/persist/src/lib.rs", "crates/bench/src/fixture.rs"] {
        let mut findings: Vec<Finding> = Vec::new();
        atomic_write::check(out_of_scope, &scan, &mut findings);
        assert!(findings.is_empty(), "{out_of_scope} tripped: {findings:?}");
    }
}

#[test]
fn serving_no_panic_fires_on_bad_fixture_and_respects_waiver() {
    let scan = fixture("serving_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    serving::check("crates/serving/src/fixture.rs", &scan, &mut findings);
    // Exactly the bare `unwrap()` and `expect()`; the combinators
    // (`unwrap_or_default`, `unwrap_or_else`, `unwrap_or`) and the
    // waived occurrence stay silent.
    assert_eq!(findings.len(), 2, "got: {findings:?}");
    assert!(findings.iter().any(|f| f.msg.contains("`unwrap`")));
    assert!(findings.iter().any(|f| f.msg.contains("`expect`")));
}

#[test]
fn serving_no_panic_scoped_to_serving_library_code() {
    let scan = fixture("serving_bad.rs");
    // Out of scope: engine crates (other rules own those), serving's
    // own integration tests, and benches.
    for out_of_scope in [
        "crates/core/src/fixture.rs",
        "tests/serving_corpus.rs",
        "crates/bench/src/serving_suite.rs",
    ] {
        let mut findings: Vec<Finding> = Vec::new();
        serving::check(out_of_scope, &scan, &mut findings);
        assert!(findings.is_empty(), "{out_of_scope} tripped: {findings:?}");
    }
}

#[test]
fn shard_isolation_fires_on_mirror_access_outside_the_seam() {
    let scan = fixture("shard_isolation_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    shard_isolation::check(AS_IF, &scan, &mut findings);
    // Outside the seam every `.mirror` access fires: the local poke and
    // the cross-shard read; the waived line and the comment-only
    // mention stay silent.
    assert_eq!(findings.len(), 2, "got: {findings:?}");
    assert!(findings
        .iter()
        .all(|f| f.msg.contains("outside the shard seam")));
}

#[test]
fn shard_isolation_inside_the_seam_flags_only_cross_shard_lines() {
    let scan = fixture("shard_isolation_bad.rs");
    let mut findings: Vec<Finding> = Vec::new();
    shard_isolation::check("crates/core/src/shard.rs", &scan, &mut findings);
    // Inside the seam a shard may touch its own mirror; only the
    // unwaived `shards[…].mirror` line is a cross-shard read.
    assert_eq!(findings.len(), 1, "got: {findings:?}");
    assert!(findings[0].msg.contains("cross-shard"));
    let cross_line = scan
        .lines
        .iter()
        .position(|l| l.contains("stolen"))
        .unwrap()
        + 1;
    assert_eq!(findings[0].line, cross_line);
}

#[test]
fn shard_isolation_scoped_to_crates() {
    let scan = fixture("shard_isolation_bad.rs");
    // Tests and xtask code assert on run results, never live mirrors.
    for out_of_scope in ["tests/shard_equivalence.rs", "xtask/src/rules/fixture.rs"] {
        let mut findings: Vec<Finding> = Vec::new();
        shard_isolation::check(out_of_scope, &scan, &mut findings);
        assert!(findings.is_empty(), "{out_of_scope} tripped: {findings:?}");
    }
}

/// Regression pins for the analyze *scope tables* (the gap this PR
/// closes): `crates/congest` is determinism-critical — its Kahn
/// topological order and skeleton construction feed the simulated
/// graph — so both the nondet-iteration and hygiene families must
/// cover its files. A scope regression would silently un-lint them.
#[test]
fn congest_files_are_in_nondet_iteration_scope() {
    let scan = fixture("nondet_iter_bad.rs");
    for path in [
        "crates/congest/src/khan.rs",
        "crates/congest/src/skeleton.rs",
    ] {
        let mut findings: Vec<Finding> = Vec::new();
        nondet_iter::check(path, &scan, &mut findings);
        assert!(
            !findings.is_empty(),
            "{path} fell out of the nondet-iteration scope"
        );
    }
}

#[test]
fn congest_files_are_in_hygiene_scope() {
    let scan = fixture("hygiene_bad.rs");
    for path in [
        "crates/congest/src/khan.rs",
        "crates/congest/src/skeleton.rs",
    ] {
        let mut findings: Vec<Finding> = Vec::new();
        hygiene::check(path, &scan, &[], &mut findings);
        assert!(!findings.is_empty(), "{path} fell out of the hygiene scope");
    }
}

#[test]
fn hygiene_flags_stale_allowlist_entries() {
    let clean = lexer::scan("fn f() {}\n");
    let scans = vec![("crates/core/src/clean.rs".to_owned(), clean)];
    let mut findings: Vec<Finding> = Vec::new();
    hygiene::check_allowlist(
        &[
            "crates/core/src/clean.rs".to_owned(),
            "crates/core/src/gone.rs".to_owned(),
        ],
        &scans,
        &mut findings,
    );
    assert_eq!(findings.len(), 2, "got: {findings:?}");
}
