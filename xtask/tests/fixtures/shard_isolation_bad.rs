//! Bad fixture for the shard-isolation rule: raw mirror pokes both
//! inside and outside the seam file, one waived seam line, and a
//! comment-only mention that must stay silent.

struct Shard {
    mirror: Vec<f64>,
}

fn poke(shards: &mut [Shard], own: &mut Shard, v: usize) -> f64 {
    // Must fire outside the seam (any `.mirror`); inside the seam this
    // local access is legal.
    own.mirror[v] = 0.0;
    // Must fire everywhere: indexing the shard table and dereferencing
    // a mirror on one line is a cross-shard read.
    let stolen = shards[1].mirror[v];
    // Must stay silent: waived seam line.
    // analyze: shard-ok(fixture demonstrates the waiver form)
    let sanctioned = shards[0].mirror[v];
    // A mirror mentioned in comments only must stay silent.
    stolen + sanctioned
}
