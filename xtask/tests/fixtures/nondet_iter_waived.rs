// Fixture: identical constructs, every line carrying (or sitting under)
// an `// analyze: ordered-ok(...)` waiver — must produce zero findings.
use std::collections::HashMap; // analyze: ordered-ok(lookup-only import)

fn lookups_only(xs: &[u32]) -> u32 {
    // analyze: ordered-ok(point lookups only; never iterated)
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.get(&0).copied().unwrap_or(0)
}
