//! Known-bad fixture for the atomic-write rule: every raw file-creation
//! entry point, plus one waived use that must stay silent.

use std::fs::{self, File, OpenOptions};

fn tear_prone_dump(bytes: &[u8]) -> std::io::Result<()> {
    fs::write("state.bin", bytes)?; // finding: fs::write
    let _f = File::create("state2.bin")?; // finding: File::create
    let _g = OpenOptions::new().write(true).open("state3.bin")?; // finding: OpenOptions
    // A string mention must not trip the lexer-masked scan:
    let _doc = "call fs::write here";
    // analyze: atomic-write-ok(debug dump, never read back)
    fs::write("debug.txt", bytes)?;
    Ok(())
}
