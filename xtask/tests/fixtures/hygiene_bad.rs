// Fixture: every hygiene ban in one file — each line must trip the rule
// when treated as engine-scope code outside the Relaxed allowlist.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Instant, SystemTime};

fn nondeterministic_soup(counter: &AtomicUsize) -> u64 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    let handle = std::thread::spawn(|| 7u64);
    let mut rng = rand::thread_rng();
    let claimed = counter.fetch_add(1, Ordering::Relaxed);
    let waived = counter.fetch_add(1, Ordering::Relaxed); // analyze: hygiene-ok(but Relaxed has no waiver)
    t0.elapsed().as_nanos() as u64 + handle.join().unwrap() + claimed as u64 + waived as u64
}
