// Fixture: unsafe without SAFETY coverage — each site must trip the
// unsafe-safety rule.

struct Wrapper(*mut u8);

unsafe impl Sync for Wrapper {}

/// Reads a byte. No safety contract documented.
pub unsafe fn read_byte(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn caller(p: *const u8) -> u8 {
    unsafe { *p }
}
