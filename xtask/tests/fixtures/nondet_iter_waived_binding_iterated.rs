// Fixture: the *declaration* is waived as lookup-only, but the binding
// is iterated later anyway — the use site must still trip the rule.
use std::collections::HashMap; // analyze: ordered-ok(import)

fn broken_promise(xs: &[u32]) -> Vec<u32> {
    // analyze: ordered-ok(claimed lookup-only)
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, _) in counts.iter() {
        out.push(*k);
    }
    out
}
