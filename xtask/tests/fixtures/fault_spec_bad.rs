// Fixture: plan-spec literals with unregistered names — both must trip
// the fault-registry rule; the waived one must not.

fn plans() -> [&'static str; 3] {
    [
        "no_such_site:panic:0",
        "engine_hop_commit:panik:1:2",
        // analyze: fault-spec-ok(negative parse test)
        "also_not_a_site:panic:0",
    ]
}
