// Fixture: every accepted form of SAFETY coverage — must produce zero
// findings from the unsafe-safety rule.

struct Wrapper(*mut u8);

// SAFETY: the pointer is only dereferenced behind indices proven
// disjoint by the caller; `Sync` hands out no aliasing references.
unsafe impl Sync for Wrapper {}

/// Reads a byte.
///
/// # Safety
/// `p` must be valid for reads.
#[inline]
pub unsafe fn read_byte(p: *const u8) -> u8 {
    // SAFETY: validity is the caller's contract (doc above).
    unsafe { *p }
}

pub fn caller(buf: &[u8]) -> u8 {
    assert!(!buf.is_empty());
    // SAFETY: `buf` is non-empty by the assert, so index 0 is in bounds.
    let first =
        unsafe { *buf.as_ptr() };
    first
}
