// Fixture: every construct here must trip the nondet-iteration rule
// when treated as a determinism-critical file.
use std::collections::HashMap;
use std::collections::HashSet as Seen;

fn hash_order_everywhere(xs: &[u32]) -> Vec<u32> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut seen = Seen::new();
    seen.insert(1u32);
    counts.keys().copied().collect()
}
