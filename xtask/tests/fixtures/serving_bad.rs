//! Bad fixture for the serving-no-panic rule: bare `unwrap()` /
//! `expect()` in serving-layer code, one waived occurrence, and the
//! legal `unwrap_or_*` combinators that must stay silent.

fn ladder(values: &[Option<f64>]) -> f64 {
    // Must fire: bare unwrap.
    let first = values.first().unwrap();
    // Must fire: bare expect.
    let head = first.expect("validated upstream");
    // Must stay silent: sanctioned combinators (word boundaries).
    let fallback = values.get(1).copied().flatten().unwrap_or_default();
    let other = values.get(2).copied().flatten().unwrap_or_else(|| 0.0);
    // Must stay silent: waived occurrence.
    // analyze: serve-ok(fixture demonstrates the waiver form)
    let waived = values.last().unwrap();
    head + fallback + other + waived.unwrap_or(0.0)
}
