//! # metric-tree-embedding
//!
//! A parallel implementation of **metric tree embeddings** (FRT-style, with
//! expected stretch `O(log n)`) computed from sparse weighted graphs via an
//! **algebraic view on Moore-Bellman-Ford**, reproducing
//!
//! > Stephan Friedrichs, Christoph Lenzen.
//! > *Parallel Metric Tree Embedding based on an Algebraic View on
//! > Moore-Bellman-Ford.* SPAA 2016 (arXiv:1509.09047).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`algebra`] — semirings, semimodules, congruences/filters (paper §2, App. A),
//! * [`graph`] — graph substrate, generators, reference algorithms,
//!   Baswana–Sen spanners, hop sets,
//! * [`core`] — the MBF-like framework (§2–3), the simulated graph `H` (§4),
//!   the MBF oracle (§5), approximate metrics (§6) and FRT sampling (§7),
//! * [`congest`] — Congest-model simulator and distributed LE-list
//!   algorithms (§8),
//! * [`apps`] — k-median (§9) and buy-at-bulk network design (§10).
//!
//! ## Quickstart
//!
//! ```
//! use metric_tree_embedding::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A sparse random graph with polynomially bounded weights.
//! let g = gnm_graph(200, 600, 1.0..100.0, &mut rng);
//! // Sample one tree from the FRT distribution via the H-oracle pipeline.
//! let embedding = FrtEmbedding::sample(&g, &FrtConfig::default(), &mut rng);
//! let t = embedding.tree();
//! // Tree distances dominate graph distances for every node pair.
//! let du = t.leaf_distance(3, 77);
//! assert!(du >= sssp(&g, 3).dist(77).value());
//! ```

pub use mte_algebra as algebra;
pub use mte_apps as apps;
pub use mte_congest as congest;
pub use mte_core as core;
pub use mte_graph as graph;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use mte_algebra::{Dist, DistanceMap, MinPlus, NodeId, Semimodule, Semiring};
    pub use mte_apps::buyatbulk::{BuyAtBulkInstance, BuyAtBulkSolution, CableType, Demand};
    pub use mte_apps::kmedian::{KMedianConfig, KMedianSolution};
    pub use mte_core::frt::{FrtConfig, FrtEmbedding, FrtTree, LeList};
    pub use mte_core::simgraph::{LevelAssignment, SimulatedGraph};
    pub use mte_graph::algorithms::{apsp, sssp, ShortestPaths};
    pub use mte_graph::generators::{
        caterpillar_graph, cycle_graph, expander_graph, gnm_graph, grid_graph, highway_graph,
        path_graph, random_geometric_graph, star_graph, tree_graph,
    };
    pub use mte_graph::{Graph, Hopset, HopsetConfig};
}
