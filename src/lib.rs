//! # metric-tree-embedding
//!
//! A parallel implementation of **metric tree embeddings** (FRT-style, with
//! expected stretch `O(log n)`) computed from sparse weighted graphs via an
//! **algebraic view on Moore-Bellman-Ford**, reproducing
//!
//! > Stephan Friedrichs, Christoph Lenzen.
//! > *Parallel Metric Tree Embedding based on an Algebraic View on
//! > Moore-Bellman-Ford.* SPAA 2016 (arXiv:1509.09047).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`algebra`] — semirings, semimodules, congruences/filters (paper §2, App. A),
//! * [`graph`] — graph substrate, generators, reference algorithms,
//!   Baswana–Sen spanners, hop sets,
//! * [`core`] — the MBF-like framework (§2–3), the simulated graph `H` (§4),
//!   the MBF oracle (§5), approximate metrics (§6) and FRT sampling (§7),
//! * [`congest`] — Congest-model simulator and distributed LE-list
//!   algorithms (§8),
//! * [`apps`] — k-median (§9) and buy-at-bulk network design (§10),
//! * [`persist`] — crash-safe snapshot store: checksummed binary
//!   snapshots of engine/oracle state, LE lists and FRT trees, with
//!   atomic writes and typed load errors; pairs with
//!   [`core::checkpoint`] (resumable runs) and the recovery supervisor
//!   in [`core::error`],
//! * [`serving`] — resilient query-serving layer: a deadline-governed,
//!   load-shedding distance oracle ([`serving::Oracle`]) over frozen,
//!   zero-trust-validated artifacts ([`serving::OracleArtifact`]), with
//!   a recorded degradation ladder (cache → tree LCA → LE-list
//!   intersection → truncated upper bound), batched dense-block sweeps
//!   with cooperative cancellation, and typed shedding under overload.
//!
//! ## Engine architecture
//!
//! Every algorithm in the workspace — the Section 3 catalog, LE lists,
//! the `H`-oracle, approximate metrics, FRT sampling, and both
//! applications — bottoms out in the same iteration core,
//! [`core::engine`]. One hop computes `x ← r^V A x`: propagate states
//! over edges (`⊙`), aggregate (`⊕`), filter (`r`). The engine schedules
//! hops under an [`core::engine::EngineStrategy`]:
//!
//! * **Dense** — re-relax every vertex's full neighborhood, the paper's
//!   literal iteration and the differential-testing reference;
//! * **Frontier** — recompute only vertices whose closed neighborhood
//!   contains a state that changed in the previous hop. The skip is
//!   *bit-identical*, not approximate: an MBF-like hop is a deterministic
//!   function of the closed in-neighborhood, so unchanged inputs imply an
//!   unchanged output. Work per hop shrinks from `Θ(m)` to the size of
//!   the active wave, complementing the paper's `|x|`-bounded cost per
//!   relaxation (Lemmas 7.6–7.8) with an `|active|`-bounded number of
//!   relaxations;
//! * **Hybrid** (default) — frontier-driven with a Ligra-style fallback
//!   to the dense sweep while the frontier covers most of the graph.
//!
//! Hops execute **thread-parallel**: the vendored rayon backend runs a
//! real worker pool (`MTE_THREADS`, default = available parallelism)
//! with a deterministic reduction tree, so every result — states, work
//! counters, sampled trees — is bit-identical for every thread count;
//! only wall time changes. Under the engine sit zero-allocation merge
//! kernels ([`algebra::merge`]): sparse state aggregation ping-pongs
//! between the accumulator and a per-worker scratch buffer, and the
//! engine double-buffers whole state vectors, so a steady-state hop
//! performs no per-vertex allocation.
//!
//! Distance-map workloads (SSSP/k-SSP/APSP, LE lists, the oracle
//! pipeline) run on the **epoch-arena backend** ([`core::arena`]): the
//! whole state vector lives in one span-backed pool
//! ([`algebra::store::EpochStore`]) with copy-on-write commits — an
//! unchanged vertex keeps its span at zero cost, changed states are
//! appended through per-chunk regions with a deterministic layout, and
//! garbage amortizes away in high-water compactions (the per-entry
//! rank column is opt-in per algorithm; only the LE lists carry it).
//! APSP-class workloads whose states converge to full rows
//! (`SourceDetection::apsp`, all-pairs connectivity, widest paths) run
//! on the **dense-block backend** ([`core::dense`]): the state vector
//! as one flat row-major semiring matrix ([`algebra::dense`]) relaxed
//! by contiguous cache-tiled row kernels, with a Ligra-style
//! representation-switching hybrid (sparse maps until rows saturate,
//! matrix-mode hops after). The owned `Vec` engine remains the
//! semantics reference; the differential suite asserts all backends
//! bit-identical under `MTE_THREADS ∈ {1, 4}`.
//! `cargo run --release -p mte-bench --bin exp_baseline` runs
//! the engine suite (dense vs frontier vs hybrid on the standard
//! catalog) and the thread-scaling sweep, writing the
//! `BENCH_engine.json` / `BENCH_parallel.json` trajectory artifacts;
//! `cargo bench -p mte-bench --bench bench_engine` times the same
//! workloads under criterion.
//!
//! ## Quickstart
//!
//! ```
//! use metric_tree_embedding::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A sparse random graph with polynomially bounded weights.
//! let g = gnm_graph(200, 600, 1.0..100.0, &mut rng);
//! // Sample one tree from the FRT distribution via the H-oracle pipeline.
//! let embedding = FrtEmbedding::sample(&g, &FrtConfig::default(), &mut rng);
//! let t = embedding.tree();
//! // Tree distances dominate graph distances for every node pair.
//! let du = t.leaf_distance(3, 77);
//! assert!(du >= sssp(&g, 3).dist(77).value());
//! ```

pub use mte_algebra as algebra;
pub use mte_apps as apps;
pub use mte_congest as congest;
pub use mte_core as core;
pub use mte_faults as faults;
pub use mte_graph as graph;
pub use mte_persist as persist;
pub use mte_serving as serving;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use mte_algebra::{Dist, DistanceMap, MinPlus, NodeId, Semimodule, Semiring};
    pub use mte_apps::buyatbulk::{BuyAtBulkInstance, BuyAtBulkSolution, CableType, Demand};
    pub use mte_apps::kmedian::{KMedianConfig, KMedianSolution};
    pub use mte_core::frt::{FrtConfig, FrtEmbedding, FrtTree, LeList};
    pub use mte_core::simgraph::{LevelAssignment, SimulatedGraph};
    pub use mte_graph::algorithms::{apsp, sssp, ShortestPaths};
    pub use mte_graph::generators::{
        caterpillar_graph, cycle_graph, expander_graph, gnm_graph, grid_graph, highway_graph,
        path_graph, random_geometric_graph, star_graph, tree_graph,
    };
    pub use mte_graph::{Graph, Hopset, HopsetConfig};
    pub use mte_serving::{Oracle, OracleArtifact, ServeConfig, ServeError};
}
