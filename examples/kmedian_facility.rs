//! Facility placement on a road-network-like graph via the FRT-based
//! k-median solver (paper Section 9): place k service depots in a city so
//! the total travel distance of all intersections to their nearest depot
//! is minimized.
//!
//! ```text
//! cargo run --release --example kmedian_facility
//! ```

use metric_tree_embedding::apps::kmedian::{
    kmedian_local_search, kmedian_random_baseline, solve_kmedian,
};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);

    // A "city": random geometric graph in the unit square, edge weights =
    // Euclidean street lengths in meters.
    let g = random_geometric_graph(300, 0.09, 1000.0, &mut rng);
    println!(
        "road network: n = {} intersections, m = {} streets",
        g.n(),
        g.m()
    );

    for k in [2, 4, 8] {
        let ours = solve_kmedian(&g, &KMedianConfig::new(k), &mut rng);
        let random = kmedian_random_baseline(&g, k, &mut rng);
        let local = kmedian_local_search(&g, k, 30, &mut rng);
        println!(
            "k = {k}: FRT+DP cost {:>10.0}  | local-search {:>10.0} | random {:>10.0}",
            ours.cost, local.cost, random.cost
        );
        println!("        depots at {:?}", ours.centers);
        assert!(ours.centers.len() <= k);
        // Sanity: the tree-based solution should land well below random.
        assert!(ours.cost <= random.cost * 1.05);
    }
}
