//! A tour of the MBF-like algorithm catalog (paper Section 3): one graph,
//! six problems, one framework. Each algorithm is "pick a semiring, a
//! semimodule, a filter, an initialization" — the engine does the rest.
//!
//! ```text
//! cargo run --release --example algebra_tour
//! ```

use metric_tree_embedding::core::catalog::{
    Connectivity, ForestFire, KShortestDistances, SourceDetection, WidestPaths,
};
use metric_tree_embedding::core::engine::{run, run_to_fixpoint};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = gnm_graph(24, 60, 1.0..9.0, &mut rng);
    println!("graph: n = {}, m = {}\n", g.n(), g.m());

    // 1. SSSP over S_{min,+} (Example 3.3).
    let sssp_alg = SourceDetection::sssp(g.n(), 0);
    let res = run_to_fixpoint(&sssp_alg, &g, g.n() + 1);
    println!(
        "SSSP from 0 (min-plus semiring): dist(0, 23) = {}",
        res.states[23].get(0)
    );

    // 2. k-SSP: the 3 closest nodes to node 5 (Example 3.4).
    let kssp = SourceDetection::k_ssp(g.n(), 3);
    let res = run_to_fixpoint(&kssp, &g, g.n() + 1);
    println!(
        "3 closest sources seen by node 5: {:?}",
        res.states[5].entries()
    );

    // 3. Forest fires within radius 6 of nodes {2, 17} (Example 3.7).
    let fire = ForestFire::new(g.n(), &[2, 17], Dist::new(6.0));
    let res = run_to_fixpoint(&fire, &g, g.n() + 1);
    let alerted = res.states.iter().filter(|x| x.0.is_finite()).count();
    println!(
        "forest fire: {alerted}/{} nodes within distance 6 of a fire",
        g.n()
    );

    // 4. Widest paths over S_{max,min} (Example 3.13): trust propagation.
    let widest = WidestPaths::sswp(g.n(), 0);
    let res = run_to_fixpoint(&widest, &g, g.n() + 1);
    println!(
        "widest path 0 → 23 (max-min semiring): bottleneck {:?}",
        res.states[23].get(0)
    );

    // 5. 2-shortest distances to node 0 over the all-paths semiring
    //    P_{min,+} (Example 3.23) — with the actual paths.
    let ksdp = KShortestDistances::new(0, 2);
    let res = run_to_fixpoint(&ksdp, &g, 2 * g.n());
    let entries = res.states[7].entries();
    println!("2 shortest 7 → 0 paths (all-paths semiring):");
    for (path, w) in entries {
        println!("   weight {:>6.2} via {:?}", w.value(), path.nodes());
    }

    // 6. 2-hop connectivity over the Boolean semiring (Example 3.25).
    let conn = Connectivity::all_pairs(g.n());
    let res = run(&conn, &g, 2);
    println!(
        "Boolean semiring: node 0 reaches {} nodes within 2 hops",
        res.states[0].len()
    );
}
