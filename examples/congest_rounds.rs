//! Distributed tree embedding round complexity (paper Section 8):
//! compares the message-level simulated Congest cost of Khan et al. [26]
//! (`O(SPD(G) log n)` rounds) against the skeleton-based algorithm
//! (`≈ √n + D(G)` rounds) across graphs with very different SPD/diameter
//! profiles.
//!
//! ```text
//! cargo run --release --example congest_rounds
//! ```

use metric_tree_embedding::congest::khan::khan_le_lists;
use metric_tree_embedding::congest::skeleton::{skeleton_frt, SkeletonConfig};
use metric_tree_embedding::core::frt::le_list::Ranks;
use metric_tree_embedding::graph::algorithms::{hop_diameter, shortest_path_diameter};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let cases: Vec<(&str, Graph)> = vec![
        (
            "gnm n=800 m=2400",
            gnm_graph(800, 2400, 1.0..10.0, &mut rng),
        ),
        ("grid 25×32", grid_graph(25, 32, 1.0..5.0, &mut rng)),
        ("highway n=2500", highway_graph(2500, 1e5)),
        (
            "caterpillar 2000+500",
            caterpillar_graph(2000, 500, 1.0, 1.0..3.0, &mut rng),
        ),
    ];

    println!(
        "{:<22} {:>5} {:>6} {:>6} {:>12} {:>14}",
        "graph", "SPD", "D(G)", "√n", "khan rounds", "skeleton rounds"
    );
    for (name, g) in cases {
        let spd = shortest_path_diameter(&g);
        let d = hop_diameter(&g);
        let sqrt_n = (g.n() as f64).sqrt();

        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (_, khan_cost) = khan_le_lists(&g, &ranks);
        // ℓ = n/10: at simulation scales the paper's asymptotic ℓ = √n
        // constant does not pay off yet (see EXPERIMENTS.md E11/E12).
        let config = SkeletonConfig {
            ell: Some((g.n() / 10).max(16)),
            oversample: 1.0,
            spanner_k: 3,
        };
        let skel = skeleton_frt(&g, &config, &mut rng);
        println!(
            "{:<22} {:>5} {:>6} {:>6.0} {:>12} {:>14}",
            name, spd, d, sqrt_n, khan_cost.rounds, skel.cost.rounds
        );
    }
    println!();
    println!("Khan et al. tracks SPD(G); the skeleton algorithm pays a √n-ish toll");
    println!("and wins when SPD ≫ √n + D (highway row). Where D ≈ SPD (grid,");
    println!("caterpillar) no detour can win — Theorem 8.1 takes the min of both.");
}
