//! Quickstart: sample a metric tree embedding of a sparse random graph
//! and inspect its quality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2016);

    // A sparse weighted graph: 500 nodes, ~1500 edges, weight ratio 100.
    let g = gnm_graph(500, 1500, 1.0..100.0, &mut rng);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // Sample one tree from the FRT distribution via the full pipeline:
    // hop set → simulated graph H → oracle LE lists → tree (Cor. 7.10).
    let config = FrtConfig {
        hopset: metric_tree_embedding::graph::HopsetConfig::for_scale(g.n(), g.m()),
        ..FrtConfig::default()
    };
    let embedding = FrtEmbedding::sample(&g, &config, &mut rng);
    let tree = embedding.tree();
    println!(
        "tree: {} nodes over {} levels, β = {:.3}, {} H-iterations, work ≈ {} entries",
        tree.len(),
        tree.num_levels(),
        embedding.beta(),
        embedding.h_iterations(),
        embedding.work().entries_processed,
    );

    // LE lists are short (Lemma 7.6): report the maximum.
    let max_le = embedding.le_lists().iter().map(|l| l.len()).max().unwrap();
    println!(
        "longest LE list: {max_le} entries (ln n ≈ {:.1})",
        (g.n() as f64).ln()
    );

    // Verify dominance and measure the stretch on sampled pairs.
    let mut worst: f64 = 0.0;
    let mut total = 0.0;
    let mut count = 0;
    for u in (0..g.n() as NodeId).step_by(7) {
        let sp = sssp(&g, u);
        for v in (u + 1..g.n() as NodeId).step_by(11) {
            let dg = sp.dist(v).value();
            let dt = embedding.distance(u, v);
            assert!(dt >= dg - 1e-9, "tree distances must dominate");
            let stretch = dt / dg;
            worst = worst.max(stretch);
            total += stretch;
            count += 1;
        }
    }
    println!(
        "stretch over {count} sampled pairs: avg {:.2}, max {:.2} (log2 n = {:.1})",
        total / count as f64,
        worst,
        (g.n() as f64).log2()
    );
}
