//! Capacity planning for an ISP backbone via the FRT-based buy-at-bulk
//! solver (paper Section 10): lease fiber of three discrete capacities to
//! carry traffic between city pairs, exploiting economies of scale by
//! aggregating flows on shared trunks.
//!
//! ```text
//! cargo run --release --example buy_at_bulk_isp
//! ```

use metric_tree_embedding::apps::buyatbulk::{
    direct_routing_cost, is_feasible, lower_bound, solve_buy_at_bulk, BuyAtBulkInstance,
    BuyAtBulkSolution, CableType, Demand,
};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // Backbone topology: a grid-ish mesh of 100 PoPs with kilometre
    // weights.
    let g = grid_graph(10, 10, 10.0..80.0, &mut rng);
    println!("backbone: n = {} PoPs, m = {} links", g.n(), g.m());

    // Fiber products: unit leases, 10G bundles, 100G wavelengths.
    let cables = vec![
        CableType {
            capacity: 1.0,
            cost: 1.0,
        },
        CableType {
            capacity: 10.0,
            cost: 4.0,
        },
        CableType {
            capacity: 100.0,
            cost: 14.0,
        },
    ];

    // Traffic matrix: 40 west↔east city pairs with skewed volumes —
    // transit traffic that shares the middle of the mesh, the regime
    // where bulk aggregation pays.
    let demands: Vec<Demand> = (0..40)
        .map(|_| {
            let s = rng.gen_range(0..10) as NodeId; // west column region
            let t = (g.n() - 1 - rng.gen_range(0..10)) as NodeId; // east
            Demand {
                s,
                t,
                amount: (1.5f64).powi(rng.gen_range(0..8)),
            }
        })
        .collect();
    let total_traffic: f64 = demands.iter().map(|d| d.amount).sum();
    println!(
        "demands: {} pairs, {total_traffic:.0} Gbit/s total",
        demands.len()
    );

    let instance = BuyAtBulkInstance { cables, demands };

    // Take the best of a handful of sampled trees (standard
    // amplification of the in-expectation guarantee).
    let mut best = None;
    for _ in 0..5 {
        let sol = solve_buy_at_bulk(&g, &instance, &mut rng);
        assert!(is_feasible(&instance, &sol));
        let improved = best
            .as_ref()
            .is_none_or(|b: &BuyAtBulkSolution| sol.total_cost < b.total_cost);
        if improved {
            best = Some(sol);
        }
    }
    let best = best.unwrap();

    let direct = direct_routing_cost(&g, &instance);
    let lb = lower_bound(&g, &instance);
    println!(
        "tree-aggregated plan: cost {:.0} on {} links",
        best.total_cost,
        best.edges.len()
    );
    println!("per-demand shortest-path plan (no sharing): cost {direct:.0}");
    println!("volume lower bound: {lb:.0}");
    println!(
        "→ ratios: ours/LB = {:.2},  direct/LB = {:.2}",
        best.total_cost / lb,
        direct / lb
    );

    // The aggregated plan exploits bulk discounts the naive plan cannot,
    // and stays within the expected O(log n) factor of the lower bound.
    assert!(best.total_cost < direct);
    assert!(best.total_cost <= 3.0 * (g.n() as f64).log2() * lb);
}
