//! Deterministic fault injection for the MBF pipeline.
//!
//! # Design
//!
//! Production layers (query serving, external ingestion, dynamic edits)
//! sit on top of a compute core whose failure behavior must be *proved*,
//! not assumed: a fault anywhere in the pipeline must surface as a typed
//! error or leave the output bit-identical to a clean run — never a
//! silently wrong answer. This crate provides the instrumentation side
//! of that proof:
//!
//! * **Named injection sites** ([`FaultSite`]) — fixed points in the
//!   pipeline (engine hop commit, arena span read, dense row kernel,
//!   oracle level loop, worker-pool chunk, `.gr` parser, snapshot
//!   encode/decode) that consult the registry on every pass.
//! * **Fault plans** ([`FaultPlan`]) — a deterministic list of
//!   injections, each "at the `nth` arrival at `site`, fire `kind`",
//!   built in code or parsed from the `MTE_FAULT_PLAN` environment
//!   variable.
//! * **A fired-fault log** — every fault that actually fired is
//!   recorded with a monotonic serial. The typed run API
//!   (`mte_core::error`) snapshots the serial before a run and treats
//!   any *unhandled* fault fired during the run as grounds for a typed
//!   error, even if the corruption it injected would otherwise go
//!   unnoticed (a NaN poisoned into a min-plus state can be "healed"
//!   to a plausible but *wrong* finite value by later merges — the log
//!   is the ground truth, state scans are defense in depth).
//!
//! Sites that **handle** a fault gracefully (e.g. the dense-block
//! allocator treating [`FaultKind::AllocFail`] as budget exhaustion and
//! degrading to the sparse path) record it via [`check_handled`]; the
//! audit in [`first_unhandled_since`] skips those, so a gracefully
//! degraded run still reports success.
//!
//! # Cost when disarmed
//!
//! [`check_for`] is a single relaxed atomic load on the hot path once
//! the registry is initialized (first call reads `MTE_FAULT_PLAN`).
//! Sites can therefore be compiled in unconditionally.
//!
//! # Determinism
//!
//! Arrival counters are global, so under a multi-threaded pool the
//! *which arrival wins* race is nondeterministic — but the contract
//! verified by the differential harness quantifies over that: for every
//! interleaving, the run either errors or matches the clean output.
//! With `MTE_THREADS=1` arrivals are fully deterministic.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Environment variable holding a fault-plan spec (see
/// [`FaultPlan::parse`]); read once, on the first [`check_for`] call.
pub const FAULT_PLAN_ENV: &str = "MTE_FAULT_PLAN";

/// A named injection point in the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `MbfEngine`/`ArenaEngine`/`DenseEngine::step`, end of the commit
    /// phase (once per hop).
    EngineHopCommit,
    /// `EpochStore::get`: a borrowed span view handed to a recompute.
    ArenaSpanRead,
    /// The dense row kernels (`relax_rows_into`/`relax_rows_tracked`)
    /// and the dense-block allocator (`DenseBlock::try_new`).
    DenseRowKernel,
    /// The oracle's per-level task, once per level per simulated
    /// iteration.
    OracleLevelLoop,
    /// The worker pool, at the start of every claimed chunk body.
    WorkerChunk,
    /// `read_gr`, before any input is consumed.
    GrParser,
    /// `mte_persist` snapshot encoding, after the sections are
    /// serialized but before the bytes leave the encoder — an injected
    /// `io` fault here corrupts the encoded image (torn write, bit
    /// flip, or zeroed magic, chosen deterministically from the image
    /// length).
    SnapshotWrite,
    /// `mte_persist` snapshot decoding, before any byte is parsed — an
    /// injected `io` fault here surfaces as a typed
    /// `SnapshotError::Io`, absorbed like the parser's.
    SnapshotRead,
    /// `mte_serving` oracle-artifact load, before any section is
    /// decoded — an injected `io` fault surfaces as a typed
    /// `ServeError::Artifact`, absorbed like `snapshot_read`'s.
    ServeArtifactRead,
    /// `mte_serving` distance-cache read, on every cache probe — an
    /// injected `poison_nan` fault corrupts the probed entry, which the
    /// poisoned-entry scan must detect and absorb as a cache miss.
    ServeCacheEntry,
    /// `mte_serving` per-query budget checkpoint, charged once per
    /// work-unit batch — an injected panic aborts the query mid-ladder
    /// (absorbed into a typed `ServeError` by the guarded front-end).
    ServeQueryBudget,
    /// `core::shard` per-shard hop task, after the shard's changed
    /// entries are staged but before they are exchanged — a `panic`
    /// kills the shard mid-hop, a `poison_nan` corrupts its first
    /// staged entry; the shard supervisor re-executes the hop from its
    /// hop-entry state either way.
    ShardHopExec,
    /// `core::shard` exchange build, once per outgoing cross-shard
    /// message — the message-level kinds (`drop_msg`, `dup_msg`,
    /// `reorder_msg`, `corrupt_msg`) tamper with the message in
    /// flight; sequence/digest validation on the receive side turns
    /// every tampering into a typed `RunError::ShardExchangeCorrupt`.
    ShardExchangeSend,
    /// `core::shard` exchange delivery, once per incoming cross-shard
    /// message, before validation — same message-level kinds as
    /// `shard_exchange_send`, modelling loss on the receive path.
    ShardExchangeRecv,
}

/// The **single source of truth** for site spec names: one `(site,
/// name)` row per [`FaultSite`] variant, consumed by [`FaultSite::name`],
/// [`FaultPlan::parse`] and [`FaultSite::ALL`] alike — a call site, a
/// plan spec and the registry can therefore never disagree on a
/// spelling. The `fault-site-registry` rule of `cargo xtask analyze`
/// parses this table and cross-checks every `FaultSite::…` reference and
/// every plan-spec string literal in the workspace against it.
pub const SITE_NAMES: [(FaultSite, &str); 14] = [
    (FaultSite::EngineHopCommit, "engine_hop_commit"),
    (FaultSite::ArenaSpanRead, "arena_span_read"),
    (FaultSite::DenseRowKernel, "dense_row_kernel"),
    (FaultSite::OracleLevelLoop, "oracle_level_loop"),
    (FaultSite::WorkerChunk, "worker_chunk"),
    (FaultSite::GrParser, "gr_parser"),
    (FaultSite::SnapshotWrite, "snapshot_write"),
    (FaultSite::SnapshotRead, "snapshot_read"),
    (FaultSite::ServeArtifactRead, "serve_artifact_read"),
    (FaultSite::ServeCacheEntry, "serve_cache_entry"),
    (FaultSite::ServeQueryBudget, "serve_query_budget"),
    (FaultSite::ShardHopExec, "shard_hop_exec"),
    (FaultSite::ShardExchangeSend, "shard_exchange_send"),
    (FaultSite::ShardExchangeRecv, "shard_exchange_recv"),
];

/// The [`SITE_NAMES`] counterpart for [`FaultKind`] spec names.
pub const KIND_NAMES: [(FaultKind, &str); 9] = [
    (FaultKind::Panic, "panic"),
    (FaultKind::PoisonNan, "poison_nan"),
    (FaultKind::TruncateSpan, "truncate_span"),
    (FaultKind::AllocFail, "alloc_fail"),
    (FaultKind::Io, "io"),
    (FaultKind::DropMsg, "drop_msg"),
    (FaultKind::DupMsg, "dup_msg"),
    (FaultKind::ReorderMsg, "reorder_msg"),
    (FaultKind::CorruptMsg, "corrupt_msg"),
];

/// Maps `site` to its row in the name table.
const fn site_row(site: FaultSite, i: usize) -> usize {
    // Const-evaluated linear scan; `SITE_NAMES` is exhaustive (pinned by
    // the `name_tables_are_exhaustive` test), so the recursion always
    // terminates before running off the table.
    if (SITE_NAMES[i].0 as u32) == (site as u32) {
        i
    } else {
        site_row(site, i + 1)
    }
}

impl FaultSite {
    /// Every site, for exhaustive harness sweeps (derived from
    /// [`SITE_NAMES`]).
    pub const ALL: [FaultSite; 14] = [
        SITE_NAMES[0].0,
        SITE_NAMES[1].0,
        SITE_NAMES[2].0,
        SITE_NAMES[3].0,
        SITE_NAMES[4].0,
        SITE_NAMES[5].0,
        SITE_NAMES[6].0,
        SITE_NAMES[7].0,
        SITE_NAMES[8].0,
        SITE_NAMES[9].0,
        SITE_NAMES[10].0,
        SITE_NAMES[11].0,
        SITE_NAMES[12].0,
        SITE_NAMES[13].0,
    ];

    /// The spec name used by [`FaultPlan::parse`], read from
    /// [`SITE_NAMES`].
    pub const fn name(self) -> &'static str {
        SITE_NAMES[site_row(self, 0)].1
    }

    fn parse(s: &str) -> Option<FaultSite> {
        SITE_NAMES
            .into_iter()
            .find_map(|(site, name)| (name == s).then_some(site))
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injection does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `panic_any(InjectedPanic { site })` at the site.
    Panic,
    /// Corrupt one state entry with a NaN/poisoned value
    /// (`Semimodule::poison`).
    PoisonNan,
    /// Hand out a span view one entry shorter than the real state.
    TruncateSpan,
    /// Simulated allocation failure (dense-block allocator).
    AllocFail,
    /// Simulated I/O failure (`.gr` parser).
    Io,
    /// Drop a cross-shard exchange message in flight (the receiver
    /// detects the missing per-channel message at the hop barrier).
    DropMsg,
    /// Deliver a cross-shard exchange message twice (the receiver
    /// detects the duplicate per-channel message).
    DupMsg,
    /// Reorder the entries of a cross-shard exchange message (breaks
    /// the canonical ascending-node order the digest is computed over).
    ReorderMsg,
    /// Flip bits in a cross-shard exchange message (entry node id or
    /// digest field, chosen deterministically from the payload shape).
    CorruptMsg,
}

/// Maps `kind` to its row in the name table (cf. [`site_row`]).
const fn kind_row(kind: FaultKind, i: usize) -> usize {
    if (KIND_NAMES[i].0 as u32) == (kind as u32) {
        i
    } else {
        kind_row(kind, i + 1)
    }
}

impl FaultKind {
    /// Every kind, for exhaustive harness sweeps (derived from
    /// [`KIND_NAMES`]).
    pub const ALL: [FaultKind; 9] = [
        KIND_NAMES[0].0,
        KIND_NAMES[1].0,
        KIND_NAMES[2].0,
        KIND_NAMES[3].0,
        KIND_NAMES[4].0,
        KIND_NAMES[5].0,
        KIND_NAMES[6].0,
        KIND_NAMES[7].0,
        KIND_NAMES[8].0,
    ];

    /// The spec name used by [`FaultPlan::parse`], read from
    /// [`KIND_NAMES`].
    pub const fn name(self) -> &'static str {
        KIND_NAMES[kind_row(self, 0)].1
    }

    fn parse(s: &str) -> Option<FaultKind> {
        KIND_NAMES
            .into_iter()
            .find_map(|(kind, name)| (name == s).then_some(kind))
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One planned injection: at the `nth` arrival at `site` (1-based,
/// counting only arrivals whose accept set contains `kind`), fire
/// `kind`; keep firing on later arrivals until `hits` fires happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    pub site: FaultSite,
    pub kind: FaultKind,
    /// 1-based arrival index of the first fire.
    pub nth: u64,
    /// Number of times the injection fires (usually 1).
    pub hits: u64,
}

/// A deterministic list of [`Injection`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub injections: Vec<Injection>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: adds "fire `kind` at the `nth` arrival at `site`,
    /// once".
    pub fn inject(mut self, site: FaultSite, kind: FaultKind, nth: u64) -> FaultPlan {
        self.injections.push(Injection {
            site,
            kind,
            nth: nth.max(1),
            hits: 1,
        });
        self
    }

    /// A plan with exactly one injection.
    pub fn single(site: FaultSite, kind: FaultKind, nth: u64) -> FaultPlan {
        FaultPlan::new().inject(site, kind, nth)
    }

    /// Parses a spec of the form
    /// `site:kind:nth[:hits][;site:kind:nth[:hits]...]`, e.g.
    /// `engine_hop_commit:panic:1` or
    /// `arena_span_read:truncate_span:5;gr_parser:io:1`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let fields: Vec<&str> = part.split(':').collect();
            if fields.len() < 3 || fields.len() > 4 {
                return Err(format!("bad injection {part:?}: want site:kind:nth[:hits]"));
            }
            let site = FaultSite::parse(fields[0])
                .ok_or_else(|| format!("unknown fault site {:?}", fields[0]))?;
            let kind = FaultKind::parse(fields[1])
                .ok_or_else(|| format!("unknown fault kind {:?}", fields[1]))?;
            let nth: u64 = fields[2]
                .parse()
                .map_err(|_| format!("bad arrival index {:?}", fields[2]))?;
            let hits: u64 = match fields.get(3) {
                Some(h) => h.parse().map_err(|_| format!("bad hit count {h:?}"))?,
                None => 1,
            };
            plan.injections.push(Injection {
                site,
                kind,
                nth: nth.max(1),
                hits: hits.max(1),
            });
        }
        Ok(plan)
    }

    /// The plan named by [`FAULT_PLAN_ENV`], if the variable is set and
    /// parses (a malformed spec is reported on stderr and ignored —
    /// fault injection must never corrupt a run *by accident*).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var(FAULT_PLAN_ENV).ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) if !plan.injections.is_empty() => Some(plan),
            Ok(_) => None,
            Err(err) => {
                eprintln!("ignoring malformed {FAULT_PLAN_ENV}: {err}");
                None
            }
        }
    }
}

/// A fault that actually fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FiredFault {
    pub site: FaultSite,
    pub kind: FaultKind,
    /// Monotonic fire serial (1-based, never reset).
    pub serial: u64,
    /// `true` iff the site absorbed the fault gracefully (recorded via
    /// [`check_handled`]); handled faults do not fail the audit.
    pub handled: bool,
}

/// The panic payload of [`trigger_panic`]; the typed run API downcasts
/// caught payloads to this to map an injected panic back to its site.
#[derive(Clone, Copy, Debug)]
pub struct InjectedPanic {
    pub site: FaultSite,
}

struct ArmedInjection {
    site: FaultSite,
    kind: FaultKind,
    nth: u64,
    hits_left: u64,
    arrivals: u64,
}

struct Registry {
    injections: Vec<ArmedInjection>,
    log: Vec<FiredFault>,
    serial: u64,
}

const STATUS_UNINIT: u32 = 0;
const STATUS_DISARMED: u32 = 1;
const STATUS_ARMED: u32 = 2;

/// Fast-path gate: `check_for` is one relaxed load of this while
/// disarmed.
static STATUS: AtomicU32 = AtomicU32::new(STATUS_UNINIT);

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    injections: Vec::new(),
    log: Vec::new(),
    serial: 0,
});

fn registry() -> MutexGuard<'static, Registry> {
    // A panic while holding the lock (injected panics never do — the
    // lock is released before `trigger_panic` — but belt and braces)
    // must not wedge every later run.
    REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs `plan` as the process-global fault plan, replacing any
/// previous plan and clearing the fired log (the serial keeps
/// counting).
pub fn install(plan: FaultPlan) {
    let mut reg = registry();
    reg.injections = plan
        .injections
        .iter()
        .map(|i| ArmedInjection {
            site: i.site,
            kind: i.kind,
            nth: i.nth.max(1),
            hits_left: i.hits.max(1),
            arrivals: 0,
        })
        .collect();
    reg.log.clear();
    let armed = !reg.injections.is_empty();
    STATUS.store(
        if armed { STATUS_ARMED } else { STATUS_DISARMED },
        Ordering::SeqCst,
    );
}

/// Removes the installed plan; subsequent [`check_for`] calls are a
/// single relaxed load.
pub fn clear() {
    let mut reg = registry();
    reg.injections.clear();
    reg.log.clear();
    STATUS.store(STATUS_DISARMED, Ordering::SeqCst);
}

/// `true` iff a non-empty plan is installed.
pub fn is_armed() -> bool {
    STATUS.load(Ordering::Relaxed) == STATUS_ARMED
}

#[cold]
fn init_from_env() {
    match FaultPlan::from_env() {
        Some(plan) => install(plan),
        None => {
            // Racing initializers both read the same environment; the
            // exchange failing just means someone else got there first.
            let _ = STATUS.compare_exchange(
                STATUS_UNINIT,
                STATUS_DISARMED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }
}

/// The site hook: counts this arrival against every installed injection
/// for `site` whose kind is in `accepts`, and returns the kind to
/// inject if one fires. The fire is recorded as **unhandled** — a run
/// during which it happened fails the typed-error audit.
#[inline]
pub fn check_for(site: FaultSite, accepts: &[FaultKind]) -> Option<FaultKind> {
    match STATUS.load(Ordering::Relaxed) {
        STATUS_DISARMED => None,
        STATUS_UNINIT => {
            init_from_env();
            if STATUS.load(Ordering::Relaxed) == STATUS_ARMED {
                check_slow(site, accepts, false)
            } else {
                None
            }
        }
        _ => check_slow(site, accepts, false),
    }
}

/// [`check_for`] for sites that absorb the fault gracefully (simulated
/// allocation failure answered by degradation, simulated I/O failure
/// answered by a typed parse error): the fire is recorded as
/// **handled** and does not fail the audit.
#[inline]
pub fn check_handled(site: FaultSite, accepts: &[FaultKind]) -> Option<FaultKind> {
    match STATUS.load(Ordering::Relaxed) {
        STATUS_DISARMED => None,
        STATUS_UNINIT => {
            init_from_env();
            if STATUS.load(Ordering::Relaxed) == STATUS_ARMED {
                check_slow(site, accepts, true)
            } else {
                None
            }
        }
        _ => check_slow(site, accepts, true),
    }
}

#[cold]
fn check_slow(site: FaultSite, accepts: &[FaultKind], handled: bool) -> Option<FaultKind> {
    let mut reg = registry();
    let Registry {
        injections,
        log,
        serial,
    } = &mut *reg;
    for inj in injections.iter_mut() {
        if inj.site != site || inj.hits_left == 0 || !accepts.contains(&inj.kind) {
            continue;
        }
        inj.arrivals += 1;
        if inj.arrivals >= inj.nth {
            inj.hits_left -= 1;
            *serial += 1;
            let fired = FiredFault {
                site,
                kind: inj.kind,
                serial: *serial,
                handled,
            };
            log.push(fired);
            return Some(inj.kind);
        }
    }
    None
}

/// The current fire serial — snapshot this before a run to audit it
/// afterwards.
pub fn fired_serial() -> u64 {
    registry().serial
}

/// Every fault fired after `serial`, in fire order.
pub fn fired_since(serial: u64) -> Vec<FiredFault> {
    registry()
        .log
        .iter()
        .filter(|f| f.serial > serial)
        .copied()
        .collect()
}

/// The first **unhandled** fault fired after `serial`, if any — the
/// typed run API's audit primitive.
pub fn first_unhandled_since(serial: u64) -> Option<FiredFault> {
    registry()
        .log
        .iter()
        .find(|f| f.serial > serial && !f.handled)
        .copied()
}

/// Panics with an [`InjectedPanic`] payload attributing the unwind to
/// `site`.
pub fn trigger_panic(site: FaultSite) -> ! {
    std::panic::panic_any(InjectedPanic { site })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests serialize on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial_test() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn nth_arrival_fires_once() {
        let _guard = serial_test();
        install(FaultPlan::single(
            FaultSite::EngineHopCommit,
            FaultKind::Panic,
            3,
        ));
        let accepts = [FaultKind::Panic];
        assert_eq!(check_for(FaultSite::EngineHopCommit, &accepts), None);
        // A different site never counts an arrival.
        assert_eq!(check_for(FaultSite::GrParser, &accepts), None);
        assert_eq!(check_for(FaultSite::EngineHopCommit, &accepts), None);
        assert_eq!(
            check_for(FaultSite::EngineHopCommit, &accepts),
            Some(FaultKind::Panic)
        );
        // hits = 1: exhausted.
        assert_eq!(check_for(FaultSite::EngineHopCommit, &accepts), None);
        clear();
    }

    #[test]
    fn accept_set_filters_arrivals() {
        let _guard = serial_test();
        install(FaultPlan::single(
            FaultSite::DenseRowKernel,
            FaultKind::AllocFail,
            1,
        ));
        // A kernel that only accepts Panic/PoisonNan neither fires nor
        // consumes the AllocFail injection's arrival budget.
        assert_eq!(
            check_for(
                FaultSite::DenseRowKernel,
                &[FaultKind::Panic, FaultKind::PoisonNan]
            ),
            None
        );
        assert_eq!(
            check_handled(FaultSite::DenseRowKernel, &[FaultKind::AllocFail]),
            Some(FaultKind::AllocFail)
        );
        clear();
    }

    #[test]
    fn audit_sees_unhandled_but_not_handled_fires() {
        let _guard = serial_test();
        install(
            FaultPlan::new()
                .inject(FaultSite::DenseRowKernel, FaultKind::AllocFail, 1)
                .inject(FaultSite::ArenaSpanRead, FaultKind::TruncateSpan, 1),
        );
        let before = fired_serial();
        assert!(check_handled(FaultSite::DenseRowKernel, &[FaultKind::AllocFail]).is_some());
        assert_eq!(first_unhandled_since(before), None);
        assert!(check_for(FaultSite::ArenaSpanRead, &[FaultKind::TruncateSpan]).is_some());
        let fired = first_unhandled_since(before).expect("unhandled fire recorded");
        assert_eq!(fired.site, FaultSite::ArenaSpanRead);
        assert_eq!(fired.kind, FaultKind::TruncateSpan);
        assert_eq!(fired_since(before).len(), 2);
        clear();
    }

    #[test]
    fn plan_spec_roundtrip() {
        let _guard = serial_test();
        let plan = FaultPlan::parse("engine_hop_commit:panic:1; arena_span_read:truncate_span:5:2")
            .unwrap();
        assert_eq!(
            plan.injections,
            vec![
                Injection {
                    site: FaultSite::EngineHopCommit,
                    kind: FaultKind::Panic,
                    nth: 1,
                    hits: 1
                },
                Injection {
                    site: FaultSite::ArenaSpanRead,
                    kind: FaultKind::TruncateSpan,
                    nth: 5,
                    hits: 2
                },
            ]
        );
        // analyze: fault-spec-ok(negative parse test)
        assert!(FaultPlan::parse("bogus_site:panic:1").is_err());
        // analyze: fault-spec-ok(negative parse test)
        assert!(FaultPlan::parse("gr_parser:bogus_kind:1").is_err());
        assert!(FaultPlan::parse("gr_parser:io").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
    }

    #[test]
    fn name_tables_are_exhaustive() {
        // Every variant has exactly one row, names are unique, and
        // name()/parse() roundtrip through the shared tables. (The
        // variant-list ↔ table cross-check against the *source* is done
        // by `cargo xtask analyze`'s fault-site-registry rule.)
        for site in FaultSite::ALL {
            assert_eq!(SITE_NAMES.iter().filter(|(s, _)| *s == site).count(), 1);
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        for kind in FaultKind::ALL {
            assert_eq!(KIND_NAMES.iter().filter(|(k, _)| *k == kind).count(), 1);
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        let mut site_names: Vec<&str> = SITE_NAMES.iter().map(|&(_, n)| n).collect();
        site_names.dedup();
        assert_eq!(site_names.len(), SITE_NAMES.len());
    }

    #[test]
    fn clear_disarms() {
        let _guard = serial_test();
        install(FaultPlan::single(FaultSite::GrParser, FaultKind::Io, 1));
        assert!(is_armed());
        clear();
        assert!(!is_armed());
        assert_eq!(check_for(FaultSite::GrParser, &[FaultKind::Io]), None);
    }
}
