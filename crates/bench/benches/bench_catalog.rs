//! Per-iteration cost of the MBF-like catalog (Section 3): the price of
//! one propagate/aggregate/filter round per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use mte_core::catalog::{Connectivity, SourceDetection, WidestPaths};
use mte_core::engine::{initial_states, iterate, run};
use mte_core::frt::le_list::{LeListAlgorithm, Ranks};
use mte_graph::generators::gnm_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_iteration");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let mut rng = StdRng::seed_from_u64(6);
    let g = gnm_graph(1024, 3072, 1.0..20.0, &mut rng);
    let n = g.n();

    // Warmed-up states (3 rounds in) so lists have realistic sizes.
    let apsp = SourceDetection::apsp(n);
    let apsp_states = run(&apsp, &g, 3).states;
    group.bench_function("apsp/n=1024", |b| {
        b.iter(|| iterate(&apsp, &g, &apsp_states))
    });

    let kssp = SourceDetection::k_ssp(n, 4);
    let kssp_states = run(&kssp, &g, 3).states;
    group.bench_function("kssp4/n=1024", |b| {
        b.iter(|| iterate(&kssp, &g, &kssp_states))
    });

    let widest = WidestPaths::apwp(n);
    let widest_states = run(&widest, &g, 3).states;
    group.bench_function("apwp/n=1024", |b| {
        b.iter(|| iterate(&widest, &g, &widest_states))
    });

    let conn = Connectivity::all_pairs(n);
    let conn_states = run(&conn, &g, 3).states;
    group.bench_function("connectivity/n=1024", |b| {
        b.iter(|| iterate(&conn, &g, &conn_states))
    });

    let ranks = Arc::new(Ranks::sample(n, &mut rng));
    let le = LeListAlgorithm::new(ranks);
    let le_states = run(&le, &g, 3).states;
    group.bench_function("le_lists/n=1024", |b| {
        b.iter(|| iterate(&le, &g, &le_states))
    });

    group.bench_function("le_lists_init/n=1024", |b| {
        b.iter(|| initial_states(&le, n))
    });
    group.finish();
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
