//! Dense vs frontier vs hybrid engine scheduling on the
//! sparse-convergence workloads (gnm n=2000 m=6000, grid 50×50): the
//! wall-time counterpart to `exp_baseline`'s work counters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mte_core::catalog::SourceDetection;
use mte_core::engine::{run_to_fixpoint_with, EngineStrategy};
use mte_core::frt::le_list::{LeListAlgorithm, Ranks};
use mte_graph::generators::{gnm_graph, grid_graph};
use mte_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn workloads() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xE16E);
    vec![
        (
            "gnm_n2000_m6000",
            gnm_graph(2000, 6000, 1.0..50.0, &mut rng),
        ),
        ("grid_50x50", grid_graph(50, 50, 1.0..5.0, &mut rng)),
    ]
}

fn strategies() -> [(&'static str, EngineStrategy); 3] {
    [
        ("dense", EngineStrategy::Dense),
        ("frontier", EngineStrategy::Frontier),
        ("hybrid", EngineStrategy::default()),
    ]
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for (graph_name, g) in workloads() {
        let sssp = SourceDetection::sssp(g.n(), 0);
        for (strat_name, strategy) in strategies() {
            group.bench_function(format!("sssp/{graph_name}/{strat_name}"), |b| {
                b.iter(|| {
                    black_box(run_to_fixpoint_with(&sssp, &g, g.n() + 1, strategy))
                        .work
                        .edge_relaxations
                })
            });
        }

        let mut rng = StdRng::seed_from_u64(0x1E11);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let le = LeListAlgorithm::new(ranks);
        for (strat_name, strategy) in strategies() {
            group.bench_function(format!("le_lists/{graph_name}/{strat_name}"), |b| {
                b.iter(|| {
                    black_box(run_to_fixpoint_with(&le, &g, g.n() + 1, strategy))
                        .work
                        .edge_relaxations
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
