//! Application benchmarks (Sections 9 and 10): k-median and buy-at-bulk
//! end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use mte_apps::buyatbulk::{solve_buy_at_bulk, BuyAtBulkInstance, CableType, Demand};
use mte_apps::kmedian::{solve_kmedian, KMedianConfig};
use mte_graph::generators::{gnm_graph, grid_graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    let mut rng = StdRng::seed_from_u64(12);
    let g = gnm_graph(256, 768, 1.0..10.0, &mut rng);
    group.bench_function("kmedian_k4/n=256", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(13);
            solve_kmedian(&g, &KMedianConfig::new(4), &mut r)
        })
    });

    let mesh = grid_graph(12, 12, 5.0..40.0, &mut rng);
    let instance = BuyAtBulkInstance {
        cables: vec![
            CableType {
                capacity: 1.0,
                cost: 1.0,
            },
            CableType {
                capacity: 10.0,
                cost: 4.0,
            },
            CableType {
                capacity: 100.0,
                cost: 14.0,
            },
        ],
        demands: (0..40)
            .map(|i| Demand {
                s: (i * 7 % mesh.n()) as u32,
                t: ((i * 13 + 5) % mesh.n()) as u32,
                amount: 1.0 + (i % 5) as f64,
            })
            .filter(|d| d.s != d.t)
            .collect(),
    };
    group.bench_function("buyatbulk_40demands/grid144", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(14);
            solve_buy_at_bulk(&mesh, &instance, &mut r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
