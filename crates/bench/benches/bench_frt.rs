//! End-to-end FRT sampling (Theorem 7.9 and the Section 1.1 baselines):
//! the oracle pipeline vs the explicit-metric and direct samplers.

use criterion::{criterion_group, criterion_main, Criterion};
use mte_core::frt::{sample_direct, sample_from_metric, FrtConfig, FrtEmbedding};
use mte_graph::algorithms::apsp;
use mte_graph::generators::gnm_graph;
use mte_graph::hopset::HopsetConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_frt(c: &mut Criterion) {
    let mut group = c.benchmark_group("frt_sampling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    let mut rng = StdRng::seed_from_u64(8);
    let g = gnm_graph(512, 1536, 1.0..20.0, &mut rng);
    let metric = apsp(&g);

    group.bench_function("from_metric/n=512", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(9);
            sample_from_metric(&metric, g.min_weight(), &mut r)
        })
    });
    group.bench_function("direct/n=512", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(10);
            sample_direct(&g, &mut r)
        })
    });
    let config = FrtConfig {
        hopset: HopsetConfig {
            d: 129,
            epsilon: 0.0,
            oversample: 2.0,
        },
        eps_hat: 0.05,
        spanner_k: None,
        max_iterations: None,
    };
    group.bench_function("oracle_pipeline/n=512", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(11);
            FrtEmbedding::sample(&g, &config, &mut r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frt);
criterion_main!(benches);
