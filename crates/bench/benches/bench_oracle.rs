//! Oracle vs explicit `H` (Theorem 5.2): one simulated `H`-iteration on
//! `G'`'s sparse edges against one real iteration on the dense explicit
//! `H`.

use criterion::{criterion_group, criterion_main, Criterion};
use mte_core::engine::{iterate, run};
use mte_core::frt::le_list::{LeListAlgorithm, Ranks};
use mte_core::oracle::oracle_iteration;
use mte_core::simgraph::SimulatedGraph;
use mte_graph::algorithms::shortest_path_diameter;
use mte_graph::generators::gnm_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let mut rng = StdRng::seed_from_u64(7);
    let g = gnm_graph(256, 768, 1.0..10.0, &mut rng);
    let spd = shortest_path_diameter(&g) as usize;
    let sim = SimulatedGraph::without_hopset(&g, spd, 0.1, &mut rng);
    let h = sim.explicit_h();
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let alg = LeListAlgorithm::new(ranks);
    let warm = run(&alg, &g, 2).states;

    group.bench_function("oracle_iteration/n=256", |b| {
        b.iter(|| oracle_iteration(&alg, &sim, &warm))
    });
    group.bench_function("explicit_h_iteration/n=256", |b| {
        b.iter(|| iterate(&alg, &h, &warm))
    });
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
