//! Dense-block backend timings: the flat matrix kernels
//! (`mte_algebra::dense`) against the owned sparse engine on APSP-class
//! workloads, plus the raw row-kernel microbenchmarks — the wall-time
//! counterpart to the `apsp dense-block`/`apsp switching` rows of
//! `exp_baseline`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mte_algebra::dense::{relax_row_into, relax_rows_into};
use mte_algebra::MinPlus;
use mte_core::catalog::SourceDetection;
use mte_core::dense::{
    run_to_fixpoint_dense_with, run_to_fixpoint_switching_with, SwitchThresholds,
};
use mte_core::engine::{run_to_fixpoint_with, EngineStrategy};
use mte_graph::generators::{gnm_graph, grid_graph};
use mte_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn workloads() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xDE45);
    vec![
        ("gnm_n400_m1600", gnm_graph(400, 1600, 1.0..50.0, &mut rng)),
        ("grid_20x20", grid_graph(20, 20, 1.0..5.0, &mut rng)),
    ]
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    // Row-kernel microbenchmarks: one relaxation of a k = 4096 row, and
    // the cache-tiled 8-source aggregation.
    let k = 4096;
    let src: Vec<MinPlus> = (0..k).map(|i| MinPlus::new((i % 97) as f64)).collect();
    let mut dst: Vec<MinPlus> = (0..k).map(|i| MinPlus::new((i % 89) as f64)).collect();
    group.bench_function("relax_row_into/k4096", |b| {
        b.iter(|| {
            relax_row_into(black_box(&mut dst), black_box(&src), MinPlus::new(1.5));
            dst[0]
        })
    });
    let srcs: Vec<(&[MinPlus], MinPlus)> =
        (0..8).map(|i| (&src[..], MinPlus::new(i as f64))).collect();
    group.bench_function("relax_rows_into/k4096x8", |b| {
        b.iter(|| {
            relax_rows_into(black_box(&mut dst), black_box(&srcs));
            dst[0]
        })
    });

    // Whole-run comparisons: owned sparse vs dense-block vs switching.
    for (graph_name, g) in workloads() {
        let apsp = SourceDetection::apsp(g.n());
        group.bench_function(format!("apsp/{graph_name}/owned"), |b| {
            b.iter(|| {
                black_box(run_to_fixpoint_with(
                    &apsp,
                    &g,
                    g.n() + 1,
                    EngineStrategy::Dense,
                ))
                .iterations
            })
        });
        group.bench_function(format!("apsp/{graph_name}/dense-block"), |b| {
            b.iter(|| {
                black_box(run_to_fixpoint_dense_with(
                    &apsp,
                    &g,
                    g.n() + 1,
                    EngineStrategy::Dense,
                ))
                .iterations
            })
        });
        group.bench_function(format!("apsp/{graph_name}/switching"), |b| {
            b.iter(|| {
                black_box(run_to_fixpoint_switching_with(
                    &apsp,
                    &g,
                    g.n() + 1,
                    EngineStrategy::default(),
                    SwitchThresholds::default(),
                ))
                .iterations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense);
criterion_main!(benches);
