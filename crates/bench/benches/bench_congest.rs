//! Congest simulation benchmarks (Section 8): the wall-clock cost of the
//! message-level simulations themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use mte_congest::khan::khan_le_lists;
use mte_congest::skeleton::{skeleton_frt, SkeletonConfig};
use mte_core::frt::le_list::Ranks;
use mte_graph::generators::{gnm_graph, highway_graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_congest(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    let mut rng = StdRng::seed_from_u64(15);
    let g = gnm_graph(512, 1536, 1.0..10.0, &mut rng);
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    group.bench_function("khan/gnm_n=512", |b| b.iter(|| khan_le_lists(&g, &ranks)));

    let hw = highway_graph(512, 1e5);
    let hw_ranks = Arc::new(Ranks::sample(hw.n(), &mut rng));
    group.bench_function("khan/highway_n=512", |b| {
        b.iter(|| khan_le_lists(&hw, &hw_ranks))
    });
    group.bench_function("skeleton/highway_n=512", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(16);
            skeleton_frt(&hw, &SkeletonConfig::default(), &mut r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_congest);
criterion_main!(benches);
