//! Microbenchmarks for the algebraic substrate (Lemma 2.3: aggregation
//! of sparse distance maps is a linear merge).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mte_algebra::{Dist, DistanceMap, MinPlus, Semimodule, Semiring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_map(len: usize, universe: u32, rng: &mut StdRng) -> DistanceMap {
    DistanceMap::from_entries(
        (0..len)
            .map(|_| {
                (
                    rng.gen_range(0..universe),
                    Dist::new(rng.gen_range(0.0..100.0)),
                )
            })
            .collect(),
    )
}

fn bench_distance_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_map");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);

    for len in [16usize, 256] {
        let a = random_map(len, 1 << 20, &mut rng);
        let b = random_map(len, 1 << 20, &mut rng);
        group.bench_function(format!("merge_min/{len}"), |bch| {
            bch.iter(|| {
                let mut x = a.clone();
                x.merge_min(black_box(&b));
                x
            })
        });
        group.bench_function(format!("merge_scaled/{len}"), |bch| {
            bch.iter(|| {
                let mut x = a.clone();
                x.merge_scaled(black_box(&b), Dist::new(1.5));
                x
            })
        });
        group.bench_function(format!("scale/{len}"), |bch| {
            bch.iter(|| Semimodule::scale(&a, black_box(&MinPlus::new(2.0))))
        });
    }
    group.finish();
}

fn bench_semiring_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("semiring");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(1));
    let a = MinPlus::new(3.0);
    let b = MinPlus::new(5.0);
    group.bench_function("minplus_add_mul", |bch| {
        bch.iter(|| Semiring::add(&black_box(a), &black_box(b)).mul(&black_box(a)))
    });
    group.finish();
}

criterion_group!(benches, bench_distance_map, bench_semiring_ops);
criterion_main!(benches);
