//! Substrate benchmarks: Dijkstra, Baswana–Sen spanner, hop-set
//! construction (the preprocessing costs of the main pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use mte_graph::algorithms::sssp;
use mte_graph::generators::gnm_graph;
use mte_graph::hopset::{Hopset, HopsetConfig};
use mte_graph::spanner::baswana_sen_spanner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let mut rng = StdRng::seed_from_u64(2);
    let g = gnm_graph(2048, 6144, 1.0..50.0, &mut rng);

    group.bench_function("dijkstra/n=2048", |b| b.iter(|| sssp(&g, 0)));
    group.bench_function("spanner_k2/n=2048", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            baswana_sen_spanner(&g, 2, &mut r)
        })
    });
    group.bench_function("spanner_k3/n=2048", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(4);
            baswana_sen_spanner(&g, 3, &mut r)
        })
    });
    group.bench_function("hopset_d65/n=2048", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(5);
            Hopset::build(
                &g,
                &HopsetConfig {
                    d: 65,
                    epsilon: 0.0,
                    oversample: 2.0,
                },
                &mut r,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
