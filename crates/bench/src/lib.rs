//! Benchmark harness and experiment drivers.
//!
//! The paper is a theory paper without empirical tables; every
//! experiment here turns one of its theorems into a measurable artifact
//! (the index lives in DESIGN.md §4 and results in EXPERIMENTS.md):
//!
//! | binary | claim |
//! |--------|-------|
//! | `exp_levels`      | Lemma 4.1 (Λ ∈ O(log n)) |
//! | `exp_spd`         | Theorem 4.5 (SPD(H) ∈ O(log² n)) |
//! | `exp_h_stretch`   | Theorem 4.5 / Eq. 4.16 (stretch of H) |
//! | `exp_triangle`    | Observation 1.1 (hop sets break the triangle inequality; H restores it) |
//! | `exp_oracle_work` | Theorem 5.2 (oracle ≡ explicit H, at sparse cost) |
//! | `exp_hopset`      | hop-set property (Cohen substitute, Eq. 1.3) |
//! | `exp_le_lists`    | Lemma 7.6 (LE lists have length O(log n)) |
//! | `exp_frt_stretch` | Theorem 7.9 / Cor. 7.10 (expected stretch O(log n)) |
//! | `exp_spanner_frt` | Cor. 7.11 (spanner: work ↓, stretch ×(2k−1)) |
//! | `exp_metric`      | Theorems 6.1/6.2 (approximate metrics) |
//! | `exp_congest`     | Sec. 8 (Khan vs skeleton round complexity) |
//! | `exp_kmedian`     | Theorem 9.2 (k-median quality) |
//! | `exp_buyatbulk`   | Theorem 10.2 (buy-at-bulk quality) |
//! | `exp_baseline`    | Sec. 1.1 (oracle pipeline vs Ω(n²) metric baseline) |
//! | `exp_serving`     | serving layer: frozen-oracle point ladder vs dense batch sweeps (`BENCH_serving.json`) |

pub mod checkpoint_suite;
pub mod engine_suite;
pub mod parallel_suite;
pub mod serving_suite;
pub mod suite;
pub mod tables;
