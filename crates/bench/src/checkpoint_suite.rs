//! Checkpoint overhead suite: what does durability cost?
//!
//! For each workload the suite times the uninterrupted fixpoint run,
//! the same run with periodic checkpoint capture through the crash-safe
//! snapshot encoder, and a resume from a mid-run snapshot — recording
//! the snapshot size and the fraction of the checkpointed run's wall
//! time spent encoding. The rows ride along in `BENCH_engine.json`
//! (`"checkpoint"` section) so the durability tax is part of the
//! tracked performance trajectory. States are cross-checked against the
//! uninterrupted run before any number is recorded: a benchmark of a
//! recovery path that loses data is worthless.

use crate::engine_suite::json_escape;
use crate::tables::{f, Table};
use mte_core::arena::{run_to_fixpoint_arena_with, ArenaMbfAlgorithm};
use mte_core::catalog::SourceDetection;
use mte_core::checkpoint::{
    try_resume_run_to_fixpoint_arena_with, try_resume_run_to_fixpoint_with,
    try_run_checkpointed_arena_with, try_run_checkpointed_with, CheckpointPolicy,
};
use mte_core::engine::{run_to_fixpoint_with, EngineStrategy, MbfAlgorithm};
use mte_core::frt::le_list::{LeListAlgorithm, Ranks};
use mte_graph::generators::{gnm_graph, grid_graph};
use mte_graph::Graph;
use mte_persist::{SnapshotReader, SnapshotWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// One measured workload: plain run vs checkpointed run vs resume.
#[derive(Clone, Debug)]
pub struct CheckpointCase {
    /// Graph family label.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Algorithm + backend label.
    pub algorithm: String,
    /// Wall time of the uninterrupted run, in milliseconds.
    pub run_wall_ms: f64,
    /// Wall time of the run with checkpoint capture, in milliseconds.
    pub checkpointed_wall_ms: f64,
    /// Number of checkpoints captured.
    pub checkpoints: usize,
    /// Encoded size of the last (largest-state) snapshot, in bytes.
    pub snapshot_bytes: usize,
    /// Total time spent encoding snapshots, in milliseconds.
    pub encode_ms: f64,
    /// Time to decode the mid-run snapshot back, in milliseconds.
    pub decode_ms: f64,
    /// Wall time of the resume from the mid-run snapshot, in
    /// milliseconds.
    pub resume_wall_ms: f64,
    /// `encode_ms / checkpointed_wall_ms` — the durability tax.
    pub write_fraction: f64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Capture cadence: ~8 snapshots per run, at least one per hop.
fn cadence(iterations: usize) -> u64 {
    ((iterations as u64) / 8).max(1)
}

/// The owned-backend measurement (SSSP-class workloads).
fn measure_owned<A>(graph_label: &str, g: &Graph, alg_label: &str, alg: &A) -> CheckpointCase
where
    A: MbfAlgorithm<M = mte_algebra::DistanceMap>,
{
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let t0 = Instant::now();
    let reference = run_to_fixpoint_with(alg, g, cap, strategy);
    let run_wall_ms = ms(t0);

    let policy = CheckpointPolicy::every_hops(cadence(reference.iterations));
    let mut encode_ms = 0.0;
    let mut images: Vec<Vec<u8>> = Vec::new();
    let t0 = Instant::now();
    let (run, _) = try_run_checkpointed_with(alg, g, cap, strategy, policy, |c| {
        let te = Instant::now();
        let image = SnapshotWriter::new().put_checkpoint(c).encode();
        encode_ms += ms(te);
        images.push(image);
        Ok(())
    })
    .expect("clean checkpointed run cannot fail");
    let checkpointed_wall_ms = ms(t0);
    assert_eq!(run.states, reference.states, "{graph_label}/{alg_label}");
    assert!(!images.is_empty(), "run too short to checkpoint");

    let mid = &images[images.len() / 2];
    let td = Instant::now();
    let ckpt = SnapshotReader::decode(mid)
        .expect("own snapshot decodes")
        .checkpoint()
        .expect("checkpoint section present");
    let decode_ms = ms(td);
    let tr = Instant::now();
    let (resumed, _) = try_resume_run_to_fixpoint_with(alg, g, cap, strategy, &ckpt)
        .expect("resume from own snapshot cannot fail");
    let resume_wall_ms = ms(tr);
    assert_eq!(
        resumed.states, reference.states,
        "{graph_label}/{alg_label}"
    );

    CheckpointCase {
        graph: graph_label.to_string(),
        n: g.n(),
        m: g.m(),
        algorithm: alg_label.to_string(),
        run_wall_ms,
        checkpointed_wall_ms,
        checkpoints: images.len(),
        snapshot_bytes: images.last().map(Vec::len).unwrap_or(0),
        encode_ms,
        decode_ms,
        resume_wall_ms,
        write_fraction: encode_ms / checkpointed_wall_ms.max(f64::MIN_POSITIVE),
    }
}

/// The arena-backend measurement (LE lists' production path).
fn measure_arena<A>(graph_label: &str, g: &Graph, alg_label: &str, alg: &A) -> CheckpointCase
where
    A: ArenaMbfAlgorithm,
{
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let t0 = Instant::now();
    let reference = run_to_fixpoint_arena_with(alg, g, cap, strategy);
    let run_wall_ms = ms(t0);

    let policy = CheckpointPolicy::every_hops(cadence(reference.iterations));
    let mut encode_ms = 0.0;
    let mut images: Vec<Vec<u8>> = Vec::new();
    let t0 = Instant::now();
    let (run, _) = try_run_checkpointed_arena_with(alg, g, cap, strategy, policy, |c| {
        let te = Instant::now();
        let image = SnapshotWriter::new().put_checkpoint(c).encode();
        encode_ms += ms(te);
        images.push(image);
        Ok(())
    })
    .expect("clean checkpointed run cannot fail");
    let checkpointed_wall_ms = ms(t0);
    assert_eq!(run.states, reference.states, "{graph_label}/{alg_label}");
    assert!(!images.is_empty(), "run too short to checkpoint");

    let mid = &images[images.len() / 2];
    let td = Instant::now();
    let ckpt = SnapshotReader::decode(mid)
        .expect("own snapshot decodes")
        .checkpoint()
        .expect("checkpoint section present");
    let decode_ms = ms(td);
    let tr = Instant::now();
    let (resumed, _) = try_resume_run_to_fixpoint_arena_with(alg, g, cap, strategy, &ckpt)
        .expect("resume from own snapshot cannot fail");
    let resume_wall_ms = ms(tr);
    assert_eq!(
        resumed.states, reference.states,
        "{graph_label}/{alg_label}"
    );

    CheckpointCase {
        graph: graph_label.to_string(),
        n: g.n(),
        m: g.m(),
        algorithm: alg_label.to_string(),
        run_wall_ms,
        checkpointed_wall_ms,
        checkpoints: images.len(),
        snapshot_bytes: images.last().map(Vec::len).unwrap_or(0),
        encode_ms,
        decode_ms,
        resume_wall_ms,
        write_fraction: encode_ms / checkpointed_wall_ms.max(f64::MIN_POSITIVE),
    }
}

/// The checkpoint catalog: one sparse-convergence graph and one grid,
/// sized so the whole suite stays a small fraction of `exp_baseline`.
fn checkpoint_catalog() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xC4E5);
    vec![
        (
            "gnm n=1000 m=3000".into(),
            gnm_graph(1000, 3000, 1.0..50.0, &mut rng),
        ),
        ("grid 30x30".into(), grid_graph(30, 30, 1.0..5.0, &mut rng)),
    ]
}

/// Runs the suite: SSSP (owned backend) and LE lists (arena backend)
/// with periodic snapshot capture and a mid-run resume.
pub fn checkpoint_suite() -> Vec<CheckpointCase> {
    let mut cases = Vec::new();
    for (label, g) in checkpoint_catalog() {
        let sssp = SourceDetection::sssp(g.n(), 0);
        cases.push(measure_owned(&label, &g, "sssp", &sssp));
        let mut rng = StdRng::seed_from_u64(0xC4E6);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let le = LeListAlgorithm::new(ranks);
        cases.push(measure_arena(&label, &g, "le_lists+arena", &le));
    }
    cases
}

/// Renders the suite as a table.
pub fn checkpoint_suite_table(cases: &[CheckpointCase]) -> Table {
    let mut t = Table::new(
        "Checkpoint overhead: run vs checkpointed run vs resume (states cross-checked)",
        &[
            "graph",
            "algorithm",
            "run ms",
            "ckpt ms",
            "ckpts",
            "snap KiB",
            "enc ms",
            "dec ms",
            "resume ms",
            "write frac",
        ],
    );
    for c in cases {
        t.push(vec![
            c.graph.clone(),
            c.algorithm.clone(),
            f(c.run_wall_ms, 1),
            f(c.checkpointed_wall_ms, 1),
            c.checkpoints.to_string(),
            f(c.snapshot_bytes as f64 / 1024.0, 1),
            f(c.encode_ms, 2),
            f(c.decode_ms, 2),
            f(c.resume_wall_ms, 1),
            format!("{:.1}%", c.write_fraction * 100.0),
        ]);
    }
    t
}

/// The `"checkpoint"` JSON array (rows only, no enclosing object).
pub fn checkpoint_suite_json_rows(cases: &[CheckpointCase]) -> String {
    let mut out = String::new();
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"graph\": \"{}\", \"n\": {}, \"m\": {}, \"algorithm\": \"{}\", ",
                "\"run_wall_ms\": {:.3}, \"checkpointed_wall_ms\": {:.3}, ",
                "\"checkpoints\": {}, \"snapshot_bytes\": {}, ",
                "\"encode_ms\": {:.3}, \"decode_ms\": {:.3}, \"resume_wall_ms\": {:.3}, ",
                "\"write_fraction\": {:.4}}}{}\n"
            ),
            json_escape(&c.graph),
            c.n,
            c.m,
            json_escape(&c.algorithm),
            c.run_wall_ms,
            c.checkpointed_wall_ms,
            c.checkpoints,
            c.snapshot_bytes,
            c.encode_ms,
            c.decode_ms,
            c.resume_wall_ms,
            c.write_fraction,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out
}

/// Splices the checkpoint section into an `engine_suite_json` document:
/// `{"suite": "engine", "cases": […], "checkpoint": […]}`.
pub fn with_checkpoint_section(engine_json: &str, cases: &[CheckpointCase]) -> String {
    let trimmed = engine_json
        .strip_suffix("}\n")
        .expect("engine_suite_json ends with its enclosing brace");
    let trimmed = trimmed
        .strip_suffix("  ]\n")
        .expect("engine_suite_json closes its cases array");
    let mut out = trimmed.to_owned();
    out.push_str("  ],\n  \"checkpoint\": [\n");
    out.push_str(&checkpoint_suite_json_rows(cases));
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature suite run exercising both backends, the table, and
    /// the JSON splice end to end.
    #[test]
    fn mini_checkpoint_suite_measures_and_serializes() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gnm_graph(60, 140, 1.0..9.0, &mut rng);
        let sssp = SourceDetection::sssp(g.n(), 0);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let le = LeListAlgorithm::new(ranks);
        let cases = vec![
            measure_owned("mini", &g, "sssp", &sssp),
            measure_arena("mini", &g, "le_lists+arena", &le),
        ];
        for c in &cases {
            assert!(c.checkpoints > 0);
            assert!(c.snapshot_bytes > 0);
            assert!((0.0..=1.0).contains(&c.write_fraction));
        }

        let engine_json = "{\n  \"suite\": \"engine\",\n  \"cases\": [\n  ]\n}\n";
        let json = with_checkpoint_section(engine_json, &cases);
        assert!(json.contains("\"checkpoint\": ["));
        assert_eq!(json.matches("\"snapshot_bytes\"").count(), cases.len());
        assert_eq!(json.matches("\"write_fraction\"").count(), cases.len());
        assert!(json.trim_end().ends_with('}'));

        let table = checkpoint_suite_table(&cases).render();
        assert!(table.contains("sssp") && table.contains("le_lists+arena"));
    }
}
