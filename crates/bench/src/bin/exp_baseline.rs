//! Experiment driver. See DESIGN.md §4 and EXPERIMENTS.md.
//!
//! Runs the Section 1.1 sampler comparison (E16), the engine suite
//! (dense vs frontier vs hybrid scheduling on the standard catalog),
//! the checkpoint-overhead suite (snapshot write/load cost as a
//! fraction of run wall time), and the thread-scaling sweep (the same
//! dense workload across `MTE_THREADS`-style pool sizes
//! {1, 2, 4, max}), and writes the
//! machine-readable `BENCH_engine.json` / `BENCH_parallel.json` pair
//! that tracks the engine's performance trajectory across PRs.

use mte_bench::checkpoint_suite::{
    checkpoint_suite, checkpoint_suite_table, with_checkpoint_section,
};
use mte_bench::engine_suite::{engine_suite, engine_suite_json, engine_suite_table};
use mte_bench::parallel_suite::{parallel_suite, parallel_suite_json, parallel_suite_table};

fn main() {
    mte_bench::suite::exp_baseline().print();

    let cases = engine_suite();
    engine_suite_table(&cases).print();

    let checkpoint_cases = checkpoint_suite();
    checkpoint_suite_table(&checkpoint_cases).print();

    let path = "BENCH_engine.json";
    let json = with_checkpoint_section(&engine_suite_json(&cases), &checkpoint_cases);
    match std::fs::write(path, json) {
        Ok(()) => println!(
            "wrote {path} ({} engine + {} checkpoint cases)",
            cases.len(),
            checkpoint_cases.len()
        ),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }

    let parallel_cases = parallel_suite();
    parallel_suite_table(&parallel_cases).print();

    let path = "BENCH_parallel.json";
    match std::fs::write(path, parallel_suite_json(&parallel_cases)) {
        Ok(()) => println!("wrote {path} ({} cases)", parallel_cases.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
