//! Experiment driver. See DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    mte_bench::suite::exp_catalog().print();
}
