//! Serving-layer experiment driver. See `docs/SERVING.md`.
//!
//! Freezes an oracle artifact per catalog graph and measures the query
//! side: point queries through the full answer ladder (admission →
//! cache → tree LCA) and batched sweeps through the dense min-plus
//! block kernel, plus a hostile segment counting typed sheds and
//! recorded degradations. Writes the machine-readable
//! `BENCH_serving.json` trajectory artifact.

use mte_bench::serving_suite::{serving_suite, serving_suite_json, serving_suite_table};

fn main() {
    let cases = serving_suite();
    serving_suite_table(&cases).print();

    let path = "BENCH_serving.json";
    match std::fs::write(path, serving_suite_json(&cases)) {
        Ok(()) => println!("wrote {path} ({} cases)", cases.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
