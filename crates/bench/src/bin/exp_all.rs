//! Runs every experiment in DESIGN.md §4 order and prints the tables
//! EXPERIMENTS.md records. Expect a few minutes of wall time in release.
use mte_bench::suite::*;

fn main() {
    for table in [
        exp_levels(),
        exp_spd(),
        exp_h_stretch(),
        exp_triangle(),
        exp_oracle_work(),
        exp_hopset(),
        exp_le_lists(),
        exp_frt_stretch(),
        exp_spanner_frt(),
        exp_metric(),
        exp_congest(),
        exp_kmedian(),
        exp_buyatbulk(),
        exp_catalog(),
        exp_baseline(),
        exp_ablation(),
    ] {
        table.print();
    }
}
