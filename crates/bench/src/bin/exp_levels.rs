//! E1 — Lemma 4.1. See DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    mte_bench::suite::exp_levels().print();
}
