//! The thread-scaling benchmark suite: the same engine workload swept
//! across thread counts `{1, 2, 4, max}`, with machine-readable output.
//!
//! Run via `exp_baseline`; emits `BENCH_parallel.json` so successive PRs
//! can track the parallel speedup of the iteration core next to the
//! relaxation counts of `BENCH_engine.json`. Every measurement first
//! cross-checks that the run's states are **bit-identical** to the
//! 1-thread reference — the deterministic-reduction-tree guarantee of
//! the rayon backend — before recording a time; a speedup on a wrong (or
//! thread-count-dependent) answer is worthless.
//!
//! The workload is the APSP fixpoint sweep on the standard catalog,
//! measured on three backends per graph: the owned sparse store under
//! the dense schedule (`apsp dense` — the historical rows), the flat
//! matrix backend (`apsp dense-block` — `mte_core::dense`, the row
//! kernels the dense-state issue targets), and the
//! representation-switching hybrid (`apsp switching` — sparse start,
//! matrix-mode finish). The dense-block and switching rows are
//! additionally cross-checked bit-identical against the owned rows, so
//! the trajectory never compares different answers. Speedups saturate
//! at the machine's physical parallelism — on a single-core host every
//! thread count measures ≈ 1×, which the JSON flags via `host_threads`
//! and `speedups_valid: false` (plus an explanatory `note`) so
//! trajectory tooling never mistakes a one-core artifact for a scaling
//! regression.

use crate::engine_suite::json_escape;
use crate::tables::{f, Table};
use mte_algebra::DistanceMap;
use mte_congest::CongestCost;
use mte_core::catalog::SourceDetection;
use mte_core::dense::{
    run_to_fixpoint_dense_with, run_to_fixpoint_switching_with, SwitchThresholds,
};
use mte_core::engine::{run_to_fixpoint_with, EngineStrategy, MbfRun};
use mte_core::shard::try_run_sharded_to_fixpoint_with;
use mte_graph::generators::{gnm_graph, grid_graph};
use mte_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;
use std::time::Instant;

/// One measured (graph, thread-count) cell.
#[derive(Clone, Debug)]
pub struct ParallelCase {
    /// Graph family label.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Algorithm label.
    pub algorithm: String,
    /// Total parallelism of the pool the run executed on.
    pub threads: usize,
    /// Wall time of the full fixpoint run, in milliseconds.
    pub wall_ms: f64,
    /// Wall-time speedup over the 1-thread run of the same workload.
    pub speedup: f64,
    /// Shard count of the sharded-engine rows; 0 for unsharded rows.
    pub shards: usize,
    /// Cross-shard exchange messages of the run (the Congest-model
    /// message count via `CongestCost::from_exchange`); 0 unsharded.
    /// On the single-core host where `speedups_valid` is false, this —
    /// not wall clock — is the trackable scaling metric.
    pub shard_msgs: u64,
    /// Model-level bytes those messages carried; 0 unsharded.
    pub shard_msg_bytes: u64,
}

/// The thread counts the suite sweeps: `{1, 2, 4, max}`, deduplicated
/// and sorted (on hosts with ≤ 4 cores, `max` folds into the fixed
/// points).
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The catalog the thread sweep runs on: sized so a dense APSP fixpoint
/// run takes long enough to time meaningfully but keeps the whole sweep
/// in seconds.
pub fn parallel_catalog() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xFA12);
    vec![
        (
            "gnm n=800 m=3200".into(),
            gnm_graph(800, 3200, 1.0..50.0, &mut rng),
        ),
        ("grid 28x28".into(), grid_graph(28, 28, 1.0..5.0, &mut rng)),
    ]
}

/// Measures one workload's fixpoint run on `g` across `counts`,
/// asserting bit-identical states against the 1-thread reference (and
/// against `cross_check`, the states of another backend's sweep, when
/// given — different backends of the same workload must agree exactly).
/// `counts` must start with 1 — `speedup` (serialized as
/// `speedup_vs_1`) is relative to that run. Returns the 1-thread
/// states for cross-backend checks.
pub fn measure_thread_sweep_with<R>(
    graph_label: &str,
    g: &Graph,
    counts: &[usize],
    algorithm: &str,
    cross_check: Option<&[DistanceMap]>,
    run: R,
    out: &mut Vec<ParallelCase>,
) -> Vec<DistanceMap>
where
    R: Fn() -> MbfRun<DistanceMap> + Sync,
{
    assert_eq!(
        counts.first(),
        Some(&1),
        "thread sweep must lead with the 1-thread reference run"
    );
    let mut reference: Option<(Vec<DistanceMap>, f64)> = None;
    for &threads in counts {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool build cannot fail");
        let t0 = Instant::now();
        let result = pool.install(&run);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let baseline_ms = match &reference {
            None => {
                if let Some(expect) = cross_check {
                    assert_eq!(
                        result.states, expect,
                        "{graph_label}/{algorithm}: backend diverged from the reference sweep"
                    );
                }
                let ms = wall_ms;
                reference = Some((result.states, wall_ms));
                ms
            }
            Some((states, ms)) => {
                assert_eq!(
                    &result.states, states,
                    "{graph_label}/{algorithm}: {threads} threads changed the result"
                );
                *ms
            }
        };
        out.push(ParallelCase {
            graph: graph_label.to_string(),
            n: g.n(),
            m: g.m(),
            algorithm: algorithm.to_string(),
            threads,
            wall_ms,
            speedup: baseline_ms / wall_ms.max(1e-9),
            shards: 0,
            shard_msgs: 0,
            shard_msg_bytes: 0,
        });
    }
    reference.expect("counts is non-empty").0
}

/// The sharded-engine rows (`apsp sharded(k)`): the same APSP fixpoint
/// workload driven through `core::shard`'s vertex-range shards at each
/// count in `shard_counts`, swept across `counts` pool sizes. Every
/// run is cross-checked bit-identical against `reference` (the owned
/// 1-thread states) — shard topology must never change the answer —
/// and the rows carry the exchange volume (`shard_msgs` /
/// `shard_msg_bytes`, i.e. `congest::CongestCost::from_exchange`), the
/// metric that stays meaningful on hosts where wall clock does not.
pub fn measure_shard_sweep(
    graph_label: &str,
    g: &Graph,
    counts: &[usize],
    shard_counts: &[usize],
    reference: &[DistanceMap],
    out: &mut Vec<ParallelCase>,
) {
    let alg = SourceDetection::apsp(g.n());
    let cap = g.n() + 1;
    for &shards in shard_counts {
        let mut baseline_ms: Option<f64> = None;
        for &threads in counts {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool build cannot fail");
            let t0 = Instant::now();
            let (run, report) = pool.install(|| {
                try_run_sharded_to_fixpoint_with(&alg, g, cap, shards)
                    .expect("clean sharded run cannot fail")
            });
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(report.degradations.is_empty(), "clean run degraded");
            assert_eq!(
                run.states, reference,
                "{graph_label}: sharding at k={shards} changed the result"
            );
            let cost = CongestCost::from_exchange(&run.work);
            let base = *baseline_ms.get_or_insert(wall_ms);
            out.push(ParallelCase {
                graph: graph_label.to_string(),
                n: g.n(),
                m: g.m(),
                algorithm: format!("apsp sharded({shards})"),
                threads,
                wall_ms,
                speedup: base / wall_ms.max(1e-9),
                shards,
                shard_msgs: cost.messages,
                shard_msg_bytes: run.work.shard_msg_bytes,
            });
        }
    }
}

/// The historical entry point: the owned-backend dense APSP sweep
/// (`apsp dense` rows). Returns the 1-thread states.
pub fn measure_thread_sweep(
    graph_label: &str,
    g: &Graph,
    counts: &[usize],
    out: &mut Vec<ParallelCase>,
) -> Vec<DistanceMap> {
    let alg = SourceDetection::apsp(g.n());
    let cap = g.n() + 1;
    measure_thread_sweep_with(
        graph_label,
        g,
        counts,
        "apsp dense",
        None,
        || run_to_fixpoint_with(&alg, g, cap, EngineStrategy::Dense),
        out,
    )
}

/// Runs the sweep on the full catalog: the owned `apsp dense` rows
/// (the trajectory baseline), the flat-matrix `apsp dense-block` rows,
/// and the representation-switching `apsp switching` rows, every
/// backend cross-checked bit-identical against the owned states.
pub fn parallel_suite() -> Vec<ParallelCase> {
    let counts = thread_counts();
    let mut cases = Vec::new();
    for (label, g) in parallel_catalog() {
        let alg = SourceDetection::apsp(g.n());
        let cap = g.n() + 1;
        let reference = measure_thread_sweep(&label, &g, &counts, &mut cases);
        // Frontier schedule: for the dense backend a Ligra-style dense
        // fallback only re-relaxes quiescent full rows, so the frontier
        // list is its production schedule.
        measure_thread_sweep_with(
            &label,
            &g,
            &counts,
            "apsp dense-block",
            Some(&reference),
            || run_to_fixpoint_dense_with(&alg, &g, cap, EngineStrategy::Frontier),
            &mut cases,
        );
        measure_thread_sweep_with(
            &label,
            &g,
            &counts,
            "apsp switching",
            Some(&reference),
            || {
                run_to_fixpoint_switching_with(
                    &alg,
                    &g,
                    cap,
                    EngineStrategy::default(),
                    SwitchThresholds::default(),
                )
            },
            &mut cases,
        );
        measure_shard_sweep(&label, &g, &counts, &[2, 4], &reference, &mut cases);
    }
    cases
}

/// Renders the sweep as a table.
pub fn parallel_suite_table(cases: &[ParallelCase]) -> Table {
    let mut t = Table::new(
        "Thread sweep: APSP fixpoint runs, owned/dense-block/switching backends (states cross-checked bit-identical)",
        &["graph", "algorithm", "threads", "wall ms", "speedup vs 1"],
    );
    for case in cases {
        t.push(vec![
            case.graph.clone(),
            case.algorithm.clone(),
            case.threads.to_string(),
            f(case.wall_ms, 1),
            format!("{:.2}x", case.speedup),
        ]);
    }
    t
}

/// Serializes the sweep to the `BENCH_parallel.json` schema
/// (hand-rolled; the workspace carries no serialization dependency).
pub fn parallel_suite_json(cases: &[ParallelCase]) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"suite\": \"parallel\",\n  \"host_threads\": {host},\n  \"speedups_valid\": {},\n",
        host > 1
    );
    if host == 1 {
        out.push_str(
            "  \"note\": \"single-core host: every pool size measures ~1x, \
             so speedup_vs_1 says nothing about the backend's scaling\",\n",
        );
    }
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"graph\": \"{}\", \"n\": {}, \"m\": {}, ",
                "\"algorithm\": \"{}\", \"threads\": {}, ",
                "\"wall_ms\": {:.3}, \"speedup_vs_1\": {:.3}, ",
                "\"shards\": {}, \"shard_msgs\": {}, \"shard_msg_bytes\": {}}}{}\n"
            ),
            json_escape(&c.graph),
            c.n,
            c.m,
            json_escape(&c.algorithm),
            c.threads,
            c.wall_ms,
            c.speedup,
            c.shards,
            c.shard_msgs,
            c.shard_msg_bytes,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep (small graph, two thread counts) exercising the
    /// measurement, cross-check, table, and JSON paths end to end.
    #[test]
    fn mini_sweep_measures_and_serializes() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnm_graph(48, 110, 1.0..9.0, &mut rng);
        let mut cases = Vec::new();
        let reference = measure_thread_sweep("mini", &g, &[1, 2], &mut cases);
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].threads, 1);
        assert!((cases[0].speedup - 1.0).abs() < 1e-12);

        // The dense-block and switching sweeps ride the same harness
        // and are cross-checked against the owned states.
        let alg = SourceDetection::apsp(g.n());
        measure_thread_sweep_with(
            "mini",
            &g,
            &[1, 2],
            "apsp dense-block",
            Some(&reference),
            || run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, EngineStrategy::Dense),
            &mut cases,
        );
        measure_thread_sweep_with(
            "mini",
            &g,
            &[1, 2],
            "apsp switching",
            Some(&reference),
            || {
                run_to_fixpoint_switching_with(
                    &alg,
                    &g,
                    g.n() + 1,
                    EngineStrategy::default(),
                    SwitchThresholds::default(),
                )
            },
            &mut cases,
        );
        assert_eq!(cases.len(), 6);
        assert!(cases.iter().any(|c| c.algorithm == "apsp dense-block"));
        assert!(cases.iter().any(|c| c.algorithm == "apsp switching"));

        // The shard sweep cross-checks sharded states bit-identical
        // against the owned reference and records exchange volume.
        measure_shard_sweep("mini", &g, &[1, 2], &[2], &reference, &mut cases);
        assert_eq!(cases.len(), 8);
        let sharded: Vec<_> = cases.iter().filter(|c| c.shards > 1).collect();
        assert_eq!(sharded.len(), 2);
        assert!(sharded.iter().all(|c| c.algorithm == "apsp sharded(2)"));
        // A 2-shard run on a connected G(n, m) graph must cross the cut.
        assert!(sharded.iter().all(|c| c.shard_msgs > 0));
        assert!(sharded.iter().all(|c| c.shard_msg_bytes > 0));
        // Exchange volume is deterministic: identical across thread counts.
        assert_eq!(sharded[0].shard_msgs, sharded[1].shard_msgs);
        assert_eq!(sharded[0].shard_msg_bytes, sharded[1].shard_msg_bytes);
        // Unsharded rows report zero exchange traffic.
        assert!(cases
            .iter()
            .filter(|c| c.shards <= 1)
            .all(|c| c.shard_msgs == 0 && c.shard_msg_bytes == 0));

        let json = parallel_suite_json(&cases);
        assert!(json.contains("\"suite\": \"parallel\""));
        assert!(json.contains("\"host_threads\""));
        // Speedups are flagged invalid on single-core hosts (and only
        // there): downstream trajectory tooling must not read a 1.0x
        // column as "the backend does not scale".
        let single_core = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            == 1;
        assert!(json.contains(&format!("\"speedups_valid\": {}", !single_core)));
        assert_eq!(json.contains("\"note\""), single_core);
        assert_eq!(json.matches("\"threads\"").count(), cases.len());
        assert_eq!(json.matches("\"shard_msgs\"").count(), cases.len());
        assert_eq!(json.matches("\"shard_msg_bytes\"").count(), cases.len());

        let table = parallel_suite_table(&cases).render();
        assert!(table.contains("mini") && table.contains("speedup"));
    }

    #[test]
    fn thread_counts_are_sorted_unique_and_start_at_one() {
        let counts = thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert!(counts.contains(&2) && counts.contains(&4));
    }
}
