//! The engine benchmark suite: dense vs frontier vs hybrid scheduling on
//! the standard graph catalog, with machine-readable output.
//!
//! Run via `exp_baseline` (or `cargo bench --bench bench_engine` for the
//! criterion timings); emits `BENCH_engine.json` so successive PRs can
//! track the performance trajectory of the iteration core. Every case
//! cross-checks that the sparse strategies reproduce the dense states
//! bit-identically before recording numbers — a benchmark of a wrong
//! answer is worthless.
//!
//! Rows measure the **production path** of each workload: for the LE
//! lists that is the epoch-arena backend (`le_lists_direct` routes
//! through [`mte_core::arena::ArenaEngine`] since the arena rework), so
//! the `frontier`/`hybrid` rows time the arena engine and the
//! `…+owned` rows keep the owned `Vec<DistanceMap>` backend visible for
//! comparison. SSSP keeps its owned rows (the generic engine is its
//! production path) plus `…+arena` rows. APSP rows on the dense catalog
//! measure the flat-matrix backend (`dense-block`) and the
//! representation-switching hybrid (`switching`) against the owned
//! sparse reference. Every row carries the storage counters
//! (`bytes_copied`, `alloc_count`, `arena_bytes`) and the switching
//! counters (`dense_flips`, `dense_hops`) so the copy-on-write and
//! matrix-mode wins show up in the trajectory, not just wall time.

use crate::tables::{f, Table};
use mte_algebra::DistanceMap;
use mte_core::arena::{run_to_fixpoint_arena_with, ArenaMbfAlgorithm};
use mte_core::catalog::SourceDetection;
use mte_core::dense::{
    run_to_fixpoint_dense_with, run_to_fixpoint_switching_with, SwitchThresholds,
};
use mte_core::engine::{run_to_fixpoint_with, EngineStrategy, MbfAlgorithm, MbfRun};
use mte_core::frt::le_list::{LeListAlgorithm, Ranks};
use mte_core::work::WorkStats;
use mte_graph::generators::{gnm_graph, grid_graph, path_graph};
use mte_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// One measured (graph, algorithm, strategy) cell.
#[derive(Clone, Debug)]
pub struct EngineCase {
    /// Graph family label.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Algorithm label.
    pub algorithm: String,
    /// Strategy label.
    pub strategy: String,
    /// Wall time of the full fixpoint run, in milliseconds.
    pub wall_ms: f64,
    /// Iterations to fixpoint.
    pub iterations: usize,
    /// Work counters of the run.
    pub work: WorkStats,
    /// Largest final state (`max_v |x_v|`). For LE lists, Lemma 7.6
    /// bounds this by `O(log n)` w.h.p. — recording it makes the bound
    /// empirically visible in the perf trajectory.
    pub max_list_len: usize,
    /// Mean final state size (`Σ_v |x_v| / n`).
    pub mean_list_len: f64,
}

/// The standard catalog the engine suite runs on. The first two are the
/// sparse-convergence workloads the engine issue names as acceptance
/// targets; the path is the extreme SPD = n − 1 regime.
pub fn engine_catalog() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xE16E);
    vec![
        (
            "gnm n=2000 m=6000".into(),
            gnm_graph(2000, 6000, 1.0..50.0, &mut rng),
        ),
        ("grid 50x50".into(), grid_graph(50, 50, 1.0..5.0, &mut rng)),
        ("path n=1024".into(), path_graph(1024, 1.0)),
    ]
}

/// The APSP-class dense catalog: smaller graphs (the workload's state
/// volume is Θ(n²)) on which the dense-block and representation-
/// switching backends are measured against the owned sparse reference.
pub fn dense_catalog() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xDE45);
    vec![
        (
            "gnm n=400 m=1600".into(),
            gnm_graph(400, 1600, 1.0..50.0, &mut rng),
        ),
        ("grid 20x20".into(), grid_graph(20, 20, 1.0..5.0, &mut rng)),
    ]
}

fn strategy_label(s: EngineStrategy) -> String {
    match s {
        EngineStrategy::Dense => "dense".into(),
        EngineStrategy::Frontier => "frontier".into(),
        EngineStrategy::Hybrid { dense_threshold } => format!("hybrid({dense_threshold})"),
    }
}

/// The strategies each workload is measured under.
pub fn measured_strategies() -> [EngineStrategy; 3] {
    [
        EngineStrategy::Dense,
        EngineStrategy::Frontier,
        EngineStrategy::default(),
    ]
}

/// Records one timed fixpoint run as a case row, after cross-checking
/// its states against the dense reference.
#[allow(clippy::too_many_arguments)]
fn record<A>(
    graph_label: &str,
    g: &Graph,
    alg_label: &str,
    alg: &A,
    strategy_name: String,
    run: MbfRun<A::M>,
    wall_ms: f64,
    reference: &MbfRun<A::M>,
    out: &mut Vec<EngineCase>,
) where
    A: MbfAlgorithm,
    A::M: PartialEq + std::fmt::Debug,
{
    assert_eq!(
        run.states, reference.states,
        "{graph_label}/{alg_label}: {strategy_name} diverged from dense"
    );
    let max_list_len = run
        .states
        .iter()
        .map(|x| alg.state_size(x))
        .max()
        .unwrap_or(0);
    let total_len: usize = run.states.iter().map(|x| alg.state_size(x)).sum();
    out.push(EngineCase {
        graph: graph_label.to_string(),
        n: g.n(),
        m: g.m(),
        algorithm: alg_label.to_string(),
        strategy: strategy_name,
        wall_ms,
        iterations: run.iterations,
        work: run.work,
        max_list_len,
        mean_list_len: total_len as f64 / g.n().max(1) as f64,
    });
}

/// Measures the owned (`Vec<M>`) backend under every strategy, with the
/// given label suffix (`""` when the owned backend is the workload's
/// production path).
#[allow(clippy::too_many_arguments)]
fn measure_owned<A>(
    graph_label: &str,
    g: &Graph,
    alg_label: &str,
    alg: &A,
    suffix: &str,
    skip_dense: bool,
    reference: &MbfRun<A::M>,
    out: &mut Vec<EngineCase>,
) where
    A: MbfAlgorithm,
    A::M: PartialEq + std::fmt::Debug,
{
    let cap = g.n() + 1;
    for strategy in measured_strategies() {
        if skip_dense && strategy == EngineStrategy::Dense {
            continue;
        }
        let t0 = Instant::now();
        let run = run_to_fixpoint_with(alg, g, cap, strategy);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let label = format!("{}{suffix}", strategy_label(strategy));
        record(
            graph_label,
            g,
            alg_label,
            alg,
            label,
            run,
            wall_ms,
            reference,
            out,
        );
    }
}

/// Measures the epoch-arena backend under the sparse strategies (a
/// dense+arena row would time pool churn the production paths never
/// exhibit), with the given label suffix.
fn measure_arena<A>(
    graph_label: &str,
    g: &Graph,
    alg_label: &str,
    alg: &A,
    suffix: &str,
    reference: &MbfRun<DistanceMap>,
    out: &mut Vec<EngineCase>,
) where
    A: ArenaMbfAlgorithm,
{
    let cap = g.n() + 1;
    for strategy in [EngineStrategy::Frontier, EngineStrategy::default()] {
        let t0 = Instant::now();
        let run = run_to_fixpoint_arena_with(alg, g, cap, strategy);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let label = format!("{}{suffix}", strategy_label(strategy));
        record(
            graph_label,
            g,
            alg_label,
            alg,
            label,
            run,
            wall_ms,
            reference,
            out,
        );
    }
}

/// Runs the suite: SSSP and LE lists to fixpoint on every catalog graph
/// under every strategy and both storage backends. For LE lists the
/// plain `frontier`/`hybrid` rows time the arena backend (the
/// production path of `le_lists_direct`); `…+owned` rows keep the owned
/// backend in the trajectory. For SSSP the plain rows stay owned (its
/// production path) and `…+arena` rows ride along.
pub fn engine_suite() -> Vec<EngineCase> {
    let mut cases = Vec::new();
    for (label, g) in engine_catalog() {
        let cap = g.n() + 1;
        // Each workload's dense reference sweep is run (and timed) once
        // — it is the suite's slowest case — and doubles as its own
        // `dense` row.
        let sssp = SourceDetection::sssp(g.n(), 0);
        let t0 = Instant::now();
        let reference = run_to_fixpoint_with(&sssp, &g, cap, EngineStrategy::Dense);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        record(
            &label,
            &g,
            "sssp",
            &sssp,
            "dense".into(),
            reference.clone(),
            wall_ms,
            &reference,
            &mut cases,
        );
        measure_owned(&label, &g, "sssp", &sssp, "", true, &reference, &mut cases);
        measure_arena(&label, &g, "sssp", &sssp, "+arena", &reference, &mut cases);

        let mut rng = StdRng::seed_from_u64(0x1E11);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let le = LeListAlgorithm::new(ranks);
        let t0 = Instant::now();
        let reference = run_to_fixpoint_with(&le, &g, cap, EngineStrategy::Dense);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        record(
            &label,
            &g,
            "le_lists",
            &le,
            "dense".into(),
            reference.clone(),
            wall_ms,
            &reference,
            &mut cases,
        );
        measure_arena(&label, &g, "le_lists", &le, "", &reference, &mut cases);
        measure_owned(
            &label, &g, "le_lists", &le, "+owned", true, &reference, &mut cases,
        );
    }

    // APSP-class rows: owned sparse reference vs the dense-block matrix
    // backend vs representation switching, on the dense catalog.
    for (label, g) in dense_catalog() {
        let cap = g.n() + 1;
        let apsp = SourceDetection::apsp(g.n());
        let t0 = Instant::now();
        let reference = run_to_fixpoint_with(&apsp, &g, cap, EngineStrategy::Dense);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        record(
            &label,
            &g,
            "apsp",
            &apsp,
            "dense".into(),
            reference.clone(),
            wall_ms,
            &reference,
            &mut cases,
        );
        let t0 = Instant::now();
        let run = run_to_fixpoint_dense_with(&apsp, &g, cap, EngineStrategy::Dense);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        record(
            &label,
            &g,
            "apsp",
            &apsp,
            "dense-block".into(),
            run,
            wall_ms,
            &reference,
            &mut cases,
        );
        let t0 = Instant::now();
        let run = run_to_fixpoint_switching_with(
            &apsp,
            &g,
            cap,
            EngineStrategy::default(),
            SwitchThresholds::default(),
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        record(
            &label,
            &g,
            "apsp",
            &apsp,
            "switching".into(),
            run,
            wall_ms,
            &reference,
            &mut cases,
        );
    }
    cases
}

/// Renders the suite as a table, with the per-workload dense/frontier
/// relaxation ratio (the headline number of the engine rework).
pub fn engine_suite_table(cases: &[EngineCase]) -> Table {
    let mut t = Table::new(
        "Engine suite: dense vs frontier vs hybrid, owned vs arena (fixpoint runs, states cross-checked)",
        &[
            "graph",
            "algorithm",
            "strategy",
            "wall ms",
            "iters",
            "edge relax",
            "touched",
            "copied KiB",
            "allocs",
            "vs dense",
        ],
    );
    for case in cases {
        let dense_relax = cases
            .iter()
            .find(|c| {
                c.graph == case.graph && c.algorithm == case.algorithm && c.strategy == "dense"
            })
            .map(|c| c.work.edge_relaxations)
            .unwrap_or(case.work.edge_relaxations);
        let ratio = dense_relax as f64 / case.work.edge_relaxations.max(1) as f64;
        t.push(vec![
            case.graph.clone(),
            case.algorithm.clone(),
            case.strategy.clone(),
            f(case.wall_ms, 1),
            case.iterations.to_string(),
            case.work.edge_relaxations.to_string(),
            case.work.touched_vertices.to_string(),
            f(case.work.bytes_copied as f64 / 1024.0, 0),
            case.work.alloc_count.to_string(),
            format!("{:.2}x", ratio),
        ]);
    }
    t
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes the suite to the `BENCH_engine.json` schema (hand-rolled;
/// the workspace carries no serialization dependency).
pub fn engine_suite_json(cases: &[EngineCase]) -> String {
    let mut out = String::from("{\n  \"suite\": \"engine\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"graph\": \"{}\", \"n\": {}, \"m\": {}, ",
                "\"algorithm\": \"{}\", \"strategy\": \"{}\", ",
                "\"wall_ms\": {:.3}, \"iterations\": {}, ",
                "\"entries_processed\": {}, \"edge_relaxations\": {}, ",
                "\"touched_vertices\": {}, ",
                "\"bytes_copied\": {}, \"alloc_count\": {}, \"arena_bytes\": {}, ",
                "\"dense_flips\": {}, \"dense_hops\": {}, ",
                "\"shard_msgs\": {}, \"shard_msg_bytes\": {}, ",
                "\"max_list_len\": {}, \"mean_list_len\": {:.3}}}{}\n"
            ),
            json_escape(&c.graph),
            c.n,
            c.m,
            json_escape(&c.algorithm),
            json_escape(&c.strategy),
            c.wall_ms,
            c.iterations,
            c.work.entries_processed,
            c.work.edge_relaxations,
            c.work.touched_vertices,
            c.work.bytes_copied,
            c.work.alloc_count,
            c.work.arena_bytes,
            c.work.dense_flips,
            c.work.dense_hops,
            c.work.shard_msgs,
            c.work.shard_msg_bytes,
            c.max_list_len,
            c.mean_list_len,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature suite run (small graphs) exercising the measurement,
    /// table, and JSON paths end to end — both storage backends.
    #[test]
    fn mini_suite_measures_and_serializes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm_graph(40, 90, 1.0..9.0, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 0);
        let reference = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Dense);
        let mut cases = Vec::new();
        measure_owned("mini", &g, "sssp", &alg, "", false, &reference, &mut cases);
        measure_arena("mini", &g, "sssp", &alg, "+arena", &reference, &mut cases);
        assert_eq!(cases.len(), measured_strategies().len() + 2);
        let dense = &cases[0];
        let frontier = &cases[1];
        assert_eq!(dense.strategy, "dense");
        assert!(frontier.work.edge_relaxations < dense.work.edge_relaxations);
        // The arena rows carry the storage counters the owned rows lack.
        let arena_frontier = cases
            .iter()
            .find(|c| c.strategy == "frontier+arena")
            .expect("arena row present");
        assert!(arena_frontier.work.arena_bytes > 0);
        assert!(
            arena_frontier.work.edge_relaxations <= frontier.work.edge_relaxations,
            "identical schedule; arena may skip absorbed merges"
        );
        assert!(arena_frontier.work.bytes_copied < frontier.work.bytes_copied);

        let json = engine_suite_json(&cases);
        assert!(json.contains("\"suite\": \"engine\""));
        assert!(json.contains("\"edge_relaxations\""));
        // Storage counters ride along in every row.
        assert_eq!(json.matches("\"bytes_copied\"").count(), cases.len());
        assert_eq!(json.matches("\"alloc_count\"").count(), cases.len());
        assert_eq!(json.matches("\"arena_bytes\"").count(), cases.len());
        // Representation-switching counters too.
        assert_eq!(json.matches("\"dense_flips\"").count(), cases.len());
        assert_eq!(json.matches("\"dense_hops\"").count(), cases.len());
        // Exchange-volume counters (0 for unsharded rows, but present so
        // the schema is uniform with the sharded parallel-suite rows).
        assert_eq!(json.matches("\"shard_msgs\"").count(), cases.len());
        assert_eq!(json.matches("\"shard_msg_bytes\"").count(), cases.len());
        // The Lemma 7.6 list-length statistics ride along in every row.
        assert_eq!(json.matches("\"max_list_len\"").count(), cases.len());
        assert_eq!(json.matches("\"mean_list_len\"").count(), cases.len());
        assert_eq!(json.matches("\"graph\"").count(), cases.len());

        let table = engine_suite_table(&cases).render();
        assert!(table.contains("dense") && table.contains("frontier"));
    }
}
