//! Experiment implementations, one per reproduced claim (DESIGN.md §4).
//!
//! Each function returns a [`Table`] that the corresponding `exp_*`
//! binary prints; EXPERIMENTS.md records the outputs.

use crate::tables::{f, Table};
use mte_algebra::{Dist, NodeId};
use mte_core::frt::le_list::{le_lists_direct, le_lists_oracle, Ranks};
use mte_core::frt::{sample_direct, sample_from_metric, FrtConfig, FrtEmbedding};
use mte_core::metric::{approximate_metric, approximate_metric_with_spanner, MetricConfig};
use mte_core::simgraph::{LevelAssignment, SimulatedGraph};
use mte_graph::algorithms::{apsp, hop_diameter, shortest_path_diameter, sssp_hop_limited};
use mte_graph::generators::*;
use mte_graph::hopset::{Hopset, HopsetConfig};
use mte_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// E1 — Lemma 4.1: the maximum sampled level Λ is O(log n) w.h.p.
pub fn exp_levels() -> Table {
    let mut t = Table::new(
        "E1 (Lemma 4.1): level sampling, Λ vs log₂ n over 200 trials",
        &["n", "log2(n)", "mean Λ", "max Λ"],
    );
    for e in [8, 10, 12, 14, 16] {
        let n = 1usize << e;
        let mut r = rng(1000 + e as u64);
        let (mut sum, mut max) = (0u64, 0u32);
        let trials = 200;
        for _ in 0..trials {
            let la = LevelAssignment::sample(n, &mut r);
            sum += la.lambda() as u64;
            max = max.max(la.lambda());
        }
        t.push(vec![
            n.to_string(),
            f(e as f64, 0),
            f(sum as f64 / trials as f64, 2),
            max.to_string(),
        ]);
    }
    t
}

/// E2 — Theorem 4.5: SPD(H) ∈ O(log² n) even when SPD(G) = n − 1.
pub fn exp_spd() -> Table {
    let mut t = Table::new(
        "E2 (Theorem 4.5): SPD(H) vs SPD(G), ε̂ = 0.1 (mean over 5 level samples)",
        &[
            "graph",
            "n",
            "SPD(G)",
            "mean SPD(H)",
            "max SPD(H)",
            "log2²(n)",
        ],
    );
    let cases: Vec<(&str, Graph)> = vec![
        ("path", path_graph(128, 1.0)),
        ("path", path_graph(256, 1.0)),
        ("path", path_graph(512, 1.0)),
        ("cycle", cycle_graph(256, 1.0)),
        ("gnm m=3n", gnm_graph(256, 768, 1.0..10.0, &mut rng(2))),
        (
            "caterpillar",
            caterpillar_graph(192, 64, 1.0, 1.0..2.0, &mut rng(3)),
        ),
    ];
    for (name, g) in cases {
        let spd_g = shortest_path_diameter(&g);
        let mut r = rng(100);
        let (mut sum, mut max) = (0u64, 0u32);
        let trials = 5;
        for _ in 0..trials {
            let sim = SimulatedGraph::without_hopset(&g, spd_g as usize, 0.1, &mut r);
            let h = sim.explicit_h();
            let spd_h = shortest_path_diameter(&h);
            sum += spd_h as u64;
            max = max.max(spd_h);
        }
        let log2n = (g.n() as f64).log2();
        t.push(vec![
            name.into(),
            g.n().to_string(),
            spd_g.to_string(),
            f(sum as f64 / trials as f64, 1),
            max.to_string(),
            f(log2n * log2n, 0),
        ]);
    }
    t
}

/// E3 — Theorem 4.5 / Eq. (4.16): H's distances sandwich G's.
pub fn exp_h_stretch() -> Table {
    let mut t = Table::new(
        "E3 (Theorem 4.5): stretch of H over G vs the (1+ε̂)^{Λ+1} bound",
        &["ε̂", "Λ", "max stretch", "mean stretch", "bound (1+ε̂)^{Λ+1}"],
    );
    let g = gnm_graph(192, 576, 1.0..10.0, &mut rng(4));
    let spd = shortest_path_diameter(&g) as usize;
    let dg = apsp(&g);
    for eps in [0.02, 0.05, 0.1, 0.3] {
        let mut r = rng(5);
        let sim = SimulatedGraph::without_hopset(&g, spd, eps, &mut r);
        let dh = apsp(&sim.explicit_h());
        let (mut max_s, mut sum_s, mut cnt) = (1.0f64, 0.0, 0u64);
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                let s = dh[u][v].value() / dg[u][v].value();
                max_s = max_s.max(s);
                sum_s += s;
                cnt += 1;
            }
        }
        let bound = (1.0 + eps).powi(sim.levels().lambda() as i32 + 1);
        t.push(vec![
            f(eps, 2),
            sim.levels().lambda().to_string(),
            f(max_s, 4),
            f(sum_s / cnt as f64, 4),
            f(bound, 4),
        ]);
    }
    t
}

/// E4 — Observation 1.1: hop-set d-hop "distances" violate the triangle
/// inequality (unless exact); H's metric never does.
pub fn exp_triangle() -> Table {
    let mut t = Table::new(
        "E4 (Observation 1.1): triangle-inequality violations, sampled triples",
        &["metric", "d", "violated triples", "of", "max violation"],
    );
    let g = path_graph(96, 1.0);
    let mut r = rng(6);
    let hs = Hopset::build(
        &g,
        &HopsetConfig {
            d: 9,
            epsilon: 0.25,
            oversample: 3.0,
        },
        &mut r,
    );
    let aug = hs.augment(&g);
    // d-hop distances on G' as a pseudo-metric.
    let dd: Vec<Vec<Dist>> = (0..g.n() as NodeId)
        .map(|s| sssp_hop_limited(&aug, s, hs.d))
        .collect();
    let sim = SimulatedGraph::without_hopset(&aug, hs.d, 0.1, &mut r);
    let dh = apsp(&sim.explicit_h());

    for (name, m) in [("dist^d on G+hopset", &dd), ("dist on H", &dh)] {
        let (mut violated, mut total, mut worst) = (0u64, 0u64, 0.0f64);
        for u in (0..g.n()).step_by(5) {
            for v in (0..g.n()).step_by(7) {
                for w in (0..g.n()).step_by(3) {
                    if u == v || v == w || u == w {
                        continue;
                    }
                    total += 1;
                    let lhs = m[u][v].value();
                    let rhs = m[u][w].value() + m[w][v].value();
                    if lhs > rhs + 1e-9 {
                        violated += 1;
                        worst = worst.max(lhs / rhs);
                    }
                }
            }
        }
        t.push(vec![
            name.into(),
            hs.d.to_string(),
            violated.to_string(),
            total.to_string(),
            f(worst, 4),
        ]);
    }
    t
}

/// E5 — Theorem 5.2: the oracle reproduces explicit-H results at sparse
/// cost.
pub fn exp_oracle_work() -> Table {
    let mut t = Table::new(
        "E5 (Theorem 5.2): oracle vs explicit H — identical LE lists, sparse work",
        &[
            "n",
            "m",
            "identical",
            "oracle entries",
            "explicit-H entries",
            "n²·SPD(H)",
        ],
    );
    // n caps at 384: the dense explicit-H baseline needs minutes beyond
    // that (n−1 entries per row to merge — the cost the oracle avoids).
    for n in [96, 192, 384] {
        let mut r = rng(7 + n as u64);
        let g = gnm_graph(n, 3 * n, 1.0..10.0, &mut r);
        let spd = shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd, 0.1, &mut r);
        let ranks = Arc::new(Ranks::sample(n, &mut r));
        let (via_oracle, h_iters, oracle_work) = le_lists_oracle(&sim, &ranks, Some(4 * n));
        let h = sim.explicit_h();
        let (via_h, _, h_work) = le_lists_direct(&h, &ranks);
        let identical = mte_core::frt::le_list::le_lists_approx_eq(&via_oracle, &via_h, 1e-9);
        t.push(vec![
            n.to_string(),
            g.m().to_string(),
            identical.to_string(),
            oracle_work.entries_processed.to_string(),
            h_work.entries_processed.to_string(),
            ((n * n) as u64 * h_iters as u64).to_string(),
        ]);
    }
    t
}

/// E6 — the hop-set property (Equation (1.3)) of the Cohen substitute.
pub fn exp_hopset() -> Table {
    let mut t = Table::new(
        "E6 (hop sets, Eq. 1.3): dist^d(G+E') vs (1+ε̂)·dist(G)",
        &["n", "d", "ε̂", "hubs", "added edges", "max ratio", "ok"],
    );
    let g = gnm_graph(384, 1152, 1.0..20.0, &mut rng(8));
    let exact = apsp(&g);
    for (d, eps) in [(17, 0.0), (33, 0.0), (65, 0.0), (129, 0.0), (33, 0.25)] {
        let mut r = rng(9);
        let hs = Hopset::build(
            &g,
            &HopsetConfig {
                d,
                epsilon: eps,
                oversample: 1.0,
            },
            &mut r,
        );
        let aug = hs.augment(&g);
        let mut max_ratio: f64 = 1.0;
        for s in (0..g.n() as NodeId).step_by(4) {
            let limited = sssp_hop_limited(&aug, s, d);
            for v in 0..g.n() {
                let e = exact[s as usize][v].value();
                if e > 0.0 {
                    max_ratio = max_ratio.max(limited[v].value() / e);
                }
            }
        }
        let ok = max_ratio <= 1.0 + eps + 1e-9;
        t.push(vec![
            g.n().to_string(),
            d.to_string(),
            f(eps, 2),
            hs.hubs.len().to_string(),
            hs.len().to_string(),
            f(max_ratio, 4),
            ok.to_string(),
        ]);
    }
    t
}

/// E7 — Lemma 7.6: LE lists have length O(log n) w.h.p.
pub fn exp_le_lists() -> Table {
    let mut t = Table::new(
        "E7 (Lemma 7.6): LE-list lengths vs ln n (direct computation, exact metric)",
        &["n", "m", "mean |LE|", "max |LE|", "ln n", "H_n"],
    );
    for e in [7, 8, 9, 10, 11, 12] {
        let n = 1usize << e;
        let mut r = rng(10 + e as u64);
        let g = gnm_graph(n, 3 * n, 1.0..50.0, &mut r);
        let ranks = Arc::new(Ranks::sample(n, &mut r));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let max = lists.iter().map(|l| l.len()).max().unwrap();
        let harmonic: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        t.push(vec![
            n.to_string(),
            g.m().to_string(),
            f(total as f64 / n as f64, 2),
            max.to_string(),
            f((n as f64).ln(), 2),
            f(harmonic, 2),
        ]);
    }
    t
}

/// Mean / max per-pair expected stretch over `trees` independent samples
/// produced by `sampler`.
fn stretch_profile(
    g: &Graph,
    dist: &[Vec<Dist>],
    trees: usize,
    mut sampler: impl FnMut(usize) -> Vec<Vec<f64>>,
) -> (f64, f64) {
    let n = g.n();
    let mut acc = vec![vec![0.0f64; n]; n];
    for t in 0..trees {
        let td = sampler(t);
        for u in 0..n {
            for v in (u + 1)..n {
                acc[u][v] += td[u][v];
            }
        }
    }
    let (mut sum, mut max, mut cnt) = (0.0f64, 0.0f64, 0u64);
    for u in 0..n {
        for v in (u + 1)..n {
            let expected = acc[u][v] / trees as f64;
            let s = expected / dist[u][v].value();
            sum += s;
            max = max.max(s);
            cnt += 1;
        }
    }
    (sum / cnt as f64, max)
}

fn tree_distance_matrix(tree: &mte_core::frt::FrtTree, n: usize) -> Vec<Vec<f64>> {
    let mut td = vec![vec![0.0f64; n]; n];
    for u in 0..n {
        for v in (u + 1)..n {
            td[u][v] = tree.leaf_distance(u as NodeId, v as NodeId);
        }
    }
    td
}

/// E8 — Theorem 7.9 / Corollary 7.10: expected stretch O(log n).
pub fn exp_frt_stretch() -> Table {
    let mut t = Table::new(
        "E8 (Thm 7.9/Cor 7.10): per-pair expected stretch vs log₂ n (32 trees; \
         'pipeline' = hop set + H + oracle, 8 trees)",
        &[
            "family",
            "n",
            "sampler",
            "mean E[stretch]",
            "max E[stretch]",
            "log2 n",
        ],
    );
    let mut families: Vec<(&str, Graph)> = vec![
        ("gnm m=4n", gnm_graph(256, 1024, 1.0..20.0, &mut rng(11))),
        ("grid 16×16", grid_graph(16, 16, 1.0..5.0, &mut rng(12))),
        ("cycle", cycle_graph(128, 1.0)),
        (
            "expander d=4",
            expander_graph(256, 4, 1.0..3.0, &mut rng(13)),
        ),
    ];
    for (name, g) in families.drain(..) {
        let dist = apsp(&g);
        let n = g.n();
        let (mean_s, max_s) = stretch_profile(&g, &dist, 32, |i| {
            let mut r = rng(4000 + i as u64);
            let s = sample_direct(&g, &mut r);
            tree_distance_matrix(&s.tree, n)
        });
        t.push(vec![
            name.into(),
            n.to_string(),
            "direct (exact)".into(),
            f(mean_s, 2),
            f(max_s, 2),
            f((n as f64).log2(), 1),
        ]);
    }
    // Full pipeline on one family to confirm the oracle path matches.
    let g = gnm_graph(256, 1024, 1.0..20.0, &mut rng(11));
    let dist = apsp(&g);
    let config = FrtConfig {
        hopset: HopsetConfig {
            d: 65,
            epsilon: 0.0,
            oversample: 2.0,
        },
        eps_hat: 0.05,
        spanner_k: None,
        max_iterations: None,
    };
    let (mean_s, max_s) = stretch_profile(&g, &dist, 8, |i| {
        let mut r = rng(5000 + i as u64);
        let emb = FrtEmbedding::sample(&g, &config, &mut r);
        tree_distance_matrix(emb.tree(), g.n())
    });
    t.push(vec![
        "gnm m=4n".into(),
        g.n().to_string(),
        "pipeline (H)".into(),
        f(mean_s, 2),
        f(max_s, 2),
        f((g.n() as f64).log2(), 1),
    ]);
    t
}

/// E9 — Corollary 7.11: spanner preprocessing trades stretch for work.
pub fn exp_spanner_frt() -> Table {
    let mut t = Table::new(
        "E9 (Cor 7.11): Baswana–Sen preprocessing — edges & work down, stretch ×(2k−1)",
        &[
            "k",
            "input edges",
            "LE work (entries)",
            "mean E[stretch]",
            "log2 n",
        ],
    );
    let g = gnm_graph(256, 4096, 1.0..10.0, &mut rng(14));
    let dist = apsp(&g);
    for k in [1usize, 2, 3] {
        let mut work_total = 0u64;
        let mut edges_used = 0usize;
        let (mean_s, _) = stretch_profile(&g, &dist, 12, |i| {
            let mut r = rng(6000 + 37 * k as u64 + i as u64);
            let input = if k == 1 {
                g.clone()
            } else {
                mte_graph::spanner::baswana_sen_spanner(&g, k, &mut r)
            };
            edges_used = input.m();
            let s = sample_direct(&input, &mut r);
            work_total += s.work.entries_processed;
            tree_distance_matrix(&s.tree, g.n())
        });
        t.push(vec![
            k.to_string(),
            edges_used.to_string(),
            (work_total / 12).to_string(),
            f(mean_s, 2),
            f((g.n() as f64).log2(), 1),
        ]);
    }
    t
}

/// E10 — Theorems 6.1/6.2: approximate metrics.
pub fn exp_metric() -> Table {
    let mut t = Table::new(
        "E10 (Thm 6.1/6.2): approximate metric quality and work",
        &[
            "variant",
            "n",
            "max ratio",
            "triangle ok",
            "oracle entries",
            "naive n²·SPD",
        ],
    );
    let g = gnm_graph(160, 480, 1.0..10.0, &mut rng(15));
    let exact = apsp(&g);
    let cfg = MetricConfig {
        hopset: HopsetConfig {
            d: 33,
            epsilon: 0.0,
            oversample: 2.0,
        },
        eps_hat: 0.05,
        max_iterations: None,
    };
    for (name, k) in [("Thm 6.1 (1+o(1))", 0usize), ("Thm 6.2 spanner k=2", 2)] {
        let mut r = rng(16);
        let metric = if k == 0 {
            approximate_metric(&g, &cfg, &mut r)
        } else {
            approximate_metric_with_spanner(&g, k, &cfg, &mut r)
        };
        let mut max_ratio: f64 = 1.0;
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u != v {
                    max_ratio = max_ratio
                        .max(metric.dist(u as NodeId, v as NodeId).value() / exact[u][v].value());
                }
            }
        }
        // Spot-check the triangle inequality on a sample of triples.
        let mut triangle_ok = true;
        for u in (0..g.n() as NodeId).step_by(7) {
            for v in (0..g.n() as NodeId).step_by(5) {
                for w in (0..g.n() as NodeId).step_by(11) {
                    if metric.dist(u, v).value()
                        > metric.dist(u, w).value() + metric.dist(w, v).value() + 1e-6
                    {
                        triangle_ok = false;
                    }
                }
            }
        }
        let spd = shortest_path_diameter(&g) as u64;
        t.push(vec![
            name.into(),
            g.n().to_string(),
            f(max_ratio, 3),
            triangle_ok.to_string(),
            metric.work.entries_processed.to_string(),
            ((g.n() * g.n()) as u64 * spd).to_string(),
        ]);
    }
    t
}

/// E11/E12 — Section 8: Congest round complexity, Khan vs skeleton.
pub fn exp_congest() -> Table {
    let mut t = Table::new(
        "E11/E12 (Sec. 8): simulated Congest rounds — Khan et al. vs skeleton",
        &[
            "graph",
            "n",
            "SPD",
            "D",
            "√n",
            "khan rounds",
            "skel rounds",
            "winner",
        ],
    );
    let mut r = rng(17);
    let cases: Vec<(&str, Graph)> = vec![
        ("gnm m=3n", gnm_graph(768, 2304, 1.0..10.0, &mut r)),
        ("grid 24×32", grid_graph(24, 32, 1.0..5.0, &mut r)),
        ("highway", highway_graph(2500, 1e5)),
        (
            "caterpillar",
            caterpillar_graph(2000, 500, 1.0, 1.0..3.0, &mut r),
        ),
    ];
    for (name, g) in cases {
        let spd = shortest_path_diameter(&g);
        let d = hop_diameter(&g);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut r));
        let (_, khan) = mte_congest::khan::khan_le_lists(&g, &ranks);
        // ℓ = n/10 keeps the skeleton sparse enough that the spanner
        // broadcast does not dominate at simulation scales (the paper's
        // ℓ = √n is the n → ∞ choice).
        let config = mte_congest::skeleton::SkeletonConfig {
            ell: Some((g.n() / 10).max(16)),
            oversample: 1.0,
            spanner_k: 3,
        };
        let skel = mte_congest::skeleton::skeleton_frt(&g, &config, &mut r);
        let winner = if skel.cost.rounds < khan.rounds {
            "skeleton"
        } else {
            "khan"
        };
        t.push(vec![
            name.into(),
            g.n().to_string(),
            spd.to_string(),
            d.to_string(),
            f((g.n() as f64).sqrt(), 0),
            khan.rounds.to_string(),
            skel.cost.rounds.to_string(),
            winner.into(),
        ]);
    }
    t
}

/// E13 — Theorem 9.2: k-median quality vs baselines.
pub fn exp_kmedian() -> Table {
    use mte_apps::kmedian::*;
    let mut t = Table::new(
        "E13 (Thm 9.2): k-median — FRT+DP vs local search and random centers",
        &[
            "graph",
            "n",
            "k",
            "FRT+DP",
            "local search",
            "random",
            "ratio vs LS",
        ],
    );
    let mut r = rng(18);
    let cases: Vec<(&str, Graph)> = vec![
        ("grid 10×10", grid_graph(10, 10, 1.0..5.0, &mut r)),
        ("gnm m=3n", gnm_graph(200, 600, 1.0..10.0, &mut r)),
        (
            "geometric",
            random_geometric_graph(200, 0.11, 100.0, &mut r),
        ),
    ];
    for (name, g) in cases {
        for k in [2usize, 4, 8] {
            let ours = solve_kmedian(&g, &KMedianConfig::new(k), &mut r);
            let ls = kmedian_local_search(&g, k, 25, &mut r);
            let random = kmedian_random_baseline(&g, k, &mut r);
            t.push(vec![
                name.into(),
                g.n().to_string(),
                k.to_string(),
                f(ours.cost, 0),
                f(ls.cost, 0),
                f(random.cost, 0),
                f(ours.cost / ls.cost, 2),
            ]);
        }
    }
    t
}

/// E14 — Theorem 10.2: buy-at-bulk quality vs lower bound and direct
/// routing.
pub fn exp_buyatbulk() -> Table {
    use mte_apps::buyatbulk::*;
    let mut t = Table::new(
        "E14 (Thm 10.2): buy-at-bulk — tree aggregation vs per-demand routing",
        &[
            "instance",
            "demands",
            "ours (best of 5)",
            "direct",
            "lower bound",
            "ours/LB",
        ],
    );
    let mut r = rng(19);
    // Mesh with random demands.
    let g1 = grid_graph(8, 8, 5.0..40.0, &mut r);
    let demands1: Vec<Demand> = (0..30)
        .map(|i| Demand {
            s: (i * 7 % g1.n()) as NodeId,
            t: (i * 13 + 5) as NodeId % g1.n() as NodeId,
            amount: 1.0 + (i % 5) as f64,
        })
        .filter(|d| d.s != d.t)
        .collect();
    // Trunk-heavy path instance.
    let g2 = path_graph(40, 1.0);
    let demands2: Vec<Demand> = (0..16)
        .map(|i| Demand {
            s: (i % 4) as NodeId,
            t: (39 - (i % 4)) as NodeId,
            amount: 1.0,
        })
        .collect();
    let cables = vec![
        CableType {
            capacity: 1.0,
            cost: 1.0,
        },
        CableType {
            capacity: 10.0,
            cost: 4.0,
        },
        CableType {
            capacity: 100.0,
            cost: 14.0,
        },
    ];
    for (name, g, demands) in [("mesh 8×8", g1, demands1), ("trunk path", g2, demands2)] {
        let inst = BuyAtBulkInstance {
            cables: cables.clone(),
            demands,
        };
        let mut best = f64::INFINITY;
        for seed in 0..5 {
            let mut rr = rng(800 + seed);
            let sol = solve_buy_at_bulk(&g, &inst, &mut rr);
            assert!(is_feasible(&inst, &sol));
            best = best.min(sol.total_cost);
        }
        let direct = direct_routing_cost(&g, &inst);
        let lb = lower_bound(&g, &inst);
        t.push(vec![
            name.into(),
            inst.demands.len().to_string(),
            f(best, 0),
            f(direct, 0),
            f(lb, 0),
            f(best / lb, 2),
        ]);
    }
    t
}

/// E16 — Section 1.1: the oracle pipeline vs the Ω(n²) explicit-metric
/// baseline (Blelloch et al.) and the Õ(SPD) direct iteration.
pub fn exp_baseline() -> Table {
    let mut t = Table::new(
        "E16 (Sec. 1.1): work, wall time & depth — metric baseline vs direct vs oracle \
         pipeline (highway graphs: SPD = n−1, the regime the pipeline targets)",
        &[
            "n",
            "sampler",
            "entries processed",
            "wall ms",
            "depth proxy (rounds)",
        ],
    );
    for n in [256usize, 512, 1024] {
        let mut r = rng(20 + n as u64);
        let g = highway_graph(n, 1e6);

        // (a) Blelloch: APSP first, then 1 MBF-like iteration on the
        // metric. Work has an Ω(n²) floor (reading the metric); the
        // sequential Dijkstras have depth Ω(n).
        let t0 = Instant::now();
        let exact = apsp(&g);
        let s = sample_from_metric(&exact, g.min_weight(), &mut r);
        let metric_ms = t0.elapsed().as_secs_f64() * 1e3;
        let metric_entries = s.work.entries_processed + (n * n) as u64;
        t.push(vec![
            n.to_string(),
            "from-metric (Ω(n²) work)".into(),
            metric_entries.to_string(),
            f(metric_ms, 1),
            n.to_string(), // Dijkstra settles one vertex at a time
        ]);

        // (b) Khan-style direct iteration: depth = Θ(SPD) rounds.
        let t0 = Instant::now();
        let s = sample_direct(&g, &mut r);
        let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
        t.push(vec![
            n.to_string(),
            "direct (Õ(SPD) depth)".into(),
            s.work.entries_processed.to_string(),
            f(direct_ms, 1),
            s.iterations.to_string(),
        ]);

        // (c) The paper's pipeline: the h simulated H-iterations each run
        // the Λ levels in parallel, d G'-iterations deep ⇒ depth ∝ h·d.
        // (With Cohen's hop set d would be polylog; our hub substitute
        // pays d ≈ n/√m — see DESIGN.md §3.)
        let d = (2.0 * (n as f64).sqrt()) as usize | 1;
        let config = FrtConfig {
            hopset: HopsetConfig {
                d,
                epsilon: 0.0,
                oversample: 1.0,
            },
            eps_hat: 0.05,
            spanner_k: None,
            max_iterations: None,
        };
        let t0 = Instant::now();
        let emb = FrtEmbedding::sample(&g, &config, &mut r);
        let oracle_ms = t0.elapsed().as_secs_f64() * 1e3;
        t.push(vec![
            n.to_string(),
            "oracle pipeline (h·d depth)".into(),
            emb.work().entries_processed.to_string(),
            f(oracle_ms, 1),
            (emb.h_iterations() * d).to_string(),
        ]);
    }
    t
}

/// Ablation — the level promotion probability `p` (the paper fixes 1/2):
/// small `p` means fewer levels (cheaper oracle iterations) but larger
/// SPD(H); large `p` the reverse. `p = 1/2` balances the product.
pub fn exp_ablation() -> Table {
    let mut t = Table::new(
        "Ablation (Sec. 4 design choice): level promotion probability p",
        &["p", "mean Λ", "mean SPD(H)", "Λ·SPD(H)", "max stretch of H"],
    );
    let g = path_graph(192, 1.0);
    let spd = shortest_path_diameter(&g) as usize;
    let dg = apsp(&g);
    for p in [0.2, 0.35, 0.5, 0.65, 0.8] {
        let trials = 5;
        let (mut lam_sum, mut spd_sum, mut stretch_max) = (0u64, 0u64, 1.0f64);
        for i in 0..trials {
            let mut r = rng(7000 + (p * 100.0) as u64 + i);
            let levels = LevelAssignment::sample_with_p(g.n(), p, &mut r);
            lam_sum += levels.lambda() as u64;
            let sim = SimulatedGraph::with_levels(&g, spd, 0.1, levels);
            let h = sim.explicit_h();
            spd_sum += shortest_path_diameter(&h) as u64;
            let dh = apsp(&h);
            for u in 0..g.n() {
                for v in (u + 1)..g.n() {
                    stretch_max = stretch_max.max(dh[u][v].value() / dg[u][v].value());
                }
            }
        }
        let lam = lam_sum as f64 / trials as f64;
        let spd_h = spd_sum as f64 / trials as f64;
        t.push(vec![
            f(p, 2),
            f(lam, 1),
            f(spd_h, 1),
            f(lam * spd_h, 0),
            f(stretch_max, 3),
        ]);
    }
    t
}

/// E15 — Section 3 catalog: per-iteration work of each MBF-like algorithm
/// (correctness is covered by the test suite; this tabulates cost).
pub fn exp_catalog() -> Table {
    use mte_core::catalog::*;
    use mte_core::engine::run_to_fixpoint;
    let mut t = Table::new(
        "E15 (Sec. 3): MBF-like catalog on gnm n=256 m=768 — iterations to fixpoint & work",
        &["algorithm", "semiring", "iterations", "entries processed"],
    );
    let mut r = rng(21);
    let g = gnm_graph(256, 768, 1.0..10.0, &mut r);
    let n = g.n();
    let cap = n + 1;

    let run1 = run_to_fixpoint(&SourceDetection::sssp(n, 0), &g, cap);
    t.push(vec![
        "SSSP (Ex. 3.3)".into(),
        "min-plus".into(),
        run1.iterations.to_string(),
        run1.work.entries_processed.to_string(),
    ]);
    let run2 = run_to_fixpoint(&SourceDetection::k_ssp(n, 4), &g, cap);
    t.push(vec![
        "4-SSP (Ex. 3.4)".into(),
        "min-plus".into(),
        run2.iterations.to_string(),
        run2.work.entries_processed.to_string(),
    ]);
    let run3 = run_to_fixpoint(&SourceDetection::apsp(n), &g, cap);
    t.push(vec![
        "APSP (Ex. 3.5)".into(),
        "min-plus".into(),
        run3.iterations.to_string(),
        run3.work.entries_processed.to_string(),
    ]);
    let run4 = run_to_fixpoint(&ForestFire::new(n, &[0, 1, 2], Dist::new(8.0)), &g, cap);
    t.push(vec![
        "forest fire (Ex. 3.7)".into(),
        "min-plus".into(),
        run4.iterations.to_string(),
        run4.work.entries_processed.to_string(),
    ]);
    let run5 = run_to_fixpoint(&WidestPaths::apwp(n), &g, cap);
    t.push(vec![
        "APWP (Ex. 3.14)".into(),
        "max-min".into(),
        run5.iterations.to_string(),
        run5.work.entries_processed.to_string(),
    ]);
    let run6 = run_to_fixpoint(&Connectivity::all_pairs(n), &g, cap);
    t.push(vec![
        "connectivity (Ex. 3.25)".into(),
        "boolean".into(),
        run6.iterations.to_string(),
        run6.work.entries_processed.to_string(),
    ]);
    let small = gnm_graph(32, 64, 1.0..5.0, &mut r);
    let run7 = run_to_fixpoint(&KShortestDistances::new(0, 3), &small, 4 * small.n());
    t.push(vec![
        "3-SDP on n=32 (Ex. 3.23)".into(),
        "all-paths".into(),
        run7.iterations.to_string(),
        run7.work.entries_processed.to_string(),
    ]);
    let ranks = Arc::new(Ranks::sample(n, &mut r));
    let run8 = run_to_fixpoint(&mte_core::frt::LeListAlgorithm::new(ranks), &g, cap);
    t.push(vec![
        "LE lists (Def. 7.3)".into(),
        "min-plus".into(),
        run8.iterations.to_string(),
        run8.work.entries_processed.to_string(),
    ]);
    t
}
