//! Minimal fixed-width table printer for experiment binaries.

/// A printable table: header row plus data rows.
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Renders the table with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats an integer-ish count.
pub fn n(x: u64) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["100".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.lines().count() >= 4);
    }
}
