//! The serving benchmark suite: point queries and batched dense-block
//! sweeps against the frozen distance oracle, with machine-readable
//! output.
//!
//! Run via `exp_serving`; emits `BENCH_serving.json` so successive PRs
//! can track the serving layer's trajectory: queries per second, the
//! p99 of per-query *work units* (the deterministic deadline currency —
//! stable across machines, unlike wall time), the cache hit rate, and
//! the shed/degraded counts from a deliberately hostile segment
//! (zero-capacity admission, floor-budget deadlines). Every measured
//! answer is cross-checked against [`FrtTree::leaf_distance`] before a
//! number is recorded — a benchmark of a wrong answer is worthless.

use crate::tables::{f, Table};
use mte_core::frt::{le_lists_direct, FrtTree, Ranks};
use mte_graph::generators::{gnm_graph, grid_graph};
use mte_graph::Graph;
use mte_serving::{CancelToken, Oracle, OracleArtifact, ServeConfig, ServeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// One measured (graph, mode) cell.
#[derive(Clone, Debug)]
pub struct ServingCase {
    /// Graph family label.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// `point` or `batch`.
    pub mode: String,
    /// Distance answers served.
    pub answers: usize,
    /// Wall time of the serving run, in milliseconds.
    pub wall_ms: f64,
    /// Answers per second.
    pub qps: f64,
    /// 99th percentile of per-query work units (per-source units for
    /// batch sweeps).
    pub p99_work: u64,
    /// Cache hits / probes over the run (0 for batch mode: sweeps
    /// bypass the point cache).
    pub cache_hit_rate: f64,
    /// Queries shed typed by the zero-capacity admission segment.
    pub shed: u64,
    /// Non-exact answers produced by the floor-budget segment, each
    /// with its ladder falls recorded.
    pub degraded: u64,
}

/// The serving catalog: the engine suite's sparse workload plus the
/// grid (shallow tree, long lists — the opposite serving profile).
pub fn serving_catalog() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0x5E4B);
    vec![
        (
            "gnm n=2000 m=6000".into(),
            gnm_graph(2000, 6000, 1.0..50.0, &mut rng),
        ),
        ("grid 40x40".into(), grid_graph(40, 40, 1.0..5.0, &mut rng)),
    ]
}

fn freeze(g: &Graph, seed: u64) -> OracleArtifact {
    let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(seed)));
    let (lists, _, _) = le_lists_direct(g, &ranks);
    let tree = FrtTree::from_le_lists(&lists, &ranks, 1.3, g.min_weight());
    OracleArtifact::from_parts(lists, Ranks::clone(&ranks), tree).expect("parts are valid")
}

fn p99(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[(samples.len() - 1).min(samples.len() * 99 / 100)]
}

/// The hostile segment shared by both modes: a zero-capacity oracle
/// sheds everything typed, a floor-budget oracle degrades everything —
/// both countable, neither allowed to panic or answer wrong.
fn stress_counts(artifact: &OracleArtifact, pairs: &[(u32, u32)]) -> (u64, u64) {
    let shed_all = Oracle::with_config(
        artifact.clone(),
        ServeConfig {
            max_in_flight: 0,
            ..ServeConfig::default()
        },
    );
    let mut shed = 0u64;
    for &(u, v) in pairs {
        match shed_all.distance(u, v) {
            Err(ServeError::Overloaded { .. }) => shed += 1,
            other => panic!("zero capacity must shed typed, got {other:?}"),
        }
    }
    let floor = Oracle::with_config(
        artifact.clone(),
        ServeConfig {
            query_budget: 3,
            ..ServeConfig::default()
        },
    );
    let mut degraded = 0u64;
    for &(u, v) in pairs {
        match floor.distance(u, v) {
            Ok(answer) => {
                assert!(!answer.exact, "3 work units cannot buy an exact answer");
                assert!(!answer.degradations.is_empty(), "ladder falls unrecorded");
                degraded += 1;
            }
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("floor budget must degrade or deadline, got {other:?}"),
        }
    }
    (shed, degraded)
}

/// Measures both modes on every catalog graph.
pub fn serving_suite() -> Vec<ServingCase> {
    serving_suite_sized(20_000, 64)
}

/// Parameterized core (small sizes keep the self-test fast).
pub fn serving_suite_sized(point_queries: usize, batch_sources: usize) -> Vec<ServingCase> {
    let mut cases = Vec::new();
    for (label, g) in serving_catalog() {
        let artifact = freeze(&g, 0x5E4C);
        let n = g.n() as u32;
        let mut rng = StdRng::seed_from_u64(0x5E4D);
        let pairs: Vec<(u32, u32)> = (0..point_queries)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let stress_pairs = &pairs[..pairs.len().min(512)];
        let (shed, degraded) = stress_counts(&artifact, stress_pairs);

        // Point mode.
        let oracle = Oracle::new(artifact.clone());
        let mut work = Vec::with_capacity(pairs.len());
        let start = Instant::now();
        for &(u, v) in &pairs {
            let answer = oracle.distance(u, v).expect("default budget serves");
            work.push(answer.work);
        }
        let wall = start.elapsed().as_secs_f64() * 1e3;
        // Spot-check against the reference before recording numbers.
        for &(u, v) in &pairs[..pairs.len().min(256)] {
            let served = oracle.distance(u, v).expect("recheck").value;
            assert!(
                served == artifact.tree().leaf_distance(u, v),
                "point answer diverged from leaf_distance"
            );
        }
        let stats = oracle.cache_stats();
        let probes = stats.hits + stats.misses;
        cases.push(ServingCase {
            graph: label.clone(),
            n: g.n(),
            m: g.m(),
            mode: "point".into(),
            answers: pairs.len(),
            wall_ms: wall,
            qps: pairs.len() as f64 / (wall / 1e3),
            p99_work: p99(work),
            cache_hit_rate: if probes == 0 {
                0.0
            } else {
                stats.hits as f64 / probes as f64
            },
            shed,
            degraded,
        });

        // Batch mode: k sources × all n targets through the dense
        // block kernel.
        let sources: Vec<u32> = (0..batch_sources as u32).map(|i| (i * 37) % n).collect();
        let oracle = Oracle::new(artifact.clone());
        let start = Instant::now();
        let batch = oracle
            .batch_distances(&sources, &CancelToken::new())
            .expect("batch budget serves");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        for (i, &s) in sources.iter().enumerate().take(8) {
            for v in (0..n).step_by(97) {
                assert!(
                    batch.distances[i][v as usize] == artifact.tree().leaf_distance(s, v),
                    "batch answer diverged from leaf_distance"
                );
            }
        }
        let answers = sources.len() * g.n();
        cases.push(ServingCase {
            graph: label,
            n: g.n(),
            m: g.m(),
            mode: "batch".into(),
            answers,
            wall_ms: wall,
            qps: answers as f64 / (wall / 1e3),
            p99_work: batch.work / sources.len().max(1) as u64,
            cache_hit_rate: 0.0,
            shed,
            degraded,
        });
    }
    cases
}

/// Renders the human-readable table.
pub fn serving_suite_table(cases: &[ServingCase]) -> Table {
    let mut table = Table::new(
        "serving suite: frozen-oracle queries (point ladder vs dense batch)",
        &[
            "graph", "n", "m", "mode", "answers", "wall ms", "qps", "p99 work", "hit rate", "shed",
            "degraded",
        ],
    );
    for c in cases {
        table.push(vec![
            c.graph.clone(),
            c.n.to_string(),
            c.m.to_string(),
            c.mode.clone(),
            c.answers.to_string(),
            f(c.wall_ms, 2),
            f(c.qps, 0),
            c.p99_work.to_string(),
            f(c.cache_hit_rate, 3),
            c.shed.to_string(),
            c.degraded.to_string(),
        ]);
    }
    table
}

/// Serializes the suite to the `BENCH_serving.json` schema (hand-rolled;
/// the workspace carries no serialization dependency).
pub fn serving_suite_json(cases: &[ServingCase]) -> String {
    use crate::engine_suite::json_escape;
    let mut out = String::from("{\n  \"suite\": \"serving\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"graph\": \"{}\", \"n\": {}, \"m\": {}, \"mode\": \"{}\", ",
                "\"answers\": {}, \"wall_ms\": {:.3}, \"qps\": {:.1}, ",
                "\"p99_work\": {}, \"cache_hit_rate\": {:.4}, ",
                "\"shed\": {}, \"degraded\": {}}}{}\n"
            ),
            json_escape(&c.graph),
            c.n,
            c.m,
            json_escape(&c.mode),
            c.answers,
            c.wall_ms,
            c.qps,
            c.p99_work,
            c.cache_hit_rate,
            c.shed,
            c.degraded,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature suite run exercising measurement, stress counting,
    /// table, and JSON paths end to end.
    #[test]
    fn mini_suite_measures_and_serializes() {
        let cases = serving_suite_sized(200, 4);
        assert_eq!(cases.len(), 2 * serving_catalog().len());
        for c in &cases {
            assert!(c.answers > 0);
            assert!(c.qps > 0.0);
            assert!(c.shed > 0, "{}: stress segment shed nothing", c.graph);
            assert!(
                c.degraded > 0,
                "{}: stress segment degraded nothing",
                c.graph
            );
        }
        let point = cases.iter().find(|c| c.mode == "point").expect("point row");
        assert!(point.p99_work > 0);
        let json = serving_suite_json(&cases);
        assert!(json.contains("\"suite\": \"serving\""));
        assert!(json.contains("\"mode\": \"batch\""));
        let table = serving_suite_table(&cases).render();
        assert!(table.contains("qps"));
    }
}
