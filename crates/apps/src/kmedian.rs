//! The k-median problem (Section 9 of the paper, Definition 9.1):
//! choose `F ⊆ V`, `|F| ≤ k`, minimizing `Σ_v dist(v, F, G)`.
//!
//! Following Blelloch et al. \[10\] adapted to graph inputs (Theorem 9.2):
//!
//! 1. **Candidate sampling** (Mettu–Plaxton style): iteratively sample
//!    `O(k)` candidates and discard the half of the remaining vertices
//!    closest to the sample; `O(log(n/k))` iterations leave a candidate
//!    set `Q` of size `O(k log(n/k))` that contains a constant-factor
//!    solution,
//! 2. **FRT embedding of the submetric on `Q`** via LE lists with
//!    initialization restricted to `Q`,
//! 3. an **exact dynamic program** on the sampled HST (`O(|T|·k²)`),
//! 4. mapping back: the chosen tree leaves *are* graph vertices; the
//!    final cost is evaluated exactly in `G`.

use mte_algebra::{Dist, NodeId};
use mte_core::engine::run_to_fixpoint;
use mte_core::frt::le_list::{LeList, LeListAlgorithm, Ranks};
use mte_core::frt::tree::FrtTree;
use mte_graph::algorithms::multi_source_dijkstra;
use mte_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Configuration for the k-median solver.
#[derive(Clone, Debug)]
pub struct KMedianConfig {
    /// Number of medians `k ≥ 1`.
    pub k: usize,
    /// Candidates sampled per pruning round, as a multiple of `k`.
    pub oversample: f64,
    /// Number of independent FRT trees sampled; the best resulting
    /// solution is kept (amplification, Section 1: repeating `log(1/ε)`
    /// times boosts the approximation guarantee to hold w.h.p.).
    pub trees: usize,
}

impl KMedianConfig {
    /// Default configuration for a given `k`.
    pub fn new(k: usize) -> Self {
        KMedianConfig {
            k,
            oversample: 3.0,
            trees: 3,
        }
    }
}

/// A k-median solution: centers and their exact cost in `G`.
#[derive(Clone, Debug)]
pub struct KMedianSolution {
    /// The chosen centers (`|centers| ≤ k`).
    pub centers: Vec<NodeId>,
    /// `Σ_v dist(v, centers, G)`, evaluated exactly.
    pub cost: f64,
}

/// Exact cost of a center set: `Σ_v dist(v, F, G)` by multi-source
/// Dijkstra.
pub fn kmedian_cost(g: &Graph, centers: &[NodeId]) -> f64 {
    assert!(!centers.is_empty(), "need at least one center");
    let (dist, _) = multi_source_dijkstra(g, centers);
    dist.iter().map(|d| d.value()).sum()
}

/// Mettu–Plaxton-style candidate sampling (step (1) of \[10\] as
/// summarized in Section 9): returns `Q` with `|Q| ∈ O(k log(n/k))`
/// containing a constant-factor-optimal center set.
pub fn kmedian_candidates(g: &Graph, k: usize, oversample: f64, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = g.n();
    let per_round = ((oversample * k as f64).ceil() as usize).max(1);
    let mut remaining: Vec<NodeId> = (0..n as NodeId).collect();
    let mut candidates: Vec<NodeId> = Vec::new();
    while remaining.len() > 4 * per_round {
        remaining.shuffle(rng);
        let sample: Vec<NodeId> = remaining[..per_round.min(remaining.len())].to_vec();
        candidates.extend_from_slice(&sample);
        // Distance of every remaining vertex to the sample (the paper
        // phrases this as the forest-fire MBF-like query on H; the
        // output — distance to the nearest sample point — is identical).
        let (dist, _) = multi_source_dijkstra(g, &sample);
        // Drop the closest half.
        let mut by_dist: Vec<NodeId> = remaining.clone();
        by_dist.sort_unstable_by(|&a, &b| dist[a as usize].cmp(&dist[b as usize]));
        remaining = by_dist[by_dist.len() / 2..].to_vec();
    }
    candidates.extend_from_slice(&remaining);
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// LE lists with sources restricted to `Q`, then an FRT tree over the
/// submetric spanned by `Q` (step (2)).
fn frt_tree_on_subset(g: &Graph, subset: &[NodeId], rng: &mut impl Rng) -> (FrtTree, Vec<NodeId>) {
    // Global random order; LE initialization only at subset nodes.
    let ranks = Arc::new(Ranks::sample(g.n(), rng));
    let alg = RestrictedLe {
        inner: LeListAlgorithm::new(Arc::clone(&ranks)),
        in_subset: {
            let mut b = vec![false; g.n()];
            for &q in subset {
                b[q as usize] = true;
            }
            b
        },
    };
    let run = run_to_fixpoint(&alg, g, g.n() + 1);

    // Re-index Q to 0..|Q| and build the tree over Q's lists only.
    let mut index = vec![u32::MAX; g.n()];
    for (i, &q) in subset.iter().enumerate() {
        index[q as usize] = i as u32;
    }
    let sub_ranks = {
        let mut order: Vec<NodeId> = (0..subset.len() as NodeId).collect();
        order.sort_unstable_by_key(|&i| ranks.rank(subset[i as usize]));
        Ranks::from_order(order)
    };
    let lists: Vec<LeList> = subset
        .iter()
        .map(|&q| {
            let entries: Vec<(NodeId, Dist)> = run.states[q as usize]
                .iter()
                .map(|(w, d)| (index[w as usize], d))
                .collect();
            debug_assert!(entries.iter().all(|&(w, _)| w != u32::MAX));
            LeList::from_entries_sorted({
                let mut e = entries;
                e.sort_unstable_by_key(|&(_, d)| d);
                e
            })
        })
        .collect();
    let beta = rng.gen_range(1.0..2.0);
    let tree = FrtTree::from_le_lists(&lists, &sub_ranks, beta, g.min_weight());
    (tree, subset.to_vec())
}

/// LE-list algorithm whose initialization is restricted to a subset
/// (sources = `Q`): every surviving entry refers to a `Q`-node, so the
/// final lists describe the complete graph on `Q` with the `G`-metric.
struct RestrictedLe {
    inner: LeListAlgorithm,
    in_subset: Vec<bool>,
}

impl mte_core::engine::MbfAlgorithm for RestrictedLe {
    type S = mte_algebra::MinPlus;
    type M = mte_algebra::DistanceMap;

    fn edge_coeff(&self, v: NodeId, w: NodeId, weight: f64) -> mte_algebra::MinPlus {
        self.inner.edge_coeff(v, w, weight)
    }

    fn filter(&self, x: &mut mte_algebra::DistanceMap) {
        self.inner.filter(x);
    }

    fn init(&self, v: NodeId) -> mte_algebra::DistanceMap {
        if self.in_subset[v as usize] {
            mte_algebra::DistanceMap::singleton(v, Dist::ZERO)
        } else {
            mte_algebra::DistanceMap::new()
        }
    }

    fn propagate_into(
        &self,
        acc: &mut mte_algebra::DistanceMap,
        state: &mte_algebra::DistanceMap,
        coeff: &mte_algebra::MinPlus,
    ) {
        acc.merge_scaled(state, coeff.0);
    }

    fn state_size(&self, x: &mte_algebra::DistanceMap) -> usize {
        x.len().max(1)
    }
}

/// Exact k-median on an HST with medians restricted to leaves
/// (step (3); the `O(k³)`-work dynamic program of Blelloch et al. \[10\]
/// specialized to our FRT trees). Returns the chosen leaf indices.
pub fn hst_kmedian_dp(tree: &FrtTree, k: usize) -> Vec<NodeId> {
    assert!(k >= 1);
    let children = tree.children();
    // Cumulative leaf-to-ancestor distance per level:
    // up[ℓ] = Σ_{i=1..ℓ} r_i (the edge from level i−1 to level i has
    // weight r_i).
    let radii = tree.radii();
    let mut up = vec![0.0; radii.len()];
    for i in 1..radii.len() {
        up[i] = up[i - 1] + radii[i];
    }

    // Post-order DP. dp[u][j] = optimal cost of serving all leaves below
    // u with exactly j medians inside u's subtree (j ≥ 1 serves
    // everything internally; j = 0 defers all leaves upward at cost 0
    // here, paid by the ancestor where they meet a median).
    let num_nodes = tree.len();
    let mut dp: Vec<Vec<f64>> = vec![Vec::new(); num_nodes];
    let mut choice: Vec<Vec<Vec<usize>>> = vec![Vec::new(); num_nodes];
    let mut leaf_count = vec![0usize; num_nodes];

    // Iterative post-order (children indices are always larger than the
    // parent's creation index? Not guaranteed — use explicit stack).
    let mut order = Vec::with_capacity(num_nodes);
    let mut stack = vec![0usize];
    while let Some(u) = stack.pop() {
        order.push(u);
        stack.extend_from_slice(&children[u]);
    }
    for &u in order.iter().rev() {
        if children[u].is_empty() {
            leaf_count[u] = 1;
            dp[u] = vec![0.0, 0.0]; // j = 0 defers; j = 1 serves itself.
            choice[u] = vec![Vec::new(), Vec::new()];
            continue;
        }
        let level = tree.nodes()[u].level as usize;
        let meet_cost = 2.0 * up[level];
        let mut acc: Vec<f64> = vec![0.0];
        let mut acc_choice: Vec<Vec<usize>> = vec![Vec::new()];
        let mut leaves_so_far = 0usize;
        for &c in &children[u] {
            leaves_so_far += leaf_count[c];
            let cap = leaves_so_far.min(k);
            let mut next = vec![f64::INFINITY; cap + 1];
            let mut next_choice: Vec<Vec<usize>> = vec![Vec::new(); cap + 1];
            for (j_acc, &cost_acc) in acc.iter().enumerate() {
                if !cost_acc.is_finite() {
                    continue;
                }
                let child_cap = leaf_count[c].min(k);
                for j_child in 0..=child_cap {
                    let j = j_acc + j_child;
                    if j > cap {
                        break;
                    }
                    // A child given 0 medians defers its leaves to this
                    // node, where they meet a median (if any ends up in
                    // the subtree) at cost meet_cost each.
                    let child_cost = if j_child == 0 {
                        leaf_count[c] as f64 * meet_cost
                    } else {
                        dp[c][j_child]
                    };
                    let total = cost_acc + child_cost;
                    if total < next[j] {
                        next[j] = total;
                        let mut ch = acc_choice[j_acc].clone();
                        ch.push(j_child);
                        next_choice[j] = ch;
                    }
                }
            }
            acc = next;
            acc_choice = next_choice;
        }
        // Only now that all children are merged: j = 0 means *no* median
        // anywhere below u, so every leaf defers upward at cost 0 here
        // (paid by the ancestor where it meets a median). During the
        // accumulation, j_acc = 0 had to keep charging meet_cost because
        // later children could still contribute the medians.
        acc[0] = 0.0;
        acc_choice[0] = vec![0; children[u].len()];
        leaf_count[u] = leaves_so_far;
        dp[u] = acc;
        choice[u] = acc_choice;
    }

    // Best root allocation with at most k medians (cost is non-increasing
    // in the number of medians).
    let root_dp = &dp[0];
    let mut best_j = 1.min(root_dp.len() - 1);
    for j in 1..root_dp.len().min(k + 1) {
        if root_dp[j] < root_dp[best_j] {
            best_j = j;
        }
    }

    // Walk down the recorded choices to collect the median leaves.
    let mut medians = Vec::new();
    let mut walk = vec![(0usize, best_j)];
    while let Some((u, j)) = walk.pop() {
        if j == 0 {
            continue;
        }
        if children[u].is_empty() {
            medians.push(tree.nodes()[u].leader);
            continue;
        }
        for (c, jc) in children[u].iter().zip(choice[u][j].iter()) {
            walk.push((*c, *jc));
        }
    }
    medians
}

/// The full pipeline of Theorem 9.2. Returns the best solution across
/// `config.trees` independent FRT samples.
pub fn solve_kmedian(g: &Graph, config: &KMedianConfig, rng: &mut impl Rng) -> KMedianSolution {
    let k = config.k.max(1);
    if k >= g.n() {
        let centers: Vec<NodeId> = (0..g.n() as NodeId).collect();
        return KMedianSolution { cost: 0.0, centers };
    }
    let candidates = kmedian_candidates(g, k, config.oversample, rng);
    let mut best: Option<KMedianSolution> = None;
    for _ in 0..config.trees.max(1) {
        let (tree, subset) = frt_tree_on_subset(g, &candidates, rng);
        let leaf_medians = hst_kmedian_dp(&tree, k);
        let centers: Vec<NodeId> = leaf_medians
            .iter()
            .map(|&leaf| subset[leaf as usize])
            .collect();
        let cost = kmedian_cost(g, &centers);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(KMedianSolution { centers, cost });
        }
    }
    best.expect("at least one tree is sampled")
}

/// Baseline: `k` uniformly random centers.
pub fn kmedian_random_baseline(g: &Graph, k: usize, rng: &mut impl Rng) -> KMedianSolution {
    let mut nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
    nodes.shuffle(rng);
    nodes.truncate(k.max(1));
    let cost = kmedian_cost(g, &nodes);
    KMedianSolution {
        centers: nodes,
        cost,
    }
}

/// Baseline: local search with single swaps (Arya et al.), a strong
/// (5-approximate at convergence) sequential reference.
pub fn kmedian_local_search(
    g: &Graph,
    k: usize,
    max_rounds: usize,
    rng: &mut impl Rng,
) -> KMedianSolution {
    let mut current = kmedian_random_baseline(g, k, rng);
    for _ in 0..max_rounds {
        let mut improved = false;
        'outer: for i in 0..current.centers.len() {
            for cand in 0..g.n() as NodeId {
                if current.centers.contains(&cand) {
                    continue;
                }
                let mut trial = current.centers.clone();
                trial[i] = cand;
                let cost = kmedian_cost(g, &trial);
                if cost + 1e-12 < current.cost {
                    current = KMedianSolution {
                        centers: trial,
                        cost,
                    };
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            break;
        }
    }
    current
}

/// Exhaustive optimum (tiny instances only — `O(n^k)`).
pub fn kmedian_exhaustive(g: &Graph, k: usize) -> KMedianSolution {
    fn recurse(
        g: &Graph,
        k: usize,
        start: NodeId,
        chosen: &mut Vec<NodeId>,
        best: &mut KMedianSolution,
    ) {
        if chosen.len() == k {
            let cost = kmedian_cost(g, chosen);
            if cost < best.cost {
                *best = KMedianSolution {
                    centers: chosen.clone(),
                    cost,
                };
            }
            return;
        }
        for v in start..g.n() as NodeId {
            chosen.push(v);
            recurse(g, k, v + 1, chosen, best);
            chosen.pop();
        }
    }
    let mut best = KMedianSolution {
        centers: vec![0],
        cost: f64::INFINITY,
    };
    recurse(g, k.max(1).min(g.n()), 0, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::generators::{gnm_graph, grid_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn candidates_contain_reasonable_set() {
        let mut rng = StdRng::seed_from_u64(111);
        let g = gnm_graph(120, 300, 1.0..9.0, &mut rng);
        let q = kmedian_candidates(&g, 3, 3.0, &mut rng);
        assert!(q.len() >= 3);
        assert!(q.len() < g.n());
        let mut sorted = q.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), q.len(), "candidates must be distinct");
    }

    #[test]
    fn dp_on_path_picks_spread_out_medians() {
        // Path of 9 nodes, k = 3: the optimum spreads the medians out;
        // cost must match the exhaustive optimum on the *tree* metric…
        // here we simply check the end-to-end ratio vs the graph optimum.
        let g = path_graph(9, 1.0);
        let mut rng = StdRng::seed_from_u64(112);
        let sol = solve_kmedian(
            &g,
            &KMedianConfig {
                k: 3,
                oversample: 3.0,
                trees: 5,
            },
            &mut rng,
        );
        let opt = kmedian_exhaustive(&g, 3);
        assert!(sol.centers.len() <= 3);
        assert!(
            sol.cost <= 3.0 * opt.cost + 1e-9,
            "cost {} vs optimum {}",
            sol.cost,
            opt.cost
        );
    }

    #[test]
    fn solver_beats_random_baseline_on_average() {
        let mut rng = StdRng::seed_from_u64(113);
        let g = grid_graph(7, 7, 1.0..3.0, &mut rng);
        let k = 4;
        let mut ours = 0.0;
        let mut random = 0.0;
        for seed in 0..5 {
            let mut r1 = StdRng::seed_from_u64(300 + seed);
            let mut r2 = StdRng::seed_from_u64(400 + seed);
            ours += solve_kmedian(&g, &KMedianConfig::new(k), &mut r1).cost;
            random += kmedian_random_baseline(&g, k, &mut r2).cost;
        }
        assert!(
            ours < random,
            "FRT solution {ours} not better than random {random}"
        );
    }

    #[test]
    fn approximation_vs_exhaustive_small() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(114 + seed);
            let g = gnm_graph(14, 30, 1.0..5.0, &mut rng);
            let k = 2;
            let opt = kmedian_exhaustive(&g, k);
            let sol = solve_kmedian(
                &g,
                &KMedianConfig {
                    k,
                    oversample: 4.0,
                    trees: 6,
                },
                &mut rng,
            );
            assert!(
                sol.cost <= 4.0 * opt.cost + 1e-9,
                "seed {seed}: {} vs opt {}",
                sol.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn k_geq_n_is_free() {
        let g = path_graph(5, 1.0);
        let mut rng = StdRng::seed_from_u64(115);
        let sol = solve_kmedian(&g, &KMedianConfig::new(10), &mut rng);
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn local_search_converges() {
        let mut rng = StdRng::seed_from_u64(116);
        let g = gnm_graph(20, 50, 1.0..4.0, &mut rng);
        let ls = kmedian_local_search(&g, 2, 50, &mut rng);
        let opt = kmedian_exhaustive(&g, 2);
        assert!(ls.cost <= 5.0 * opt.cost + 1e-9);
    }
}
