//! Applications of metric tree embeddings (Sections 9 and 10 of the
//! paper): polylog-depth approximation algorithms that become easy once
//! the input graph is embedded into a random FRT tree.
//!
//! * [`kmedian`] — the k-median problem (Theorem 9.2): candidate
//!   sampling à la Mettu–Plaxton/Blelloch et al., an exact dynamic
//!   program on the sampled HST, and an expected `O(log k)` approximation
//!   overall,
//! * [`buyatbulk`] — buy-at-bulk network design (Theorem 10.2): route
//!   demands on the tree, buy cables for the aggregated flows, map the
//!   tree solution back to graph paths (Section 7.5) for an expected
//!   `O(log n)` approximation.

pub mod buyatbulk;
pub mod kmedian;

pub use buyatbulk::{BuyAtBulkInstance, BuyAtBulkSolution, CableType, Demand};
pub use kmedian::{KMedianConfig, KMedianSolution};
