//! Buy-at-bulk network design (Section 10 of the paper,
//! Definition 10.1).
//!
//! Given demands `(s_i, t_i, d_i)` and cable types `(u_j, c_j)` (capacity,
//! cost-per-unit-length), buy cable multiplicities on edges so all demands
//! can be routed simultaneously, minimizing total cost. Hard to
//! approximate better than `log^{1/2−o(1)} n` (Andrews \[4\]); the
//! tree-embedding route (Awerbuch & Azar \[5\], parallelized by Blelloch et
//! al. \[10\]) gives an expected `O(log n)` approximation:
//!
//! 1. embed `G` into a random FRT tree `T`,
//! 2. route every demand on its unique tree path and pick, per tree edge,
//!    the cheapest cable multiset for the aggregated flow (a 2-approximate
//!    single-type choice `min_j c_j·⌈f/u_j⌉` suffices, see \[10\]),
//! 3. map each used tree edge back to a graph path of weight
//!    `≤ 3·ω_T(e)` (Section 7.5) and re-buy cables for the accumulated
//!    per-edge flows in `G` (merging flows only helps: the cost function
//!    is subadditive).

use mte_algebra::NodeId;
use mte_core::frt::paths::embed_tree_edge;
use mte_core::frt::{sample_direct, BaselineSample};
use mte_graph::algorithms::sssp;
use mte_graph::Graph;
use rand::Rng;
use std::collections::BTreeMap;

/// A cable type `(u_j, c_j)`: capacity per copy and cost per unit length
/// per copy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CableType {
    /// Capacity `u_j > 0`.
    pub capacity: f64,
    /// Cost `c_j > 0` per unit of edge length.
    pub cost: f64,
}

/// A demand `(s_i, t_i, d_i)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Demand {
    /// Source terminal.
    pub s: NodeId,
    /// Target terminal.
    pub t: NodeId,
    /// Flow amount `d_i ≥ 0`.
    pub amount: f64,
}

/// A buy-at-bulk instance.
#[derive(Clone, Debug)]
pub struct BuyAtBulkInstance {
    /// Available cable types (non-empty).
    pub cables: Vec<CableType>,
    /// The demands.
    pub demands: Vec<Demand>,
}

impl BuyAtBulkInstance {
    /// Cheapest way to carry flow `f` over one unit of length using
    /// multiples of a single cable type: `min_j c_j · ⌈f/u_j⌉`.
    pub fn unit_cost_for_flow(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        self.cables
            .iter()
            .map(|c| c.cost * (f / c.capacity).ceil())
            .fold(f64::INFINITY, f64::min)
    }

    /// The best (cable type index, multiplicity) for flow `f`.
    pub fn best_cable_for_flow(&self, f: f64) -> Option<(usize, u64)> {
        if f <= 0.0 {
            return None;
        }
        self.cables
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    c.cost * (f / c.capacity).ceil(),
                    i,
                    (f / c.capacity).ceil() as u64,
                )
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, i, mult)| (i, mult))
    }
}

/// A solution: per-edge cable purchases and the total cost.
#[derive(Clone, Debug)]
pub struct BuyAtBulkSolution {
    /// Per graph edge `{u, v}` (u < v): flow routed across it and the
    /// purchased (cable index, multiplicity).
    pub edges: Vec<(NodeId, NodeId, f64, usize, u64)>,
    /// Total cost `Σ_e c_j(e)·mult(e)·ω(e)`.
    pub total_cost: f64,
}

/// Solves buy-at-bulk via a random FRT tree (Theorem 10.2). The tree is
/// sampled from the exact metric of `G` (the `Õ(SPD)`-depth sampler);
/// callers wanting the polylog-depth pipeline can pre-sample with
/// [`mte_core::frt::FrtEmbedding`] and use [`solve_on_tree`].
pub fn solve_buy_at_bulk(
    g: &Graph,
    instance: &BuyAtBulkInstance,
    rng: &mut impl Rng,
) -> BuyAtBulkSolution {
    let sample = sample_direct(g, rng);
    solve_on_tree(g, instance, &sample)
}

/// Steps (2)–(3) on an already-sampled tree.
pub fn solve_on_tree(
    g: &Graph,
    instance: &BuyAtBulkInstance,
    sample: &BaselineSample,
) -> BuyAtBulkSolution {
    assert!(!instance.cables.is_empty(), "need at least one cable type");
    let tree = &sample.tree;

    // (2) Aggregate per-tree-edge flow: climb both endpoints to the LCA.
    // tree_flow[child node index] = flow over the edge (child → parent).
    // Ordered maps here and below: the float accumulation order (and so
    // the bit pattern of `total_cost`) follows map iteration order.
    let mut tree_flow: BTreeMap<usize, f64> = BTreeMap::new();
    for d in &instance.demands {
        assert!(d.amount >= 0.0 && d.amount.is_finite());
        if d.amount == 0.0 || d.s == d.t {
            continue;
        }
        let (mut a, mut b) = (tree.leaf(d.s), tree.leaf(d.t));
        while a != b {
            // Leaves sit at equal depth; climb in lockstep.
            *tree_flow.entry(a).or_insert(0.0) += d.amount;
            *tree_flow.entry(b).or_insert(0.0) += d.amount;
            a = tree.nodes()[a].parent;
            b = tree.nodes()[b].parent;
        }
    }

    // (3) Map used tree edges back to graph paths, accumulating per-edge
    // flow in G.
    let mut edge_flow: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for (&child, &flow) in &tree_flow {
        let embedded = embed_tree_edge(g, tree, child);
        for hop in embedded.path.windows(2) {
            let (u, v) = (hop[0].min(hop[1]), hop[0].max(hop[1]));
            if u != v {
                *edge_flow.entry((u, v)).or_insert(0.0) += flow;
            }
        }
    }

    // Buy cables per graph edge.
    let mut edges = Vec::with_capacity(edge_flow.len());
    let mut total_cost = 0.0;
    for ((u, v), flow) in edge_flow {
        let (cable, mult) = instance
            .best_cable_for_flow(flow)
            .expect("positive flow always gets a cable");
        let length = g.weight(u, v).expect("embedded paths follow G edges");
        total_cost += instance.cables[cable].cost * mult as f64 * length;
        edges.push((u, v, flow, cable, mult));
    }
    edges.sort_unstable_by_key(|a| (a.0, a.1));
    BuyAtBulkSolution { edges, total_cost }
}

/// Baseline: route every demand alone on its shortest path with its own
/// cheapest cable choice (no sharing). An upper bound any aggregating
/// algorithm should beat on trunk-heavy instances.
pub fn direct_routing_cost(g: &Graph, instance: &BuyAtBulkInstance) -> f64 {
    let mut total = 0.0;
    for d in &instance.demands {
        if d.amount <= 0.0 || d.s == d.t {
            continue;
        }
        let dist = sssp(g, d.s).dist(d.t).value();
        total += instance.unit_cost_for_flow(d.amount) * dist;
    }
    total
}

/// A valid lower bound on any solution's cost:
/// `max( Σ_i d_i·dist(s_i,t_i)·min_j(c_j/u_j),  max_i lb(i) )` where
/// `lb(i)` is the cheapest conceivable routing of demand `i` alone.
pub fn lower_bound(g: &Graph, instance: &BuyAtBulkInstance) -> f64 {
    let min_rate = instance
        .cables
        .iter()
        .map(|c| c.cost / c.capacity)
        .fold(f64::INFINITY, f64::min);
    let min_cable_cost = instance
        .cables
        .iter()
        .map(|c| c.cost)
        .fold(f64::INFINITY, f64::min);
    let mut volume_lb = 0.0;
    let mut single_lb: f64 = 0.0;
    for d in &instance.demands {
        if d.amount <= 0.0 || d.s == d.t {
            continue;
        }
        let dist = sssp(g, d.s).dist(d.t).value();
        volume_lb += d.amount * dist * min_rate;
        single_lb = single_lb.max(dist * min_cable_cost.max(d.amount * min_rate));
    }
    volume_lb.max(single_lb)
}

/// Verifies that a solution's purchased capacities support routing all
/// demands along the flows it declared (feasibility check used in tests
/// and examples).
pub fn is_feasible(instance: &BuyAtBulkInstance, solution: &BuyAtBulkSolution) -> bool {
    solution.edges.iter().all(|&(_, _, flow, cable, mult)| {
        instance.cables[cable].capacity * mult as f64 >= flow - 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::generators::{gnm_graph, grid_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn economies_of_scale_cables() -> Vec<CableType> {
        vec![
            CableType {
                capacity: 1.0,
                cost: 1.0,
            },
            CableType {
                capacity: 10.0,
                cost: 4.0,
            },
            CableType {
                capacity: 100.0,
                cost: 12.0,
            },
        ]
    }

    #[test]
    fn unit_cost_prefers_bulk_cables() {
        let inst = BuyAtBulkInstance {
            cables: economies_of_scale_cables(),
            demands: vec![],
        };
        assert_eq!(inst.unit_cost_for_flow(1.0), 1.0);
        assert_eq!(inst.unit_cost_for_flow(5.0), 4.0); // one 10-cable beats five 1-cables
        assert_eq!(inst.unit_cost_for_flow(0.0), 0.0);
        assert_eq!(inst.unit_cost_for_flow(50.0), 12.0); // one 100-cable
    }

    #[test]
    fn empty_demands_cost_nothing() {
        let g = path_graph(4, 1.0);
        let inst = BuyAtBulkInstance {
            cables: economies_of_scale_cables(),
            demands: vec![],
        };
        let mut rng = StdRng::seed_from_u64(121);
        let sol = solve_buy_at_bulk(&g, &inst, &mut rng);
        assert_eq!(sol.total_cost, 0.0);
        assert!(sol.edges.is_empty());
    }

    #[test]
    fn solution_is_feasible_and_above_lower_bound() {
        let mut rng = StdRng::seed_from_u64(122);
        let g = gnm_graph(40, 90, 1.0..6.0, &mut rng);
        let demands: Vec<Demand> = (0..12)
            .map(|i| Demand {
                s: i as NodeId,
                t: (i + 13) as NodeId,
                amount: 1.0 + i as f64,
            })
            .collect();
        let inst = BuyAtBulkInstance {
            cables: economies_of_scale_cables(),
            demands,
        };
        let sol = solve_buy_at_bulk(&g, &inst, &mut rng);
        assert!(is_feasible(&inst, &sol));
        let lb = lower_bound(&g, &inst);
        assert!(sol.total_cost >= lb - 1e-9, "cost below the lower bound?!");
        // Expected O(log n) approximation; generous constant for one sample.
        assert!(
            sol.total_cost <= 20.0 * (g.n() as f64).log2() * lb,
            "cost {} vs lower bound {lb}",
            sol.total_cost
        );
    }

    #[test]
    fn aggregation_beats_direct_routing_on_trunk_instances() {
        // Many unit demands crossing the same long trunk: sharing a bulk
        // cable is much cheaper than per-demand unit cables. Compare the
        // best of a few samples (the guarantee is in expectation).
        let g = path_graph(40, 1.0);
        let demands: Vec<Demand> = (0..16)
            .map(|i| Demand {
                s: (i % 4) as NodeId,
                t: (39 - (i % 4)) as NodeId,
                amount: 1.0,
            })
            .collect();
        let inst = BuyAtBulkInstance {
            cables: vec![
                CableType {
                    capacity: 1.0,
                    cost: 1.0,
                },
                CableType {
                    capacity: 20.0,
                    cost: 2.0,
                },
            ],
            demands,
        };
        let direct = direct_routing_cost(&g, &inst);
        let best = (0..5)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(600 + seed);
                solve_buy_at_bulk(&g, &inst, &mut rng).total_cost
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < direct,
            "aggregated {best} should beat per-demand routing {direct}"
        );
    }

    #[test]
    fn single_demand_on_grid_is_near_shortest_path() {
        let mut rng = StdRng::seed_from_u64(123);
        let g = grid_graph(5, 5, 1.0..2.0, &mut rng);
        let inst = BuyAtBulkInstance {
            cables: vec![CableType {
                capacity: 1.0,
                cost: 1.0,
            }],
            demands: vec![Demand {
                s: 0,
                t: 24,
                amount: 1.0,
            }],
        };
        let direct = direct_routing_cost(&g, &inst);
        // Average over trees: expected O(log n)·direct.
        let trials = 6;
        let mut total = 0.0;
        for seed in 0..trials {
            let mut rng2 = StdRng::seed_from_u64(700 + seed);
            total += solve_buy_at_bulk(&g, &inst, &mut rng2).total_cost;
        }
        let avg = total / trials as f64;
        assert!(avg >= direct - 1e-9);
        assert!(avg <= 16.0 * (g.n() as f64).log2() * direct);
    }

    #[test]
    fn self_demands_are_ignored() {
        let g = path_graph(4, 1.0);
        let inst = BuyAtBulkInstance {
            cables: economies_of_scale_cables(),
            demands: vec![Demand {
                s: 2,
                t: 2,
                amount: 5.0,
            }],
        };
        let mut rng = StdRng::seed_from_u64(124);
        let sol = solve_buy_at_bulk(&g, &inst, &mut rng);
        assert_eq!(sol.total_cost, 0.0);
    }
}
