//! Approximate metric construction (Section 6 of the paper).
//!
//! * [`approximate_metric`] — Theorem 6.1: querying the oracle with APSP
//!   yields a `(1+o(1))`-approximate metric of `G` at polylog depth and
//!   `Õ(n(m + n^{1+ε}))` work,
//! * [`approximate_metric_with_spanner`] — Theorem 6.2: preprocessing with
//!   a Baswana–Sen `(2k−1)`-spanner trades the approximation for
//!   near-`n²` work on dense graphs.

use crate::catalog::SourceDetection;
use crate::dense::oracle_run_dense_to_fixpoint_with;
use crate::engine::EngineStrategy;
use crate::oracle::{default_iteration_cap, oracle_run_to_fixpoint};
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_algebra::{Dist, NodeId};
use mte_graph::hopset::HopsetConfig;
use mte_graph::spanner::baswana_sen_spanner;
use mte_graph::Graph;
use rand::Rng;

/// Configuration for the approximate-metric pipeline.
#[derive(Clone, Debug)]
pub struct MetricConfig {
    /// Hop-set parameters for building `G'`.
    pub hopset: HopsetConfig,
    /// Level penalty base `ε̂` of the simulated graph `H`.
    pub eps_hat: f64,
    /// Iteration cap for the oracle fixpoint loop (`None` = automatic,
    /// `O(log² n)`).
    pub max_iterations: Option<usize>,
}

impl Default for MetricConfig {
    fn default() -> Self {
        MetricConfig {
            hopset: HopsetConfig::default(),
            eps_hat: 0.05,
            max_iterations: None,
        }
    }
}

/// The result of an approximate-metric computation: a full `n × n` matrix
/// with constant-time query access, plus cost accounting.
#[derive(Clone, Debug)]
pub struct ApproximateMetric {
    dist: Vec<Vec<Dist>>,
    /// Simulated `H`-iterations until the fixpoint.
    pub h_iterations: usize,
    /// Work spent by the oracle.
    pub work: WorkStats,
}

impl ApproximateMetric {
    /// Queries `dist(u, v)` in constant time.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        self.dist[u as usize][v as usize]
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.dist.len()
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &[Vec<Dist>] {
        &self.dist
    }
}

/// Theorem 6.1: a `(1+o(1))`-approximate metric on `V` from the oracle
/// answering the APSP query on `H`. The multiplicative error is at most
/// `(1+ε̂_{hopset})·(1+ε̂)^{Λ+1}` (Equation (4.14)).
pub fn approximate_metric(
    g: &Graph,
    config: &MetricConfig,
    rng: &mut impl Rng,
) -> ApproximateMetric {
    let sim = SimulatedGraph::build(g, &config.hopset, config.eps_hat, rng);
    approximate_metric_on(&sim, config)
}

/// As [`approximate_metric`], on a pre-built simulated graph.
pub fn approximate_metric_on(sim: &SimulatedGraph, config: &MetricConfig) -> ApproximateMetric {
    let n = sim.base().n();
    let cap = config
        .max_iterations
        .unwrap_or_else(|| default_iteration_cap(n));
    let alg = SourceDetection::apsp(n);
    // APSP advertises dense states and its output *is* an n × n matrix:
    // route the oracle levels through the dense-block backend
    // (bit-identical to the owned oracle, differential-tested by
    // `tests/schedule_equivalence.rs`). The dense oracle keeps ~2(Λ+2)
    // full n×n blocks live (per-level vector + engine shadow, the
    // aggregate, and its scratch) — a Λ× footprint over the sparse
    // oracle's per-level state lists — so large instances stay on the
    // owned sparse route instead of trading speed for an OOM.
    const DENSE_ORACLE_BYTE_BUDGET: usize = 4 << 30; // 4 GiB
    let lambda = sim.levels().lambda() as usize;
    let dense_bytes = (2 * lambda + 4)
        .saturating_mul(n)
        .saturating_mul(n)
        .saturating_mul(std::mem::size_of::<f64>());
    let run = if dense_bytes <= DENSE_ORACLE_BYTE_BUDGET {
        oracle_run_dense_to_fixpoint_with(&alg, sim, cap, EngineStrategy::default())
    } else {
        oracle_run_to_fixpoint(&alg, sim, cap)
    };
    let mut dist = vec![vec![Dist::INF; n]; n];
    for (v, state) in run.states.iter().enumerate() {
        for (w, d) in state.iter() {
            dist[v][w as usize] = d;
        }
    }
    ApproximateMetric {
        dist,
        h_iterations: run.h_iterations,
        work: run.work,
    }
}

/// Theorem 6.2: an `O(1)`-approximate metric via Baswana–Sen
/// `(2k−1)`-spanner preprocessing followed by [`approximate_metric`] on
/// the spanner. The stretch is `(2k−1)(1+o(1))`.
pub fn approximate_metric_with_spanner(
    g: &Graph,
    k: usize,
    config: &MetricConfig,
    rng: &mut impl Rng,
) -> ApproximateMetric {
    let spanner = baswana_sen_spanner(g, k, rng);
    approximate_metric(&spanner, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn max_ratio(g: &Graph, metric: &ApproximateMetric) -> f64 {
        let exact = apsp(g);
        let mut worst: f64 = 1.0;
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u == v {
                    assert_eq!(metric.dist(u as NodeId, v as NodeId), Dist::ZERO);
                    continue;
                }
                let a = exact[u][v].value();
                let b = metric.dist(u as NodeId, v as NodeId).value();
                assert!(b >= a - 1e-9, "metric may not shorten ({u},{v})");
                worst = worst.max(b / a);
            }
        }
        worst
    }

    #[test]
    fn metric_approximates_distances() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gnm_graph(60, 150, 1.0..10.0, &mut rng);
        let config = MetricConfig {
            hopset: HopsetConfig {
                d: 9,
                epsilon: 0.0,
                oversample: 3.0,
            },
            eps_hat: 0.02,
            max_iterations: None,
        };
        let metric = approximate_metric(&g, &config, &mut rng);
        let ratio = max_ratio(&g, &metric);
        // (1+ε̂)^{Λ+1} with Λ ≈ log₂ 60 ≈ 6: ratio ≤ 1.02^12 ≈ 1.27.
        assert!(ratio <= 1.5, "approximation ratio {ratio} too large");
    }

    #[test]
    fn metric_satisfies_triangle_inequality() {
        // The whole point of H (Observation 1.1): the returned distances
        // form a metric, exactly.
        let mut rng = StdRng::seed_from_u64(32);
        let g = gnm_graph(30, 70, 1.0..10.0, &mut rng);
        let config = MetricConfig {
            hopset: HopsetConfig {
                d: 7,
                epsilon: 0.0,
                oversample: 3.0,
            },
            eps_hat: 0.1,
            max_iterations: None,
        };
        let metric = approximate_metric(&g, &config, &mut rng);
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                for w in 0..g.n() as NodeId {
                    let duv = metric.dist(u, v).value();
                    let duw = metric.dist(u, w).value();
                    let dwv = metric.dist(w, v).value();
                    assert!(
                        duv <= duw + dwv + 1e-6,
                        "triangle violated: d({u},{v}) > d({u},{w}) + d({w},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn spanner_variant_has_bounded_stretch() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = gnm_graph(50, 300, 1.0..5.0, &mut rng);
        let k = 2;
        let config = MetricConfig {
            hopset: HopsetConfig {
                d: 7,
                epsilon: 0.0,
                oversample: 3.0,
            },
            eps_hat: 0.02,
            max_iterations: None,
        };
        let metric = approximate_metric_with_spanner(&g, k, &config, &mut rng);
        let ratio = max_ratio(&g, &metric);
        // (2k−1)·(1+o(1)) = 3·(1+o(1)).
        assert!(ratio <= 3.0 * 1.5, "spanner metric ratio {ratio}");
    }
}
