//! Checkpointed, resumable fixpoint runs.
//!
//! A checkpoint is the pair the fixpoint loop actually needs to
//! continue: the **states** `x` after some hop, and the **residual
//! frontier** — the vertices whose last change their neighbors have not
//! absorbed yet. By skip-exactness (the argument the frontier schedule
//! is built on: a vertex outside the closed neighborhood of the
//! frontier provably recomputes to its current value bit for bit), any
//! *superset* of the residual frontier is a sound resume seed, and the
//! exact recorded frontier reproduces the uninterrupted run's schedule.
//! Resumed runs are therefore **bit-identical** to uninterrupted ones —
//! same states, same hop counts, same fixpoint flags — across the
//! owned, arena, dense, and switching backends and every `MTE_THREADS`
//! (asserted by `tests/checkpoint_resume.rs`).
//!
//! The drivers here are *sink-generic*: a [`CheckpointPolicy`] decides
//! **when** to capture, and a caller-supplied closure decides **where**
//! the capture goes — clone into memory, encode through `mte_persist`'s
//! crash-safe snapshot writer, or both. Core never depends on the
//! persistence crate; the dependency points the other way.
//!
//! Resume entry points validate the checkpoint before touching any
//! engine (state count, frontier range): a checkpoint that came from
//! disk is attacker-shaped data, and a malformed one must surface as
//! [`RunError::SnapshotCorrupt`], never a panic. The
//! [`crate::error::Supervisor`] composes these drivers into the
//! recovery ladder.

use crate::arena::{storage_work, ArenaMbfAlgorithm};
use crate::dense::{
    initial_block, DenseEngine, DenseMbfAlgorithm, SwitchThresholds, SwitchingEngine,
};
use crate::engine::{initial_states, EngineStrategy, MbfAlgorithm, MbfEngine, MbfRun};
use crate::error::{check_states, run_guarded, RunError, RunReport};
use crate::oracle::OracleRun;
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use crate::ArenaEngine;
use mte_algebra::dense::{DenseBlock, DenseKernel, DenseState};
use mte_algebra::store::EpochStore;
use mte_algebra::{DistanceMap, MinPlus, NodeId};
use mte_graph::Graph;

/// When the checkpointed drivers capture. `0` disables a trigger; the
/// default is fully disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Engine drivers: capture after every `n`-th hop (never after the
    /// confirming fixpoint hop — a checkpoint always carries the
    /// frontier of a run still in flight).
    pub every_n_hops: u64,
    /// Oracle drivers: capture after every `n`-th simulated
    /// `H`-iteration (the oracle's "level rounds").
    pub every_n_levels: u64,
}

impl CheckpointPolicy {
    /// Never capture.
    pub fn disabled() -> Self {
        CheckpointPolicy::default()
    }

    /// Capture after every `n`-th engine hop.
    pub fn every_hops(n: u64) -> Self {
        CheckpointPolicy {
            every_n_hops: n,
            every_n_levels: 0,
        }
    }

    /// Capture after every `n`-th simulated oracle round.
    pub fn every_levels(n: u64) -> Self {
        CheckpointPolicy {
            every_n_hops: 0,
            every_n_levels: n,
        }
    }

    /// `true` iff an engine hop numbered `hop` (1-based) is a capture
    /// point.
    pub fn hop_due(&self, hop: u64) -> bool {
        self.every_n_hops != 0 && hop.is_multiple_of(self.every_n_hops)
    }

    /// `true` iff an oracle round numbered `round` (1-based) is a
    /// capture point.
    pub fn level_due(&self, round: u64) -> bool {
        self.every_n_levels != 0 && round.is_multiple_of(self.every_n_levels)
    }
}

/// A resumable capture of a run mid-flight. The oracle records an empty
/// frontier: its resume path re-primes every level wholesale, which the
/// carry-over schedule proves bit-identical to continuing.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint<M> {
    /// Hops (engine) or simulated rounds (oracle) already executed.
    pub hop: u64,
    /// The residual frontier at capture time: ascending, no duplicates.
    pub frontier: Vec<NodeId>,
    /// The full state vector after hop `hop`.
    pub states: Vec<M>,
}

/// Pre-engine validation of a checkpoint against the graph it claims to
/// resume: every failure is a typed [`RunError::SnapshotCorrupt`], so
/// decoded-from-disk checkpoints can never panic an engine.
fn validate_checkpoint<M>(ckpt: &Checkpoint<M>, n: usize) -> Result<(), RunError> {
    if ckpt.states.len() != n {
        return Err(RunError::SnapshotCorrupt {
            detail: format!(
                "checkpoint holds {} states for a graph of {n} vertices",
                ckpt.states.len()
            ),
        });
    }
    let mut prev: Option<NodeId> = None;
    for &v in &ckpt.frontier {
        if (v as usize) >= n {
            return Err(RunError::SnapshotCorrupt {
                detail: format!("frontier vertex {v} out of range for {n} vertices"),
            });
        }
        if prev.is_some_and(|p| p >= v) {
            return Err(RunError::SnapshotCorrupt {
                detail: "frontier not strictly ascending".to_string(),
            });
        }
        prev = Some(v);
    }
    Ok(())
}

fn report_of<M>(run: &MbfRun<M>) -> RunReport {
    RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Owned backend.
// ---------------------------------------------------------------------

/// Guarded owned-backend fixpoint run with checkpoint capture: the
/// loop of [`crate::engine::try_run_to_fixpoint_with`], calling `sink`
/// at every hop [`CheckpointPolicy::hop_due`] marks. A sink failure
/// (e.g. a snapshot write that could not complete) aborts the run with
/// its error.
pub fn try_run_checkpointed_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    policy: CheckpointPolicy,
    mut sink: impl FnMut(&Checkpoint<A::M>) -> Result<(), RunError>,
) -> Result<(MbfRun<A::M>, RunReport), RunError> {
    let run = run_guarded(|| -> Result<MbfRun<A::M>, RunError> {
        let mut states = initial_states(alg, g.n());
        let mut engine = MbfEngine::new(strategy);
        engine.mark_all_dirty(g);
        let mut work = WorkStats::new();
        let mut iterations = 0;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, &mut states, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
            if policy.hop_due(iterations as u64) {
                sink(&Checkpoint {
                    hop: iterations as u64,
                    frontier: engine.frontier().to_vec(),
                    states: states.clone(),
                })?;
            }
        }
        Ok(MbfRun {
            states,
            iterations,
            fixpoint,
            work,
        })
    })??;
    check_states::<A::S, A::M>(&run.states)?;
    let report = report_of(&run);
    Ok((run, report))
}

/// Guarded resume of an owned-backend run from a checkpoint: re-enters
/// the fixpoint loop at the recorded hop with exactly the recorded
/// residual frontier (empty schedule priming + `mark_dirty`).
/// Bit-identical to the uninterrupted run.
pub fn try_resume_run_to_fixpoint_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    ckpt: &Checkpoint<A::M>,
) -> Result<(MbfRun<A::M>, RunReport), RunError> {
    validate_checkpoint(ckpt, g.n())?;
    let run = run_guarded(|| {
        let mut states = ckpt.states.clone();
        let mut engine = MbfEngine::new(strategy);
        engine.prime(g);
        engine.mark_dirty(g, ckpt.frontier.iter().copied());
        let mut work = WorkStats::new();
        let mut iterations = ckpt.hop as usize;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, &mut states, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
        }
        MbfRun {
            states,
            iterations,
            fixpoint,
            work,
        }
    })?;
    check_states::<A::S, A::M>(&run.states)?;
    let report = report_of(&run);
    Ok((run, report))
}

// ---------------------------------------------------------------------
// Arena backend.
// ---------------------------------------------------------------------

/// Guarded arena-backend fixpoint run with checkpoint capture (cf.
/// [`try_run_checkpointed_with`]). Captures read the pool through the
/// raw span accessor, so they record the true epoch state without
/// consuming `arena_span_read` fault arrivals.
pub fn try_run_checkpointed_arena_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    policy: CheckpointPolicy,
    mut sink: impl FnMut(&Checkpoint<DistanceMap>) -> Result<(), RunError>,
) -> Result<(MbfRun<DistanceMap>, RunReport), RunError> {
    let run = run_guarded(|| -> Result<MbfRun<DistanceMap>, RunError> {
        let mut store = crate::arena::initial_store(alg, g.n());
        let mut work = storage_work(store.stats());
        let mut engine = ArenaEngine::new(strategy);
        engine.mark_all_dirty(g);
        let mut iterations = 0;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, &mut store, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
            if policy.hop_due(iterations as u64) {
                sink(&Checkpoint {
                    hop: iterations as u64,
                    frontier: engine.frontier().to_vec(),
                    states: store.export_raw(),
                })?;
            }
        }
        Ok(MbfRun {
            states: store.export(),
            iterations,
            fixpoint,
            work,
        })
    })??;
    check_states::<MinPlus, DistanceMap>(&run.states)?;
    let report = report_of(&run);
    Ok((run, report))
}

/// Guarded resume of an arena-backend run from a checkpoint: the states
/// bulk-load into a fresh epoch pool and the recorded frontier seeds the
/// schedule. The seeded vertices are tainted (their pool spans were
/// written externally), which forces full merges but never changes
/// states — resumed **states** are bit-identical to the uninterrupted
/// run's; work counters may differ by the taint-forced merges.
pub fn try_resume_run_to_fixpoint_arena_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    ckpt: &Checkpoint<DistanceMap>,
) -> Result<(MbfRun<DistanceMap>, RunReport), RunError> {
    validate_checkpoint(ckpt, g.n())?;
    let run = run_guarded(|| {
        let mut store = EpochStore::with_rank_column(g.n(), A::USES_RANK_COLUMN);
        store.import(&ckpt.states, |u| alg.entry_aux(u));
        let mut work = storage_work(store.stats());
        let mut engine = ArenaEngine::new(strategy);
        engine.prime(g);
        engine.mark_dirty(g, ckpt.frontier.iter().copied());
        let mut iterations = ckpt.hop as usize;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, &mut store, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
        }
        MbfRun {
            states: store.export(),
            iterations,
            fixpoint,
            work,
        }
    })?;
    check_states::<MinPlus, DistanceMap>(&run.states)?;
    let report = report_of(&run);
    Ok((run, report))
}

// ---------------------------------------------------------------------
// Dense backend.
// ---------------------------------------------------------------------

/// Guarded dense-backend fixpoint run with checkpoint capture (cf.
/// [`crate::dense::try_run_to_fixpoint_dense_with`], including its
/// pre-allocation budget check).
pub fn try_run_checkpointed_dense_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    budget_bytes: Option<u64>,
    policy: CheckpointPolicy,
    mut sink: impl FnMut(&Checkpoint<A::M>) -> Result<(), RunError>,
) -> Result<(MbfRun<A::M>, RunReport), RunError>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    let n = g.n();
    let requested = DenseBlock::<A::S>::bytes_for(n, n);
    if let Some(budget) = budget_bytes {
        if requested > budget {
            return Err(RunError::DenseBudgetExceeded {
                requested_bytes: requested,
                budget_bytes: budget,
            });
        }
    }
    assert!(
        alg.advertises_dense(),
        "algorithm instance does not advertise dense states"
    );
    let run = run_guarded(|| -> Result<MbfRun<A::M>, RunError> {
        let mut block = initial_block(alg, n);
        let mut engine = DenseEngine::new(strategy);
        engine.mark_all_dirty(g);
        let mut work = WorkStats::new();
        let mut iterations = 0;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, &mut block, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
            if policy.hop_due(iterations as u64) {
                sink(&Checkpoint {
                    hop: iterations as u64,
                    frontier: engine.frontier().to_vec(),
                    states: block.export(),
                })?;
            }
        }
        Ok(MbfRun {
            states: block.export(),
            iterations,
            fixpoint,
            work,
        })
    })??;
    check_states::<A::S, A::M>(&run.states)?;
    let report = report_of(&run);
    Ok((run, report))
}

/// Guarded resume of a dense-backend run from a checkpoint: the states
/// convert into a fresh block and the recorded frontier seeds the
/// schedule. Bit-identical to the uninterrupted run.
pub fn try_resume_run_to_fixpoint_dense_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    ckpt: &Checkpoint<A::M>,
) -> Result<(MbfRun<A::M>, RunReport), RunError>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    validate_checkpoint(ckpt, g.n())?;
    assert!(
        alg.advertises_dense(),
        "algorithm instance does not advertise dense states"
    );
    let run = run_guarded(|| {
        let mut block = DenseBlock::from_states(&ckpt.states, g.n());
        let mut engine = DenseEngine::new(strategy);
        engine.ensure_sized(g);
        engine.mark_dirty(g, ckpt.frontier.iter().copied());
        let mut work = WorkStats::new();
        let mut iterations = ckpt.hop as usize;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, &mut block, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
        }
        MbfRun {
            states: block.export(),
            iterations,
            fixpoint,
            work,
        }
    })?;
    check_states::<A::S, A::M>(&run.states)?;
    let report = report_of(&run);
    Ok((run, report))
}

// ---------------------------------------------------------------------
// Switching backend.
// ---------------------------------------------------------------------

/// Guarded switching-backend fixpoint run with checkpoint capture (cf.
/// [`crate::dense::try_run_to_fixpoint_switching_with`]). Captures
/// export from whichever representation is active — the two are
/// bit-identical by the engine's conversion contract.
pub fn try_run_checkpointed_switching_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    thresholds: SwitchThresholds,
    policy: CheckpointPolicy,
    mut sink: impl FnMut(&Checkpoint<A::M>) -> Result<(), RunError>,
) -> Result<(MbfRun<A::M>, RunReport), RunError>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    let (run, degradations) = run_guarded(|| -> Result<(MbfRun<A::M>, Vec<_>), RunError> {
        let mut engine = SwitchingEngine::new(alg, g, strategy, thresholds);
        let mut work = WorkStats::new();
        let mut iterations = 0;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
            if policy.hop_due(iterations as u64) {
                sink(&Checkpoint {
                    hop: iterations as u64,
                    frontier: engine.frontier().to_vec(),
                    states: engine.export_states(),
                })?;
            }
        }
        let run = MbfRun {
            states: engine.export_states(),
            iterations,
            fixpoint,
            work,
        };
        Ok((run, engine.degradations().to_vec()))
    })??;
    check_states::<A::S, A::M>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations,
    };
    Ok((run, report))
}

/// Guarded resume of a switching-backend run. The engine starts with
/// every vertex dirty — a sound *superset* of the recorded frontier, so
/// the resumed states stay bit-identical (extra recomputations are
/// provable identities) — and checkpoint states that differ from the
/// fresh initial states are assigned in before the first hop.
pub fn try_resume_run_to_fixpoint_switching_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    thresholds: SwitchThresholds,
    ckpt: &Checkpoint<A::M>,
) -> Result<(MbfRun<A::M>, RunReport), RunError>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    validate_checkpoint(ckpt, g.n())?;
    let (run, degradations) = run_guarded(|| {
        let mut engine = SwitchingEngine::new(alg, g, strategy, thresholds);
        let fresh = initial_states(alg, g.n());
        for (v, (state, init)) in ckpt.states.iter().zip(&fresh).enumerate() {
            if state != init {
                engine.assign_dirty(alg, g, v as NodeId, state);
            }
        }
        let mut work = WorkStats::new();
        let mut iterations = ckpt.hop as usize;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
        }
        let run = MbfRun {
            states: engine.export_states(),
            iterations,
            fixpoint,
            work,
        };
        (run, engine.degradations().to_vec())
    })?;
    check_states::<A::S, A::M>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations,
    };
    Ok((run, report))
}

// ---------------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------------

fn oracle_report<M>(run: &OracleRun<M>) -> RunReport {
    RunReport {
        converged: run.converged,
        hops: run.hops,
        degradations: Vec::new(),
    }
}

/// Guarded oracle run with checkpoint capture (cf.
/// [`crate::oracle::try_oracle_run_with`]): `sink` fires after every
/// simulated round [`CheckpointPolicy::level_due`] marks, with an empty
/// frontier — the oracle's resume path re-primes its levels wholesale,
/// which the carry-over schedule proves bit-identical to continuing.
pub fn try_oracle_run_checkpointed_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
    policy: CheckpointPolicy,
    mut sink: impl FnMut(&Checkpoint<A::M>) -> Result<(), RunError>,
) -> Result<(OracleRun<A::M>, RunReport), RunError>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let run = run_guarded(|| {
        let states = initial_states(alg, sim.augmented().n());
        crate::oracle::oracle_loop(alg, sim, h, strategy, true, states, 0, |round, states| {
            if policy.level_due(round as u64) {
                sink(&Checkpoint {
                    hop: round as u64,
                    frontier: Vec::new(),
                    states: states.to_vec(),
                })?;
            }
            Ok(())
        })
    })??;
    check_states::<A::S, A::M>(&run.states)?;
    let report = oracle_report(&run);
    Ok((run, report))
}

/// Guarded resume of an oracle run from a checkpoint: re-enters the
/// simulated-iteration loop at the recorded round with the recorded
/// aggregate states and fresh level scratch. Bit-identical states and
/// round counts.
pub fn try_resume_oracle_run_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
    ckpt: &Checkpoint<A::M>,
) -> Result<(OracleRun<A::M>, RunReport), RunError>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    validate_checkpoint(ckpt, sim.augmented().n())?;
    let run = run_guarded(|| {
        crate::oracle::oracle_loop(
            alg,
            sim,
            h,
            strategy,
            true,
            ckpt.states.clone(),
            ckpt.hop as usize,
            |_, _| Ok(()),
        )
    })??;
    check_states::<A::S, A::M>(&run.states)?;
    let report = oracle_report(&run);
    Ok((run, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SourceDetection;
    use crate::engine::run_to_fixpoint_with;

    fn fixture() -> Graph {
        // Deterministic small graph with enough hops to checkpoint
        // mid-run.
        mte_graph::generators::path_graph(24, 1.0)
    }

    #[test]
    fn policy_triggers() {
        let p = CheckpointPolicy::every_hops(3);
        assert!(!p.hop_due(1) && !p.hop_due(2) && p.hop_due(3) && p.hop_due(6));
        assert!(!p.level_due(3));
        assert!(!CheckpointPolicy::disabled().hop_due(1));
        let l = CheckpointPolicy::every_levels(2);
        assert!(l.level_due(2) && !l.level_due(3) && !l.hop_due(2));
    }

    #[test]
    fn every_checkpoint_resumes_bit_identically() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let cap = g.n() + 1;
        let strategy = EngineStrategy::Frontier;
        let reference = run_to_fixpoint_with(&alg, &g, cap, strategy);
        let mut checkpoints = Vec::new();
        let (run, _) = try_run_checkpointed_with(
            &alg,
            &g,
            cap,
            strategy,
            CheckpointPolicy::every_hops(1),
            |c| {
                checkpoints.push(c.clone());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(run.states, reference.states);
        assert_eq!(run.iterations, reference.iterations);
        assert!(!checkpoints.is_empty());
        for ckpt in &checkpoints {
            let (resumed, report) =
                try_resume_run_to_fixpoint_with(&alg, &g, cap, strategy, ckpt).unwrap();
            assert_eq!(resumed.states, reference.states, "hop {}", ckpt.hop);
            assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
            assert_eq!(resumed.fixpoint, reference.fixpoint);
            assert!(report.converged);
        }
    }

    #[test]
    fn malformed_checkpoints_are_typed_errors() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let short = Checkpoint {
            hop: 1,
            frontier: vec![0],
            states: initial_states(&alg, g.n() - 1),
        };
        let wild = Checkpoint {
            hop: 1,
            frontier: vec![g.n() as NodeId + 7],
            states: initial_states(&alg, g.n()),
        };
        let unsorted = Checkpoint {
            hop: 1,
            frontier: vec![3, 3],
            states: initial_states(&alg, g.n()),
        };
        for ckpt in [short, wild, unsorted] {
            let err =
                try_resume_run_to_fixpoint_with(&alg, &g, g.n(), EngineStrategy::Frontier, &ckpt)
                    .unwrap_err();
            assert!(
                matches!(err, RunError::SnapshotCorrupt { .. }),
                "wrong error: {err:?}"
            );
        }
    }

    #[test]
    fn failing_sink_aborts_the_run_with_its_error() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let err = try_run_checkpointed_with(
            &alg,
            &g,
            g.n() + 1,
            EngineStrategy::Frontier,
            CheckpointPolicy::every_hops(2),
            |_| {
                Err(RunError::SnapshotCorrupt {
                    detail: "sink refused".to_string(),
                })
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::SnapshotCorrupt {
                detail: "sink refused".to_string()
            }
        );
    }

    #[test]
    fn disabled_policy_never_calls_the_sink() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let mut calls = 0;
        let (run, _) = try_run_checkpointed_with(
            &alg,
            &g,
            g.n() + 1,
            EngineStrategy::Frontier,
            CheckpointPolicy::disabled(),
            |_| {
                calls += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(calls, 0);
        assert!(run.fixpoint);
    }
}
