//! The simulated graph `H` (Section 4 of the paper).
//!
//! Given `G'` (the input graph augmented with a `(d, ε̂)`-hop set), `H` is
//! the complete graph on `V` whose edge `{v, w}` of *level*
//! `λ(v, w) = min{λ(v), λ(w)}` has weight
//! `ω_Λ({v,w}) = (1+ε̂)^{Λ−λ(v,w)} · dist^d(v, w, G')`
//! (Definition 4.2). Levels are sampled geometrically, so `Λ ∈ O(log n)`
//! w.h.p. (Lemma 4.1); the exponential penalty makes high-level edges
//! "more attractive", which bounds `SPD(H) ∈ O(log² n)` w.h.p. and the
//! stretch of `H` over `G` by `(1+ε̂)^{Λ+1}` (Theorem 4.5).
//!
//! `H` is **never materialized** by the production pipeline (that would
//! cost `Ω(n²)` work); the [`crate::oracle`] simulates MBF-like iterations
//! on `H` using only `G'`'s edges. [`SimulatedGraph::explicit_h`] builds
//! `H` explicitly for testing and for the SPD/stretch experiments on
//! small inputs.

use crate::engine::{run_to_fixpoint_with, EngineStrategy, MbfAlgorithm};
use mte_algebra::{Dist, MinPlus, NodeId};
use mte_graph::hopset::{Hopset, HopsetConfig};
use mte_graph::Graph;
use rand::Rng;
use rayon::prelude::*;

/// Geometrically sampled vertex levels (Section 4): every vertex starts at
/// level 0; in each step, each vertex of level `λ−1` is raised to `λ` with
/// probability 1/2, until a step raises no vertex. `Λ` is the maximum
/// attained level.
#[derive(Clone, Debug)]
pub struct LevelAssignment {
    levels: Vec<u32>,
    lambda: u32,
}

impl LevelAssignment {
    /// Samples levels for `n` vertices with the paper's promotion
    /// probability 1/2.
    pub fn sample(n: usize, rng: &mut impl Rng) -> LevelAssignment {
        Self::sample_with_p(n, 0.5, rng)
    }

    /// Samples levels with promotion probability `p ∈ (0, 1)`. The paper
    /// fixes `p = 1/2`; the ablation experiment `exp_ablation` varies `p`
    /// to expose the trade-off it balances: small `p` gives few levels
    /// (cheaper oracle) but weaker shortcutting (larger SPD(H)); large
    /// `p` the reverse.
    pub fn sample_with_p(n: usize, p: f64, rng: &mut impl Rng) -> LevelAssignment {
        assert!(
            p > 0.0 && p < 1.0,
            "promotion probability must be in (0, 1)"
        );
        let mut levels = vec![0u32; n];
        let mut alive: Vec<usize> = (0..n).collect();
        let mut lambda = 0;
        while !alive.is_empty() {
            alive.retain(|&v| {
                if rng.gen_bool(p) {
                    levels[v] += 1;
                    true
                } else {
                    false
                }
            });
            if !alive.is_empty() {
                lambda += 1;
            }
        }
        LevelAssignment { levels, lambda }
    }

    /// A fixed assignment (for tests).
    pub fn from_levels(levels: Vec<u32>) -> LevelAssignment {
        let lambda = levels.iter().copied().max().unwrap_or(0);
        LevelAssignment { levels, lambda }
    }

    /// `λ(v)`.
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        self.levels[v as usize]
    }

    /// `Λ`, the maximum level.
    #[inline]
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// `λ(e) = min{λ(v) | v ∈ e}` (edge level).
    #[inline]
    pub fn edge_level(&self, u: NodeId, v: NodeId) -> u32 {
        self.level(u).min(self.level(v))
    }

    /// Number of vertices with level `≥ λ` (the paper's `V_λ`).
    pub fn count_at_least(&self, lambda: u32) -> usize {
        self.levels.iter().filter(|&&l| l >= lambda).count()
    }
}

/// The simulated graph `H`, represented implicitly by `G' = G + hop set`,
/// the level assignment, the hop budget `d` and the penalty base `1+ε̂`.
#[derive(Clone, Debug)]
pub struct SimulatedGraph {
    base: Graph,
    aug: Graph,
    levels: LevelAssignment,
    d: usize,
    eps_hat: f64,
}

impl SimulatedGraph {
    /// Builds `H` for `g`: constructs a `(d, ε̂_hopset)`-hop set, augments,
    /// and samples levels. `eps_hat` is the penalty base of
    /// Definition 4.2 (the paper uses the same `ε̂ ∈ 1/polylog n` for
    /// both).
    pub fn build(
        g: &Graph,
        hopset_config: &HopsetConfig,
        eps_hat: f64,
        rng: &mut impl Rng,
    ) -> SimulatedGraph {
        let hopset = Hopset::build(g, hopset_config, rng);
        let aug = hopset.augment(g);
        let levels = LevelAssignment::sample(g.n(), rng);
        SimulatedGraph {
            base: g.clone(),
            aug,
            d: hopset.d,
            eps_hat,
            levels,
        }
    }

    /// Builds `H` without a hop set (`G' = G`); the caller supplies the
    /// hop budget `d` (use `d ≥ SPD(G)` for exact behaviour). Used by
    /// tests and by inputs that are already of small SPD.
    pub fn without_hopset(g: &Graph, d: usize, eps_hat: f64, rng: &mut impl Rng) -> SimulatedGraph {
        let levels = LevelAssignment::sample(g.n(), rng);
        SimulatedGraph {
            base: g.clone(),
            aug: g.clone(),
            d,
            eps_hat,
            levels,
        }
    }

    /// As [`SimulatedGraph::without_hopset`] but with fixed levels (tests).
    pub fn with_levels(
        g: &Graph,
        d: usize,
        eps_hat: f64,
        levels: LevelAssignment,
    ) -> SimulatedGraph {
        assert_eq!(levels.levels.len(), g.n());
        SimulatedGraph {
            base: g.clone(),
            aug: g.clone(),
            d,
            eps_hat,
            levels,
        }
    }

    /// The original graph `G`.
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The augmented graph `G'` the oracle iterates on.
    #[inline]
    pub fn augmented(&self) -> &Graph {
        &self.aug
    }

    /// The level assignment.
    #[inline]
    pub fn levels(&self) -> &LevelAssignment {
        &self.levels
    }

    /// The hop budget `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// The penalty parameter `ε̂`.
    #[inline]
    pub fn eps_hat(&self) -> f64 {
        self.eps_hat
    }

    /// The level-λ weight multiplier `(1+ε̂)^{Λ−λ}` (Lemma 5.1's `A_λ`).
    pub fn level_scale(&self, lambda: u32) -> f64 {
        (1.0 + self.eps_hat).powi((self.levels.lambda() - lambda) as i32)
    }

    /// Materializes `H` explicitly (Definition 4.2) — `Θ(n·d·m)` work in
    /// the worst case and `Θ(n²)` space; only for tests and small-scale
    /// experiments. Each row is a hop-limited SSSP computed by the
    /// frontier engine, so a source whose ball stops growing before hop
    /// `d` pays only for the hops that actually move (bit-identical to
    /// the dense sweep, Definition 2.11).
    pub fn explicit_h(&self) -> Graph {
        let n = self.aug.n();
        // dist^d from every node on G' via frontier-driven MBF.
        let rows: Vec<Vec<Dist>> = (0..n as NodeId)
            .into_par_iter()
            .map(|s| {
                let alg = HopSssp { source: s };
                let run = run_to_fixpoint_with(&alg, &self.aug, self.d, EngineStrategy::Frontier);
                run.states.into_iter().map(|x| x.0).collect()
            })
            .collect();
        let mut edges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                let dd = rows[u as usize][v as usize];
                if dd.is_finite() && dd.value() > 0.0 {
                    let scale = self.level_scale(self.levels.edge_level(u, v));
                    edges.push((u, v, dd.value() * scale));
                }
            }
        }
        Graph::from_edges(n, edges)
    }
}

/// Unfiltered single-source MBF over `S = M = S_{min,+}` (Example 3.3):
/// `h` engine hops compute `dist^h(source, ·)` exactly, which is all
/// [`SimulatedGraph::explicit_h`] needs per row.
struct HopSssp {
    source: NodeId,
}

impl MbfAlgorithm for HopSssp {
    type S = MinPlus;
    type M = MinPlus;

    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
        MinPlus::new(weight)
    }

    fn filter(&self, _x: &mut MinPlus) {}

    fn init(&self, v: NodeId) -> MinPlus {
        if v == self.source {
            MinPlus(Dist::ZERO)
        } else {
            MinPlus(Dist::INF)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::algorithms::{apsp, shortest_path_diameter};
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn levels_are_geometric_and_lambda_logarithmic() {
        // Lemma 4.1: Λ ∈ O(log n) w.h.p. With n = 4096 and 40 trials,
        // Λ ≤ 4·log₂(n) is a conservative w.h.p. bound.
        let n = 4096;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let la = LevelAssignment::sample(n, &mut rng);
            assert!(la.lambda() <= 48, "Λ = {} too large", la.lambda());
            // Roughly half the nodes are at level ≥ 1.
            let frac = la.count_at_least(1) as f64 / n as f64;
            assert!((0.4..0.6).contains(&frac), "level-1 fraction {frac}");
        }
    }

    #[test]
    fn edge_level_is_min_of_endpoints() {
        let la = LevelAssignment::from_levels(vec![0, 2, 1]);
        assert_eq!(la.lambda(), 2);
        assert_eq!(la.edge_level(1, 2), 1);
        assert_eq!(la.edge_level(0, 1), 0);
    }

    #[test]
    fn explicit_h_distances_sandwich_g_distances() {
        // Theorem 4.5 / Eq. (4.14): dist_G ≤ dist_H ≤ (1+ε̂)^{Λ+1} dist_G
        // (with an exact hop set, i.e. d ≥ SPD).
        let mut rng = StdRng::seed_from_u64(12);
        let g = gnm_graph(40, 90, 1.0..8.0, &mut rng);
        let spd = shortest_path_diameter(&g) as usize;
        let eps = 0.1;
        let sim = SimulatedGraph::without_hopset(&g, spd, eps, &mut rng);
        let h = sim.explicit_h();
        let dg = apsp(&g);
        let dh = apsp(&h);
        let bound = (1.0 + eps).powi(sim.levels().lambda() as i32 + 1) + 1e-9;
        for u in 0..g.n() {
            for v in 0..g.n() {
                let a = dg[u][v].value();
                let b = dh[u][v].value();
                assert!(b >= a - 1e-9, "H must not shorten distances ({u},{v})");
                assert!(
                    b <= a * bound,
                    "H stretch violated ({u},{v}): {b} > {bound}·{a}"
                );
            }
        }
    }

    #[test]
    fn spd_of_h_is_small() {
        // Theorem 4.5: SPD(H) ∈ O(log² n) w.h.p. — here against a path,
        // whose own SPD is n − 1.
        let g = path_graph(128, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let sim = SimulatedGraph::without_hopset(&g, 127, 0.1, &mut rng);
        let h = sim.explicit_h();
        let spd_h = shortest_path_diameter(&h);
        // log₂²(128) = 49; allow a constant factor.
        assert!(spd_h <= 4 * 49, "SPD(H) = {spd_h} too large");
    }

    #[test]
    fn level_scale_decreases_with_level() {
        let la = LevelAssignment::from_levels(vec![0, 1, 2]);
        let g = path_graph(3, 1.0);
        let sim = SimulatedGraph::with_levels(&g, 2, 0.5, la);
        assert!(sim.level_scale(0) > sim.level_scale(1));
        assert_eq!(sim.level_scale(2), 1.0);
    }
}
