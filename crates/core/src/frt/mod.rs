//! Sampling from the FRT distribution (Section 7 of the paper) — the
//! main result: a metric tree embedding of expected stretch `O(log n)`
//! computed at polylog depth with `Õ(m^{1+ε})` work (Theorem 7.9,
//! Corollary 7.10), or `Õ(m + n^{1+1/k+ε})` work and `O(k log n)` stretch
//! with spanner preprocessing (Corollary 7.11).
//!
//! Pipeline (Sections 4–7):
//!
//! ```text
//! G  ──(optional Baswana–Sen spanner)──▶ G_k
//!    ──(hop set, Cohen \[13\] / hub substitute)──▶ G'
//!    ──(levels + penalties, Section 4)──▶ H   (implicit!)
//!    ──(oracle LE-list computation, Sections 5, 7.2–7.3)──▶ LE lists
//!    ──(Lemma 7.2)──▶ FRT tree
//! ```

pub mod baseline;
pub mod forest;
pub mod le_list;
pub mod paths;
pub mod traced;
pub mod tree;

pub use baseline::{sample_direct, sample_from_metric, BaselineSample};
pub use forest::FrtForest;
pub use le_list::{
    le_filter_entries, le_lists_direct, le_lists_from_metric, le_lists_oracle, LeFilter, LeList,
    LeListAlgorithm, Ranks,
};
pub use paths::{embed_all_tree_edges, embed_tree_edge, EmbeddedTreeEdge};
pub use traced::{trace_le_path, traced_le_lists, TracedEntry, TracedLeList};
pub use tree::{FrtNode, FrtTree};

use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_graph::hopset::HopsetConfig;
use mte_graph::spanner::baswana_sen_spanner;
use mte_graph::Graph;
use rand::Rng;
use std::sync::Arc;

/// Configuration of the FRT sampling pipeline.
#[derive(Clone, Debug)]
pub struct FrtConfig {
    /// Hop-set parameters for building `G'` (DESIGN.md §3 substitution 2).
    pub hopset: HopsetConfig,
    /// Level penalty base `ε̂` of the simulated graph (Section 4); the
    /// paper uses `ε̂ ∈ 1/polylog n`.
    pub eps_hat: f64,
    /// Optional Baswana–Sen spanner preprocessing with parameter `k`
    /// (Corollary 7.11): reduces work on dense graphs at the cost of a
    /// `(2k−1)` stretch factor.
    pub spanner_k: Option<usize>,
    /// Cap on simulated `H`-iterations (`None` = automatic `O(log² n)`).
    pub max_iterations: Option<usize>,
}

impl Default for FrtConfig {
    fn default() -> Self {
        FrtConfig {
            hopset: HopsetConfig::default(),
            eps_hat: 0.05,
            spanner_k: None,
            max_iterations: None,
        }
    }
}

/// A sample from the FRT distribution of (the `(1+o(1))`-approximation
/// `H` of) `G`, with full provenance.
#[derive(Clone, Debug)]
pub struct FrtEmbedding {
    tree: FrtTree,
    ranks: Arc<Ranks>,
    le_lists: Vec<LeList>,
    beta: f64,
    h_iterations: usize,
    work: WorkStats,
}

impl FrtEmbedding {
    /// Samples one tree via the paper's main pipeline
    /// (Theorem 7.9 / Corollaries 7.10 and 7.11).
    pub fn sample(g: &Graph, config: &FrtConfig, rng: &mut impl Rng) -> FrtEmbedding {
        let preprocessed;
        let input = match config.spanner_k {
            Some(k) if k > 1 => {
                preprocessed = baswana_sen_spanner(g, k, rng);
                &preprocessed
            }
            _ => g,
        };
        let sim = SimulatedGraph::build(input, &config.hopset, config.eps_hat, rng);
        Self::sample_on(&sim, config, rng)
    }

    /// Samples one tree on a pre-built simulated graph (lets callers
    /// amortize the hop-set construction across samples; only the cheap
    /// randomness — permutation, `β`, levels baked into `sim` — varies).
    pub fn sample_on(sim: &SimulatedGraph, config: &FrtConfig, rng: &mut impl Rng) -> FrtEmbedding {
        let n = sim.base().n();
        let ranks = Arc::new(Ranks::sample(n, rng));
        let beta = rng.gen_range(1.0..2.0);
        let (le_lists, h_iterations, work) = le_lists_oracle(sim, &ranks, config.max_iterations);
        let tree = FrtTree::from_le_lists(&le_lists, &ranks, beta, sim.base().min_weight());
        FrtEmbedding {
            tree,
            ranks,
            le_lists,
            beta,
            h_iterations,
            work,
        }
    }

    /// The sampled tree.
    #[inline]
    pub fn tree(&self) -> &FrtTree {
        &self.tree
    }

    /// The random node order.
    #[inline]
    pub fn ranks(&self) -> &Ranks {
        &self.ranks
    }

    /// The LE lists the tree was built from.
    #[inline]
    pub fn le_lists(&self) -> &[LeList] {
        &self.le_lists
    }

    /// The sampled `β ∈ [1, 2)`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Simulated `H`-iterations until fixpoint.
    #[inline]
    pub fn h_iterations(&self) -> usize {
        self.h_iterations
    }

    /// Work spent by the LE-list computation.
    #[inline]
    pub fn work(&self) -> WorkStats {
        self.work
    }

    /// Embedded distance between two graph vertices.
    #[inline]
    pub fn distance(&self, u: mte_algebra::NodeId, v: mte_algebra::NodeId) -> f64 {
        self.tree.leaf_distance(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::NodeId;
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_pipeline_dominates_and_has_bounded_average_stretch() {
        let mut rng = StdRng::seed_from_u64(81);
        let g = gnm_graph(60, 150, 1.0..20.0, &mut rng);
        let dist = apsp(&g);
        let config = FrtConfig {
            hopset: HopsetConfig {
                d: 7,
                epsilon: 0.0,
                oversample: 3.0,
            },
            eps_hat: 0.05,
            spanner_k: None,
            max_iterations: None,
        };
        let trials = 8;
        let mut total = 0.0;
        let mut count = 0usize;
        for t in 0..trials {
            let mut trial_rng = StdRng::seed_from_u64(900 + t);
            let emb = FrtEmbedding::sample(&g, &config, &mut trial_rng);
            for u in 0..g.n() as NodeId {
                for v in (u + 1)..g.n() as NodeId {
                    let dt = emb.distance(u, v);
                    let dg = dist[u as usize][v as usize].value();
                    assert!(dt >= dg - 1e-9, "dominance violated ({u},{v})");
                    total += dt / dg;
                    count += 1;
                }
            }
        }
        let avg = total / count as f64;
        // Expected stretch O(log n): log₂ 60 ≈ 5.9; generous constant.
        assert!(avg < 8.0 * 5.9, "average stretch {avg}");
    }

    #[test]
    fn spanner_preprocessing_still_dominates() {
        let mut rng = StdRng::seed_from_u64(82);
        let g = gnm_graph(50, 300, 1.0..10.0, &mut rng);
        let dist = apsp(&g);
        let config = FrtConfig {
            hopset: HopsetConfig {
                d: 7,
                epsilon: 0.0,
                oversample: 3.0,
            },
            eps_hat: 0.05,
            spanner_k: Some(2),
            max_iterations: None,
        };
        let emb = FrtEmbedding::sample(&g, &config, &mut rng);
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                assert!(emb.distance(u, v) >= dist[u as usize][v as usize].value() - 1e-9);
            }
        }
    }
}
