//! Amplification by repetition (paper Section 1): the FRT guarantee is
//! *in expectation*; "repeating the process log(ε⁻¹) times and taking the
//! best result, one obtains an O(log n)-approximation with probability at
//! least 1 − ε". [`FrtForest`] manages such a collection of independent
//! samples and the statistics applications use to pick among them.

use crate::frt::baseline::{sample_direct, BaselineSample};
use crate::frt::le_list::Ranks;
use crate::frt::tree::FrtTree;
use crate::frt::{FrtConfig, FrtEmbedding};
use crate::simgraph::SimulatedGraph;
use mte_algebra::NodeId;
use mte_graph::Graph;
use rand::Rng;
use std::sync::Arc;

/// A collection of independently sampled FRT trees over the same graph.
pub struct FrtForest {
    trees: Vec<FrtTree>,
    ranks: Vec<Arc<Ranks>>,
}

impl FrtForest {
    /// Samples `count` trees through the full oracle pipeline, amortizing
    /// the hop-set construction: the simulated graph is built once, only
    /// the cheap randomness (permutation, β) varies per tree. (Levels are
    /// resampled too, as the paper's distribution requires fresh
    /// randomness per sample — `H` depends on levels, so we rebuild the
    /// level assignment by resampling the simulated graph's levels via a
    /// fresh `SimulatedGraph` carrying the same augmented graph.)
    pub fn sample_pipeline(
        g: &Graph,
        config: &FrtConfig,
        count: usize,
        rng: &mut impl Rng,
    ) -> FrtForest {
        assert!(count >= 1);
        // Build the (expensive, randomness-independent-downstream) hop
        // set once.
        let base_sim = SimulatedGraph::build(g, &config.hopset, config.eps_hat, rng);
        let aug = base_sim.augmented().clone();
        let mut trees = Vec::with_capacity(count);
        let mut ranks = Vec::with_capacity(count);
        for _ in 0..count {
            let levels = crate::simgraph::LevelAssignment::sample(g.n(), rng);
            let sim = SimulatedGraph::with_levels(&aug, base_sim.d(), config.eps_hat, levels);
            let emb = FrtEmbedding::sample_on(&sim, config, rng);
            ranks.push(Arc::new(emb.ranks().clone()));
            trees.push(emb.tree().clone());
        }
        FrtForest { trees, ranks }
    }

    /// Samples `count` trees of the exact metric (direct iteration).
    pub fn sample_exact(g: &Graph, count: usize, rng: &mut impl Rng) -> FrtForest {
        assert!(count >= 1);
        let samples: Vec<BaselineSample> = (0..count).map(|_| sample_direct(g, rng)).collect();
        FrtForest {
            ranks: samples.iter().map(|s| Arc::clone(&s.ranks)).collect(),
            trees: samples.into_iter().map(|s| s.tree).collect(),
        }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` iff the forest is empty (never happens via the samplers).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The sampled trees.
    pub fn trees(&self) -> &[FrtTree] {
        &self.trees
    }

    /// The random order used by tree `i`.
    pub fn ranks(&self, i: usize) -> &Ranks {
        &self.ranks[i]
    }

    /// Mean embedded distance over the forest — an estimator of the
    /// expected tree distance `E_T[dist(u, v, T)]` (Definition 7.1).
    pub fn mean_distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.trees
            .iter()
            .map(|t| t.leaf_distance(u, v))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Index of the tree minimizing an application-supplied objective —
    /// the "take the best result" amplification step.
    pub fn best_by<F: FnMut(&FrtTree) -> f64>(&self, mut objective: F) -> usize {
        let mut best = 0;
        let mut best_val = f64::INFINITY;
        for (i, t) in self.trees.iter().enumerate() {
            let val = objective(t);
            if val < best_val {
                best_val = val;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::gnm_graph;
    use mte_graph::hopset::HopsetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forest_mean_distance_estimates_expected_stretch() {
        let mut rng = StdRng::seed_from_u64(501);
        let g = gnm_graph(40, 100, 1.0..10.0, &mut rng);
        let exact = apsp(&g);
        let forest = FrtForest::sample_exact(&g, 16, &mut rng);
        assert_eq!(forest.len(), 16);
        let mut worst: f64 = 0.0;
        for u in 0..g.n() as NodeId {
            for v in (u + 1)..g.n() as NodeId {
                let mean = forest.mean_distance(u, v);
                let dg = exact[u as usize][v as usize].value();
                assert!(mean >= dg - 1e-9, "dominance in every tree");
                worst = worst.max(mean / dg);
            }
        }
        // Expected stretch O(log n); 16 samples tame the variance.
        assert!(
            worst <= 10.0 * (g.n() as f64).log2(),
            "worst mean stretch {worst}"
        );
    }

    #[test]
    fn best_by_picks_the_minimizer() {
        let mut rng = StdRng::seed_from_u64(502);
        let g = gnm_graph(25, 60, 1.0..5.0, &mut rng);
        let forest = FrtForest::sample_exact(&g, 5, &mut rng);
        let obj = |t: &FrtTree| t.leaf_distance(0, 20);
        let best = forest.best_by(obj);
        let val = obj(&forest.trees()[best]);
        for t in forest.trees() {
            assert!(val <= obj(t) + 1e-12);
        }
    }

    #[test]
    fn pipeline_forest_amortizes_hopset() {
        let mut rng = StdRng::seed_from_u64(503);
        let g = gnm_graph(36, 90, 1.0..8.0, &mut rng);
        let config = FrtConfig {
            hopset: HopsetConfig {
                d: 7,
                epsilon: 0.0,
                oversample: 3.0,
            },
            eps_hat: 0.05,
            spanner_k: None,
            max_iterations: None,
        };
        let forest = FrtForest::sample_pipeline(&g, &config, 3, &mut rng);
        assert_eq!(forest.len(), 3);
        let exact = apsp(&g);
        for t in forest.trees() {
            for u in 0..g.n() as NodeId {
                for v in 0..g.n() as NodeId {
                    assert!(t.leaf_distance(u, v) >= exact[u as usize][v as usize].value() - 1e-9);
                }
            }
        }
    }
}
