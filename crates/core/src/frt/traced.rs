//! Predecessor-carrying LE lists (Section 7.5 of the paper).
//!
//! "A leaf v₀ has an LE entry (dist(v₀,v₁,H), v₁) and we can trace the
//! shortest v₀-v₁-path … based on the LE lists (nodes locally store the
//! predecessor of shortest paths just like in APSP)."
//!
//! This module computes LE lists where every entry also records the
//! neighbor it arrived from, and reconstructs the corresponding paths in
//! the iterated graph without re-running any shortest-path computation —
//! the paper's variant (a) of path reconstruction (DESIGN.md §3,
//! substitution 3; the Dijkstra-based variant for oracle-built trees
//! lives in [`crate::frt::paths`]).

use crate::frt::le_list::Ranks;
use mte_algebra::{Dist, NodeId};
use mte_graph::Graph;
use std::sync::Arc;

/// An LE entry with provenance: `node` is reachable at `dist`; the entry
/// arrived over the edge to `via` (`via == owner` for the self-entry).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracedEntry {
    /// The remote node (the LE-list source).
    pub node: NodeId,
    /// Distance from the list owner to `node`.
    pub dist: Dist,
    /// The owner's neighbor the entry was received from.
    pub via: NodeId,
}

/// A predecessor-carrying LE list, sorted by ascending distance.
#[derive(Clone, Debug, Default)]
pub struct TracedLeList {
    entries: Vec<TracedEntry>,
}

impl TracedLeList {
    /// The entries, ascending by distance (ranks strictly decreasing).
    pub fn entries(&self) -> &[TracedEntry] {
        &self.entries
    }

    /// Looks up the entry for `node`.
    pub fn get(&self, node: NodeId) -> Option<TracedEntry> {
        self.entries.iter().find(|e| e.node == node).copied()
    }
}

fn le_filter_traced(entries: &mut Vec<TracedEntry>, ranks: &Ranks) {
    entries.sort_unstable_by_key(|e| (e.dist, ranks.rank(e.node), e.via));
    let mut kept: Vec<TracedEntry> = Vec::new();
    let mut best_rank = u32::MAX;
    for e in entries.drain(..) {
        let r = ranks.rank(e.node);
        if r < best_rank {
            kept.push(e);
            best_rank = r;
        }
    }
    *entries = kept;
}

/// Computes predecessor-carrying LE lists of the exact metric of `g` by
/// filtered MBF iteration to the fixpoint (Definition 7.3 plus
/// provenance).
pub fn traced_le_lists(g: &Graph, ranks: &Arc<Ranks>) -> Vec<TracedLeList> {
    let n = g.n();
    let mut lists: Vec<TracedLeList> = (0..n as NodeId)
        .map(|v| TracedLeList {
            entries: vec![TracedEntry {
                node: v,
                dist: Dist::ZERO,
                via: v,
            }],
        })
        .collect();
    loop {
        let mut changed = false;
        let next: Vec<TracedLeList> = (0..n as NodeId)
            .map(|v| {
                let mut acc: Vec<TracedEntry> = lists[v as usize].entries.clone();
                for &(w, ew) in g.neighbors(v) {
                    for e in &lists[w as usize].entries {
                        acc.push(TracedEntry {
                            node: e.node,
                            dist: e.dist + Dist::new(ew),
                            via: w,
                        });
                    }
                }
                le_filter_traced(&mut acc, ranks);
                TracedLeList { entries: acc }
            })
            .collect();
        for v in 0..n {
            // Compare the (node, dist) content; `via` ties may flap
            // without affecting the fixpoint.
            let same = next[v].entries.len() == lists[v].entries.len()
                && next[v]
                    .entries
                    .iter()
                    .zip(&lists[v].entries)
                    .all(|(a, b)| a.node == b.node && a.dist == b.dist);
            if !same {
                changed = true;
            }
        }
        lists = next;
        if !changed {
            break;
        }
    }
    lists
}

/// Traces the path for the LE entry `(target, dist)` of `start` by
/// following the stored predecessors: at each node, hop to the `via`
/// neighbor and look the target up in *its* list. Returns the node
/// sequence `start ⇝ target`, or `None` if the lists are inconsistent
/// (cannot happen at a fixpoint; defended anyway).
pub fn trace_le_path(
    g: &Graph,
    lists: &[TracedLeList],
    start: NodeId,
    target: NodeId,
) -> Option<Vec<NodeId>> {
    let mut path = vec![start];
    let mut cur = start;
    let mut remaining = lists[start as usize].get(target)?.dist;
    let mut guard = g.n() + 1;
    while cur != target {
        guard = guard.checked_sub(1)?;
        let entry = lists[cur as usize].get(target)?;
        let via = entry.via;
        debug_assert_ne!(via, cur, "only the self-entry points to itself");
        let ew = Dist::new(g.weight(cur, via)?);
        path.push(via);
        remaining = Dist::new((remaining.value() - ew.value()).max(0.0));
        cur = via;
        // Consistency: the next node's entry must account for the rest.
        let next_entry = lists[cur as usize].get(target)?;
        if (next_entry.dist.value() - remaining.value()).abs() > 1e-6 * remaining.value().max(1.0) {
            return None;
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_core_test_helpers::*;

    mod mte_core_test_helpers {
        pub use crate::frt::le_list::le_lists_direct;
        pub use mte_graph::algorithms::sssp;
        pub use mte_graph::generators::{gnm_graph, path_graph};
        pub use rand::rngs::StdRng;
        pub use rand::SeedableRng;
    }

    #[test]
    fn traced_lists_match_plain_le_lists() {
        let mut rng = StdRng::seed_from_u64(401);
        let g = gnm_graph(40, 100, 1.0..9.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let traced = traced_le_lists(&g, &ranks);
        let (plain, _, _) = le_lists_direct(&g, &ranks);
        for v in 0..g.n() {
            let a: Vec<(NodeId, Dist)> = traced[v]
                .entries()
                .iter()
                .map(|e| (e.node, e.dist))
                .collect();
            let b: Vec<(NodeId, Dist)> = plain[v].entries().to_vec();
            assert_eq!(a.len(), b.len(), "node {v}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0, y.0);
                assert!((x.1.value() - y.1.value()).abs() <= 1e-9 * x.1.value().max(1.0));
            }
        }
    }

    #[test]
    fn every_entry_traces_to_a_real_shortest_path() {
        let mut rng = StdRng::seed_from_u64(402);
        let g = gnm_graph(35, 90, 1.0..7.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let lists = traced_le_lists(&g, &ranks);
        for v in 0..g.n() as NodeId {
            let exact = sssp(&g, v);
            for e in lists[v as usize].entries() {
                let path = trace_le_path(&g, &lists, v, e.node)
                    .unwrap_or_else(|| panic!("trace failed for ({v} → {})", e.node));
                assert_eq!(path.first().copied(), Some(v));
                assert_eq!(path.last().copied(), Some(e.node));
                let mut total = 0.0;
                for hop in path.windows(2) {
                    total += g.weight(hop[0], hop[1]).expect("path must follow edges");
                }
                // The traced path realizes the entry's distance, which is
                // the exact shortest distance.
                assert!((total - e.dist.value()).abs() <= 1e-6 * total.max(1.0));
                assert!((total - exact.dist(e.node).value()).abs() <= 1e-6 * total.max(1.0));
            }
        }
    }

    #[test]
    fn trace_on_path_graph_walks_the_path() {
        let g = path_graph(6, 2.0);
        let ranks = Arc::new(Ranks::from_order(vec![5, 0, 1, 2, 3, 4]));
        let lists = traced_le_lists(&g, &ranks);
        // Node 0's list contains node 5 (rank 0) at distance 10.
        let p = trace_le_path(&g, &lists, 0, 5).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4, 5]);
    }
}
