//! FRT tree construction from LE lists (Section 7.1 step (4), Lemma 7.2).
//!
//! Sample `β ∈ [1, 2)`. With cut radii `r_i = β·2^{i+i₀}` (where
//! `2^{i₀+1} ≤ ω_min` so that the innermost ball around any node contains
//! only the node itself), node `v`'s **sequence** is
//! `(v_0, v_1, …, v_k)` with `v_i = min{w | dist(v, w) ≤ r_i}` — read off
//! the LE list in O(1) per level. The tree's nodes are the distinct
//! suffixes; `(v_0, …, v_k)` is the leaf of `v`, `(v_k)` the root.
//!
//! The edge between a level-`i` node and its level-`(i+1)` parent gets
//! weight `r_{i+1}`; this choice makes tree distances **dominate** the
//! underlying metric (`dist_T(u, v) ≥ dist(u, v)`, property-tested), while
//! the random `β` and random order give the `O(log n)` expected stretch of
//! Fakcharoenphol, Rao & Talwar \[19\].

use crate::frt::le_list::{LeList, Ranks};
use mte_algebra::{Dist, NodeId};
use std::collections::BTreeMap;

/// A node of the FRT tree.
#[derive(Clone, Debug)]
pub struct FrtNode {
    /// The level `i` of this node (leaves at 0, root at `num_levels−1`).
    pub level: u32,
    /// The "leading" graph vertex `v_i` of the suffix this node
    /// represents (the center of its cluster).
    pub leader: NodeId,
    /// Parent index; the root points to itself.
    pub parent: usize,
    /// Weight of the edge to the parent (`r_{level+1}`); 0 for the root.
    pub parent_weight: f64,
    /// A graph vertex whose leaf lies below this node (used for path
    /// reconstruction, Section 7.5).
    pub repr_leaf: NodeId,
}

/// A tree embedding sampled from the FRT distribution, with `V` embedded
/// as the leaves.
#[derive(Clone, Debug)]
pub struct FrtTree {
    nodes: Vec<FrtNode>,
    leaf: Vec<usize>,
    radii: Vec<f64>,
    beta: f64,
}

impl FrtTree {
    /// Builds the tree from LE lists (Lemma 7.2).
    ///
    /// `omega_min` must lower-bound the minimum **positive** pairwise
    /// distance of the underlying metric (the minimum edge weight of `G`
    /// works: every path has at least one edge, and `H` only stretches
    /// distances). Metrics with duplicate points (zero-distance pairs)
    /// may pass `omega_min = 0`: the radius computation then floors at
    /// the smallest positive distance occurring in the LE lists, and
    /// zero-distance pairs collapse into a shared leaf (their embedded
    /// distance is 0, which is exact).
    pub fn from_le_lists(lists: &[LeList], ranks: &Ranks, beta: f64, omega_min: f64) -> FrtTree {
        assert!((1.0..2.0).contains(&beta), "β must lie in [1, 2)");
        assert!(omega_min >= 0.0, "ω_min must be non-negative");
        let n = lists.len();
        assert!(n > 0, "cannot embed the empty graph");

        // Guard against duplicate/zero-distance point pairs: ω_min = 0
        // would make `log2` yield −∞ and poison every radius with
        // NaN/−∞ levels. Any positive lower bound on the positive
        // distances is sound — zero-distance pairs end up inside the
        // innermost ball together, i.e. in the same leaf.
        let omega_min = if omega_min > 0.0 && omega_min.is_finite() {
            omega_min
        } else {
            let smallest_positive = lists
                .iter()
                .flat_map(|l| l.entries().iter())
                .map(|&(_, d)| d.value())
                .filter(|&d| d > 0.0 && d.is_finite())
                .fold(f64::INFINITY, f64::min);
            if smallest_positive.is_finite() {
                smallest_positive
            } else {
                // All points coincide (or n = 1): any radius works.
                1.0
            }
        };

        // r_0 = β·2^{i0} with 2^{i0+1} ≤ ω_min  ⇒  r_0 < ω_min.
        let i0 = (omega_min.log2() - 1.0).floor();
        let r0 = beta * (2f64).powf(i0);
        debug_assert!(r0 < omega_min);
        // Radii grow by doubling until they cover the largest LE distance
        // (then every ball contains the global minimum-rank node).
        let max_dist = lists
            .iter()
            .map(|l| l.max_dist().value())
            .fold(0.0f64, f64::max);
        let mut radii = vec![r0];
        while *radii.last().unwrap() < max_dist {
            let next = radii.last().unwrap() * 2.0;
            radii.push(next);
        }
        let top = radii.len() - 1;

        // Sequences (v_0, …, v_top) per vertex, read from the LE lists.
        let sequences: Vec<Vec<NodeId>> = (0..n)
            .map(|v| {
                radii
                    .iter()
                    .map(|&r| {
                        lists[v]
                            .min_node_within(Dist::new(r))
                            .expect("ball always contains the owner")
                    })
                    .collect()
            })
            .collect();

        // Deduplicate suffixes top-down. Key: (level, leader, parent id).
        let root = FrtNode {
            level: top as u32,
            leader: sequences[0][top],
            parent: 0,
            parent_weight: 0.0,
            repr_leaf: 0,
        };
        let mut nodes = vec![root];
        // Ordered map: node indices are assigned in first-encounter order
        // either way, but the deduplication structure itself must never
        // be a nondeterministic-iteration hazard (determinism lint).
        let mut index: BTreeMap<(u32, NodeId, usize), usize> = BTreeMap::new();
        let mut leaf = vec![0usize; n];
        for (v, seq) in sequences.iter().enumerate() {
            assert_eq!(
                seq[top],
                ranks.min_rank_node(),
                "vertex {v}'s outermost ball misses the global minimum-rank \
                 node — the underlying graph must be connected"
            );
            let mut parent = 0usize; // the root
            for i in (0..top).rev() {
                let key = (i as u32, seq[i], parent);
                let idx = *index.entry(key).or_insert_with(|| {
                    nodes.push(FrtNode {
                        level: i as u32,
                        leader: seq[i],
                        parent,
                        parent_weight: radii[i + 1],
                        repr_leaf: v as NodeId,
                    });
                    nodes.len() - 1
                });
                parent = idx;
            }
            leaf[v] = parent;
        }

        FrtTree {
            nodes,
            leaf,
            radii,
            beta,
        }
    }

    /// Reassembles a tree from its raw parts, validating every structural
    /// invariant `from_le_lists` establishes by construction. The
    /// snapshot decoder goes through here: bytes from disk must never be
    /// able to materialize a tree whose traversals panic or loop, so a
    /// violated invariant is a typed `Err(reason)`, not an assert.
    pub fn from_parts(
        nodes: Vec<FrtNode>,
        leaf: Vec<usize>,
        radii: Vec<f64>,
        beta: f64,
    ) -> Result<FrtTree, String> {
        if !(1.0..2.0).contains(&beta) {
            return Err(format!("β = {beta} outside [1, 2)"));
        }
        if nodes.is_empty() {
            return Err("empty node list".to_string());
        }
        if radii.is_empty() {
            return Err("empty radius list".to_string());
        }
        for (i, &r) in radii.iter().enumerate() {
            if !r.is_finite() || r <= 0.0 {
                return Err(format!("radius {i} is {r}"));
            }
            if i > 0 && r <= radii[i - 1] {
                return Err(format!("radii not strictly increasing at {i}"));
            }
        }
        let top = (radii.len() - 1) as u32;
        if nodes[0].level != top || nodes[0].parent != 0 || nodes[0].parent_weight != 0.0 {
            return Err("node 0 is not a root at the top level".to_string());
        }
        for (i, node) in nodes.iter().enumerate().skip(1) {
            if node.parent >= nodes.len() {
                return Err(format!("node {i} parent out of bounds"));
            }
            // Parent strictly one level up: traversals terminate because
            // every parent step increases the level towards the root.
            if node.level >= top || nodes[node.parent].level != node.level + 1 {
                return Err(format!("node {i} breaks the level ladder"));
            }
            if !node.parent_weight.is_finite() || node.parent_weight <= 0.0 {
                return Err(format!("node {i} parent weight {}", node.parent_weight));
            }
        }
        for (v, &idx) in leaf.iter().enumerate() {
            if idx >= nodes.len() || nodes[idx].level != 0 {
                return Err(format!("vertex {v} leaf index invalid"));
            }
        }
        Ok(FrtTree {
            nodes,
            leaf,
            radii,
            beta,
        })
    }

    /// The sampled `β`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Cut radii `r_0 < r_1 < …` (the root sits at level `radii.len()−1`).
    #[inline]
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// All tree nodes; index 0 is the root.
    #[inline]
    pub fn nodes(&self) -> &[FrtNode] {
        &self.nodes
    }

    /// Number of tree nodes (`≤ n·levels + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree has no nodes (never happens for `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of levels (= tree depth + 1 counting nodes).
    pub fn num_levels(&self) -> usize {
        self.radii.len()
    }

    /// Index of the leaf embedding graph vertex `v`.
    #[inline]
    pub fn leaf(&self, v: NodeId) -> usize {
        self.leaf[v as usize]
    }

    /// Number of embedded graph vertices (= length of the leaf table).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.leaf.len()
    }

    /// Tree distance between two tree nodes (sum of edge weights along
    /// the unique path).
    pub fn node_distance(&self, mut a: usize, mut b: usize) -> f64 {
        let mut total = 0.0;
        // Climb the deeper node first (levels are aligned for leaves, but
        // support arbitrary nodes).
        while self.nodes[a].level < self.nodes[b].level {
            total += self.nodes[a].parent_weight;
            a = self.nodes[a].parent;
        }
        while self.nodes[b].level < self.nodes[a].level {
            total += self.nodes[b].parent_weight;
            b = self.nodes[b].parent;
        }
        while a != b {
            total += self.nodes[a].parent_weight + self.nodes[b].parent_weight;
            a = self.nodes[a].parent;
            b = self.nodes[b].parent;
        }
        total
    }

    /// Tree distance between the leaves of graph vertices `u` and `v`:
    /// the embedded metric `dist(u, v, T)`.
    pub fn leaf_distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.node_distance(self.leaf[u as usize], self.leaf[v as usize])
    }

    /// The children lists (computed on demand; index 0 = root).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut children = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if i != 0 {
                children[node.parent].push(i);
            }
        }
        children
    }

    /// Leaves below each node (graph vertices), computed on demand.
    pub fn leaves_below(&self) -> Vec<Vec<NodeId>> {
        let mut below = vec![Vec::new(); self.nodes.len()];
        for v in 0..self.leaf.len() {
            let mut cur = self.leaf[v];
            loop {
                below[cur].push(v as NodeId);
                if cur == 0 {
                    break;
                }
                cur = self.nodes[cur].parent;
            }
        }
        below
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frt::le_list::{le_lists_direct, Ranks};
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::{cycle_graph, gnm_graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn build_tree(g: &mte_graph::Graph, seed: u64) -> (FrtTree, Vec<Vec<Dist>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(g, &ranks);
        let beta = rng.gen_range(1.0..2.0);
        let tree = FrtTree::from_le_lists(&lists, &ranks, beta, g.min_weight());
        (tree, apsp(g))
    }

    #[test]
    fn leaves_are_distinct_and_at_level_zero() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = gnm_graph(30, 70, 1.0..9.0, &mut rng);
        let (tree, _) = build_tree(&g, 52);
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..g.n() as NodeId {
            let leaf = tree.leaf(v);
            assert_eq!(tree.nodes()[leaf].level, 0);
            assert_eq!(tree.nodes()[leaf].leader, v, "leaf leader must be v itself");
            assert!(seen.insert(leaf), "two vertices share a leaf");
        }
    }

    #[test]
    fn tree_distances_dominate_graph_distances() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(60 + seed);
            let g = gnm_graph(25, 60, 1.0..7.0, &mut rng);
            let (tree, dist) = build_tree(&g, 70 + seed);
            for u in 0..g.n() as NodeId {
                for v in 0..g.n() as NodeId {
                    let dt = tree.leaf_distance(u, v);
                    let dg = dist[u as usize][v as usize].value();
                    assert!(
                        dt >= dg - 1e-9,
                        "dominance violated at ({u},{v}): {dt} < {dg} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn self_distance_is_zero_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(53);
        let g = gnm_graph(20, 45, 1.0..5.0, &mut rng);
        let (tree, _) = build_tree(&g, 54);
        for u in 0..g.n() as NodeId {
            assert_eq!(tree.leaf_distance(u, u), 0.0);
            for v in 0..g.n() as NodeId {
                assert_eq!(tree.leaf_distance(u, v), tree.leaf_distance(v, u));
            }
        }
    }

    #[test]
    fn tree_distance_satisfies_hst_structure() {
        // Edge weights double level by level; a child's parent edge is
        // half its grandparent edge.
        let mut rng = StdRng::seed_from_u64(55);
        let g = gnm_graph(20, 45, 1.0..5.0, &mut rng);
        let (tree, _) = build_tree(&g, 56);
        for (i, node) in tree.nodes().iter().enumerate() {
            if i == 0 {
                continue;
            }
            let parent = &tree.nodes()[node.parent];
            assert_eq!(parent.level, node.level + 1);
            if node.parent != 0 {
                assert!((parent.parent_weight - 2.0 * node.parent_weight).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cycle_average_stretch_is_reasonable() {
        // On a cycle, any single tree stretches some edge by Ω(n), but the
        // per-pair expectation stays O(log n). Average over trees here.
        let n = 24;
        let g = cycle_graph(n, 1.0);
        let dist = apsp(&g);
        let trials = 30;
        let mut total = 0.0;
        let mut count = 0usize;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(500 + t);
            let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
            let (lists, _, _) = le_lists_direct(&g, &ranks);
            let beta = rng.gen_range(1.0..2.0);
            let tree = FrtTree::from_le_lists(&lists, &ranks, beta, g.min_weight());
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    total += tree.leaf_distance(u, v) / dist[u as usize][v as usize].value();
                    count += 1;
                }
            }
        }
        let avg = total / count as f64;
        // O(log n) with a moderate constant; log₂ 24 ≈ 4.6.
        assert!(avg < 8.0 * 4.6, "average stretch {avg} too large");
        assert!(avg >= 1.0);
    }

    #[test]
    fn duplicate_points_embed_without_nan_levels() {
        // Regression: a metric with duplicate points has ω_min = 0, and
        // the root-radius computation `ω_min.log2()` used to produce
        // −∞/NaN radii (and the old assert rejected ω_min = 0 outright).
        // Duplicates must instead collapse into a shared leaf.
        use crate::frt::le_list::le_lists_from_metric;
        let d = |x: f64| Dist::new(x);
        // Points 0 and 1 coincide; 2 and 3 are genuinely distinct.
        let metric = vec![
            vec![d(0.0), d(0.0), d(1.0), d(4.0)],
            vec![d(0.0), d(0.0), d(1.0), d(4.0)],
            vec![d(1.0), d(1.0), d(0.0), d(3.0)],
            vec![d(4.0), d(4.0), d(3.0), d(0.0)],
        ];
        let ranks = Ranks::from_order(vec![2, 0, 3, 1]);
        let (lists, _) = le_lists_from_metric(&metric, &ranks);
        let tree = FrtTree::from_le_lists(&lists, &ranks, 1.5, 0.0);

        for &r in tree.radii() {
            assert!(r.is_finite() && r > 0.0, "bad radius {r}");
        }
        // The zero-distance pair shares a leaf and embeds at distance 0.
        assert_eq!(tree.leaf(0), tree.leaf(1));
        assert_eq!(tree.leaf_distance(0, 1), 0.0);
        // Distinct points keep dominating the metric.
        for u in 0..4u32 {
            for v in 0..4u32 {
                let dt = tree.leaf_distance(u, v);
                let dg = metric[u as usize][v as usize].value();
                assert!(dt.is_finite());
                assert!(dt >= dg - 1e-9, "dominance violated at ({u},{v})");
            }
        }
    }

    #[test]
    fn single_node_graph_embeds() {
        let g = mte_graph::Graph::from_edges(1, Vec::new());
        let ranks = Ranks::from_order(vec![0]);
        let lists = vec![LeList::from_distance_map(
            &mte_algebra::DistanceMap::singleton(0, Dist::ZERO),
            &ranks,
        )];
        let tree = FrtTree::from_le_lists(&lists, &ranks, 1.5, 1.0);
        assert_eq!(tree.leaf_distance(0, 0), 0.0);
        let _ = g;
    }
}
