//! Mapping tree edges back to graph paths (Section 7.5 of the paper).
//!
//! A tree edge `e = {child, parent}` (child at level `i`) maps to a real
//! path in `G` through a common descendant leaf `v₀`: the child's leader
//! `a` satisfies `dist_H(v₀, a) ≤ r_i` and the parent's leader `b`
//! satisfies `dist_H(v₀, b) ≤ r_{i+1}`, so the concatenated `a⇝v₀⇝b`
//! path has weight `≤ r_i + r_{i+1} ≤ 1.5·r_{i+1} ≤ 3·ω_T(e)` — the
//! bound of Section 7.5 (`dist_G ≤ dist_H` makes the `G`-path only
//! cheaper).
//!
//! The paper traces these paths through stored MBF states to stay at
//! polylog depth; this implementation recomputes them with two Dijkstra
//! runs (see DESIGN.md §3, substitution 3 — the output contract is
//! identical).

use crate::frt::tree::FrtTree;
use mte_algebra::NodeId;
use mte_graph::algorithms::sssp;
use mte_graph::Graph;

/// A tree edge realized as a path in `G`.
#[derive(Clone, Debug)]
pub struct EmbeddedTreeEdge {
    /// Child tree-node index.
    pub child: usize,
    /// Parent tree-node index.
    pub parent: usize,
    /// The realizing walk in `G` (node sequence from the child's leader to
    /// the parent's leader; consecutive nodes are adjacent in `G`).
    pub path: Vec<NodeId>,
    /// Total weight of the walk in `G`.
    pub weight: f64,
}

/// Maps the tree edge above `child` to a path in `g`
/// (`g` must be the graph the embedding was sampled from).
pub fn embed_tree_edge(g: &Graph, tree: &FrtTree, child: usize) -> EmbeddedTreeEdge {
    assert!(child != 0, "the root has no parent edge");
    let node = &tree.nodes()[child];
    let parent = node.parent;
    let a = node.leader;
    let b = tree.nodes()[parent].leader;
    let v0 = node.repr_leaf;

    let sp = sssp(g, v0);
    let to_a = sp.path_to(a).expect("leader must be reachable");
    let to_b = sp.path_to(b).expect("parent leader must be reachable");
    // Walk a → v0 → b.
    let mut path: Vec<NodeId> = to_a.into_iter().rev().collect();
    path.extend(to_b.into_iter().skip(1));
    let weight = (sp.dist(a) + sp.dist(b)).value();
    EmbeddedTreeEdge {
        child,
        parent,
        path,
        weight,
    }
}

/// Maps every tree edge to a `G`-path, reusing one Dijkstra per distinct
/// representative leaf.
pub fn embed_all_tree_edges(g: &Graph, tree: &FrtTree) -> Vec<EmbeddedTreeEdge> {
    use std::collections::BTreeMap;
    let mut cache: BTreeMap<NodeId, mte_graph::algorithms::ShortestPaths> = BTreeMap::new();
    (1..tree.len())
        .map(|child| {
            let node = &tree.nodes()[child];
            let v0 = node.repr_leaf;
            let sp = cache.entry(v0).or_insert_with(|| sssp(g, v0));
            let a = node.leader;
            let b = tree.nodes()[node.parent].leader;
            let to_a = sp.path_to(a).expect("leader must be reachable");
            let to_b = sp.path_to(b).expect("parent leader must be reachable");
            let mut path: Vec<NodeId> = to_a.into_iter().rev().collect();
            path.extend(to_b.into_iter().skip(1));
            let weight = (sp.dist(a) + sp.dist(b)).value();
            EmbeddedTreeEdge {
                child,
                parent: node.parent,
                path,
                weight,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frt::le_list::{le_lists_direct, Ranks};
    use crate::frt::tree::FrtTree;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    #[test]
    fn embedded_edges_are_real_paths_within_3x() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = gnm_graph(30, 75, 1.0..6.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let beta = rng.gen_range(1.0..2.0);
        let tree = FrtTree::from_le_lists(&lists, &ranks, beta, g.min_weight());

        for edge in embed_all_tree_edges(&g, &tree) {
            // It is a contiguous walk in G with matching weight.
            let mut total = 0.0;
            for win in edge.path.windows(2) {
                if win[0] == win[1] {
                    continue; // degenerate hop when leader == leaf
                }
                total += g.weight(win[0], win[1]).expect("walk must follow G edges");
            }
            assert!((total - edge.weight).abs() < 1e-6);
            // Section 7.5 bound: ω(path) ≤ 3 · ω_T(e).
            let tree_weight = tree.nodes()[edge.child].parent_weight;
            assert!(
                edge.weight <= 3.0 * tree_weight + 1e-9,
                "path weight {} exceeds 3·{}",
                edge.weight,
                tree_weight
            );
            // Endpoints are the leaders.
            assert_eq!(
                edge.path.first().copied(),
                Some(tree.nodes()[edge.child].leader)
            );
            assert_eq!(
                edge.path.last().copied(),
                Some(tree.nodes()[edge.parent].leader)
            );
        }
    }
}
