//! Least-Element (LE) lists (Section 7.1/7.2 of the paper; first
//! introduced by Cohen \[12, 14\]).
//!
//! Fix a uniformly random order (here: a random permutation rank) on `V`.
//! The LE list of `v` keeps, from `{(dist(v, w), w) | w ∈ V}`, exactly the
//! pairs not *dominated* — `(d', w')` dominates `(d, w)` iff `w' < w` and
//! `d' ≤ d`. Equivalently: for every radius `r`, the list can answer
//! "which is the smallest node within distance `r` of `v`?" — all an FRT
//! tree needs.
//!
//! Computing all LE lists is MBF-like (Definition 7.3, Lemma 7.5):
//! `S = S_{min,+}`, `M = D`, `r` = LE-domination filter, `x⁽⁰⁾_v = {v↦0}`.
//! Lemma 7.6 bounds every intermediate filtered list by `O(log n)` w.h.p.,
//! which is what makes each iteration cheap (Lemma 7.8).
//!
//! The hot path exploits Lemma 7.6 a second time: because filtered lists
//! stay `O(log n)`, most entries arriving from a neighbor's list are
//! already present in — or dominated by — the receiver's own list and
//! would be discarded by the filter anyway. [`LeListAlgorithm`]
//! therefore overrides [`MbfAlgorithm::recompute_into`] to run the
//! echo and rank-domination tests *per entry at merge time*, batching
//! the few survivors into a single sorted combine
//! ([`DistanceMap::assign_merged_min`]), so dominated entries are never
//! inserted, sorted, or filtered — bit-identical to merge-then-filter,
//! differential-tested by the equivalence suite.

use crate::arena::{
    oracle_run_arena_to_fixpoint_with, run_to_fixpoint_arena_with, with_arena_acc,
    ArenaMbfAlgorithm, RecomputeCtx, SpanRecompute,
};
use crate::engine::{EngineStrategy, MbfAlgorithm};
use crate::oracle::default_iteration_cap;
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_algebra::store::{EpochStore, SpanOut};
use mte_algebra::{Dist, DistanceMap, Filter, MinPlus, NodeId};
use mte_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::cell::RefCell;
use std::sync::Arc;

/// The domination probe: `(dist, prefix-min rank)` pairs sorted
/// ascending by distance.
type Probe = Vec<(Dist, u32)>;
/// The gather buffer batching the admitted (scaled) entries of all of a
/// vertex's neighbors, so the hop pays one sorted merge instead of one
/// per neighbor.
type Gather = Vec<(NodeId, Dist)>;

thread_local! {
    /// Per-thread probe + gather scratch for
    /// [`LeListAlgorithm::recompute_into`], kept thread-local so the
    /// pruned hot path stays allocation-free in steady state under the
    /// thread-parallel backend.
    static RECOMPUTE_SCRATCH: RefCell<(Probe, Gather)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with this thread's probe + gather buffers (cleared by the
/// caller; keep their capacity across calls). Falls back to fresh
/// buffers on re-entrant use instead of panicking, mirroring
/// [`mte_algebra::merge::with_dist_scratch`].
fn with_scratch<R>(f: impl FnOnce(&mut Vec<(Dist, u32)>, &mut Vec<(NodeId, Dist)>) -> R) -> R {
    RECOMPUTE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            let (probe, gather) = &mut *scratch;
            f(probe, gather)
        }
        Err(_) => f(&mut Vec::new(), &mut Vec::new()),
    })
}

/// A uniformly random total order on the nodes: `rank[v]` is `v`'s
/// position in a random permutation; *lower rank = smaller node* in the
/// paper's `v < w` notation.
#[derive(Clone, Debug)]
pub struct Ranks {
    rank: Vec<u32>,
    order: Vec<NodeId>,
}

impl Ranks {
    /// Samples a uniform permutation of `n` nodes.
    pub fn sample(n: usize, rng: &mut impl Rng) -> Ranks {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(rng);
        let mut rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        Ranks { rank, order }
    }

    /// A fixed order (for tests): `order[i]` is the node with rank `i`.
    pub fn from_order(order: Vec<NodeId>) -> Ranks {
        let mut rank = vec![0u32; order.len()];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        Ranks { rank, order }
    }

    /// The rank of node `v`.
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// The node of minimum rank (the globally "smallest" node).
    #[inline]
    pub fn min_rank_node(&self) -> NodeId {
        self.order[0]
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.rank.len()
    }
}

/// Core LE filtering **in place**: keeps only non-dominated entries,
/// leaving them sorted by ascending distance (hence strictly decreasing
/// rank). The entry vector is its own workspace — already
/// `(dist, rank)`-sorted inputs (the common case: LE lists stay sorted
/// between hops) skip the sort entirely, and survivors are compacted by
/// a two-pointer pass, so no scratch vector is ever allocated.
pub fn le_filter_in_place(entries: &mut Vec<(NodeId, Dist)>, ranks: &Ranks) {
    let sorted = entries
        .windows(2)
        .all(|w| (w[0].1, ranks.rank(w[0].0)) <= (w[1].1, ranks.rank(w[1].0)));
    if !sorted {
        entries.sort_unstable_by_key(|&(v, d)| (d, ranks.rank(v)));
    }
    let mut best_rank = u32::MAX;
    let mut kept = 0;
    for i in 0..entries.len() {
        let (v, d) = entries[i];
        let r = ranks.rank(v);
        if r < best_rank {
            entries[kept] = (v, d);
            kept += 1;
            best_rank = r;
        }
    }
    entries.truncate(kept);
}

/// Core LE filtering into a fresh vector (see [`le_filter_in_place`] for
/// the allocation-free variant used on hot paths — callers that own
/// their entry vector should prefer it; this one exists for borrowed
/// inputs). Already `(dist, rank)`-sorted inputs take a single
/// survivors-only pass (one reserve of at most `|entries|`, no copy of
/// dominated entries, no sort); unsorted inputs fall back to
/// copy-then-filter (the sort needs an owned buffer anyway).
pub fn le_filter_entries(entries: &[(NodeId, Dist)], ranks: &Ranks) -> Vec<(NodeId, Dist)> {
    let sorted = entries
        .windows(2)
        .all(|w| (w[0].1, ranks.rank(w[0].0)) <= (w[1].1, ranks.rank(w[1].0)));
    if !sorted {
        let mut kept = entries.to_vec();
        le_filter_in_place(&mut kept, ranks);
        return kept;
    }
    let mut kept = Vec::with_capacity(entries.len());
    let mut best_rank = u32::MAX;
    for &(v, d) in entries {
        let r = ranks.rank(v);
        if r < best_rank {
            kept.push((v, d));
            best_rank = r;
        }
    }
    kept
}

/// The LE representative projection of Definition 7.3 (Equation (7.3)):
/// `r(x)_w = ∞` iff some `w' < w` has `x_{w'} ≤ x_w`.
#[derive(Clone, Debug)]
pub struct LeFilter {
    ranks: Arc<Ranks>,
}

impl LeFilter {
    /// Filter w.r.t. the given random order.
    pub fn new(ranks: Arc<Ranks>) -> Self {
        LeFilter { ranks }
    }
}

impl Filter<MinPlus, DistanceMap> for LeFilter {
    fn apply(&self, x: &mut DistanceMap) {
        if x.len() <= 1 {
            return;
        }
        // Filter inside the map's own entry buffer; `edit_entries`
        // restores the node-sorted invariant afterwards.
        let ranks = &self.ranks;
        x.edit_entries(|entries| le_filter_in_place(entries, ranks));
    }
}

/// The LE-list MBF-like algorithm (Definition 7.3).
#[derive(Clone, Debug)]
pub struct LeListAlgorithm {
    ranks: Arc<Ranks>,
}

impl LeListAlgorithm {
    /// LE lists w.r.t. the given random order.
    pub fn new(ranks: Arc<Ranks>) -> Self {
        LeListAlgorithm { ranks }
    }
}

impl MbfAlgorithm for LeListAlgorithm {
    type S = MinPlus;
    type M = DistanceMap;

    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
        MinPlus::new(weight)
    }

    fn filter(&self, x: &mut DistanceMap) {
        if x.len() <= 1 {
            return;
        }
        let ranks = &self.ranks;
        x.edit_entries(|entries| le_filter_in_place(entries, ranks));
    }

    /// Equation (7.5): `x⁽⁰⁾_{vv} = 0`, `∞` elsewhere.
    fn init(&self, v: NodeId) -> DistanceMap {
        DistanceMap::singleton(v, Dist::ZERO)
    }

    #[inline]
    fn propagate_into(&self, acc: &mut DistanceMap, state: &DistanceMap, coeff: &MinPlus) {
        acc.merge_scaled(state, coeff.0);
    }

    #[inline]
    fn state_size(&self, x: &DistanceMap) -> usize {
        x.len().max(1)
    }

    /// Rank-pruned recomputation (the Lemma 7.6 work argument made
    /// operational, following Blelloch–Gu–Sun's prune-during-propagation
    /// structure). A **domination probe** — `v`'s own filtered list
    /// sorted by distance with prefix-minimum ranks — is built once per
    /// recompute; one pass over the neighbors' entries then **admits**
    /// an incoming entry `(u, d)` only if the probe holds no entry of
    /// strictly lower rank within distance `d` (one `O(log |x_v|)`
    /// binary search each). Admitted entries are batched (sorted,
    /// per-node minimum) and combined with the base list in a single
    /// sorted merge, so a recompute pays one merge — not one per
    /// neighbor — and rejected entries are never inserted, sorted, or
    /// filtered. Rejection is lossless:
    ///
    /// * the dominating entry is in `v`'s base list (`a_vv = 1` keeps
    ///   it) and min-merging only ever tightens it, and
    /// * domination is transitive, so a rejected entry cannot have been
    ///   the sole dominator of some other entry — its own dominator
    ///   dominates that entry too (even a rejected entry whose node
    ///   collides with a base entry only ever loses a value the filter
    ///   was about to discard).
    ///
    /// Hence `r(pruned batch merge) = r(full merge)` **bit-for-bit**:
    /// admitted entries are scaled by the same `d + coeff`, and the
    /// per-key minima of an idempotent total order are combination-order
    /// independent — no floating-point value is ever computed
    /// differently. The equivalence suite differential-tests this
    /// against the default merge-then-filter path. The probe costs
    /// `O(log |x_v|)` per incoming entry versus the merge-sort-filter
    /// work an insertion would cost, and filtered lists stay `O(log n)`
    /// w.h.p., so most entries are rejected.
    ///
    /// Engine states are always filter fixpoints (`init` is a
    /// singleton; every other state left a `filter` call), so when
    /// nothing is admitted the merge *and* the filter collapse to a
    /// `clone_from` of the base list — the common case for touched-but-
    /// quiescent vertices near convergence.
    ///
    /// `entries_processed` counts `|x_v|` plus only the **admitted**
    /// entries — pruned entries are examined but never processed (see
    /// [`crate::work::WorkStats`]).
    fn recompute_into(
        &self,
        v: NodeId,
        g: &Graph,
        weight_scale: f64,
        states: &[DistanceMap],
        out: &mut DistanceMap,
    ) -> (u64, u64) {
        let base = &states[v as usize];
        let base_entries = base.entries();
        let mut relaxations = 0u64;
        let mut admitted = 0u64;
        let ranks = &*self.ranks;
        with_scratch(|probe, gather| {
            // The probe is built lazily: a steady-state recompute rejects
            // every incoming entry as an echo and never pays the sort.
            let mut probe_ready = false;
            gather.clear();
            for &(w, ew) in g.neighbors(v) {
                let coeff = self.edge_coeff(v, w, ew * weight_scale);
                relaxations += 1;
                let s = coeff.0;
                if !s.is_finite() {
                    continue; // ∞ ⊙ x = ⊥ (Equation (2.2))
                }
                // Both entry lists are node-sorted: co-walk them so the
                // echo test is a linear merge scan, not a search per
                // entry.
                let mut bi = 0;
                for &(u, du) in states[w as usize].entries() {
                    let d = du + s;
                    while bi < base_entries.len() && base_entries[bi].0 < u {
                        bi += 1;
                    }
                    // Echo rejection: `u` already sits in `v`'s list at
                    // distance ≤ d, so min-combining (u, d) is the
                    // identity — dominated or not, it changes nothing.
                    if bi < base_entries.len() && base_entries[bi].0 == u && base_entries[bi].1 <= d
                    {
                        continue;
                    }
                    if !probe_ready {
                        probe.clear();
                        probe.extend(base.iter().map(|(b, db)| (db, ranks.rank(b))));
                        probe.sort_unstable();
                        let mut best = u32::MAX;
                        for e in probe.iter_mut() {
                            best = best.min(e.1);
                            e.1 = best;
                        }
                        probe_ready = true;
                    }
                    let idx = probe.partition_point(|&(pd, _)| pd <= d);
                    let dominated = idx > 0 && probe[idx - 1].1 < ranks.rank(u);
                    if !dominated {
                        gather.push((u, d));
                        admitted += 1;
                    }
                }
            }
            if gather.is_empty() {
                // a_vv = 1 and nothing survived the prune: the hop is the
                // identity on `v` and `base` is already a filter fixpoint.
                out.clone_from(base);
                return;
            }
            // One deterministic merge: per-node minimum of the admitted
            // entries (sort is by (node, dist), dedup keeps the first =
            // smallest), then a single sorted combine with the base list.
            gather.sort_unstable();
            gather.dedup_by(|next, prev| prev.0 == next.0);
            out.assign_merged_min(base, gather);
            self.filter(out);
        });
        (self.state_size(base) as u64 + admitted, relaxations)
    }
}

impl ArenaMbfAlgorithm for LeListAlgorithm {
    /// The LE lists are the rank column's *raison d'être*: the probe
    /// reads `(dist, rank)` pairs straight from the pool.
    const USES_RANK_COLUMN: bool = true;

    /// The pool's rank column carries each entry's permutation rank, so
    /// the arena probe never chases the rank table.
    #[inline]
    fn entry_aux(&self, node: NodeId) -> u32 {
        self.ranks.rank(node)
    }

    /// The arena twin of the rank-pruned [`MbfAlgorithm::recompute_into`]
    /// override: identical echo rejection, domination probe, and
    /// gather-once/merge-once pass, reading base and neighbor states as
    /// borrowed spans. Three arena-specific wins:
    ///
    /// * **clean neighbors are skipped outright** — LE rank domination
    ///   is absorption-stable (entry values only improve; a dominated
    ///   entry stays dominated because its dominator chain persists by
    ///   transitivity), so an already-absorbed contribution is all
    ///   echoes and dominated entries: provably an identity (see
    ///   [`RecomputeCtx::neighbor_dirty`]);
    /// * the probe's `(dist, rank)` pairs come straight from the pool's
    ///   rank column (no per-entry rank lookups);
    /// * the quiescent case — nothing admitted — returns
    ///   [`SpanRecompute::unchanged_hint`] so the engine keeps the old
    ///   span without even the `clone_from` the owned path pays.
    fn recompute_span(
        &self,
        v: NodeId,
        g: &Graph,
        weight_scale: f64,
        states: &EpochStore,
        ctx: &RecomputeCtx<'_>,
        out: &mut SpanOut<'_>,
    ) -> SpanRecompute {
        let base = states.get(v);
        let base_entries = base.entries;
        let full = ctx.require_full(v);
        let mut relaxations = 0u64;
        let mut admitted = 0u64;
        let ranks = &*self.ranks;
        with_scratch(|probe, gather| {
            // The probe is built lazily: a steady-state recompute rejects
            // every incoming entry as an echo and never pays the sort.
            let mut probe_ready = false;
            gather.clear();
            for &(w, ew) in g.neighbors(v) {
                if !full && !ctx.neighbor_dirty(w) {
                    continue; // already absorbed: provably an identity
                }
                let coeff = self.edge_coeff(v, w, ew * weight_scale);
                relaxations += 1;
                let s = coeff.0;
                if !s.is_finite() {
                    continue; // ∞ ⊙ x = ⊥ (Equation (2.2))
                }
                // Both entry slices are node-sorted: co-walk them so the
                // echo test is a linear merge scan, not a search per
                // entry.
                let mut bi = 0;
                for &(u, du) in states.get(w).entries {
                    let d = du + s;
                    while bi < base_entries.len() && base_entries[bi].0 < u {
                        bi += 1;
                    }
                    if bi < base_entries.len() && base_entries[bi].0 == u && base_entries[bi].1 <= d
                    {
                        continue;
                    }
                    if !probe_ready {
                        probe.clear();
                        // (dist, rank) pairs straight out of the pool's
                        // parallel rank column.
                        probe.extend(
                            base.entries
                                .iter()
                                .zip(base.ranks)
                                .map(|(&(_, db), &rb)| (db, rb)),
                        );
                        probe.sort_unstable();
                        let mut best = u32::MAX;
                        for e in probe.iter_mut() {
                            best = best.min(e.1);
                            e.1 = best;
                        }
                        probe_ready = true;
                    }
                    let idx = probe.partition_point(|&(pd, _)| pd <= d);
                    let dominated = idx > 0 && probe[idx - 1].1 < ranks.rank(u);
                    if !dominated {
                        gather.push((u, d));
                        admitted += 1;
                    }
                }
            }
            let entries = base_entries.len().max(1) as u64 + admitted;
            if gather.is_empty() {
                // a_vv = 1 and nothing survived the prune: the hop is
                // the identity on `v` — keep the span, copy nothing.
                return SpanRecompute {
                    entries,
                    relaxations,
                    unchanged_hint: true,
                };
            }
            gather.sort_unstable();
            gather.dedup_by(|next, prev| prev.0 == next.0);
            with_arena_acc(|acc| {
                acc.assign_merged_min_entries(base_entries, gather);
                self.filter(acc);
                for (u, d) in acc.iter() {
                    out.push(u, d, ranks.rank(u));
                }
            });
            SpanRecompute {
                entries,
                relaxations,
                unchanged_hint: false,
            }
        })
    }
}

/// A finished LE list: entries `(node, dist)` sorted by ascending
/// distance with strictly decreasing rank. The first entry is always
/// `(v, 0)` for the owner `v`; the last is the globally minimum-rank node.
#[derive(Clone, Debug, PartialEq)]
pub struct LeList {
    entries: Vec<(NodeId, Dist)>,
}

impl LeList {
    /// Builds a list from a (filtered) distance map.
    pub fn from_distance_map(x: &DistanceMap, ranks: &Ranks) -> LeList {
        LeList {
            entries: le_filter_entries(x.entries(), ranks),
        }
    }

    /// Wraps entries that are already LE-filtered and sorted by ascending
    /// distance (callers that maintain the invariant themselves, e.g. the
    /// Congest simulator).
    pub fn from_entries_sorted(entries: Vec<(NodeId, Dist)>) -> LeList {
        debug_assert!(entries.windows(2).all(|w| w[0].1 <= w[1].1));
        LeList { entries }
    }

    /// Entries sorted by ascending distance.
    #[inline]
    pub fn entries(&self) -> &[(NodeId, Dist)] {
        &self.entries
    }

    /// List length (`O(log n)` w.h.p. by Lemma 7.6).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff empty (only possible for an empty graph).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The minimum-rank node within distance `radius` of the owner —
    /// the `v_i = min{w | dist(v, w) ≤ β2^i}` query of the FRT
    /// construction (Section 7.1, step (4)). Returns `None` if the ball is
    /// empty (radius below 0 never happens: the owner sits at distance 0).
    pub fn min_node_within(&self, radius: Dist) -> Option<NodeId> {
        // Entries are distance-ascending with decreasing rank, so the
        // answer is the *last* entry with dist ≤ radius.
        let idx = self.entries.partition_point(|&(_, d)| d <= radius);
        idx.checked_sub(1).map(|i| self.entries[i].0)
    }

    /// Largest finite distance in the list.
    pub fn max_dist(&self) -> Dist {
        self.entries.last().map_or(Dist::ZERO, |&(_, d)| d)
    }

    /// Approximate equality: same node sequence, distances within
    /// relative tolerance `rel` (floating-point sums in different orders
    /// differ in the last ulps).
    pub fn approx_eq(&self, other: &LeList, rel: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(&(v, d), &(w, e))| {
                    v == w && mte_algebra::distance_map::dist_close(d, e, rel)
                })
    }
}

/// Approximate equality of whole LE-list collections (see
/// [`LeList::approx_eq`]).
pub fn le_lists_approx_eq(a: &[LeList], b: &[LeList], rel: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, rel))
}

/// LE lists via the **oracle on `H`** — the paper's main pipeline
/// (Section 7.3/7.4) — with the given inner-engine strategy. Runs on
/// the arena backend (span-backed level states, one shared scratch
/// across the `Λ+1` levels); bit-identical to the owned oracle,
/// asserted by `tests/schedule_equivalence.rs`.
pub fn le_lists_oracle_with(
    sim: &SimulatedGraph,
    ranks: &Arc<Ranks>,
    cap: Option<usize>,
    strategy: EngineStrategy,
) -> (Vec<LeList>, usize, WorkStats) {
    let alg = LeListAlgorithm::new(Arc::clone(ranks));
    let cap = cap.unwrap_or_else(|| default_iteration_cap(sim.base().n()));
    let run = oracle_run_arena_to_fixpoint_with(&alg, sim, cap, strategy);
    let lists = run
        .states
        .iter()
        .map(|x| LeList::from_distance_map(x, ranks))
        .collect();
    (lists, run.h_iterations, run.work)
}

/// LE lists via the oracle under the default hybrid engine. Returns the
/// lists, the number of simulated `H`-iterations, and the work.
pub fn le_lists_oracle(
    sim: &SimulatedGraph,
    ranks: &Arc<Ranks>,
    cap: Option<usize>,
) -> (Vec<LeList>, usize, WorkStats) {
    le_lists_oracle_with(sim, ranks, cap, EngineStrategy::default())
}

/// LE lists by **direct iteration on `G`** (the algorithm of Khan et
/// al. \[26\], Section 8.1) with the given engine strategy:
/// `SPD(G) + 1` filtered MBF iterations. Exact w.r.t. `dist(·,·,G)`; the
/// baseline the oracle is measured against.
pub fn le_lists_direct_with(
    g: &Graph,
    ranks: &Arc<Ranks>,
    strategy: EngineStrategy,
) -> (Vec<LeList>, usize, WorkStats) {
    let alg = LeListAlgorithm::new(Arc::clone(ranks));
    // Arena backend: bit-identical to `run_to_fixpoint_with`
    // (differential-tested), with copy-on-write state storage.
    let run = run_to_fixpoint_arena_with(&alg, g, g.n() + 1, strategy);
    let lists = run
        .states
        .iter()
        .map(|x| LeList::from_distance_map(x, ranks))
        .collect();
    (lists, run.iterations, run.work)
}

/// LE lists by direct iteration under the default hybrid engine.
pub fn le_lists_direct(g: &Graph, ranks: &Arc<Ranks>) -> (Vec<LeList>, usize, WorkStats) {
    le_lists_direct_with(g, ranks, EngineStrategy::default())
}

/// LE lists from an **explicit metric** (the Blelloch et al. \[10\]
/// baseline): a metric is a complete graph of SPD 1, so a single MBF-like
/// iteration — here computed directly per node in `Θ(n)` work each after
/// an `O(n log n)` sort — reproduces their result.
pub fn le_lists_from_metric(dist: &[Vec<Dist>], ranks: &Ranks) -> (Vec<LeList>, WorkStats) {
    let n = dist.len();
    let mut work = WorkStats {
        iterations: 1,
        ..WorkStats::default()
    };
    let lists: Vec<LeList> = (0..n)
        .map(|v| {
            let mut entries: Vec<(NodeId, Dist)> = (0..n)
                .filter(|&w| dist[v][w].is_finite())
                .map(|w| (w as NodeId, dist[v][w]))
                .collect();
            work.entries_processed += entries.len() as u64;
            // The row is owned: filter it in its own buffer.
            le_filter_in_place(&mut entries, ranks);
            LeList { entries }
        })
        .collect();
    (lists, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference LE list straight from the definition (Section 7.1 (3)).
    fn reference_le_list(dist_row: &[Dist], ranks: &Ranks) -> Vec<(NodeId, Dist)> {
        let n = dist_row.len();
        let mut kept = Vec::new();
        for w in 0..n as NodeId {
            let dw = dist_row[w as usize];
            if !dw.is_finite() {
                continue;
            }
            let dominated = (0..n as NodeId)
                .any(|u| ranks.rank(u) < ranks.rank(w) && dist_row[u as usize] <= dw);
            if !dominated {
                kept.push((w, dw));
            }
        }
        kept.sort_unstable_by_key(|&(v, d)| (d, ranks.rank(v)));
        kept
    }

    #[test]
    fn direct_le_lists_match_definition() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = gnm_graph(40, 100, 1.0..8.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let exact = apsp(&g);
        for v in 0..g.n() {
            let expect = LeList {
                entries: reference_le_list(&exact[v], &ranks),
            };
            assert!(lists[v].approx_eq(&expect, 1e-9), "node {v}");
        }
    }

    #[test]
    fn le_list_starts_with_owner_and_ends_with_min_rank() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = gnm_graph(30, 60, 1.0..5.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        for v in 0..g.n() as NodeId {
            let l = &lists[v as usize];
            assert_eq!(l.entries()[0], (v, Dist::ZERO), "owner first");
            assert_eq!(
                l.entries().last().unwrap().0,
                ranks.min_rank_node(),
                "global minimum last"
            );
            // Ranks strictly decrease along the list.
            for pair in l.entries().windows(2) {
                assert!(ranks.rank(pair[1].0) < ranks.rank(pair[0].0));
                assert!(pair[1].1 >= pair[0].1);
            }
        }
    }

    #[test]
    fn min_node_within_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = gnm_graph(25, 60, 1.0..6.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let exact = apsp(&g);
        for v in 0..g.n() {
            for radius in [0.0, 1.0, 2.5, 7.0, 1e6] {
                let r = Dist::new(radius);
                let expect = (0..g.n() as NodeId)
                    .filter(|&w| exact[v][w as usize] <= r)
                    .min_by_key(|&w| ranks.rank(w));
                assert_eq!(lists[v].min_node_within(r), expect, "v={v} r={radius}");
            }
        }
    }

    #[test]
    fn metric_baseline_agrees_with_direct() {
        let mut rng = StdRng::seed_from_u64(44);
        let g = gnm_graph(30, 80, 1.0..4.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (direct, _, _) = le_lists_direct(&g, &ranks);
        let exact = apsp(&g);
        let (from_metric, _) = le_lists_from_metric(&exact, &ranks);
        assert!(le_lists_approx_eq(&direct, &from_metric, 1e-9));
    }

    #[test]
    fn oracle_le_lists_match_explicit_h() {
        let mut rng = StdRng::seed_from_u64(45);
        let g = gnm_graph(25, 55, 1.0..6.0, &mut rng);
        let spd = mte_graph::algorithms::shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd.max(1), 0.15, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (via_oracle, _, _) = le_lists_oracle(&sim, &ranks, Some(4 * g.n()));
        let h = sim.explicit_h();
        let (via_h, _, _) = le_lists_direct(&h, &ranks);
        assert!(le_lists_approx_eq(&via_oracle, &via_h, 1e-9));
    }

    #[test]
    fn le_list_lengths_are_logarithmic() {
        // Lemma 7.6: |r(x)| ∈ O(log n) w.h.p.
        let mut rng = StdRng::seed_from_u64(46);
        let g = gnm_graph(400, 1200, 1.0..50.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let max_len = lists.iter().map(LeList::len).max().unwrap();
        // E[len] = H_n ≈ ln n ≈ 6; 6·ln n is a conservative w.h.p. bound.
        assert!(
            max_len as f64 <= 6.0 * (g.n() as f64).ln(),
            "max length {max_len}"
        );
    }

    #[test]
    fn path_graph_le_lists() {
        let g = path_graph(5, 1.0);
        // Order: node 4 smallest, then 0, 1, 2, 3.
        let ranks = Arc::new(Ranks::from_order(vec![4, 0, 1, 2, 3]));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        // Node 0: itself at 0, then node 4 at distance 4 (nothing between
        // dominates since 0 has rank 1).
        assert_eq!(lists[0].entries(), &[(0, Dist::ZERO), (4, Dist::new(4.0))]);
        // Node 3: itself, then 4 (rank 0) at distance 1 dominates 0,1,2.
        assert_eq!(lists[3].entries(), &[(3, Dist::ZERO), (4, Dist::new(1.0))]);
    }
}
