//! Baseline FRT samplers the paper compares against (Section 1.1).
//!
//! * [`sample_from_metric`] — Blelloch et al. \[10\]: the input is an
//!   explicit metric (`Θ(n²)` work just to read it); a metric is a
//!   complete graph of SPD 1, so one MBF-like iteration produces the LE
//!   lists.
//! * [`sample_direct`] — Khan et al. \[26\] run on `G` itself:
//!   `SPD(G) + 1` filtered iterations; exact but `Θ(SPD(G))` depth.

use crate::frt::le_list::{le_lists_direct, le_lists_from_metric, LeList, Ranks};
use crate::frt::tree::FrtTree;
use crate::work::WorkStats;
use mte_algebra::Dist;
use mte_graph::Graph;
use rand::Rng;
use std::sync::Arc;

/// An FRT sample together with its provenance and cost.
#[derive(Clone, Debug)]
pub struct BaselineSample {
    /// The sampled tree.
    pub tree: FrtTree,
    /// The random order used.
    pub ranks: Arc<Ranks>,
    /// The LE lists backing the tree.
    pub le_lists: Vec<LeList>,
    /// MBF-like iterations executed.
    pub iterations: usize,
    /// Work accounting.
    pub work: WorkStats,
}

/// Samples an FRT tree from an explicit metric, given as a full distance
/// matrix, following Blelloch et al. \[10\]. `omega_min` must lower-bound
/// the minimum positive pairwise distance.
pub fn sample_from_metric(
    dist: &[Vec<Dist>],
    omega_min: f64,
    rng: &mut impl Rng,
) -> BaselineSample {
    let n = dist.len();
    let ranks = Arc::new(Ranks::sample(n, rng));
    let beta = rng.gen_range(1.0..2.0);
    let (le_lists, work) = le_lists_from_metric(dist, &ranks);
    let tree = FrtTree::from_le_lists(&le_lists, &ranks, beta, omega_min);
    BaselineSample {
        tree,
        ranks,
        le_lists,
        iterations: 1,
        work,
    }
}

/// Samples an FRT tree of the exact metric of `G` by direct LE-list
/// iteration on `G` (Khan et al. \[26\]).
pub fn sample_direct(g: &Graph, rng: &mut impl Rng) -> BaselineSample {
    let ranks = Arc::new(Ranks::sample(g.n(), rng));
    let beta = rng.gen_range(1.0..2.0);
    let (le_lists, iterations, work) = le_lists_direct(g, &ranks);
    let tree = FrtTree::from_le_lists(&le_lists, &ranks, beta, g.min_weight());
    BaselineSample {
        tree,
        ranks,
        le_lists,
        iterations,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metric_and_direct_baselines_agree_given_same_randomness() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = gnm_graph(25, 60, 1.0..8.0, &mut rng);
        let exact = apsp(&g);
        // Same seed stream for both samplers ⇒ identical permutation & β
        // ⇒ identical trees.
        let mut rng_a = StdRng::seed_from_u64(72);
        let mut rng_b = StdRng::seed_from_u64(72);
        let a = sample_from_metric(&exact, g.min_weight(), &mut rng_a);
        let b = sample_direct(&g, &mut rng_b);
        assert!(crate::frt::le_list::le_lists_approx_eq(
            &a.le_lists,
            &b.le_lists,
            1e-9
        ));
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                let (x, y) = (a.tree.leaf_distance(u, v), b.tree.leaf_distance(u, v));
                assert!(
                    (x - y).abs() <= 1e-9 * x.max(y).max(1.0),
                    "({u},{v}): {x} vs {y}"
                );
            }
        }
        // The metric baseline pays Θ(n²) reads; direct pays per-iteration
        // sparse work.
        assert!(a.work.entries_processed >= (g.n() * g.n()) as u64 / 2);
    }

    #[test]
    fn direct_iterations_bounded_by_spd_plus_one() {
        // Definition 2.11 guarantees a fixpoint after ≤ SPD(G) + 1
        // iterations; the LE filter typically converges even earlier
        // (once every surviving entry has propagated).
        let mut rng = StdRng::seed_from_u64(73);
        let g = mte_graph::generators::path_graph(32, 1.0);
        let s = sample_direct(&g, &mut rng);
        assert!(s.iterations <= 32, "took {} iterations", s.iterations);
        assert!(s.iterations >= 2);
    }
}
