//! The oracle for MBF-like queries on `H` (Section 5 of the paper).
//!
//! By Lemma 5.1 the adjacency matrix of `H` decomposes as
//! `A_H = ⊕_{λ=0}^{Λ} P_λ A_λ^d P_λ`, where `P_λ` projects onto nodes of
//! level `≥ λ` and `A_λ` is `G'`'s adjacency matrix with weights scaled by
//! `(1+ε̂)^{Λ−λ}`. Because filters may be applied at any time without
//! changing the output class (Corollary 2.17, Equation (5.9)), one
//! iteration of any MBF-like algorithm on `H` is simulated as
//!
//! ```text
//! x ← r^V ( ⊕_λ  P_λ (r^V A_λ)^d P_λ x )
//! ```
//!
//! using only `G'`'s `O(m)` edges — `Λ·d ∈ polylog n` cheap iterations
//! instead of one `Ω(n²)` dense product (Theorem 5.2).

use crate::engine::{initial_states, iterate_scaled, MbfAlgorithm};
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_algebra::{MinPlus, NodeId, Semimodule};
use rayon::prelude::*;

/// Result of an oracle computation: the states `A^h(H)` and the cost of
/// simulating them on `G'`.
#[derive(Clone, Debug)]
pub struct OracleRun<M> {
    /// Final states, indexed by node.
    pub states: Vec<M>,
    /// Number of simulated `H`-iterations.
    pub h_iterations: usize,
    /// Whether a fixpoint on `H` was reached (`h > SPD(H)`).
    pub fixpoint: bool,
    /// Work spent, including all inner `G'`-iterations.
    pub work: WorkStats,
}

/// Simulates **one** iteration of `alg` on `H`:
/// `x ← r^V (⊕_λ P_λ (r^V A_λ)^d P_λ x)`.
pub fn oracle_iteration<A>(
    alg: &A,
    sim: &SimulatedGraph,
    x: &[A::M],
) -> (Vec<A::M>, WorkStats)
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let n = sim.augmented().n();
    debug_assert_eq!(n, x.len());
    let lambda_max = sim.levels().lambda();
    let mut work = WorkStats::new();
    let mut agg: Vec<A::M> = vec![A::M::zero(); n];

    for lambda in 0..=lambda_max {
        let scale = sim.level_scale(lambda);
        // y ← P_λ x : discard states below level λ.
        let mut y: Vec<A::M> = (0..n)
            .into_par_iter()
            .map(|v| {
                if sim.levels().level(v as NodeId) >= lambda {
                    x[v].clone()
                } else {
                    A::M::zero()
                }
            })
            .collect();
        // y ← (r^V A_λ)^d y : d filtered iterations on the scaled G'.
        for _ in 0..sim.d() {
            let (next, w) = iterate_scaled(alg, sim.augmented(), &y, scale);
            work += w;
            y = next;
        }
        // agg ← agg ⊕ P_λ y.
        agg.par_iter_mut().enumerate().for_each(|(v, a)| {
            if sim.levels().level(v as NodeId) >= lambda {
                a.add_assign(&y[v]);
            }
        });
    }

    // Final component-wise filter r^V.
    agg.par_iter_mut().for_each(|a| alg.filter(a));
    (agg, work)
}

/// Runs `h` iterations of `alg` on `H` starting from `r^V x⁽⁰⁾`
/// (Theorem 5.2 (1)).
pub fn oracle_run<A>(alg: &A, sim: &SimulatedGraph, h: usize) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let mut states = initial_states(alg, sim.augmented().n());
    let mut work = WorkStats::new();
    for _ in 0..h {
        let (next, w) = oracle_iteration(alg, sim, &states);
        work += w;
        states = next;
    }
    OracleRun { states, h_iterations: h, fixpoint: false, work }
}

/// Iterates `alg` on `H` until a fixpoint, capped at `cap` iterations.
/// W.h.p. the fixpoint arrives after `SPD(H) ∈ O(log² n)` iterations
/// (Theorems 4.5 and 5.2 (2)).
pub fn oracle_run_to_fixpoint<A>(alg: &A, sim: &SimulatedGraph, cap: usize) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
    A::M: PartialEq,
{
    let mut states = initial_states(alg, sim.augmented().n());
    let mut work = WorkStats::new();
    let mut h = 0;
    let mut fixpoint = false;
    while h < cap {
        let (next, w) = oracle_iteration(alg, sim, &states);
        work += w;
        h += 1;
        if next == states {
            fixpoint = true;
            break;
        }
        states = next;
    }
    OracleRun { states, h_iterations: h, fixpoint, work }
}

/// Default iteration cap: `SPD(H) ∈ O(log² n)` w.h.p. (Theorem 4.5), with
/// a generous constant; the fixpoint check stops earlier in practice.
pub fn default_iteration_cap(n: usize) -> usize {
    let log = (n.max(2) as f64).log2();
    (6.0 * log * log) as usize + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SourceDetection;
    use crate::engine::run_to_fixpoint;
    use mte_graph::algorithms::shortest_path_diameter;
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Theorem 5.2 ground truth: running APSP through the oracle must
    /// agree exactly with running APSP directly on the explicit `H`.
    #[test]
    fn oracle_apsp_equals_explicit_h_apsp() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gnm_graph(30, 70, 1.0..6.0, &mut rng);
        let spd = shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd.max(1), 0.2, &mut rng);
        let h_explicit = sim.explicit_h();

        let alg = SourceDetection::apsp(g.n());
        let via_oracle = oracle_run_to_fixpoint(&alg, &sim, 4 * g.n());
        assert!(via_oracle.fixpoint);
        let via_h = run_to_fixpoint(&alg, &h_explicit, 4 * g.n());
        assert!(via_h.fixpoint);

        for v in 0..g.n() {
            assert!(
                via_oracle.states[v].approx_eq(&via_h.states[v], 1e-9),
                "oracle and explicit H disagree at node {v}:\n{:?}\nvs\n{:?}",
                via_oracle.states[v],
                via_h.states[v]
            );
        }
    }

    #[test]
    fn oracle_single_iteration_matches_h_iteration() {
        // One oracle iteration = one MBF iteration on H (not more).
        let mut rng = StdRng::seed_from_u64(22);
        let g = path_graph(12, 1.0);
        let sim = SimulatedGraph::without_hopset(&g, 11, 0.1, &mut rng);
        let h_explicit = sim.explicit_h();
        let alg = SourceDetection::apsp(g.n());

        let o1 = oracle_run(&alg, &sim, 1);
        let d1 = crate::engine::run(&alg, &h_explicit, 1);
        for v in 0..g.n() {
            assert!(
                o1.states[v].approx_eq(&d1.states[v], 1e-9),
                "node {v}: {:?} vs {:?}",
                o1.states[v],
                d1.states[v]
            );
        }
    }

    #[test]
    fn fixpoint_reached_within_cap() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = path_graph(64, 1.0);
        let sim = SimulatedGraph::without_hopset(&g, 63, 0.1, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 0);
        let run = oracle_run_to_fixpoint(&alg, &sim, default_iteration_cap(g.n()));
        assert!(
            run.fixpoint,
            "no fixpoint within {} iterations",
            default_iteration_cap(g.n())
        );
        // SPD(H) ∈ O(log² n): far fewer than the 64 iterations plain MBF
        // would need on this path.
        assert!(run.h_iterations < 40, "took {} iterations", run.h_iterations);
    }
}
