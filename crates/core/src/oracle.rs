//! The oracle for MBF-like queries on `H` (Section 5 of the paper).
//!
//! By Lemma 5.1 the adjacency matrix of `H` decomposes as
//! `A_H = ⊕_{λ=0}^{Λ} P_λ A_λ^d P_λ`, where `P_λ` projects onto nodes of
//! level `≥ λ` and `A_λ` is `G'`'s adjacency matrix with weights scaled by
//! `(1+ε̂)^{Λ−λ}`. Because filters may be applied at any time without
//! changing the output class (Corollary 2.17, Equation (5.9)), one
//! iteration of any MBF-like algorithm on `H` is simulated as
//!
//! ```text
//! x ← r^V ( ⊕_λ  P_λ (r^V A_λ)^d P_λ x )
//! ```
//!
//! using only `G'`'s `O(m)` edges — `Λ·d ∈ polylog n` cheap iterations
//! instead of one `Ω(n²)` dense product (Theorem 5.2).
//!
//! The inner `(r^V A_λ)^d` loops run on persistent [`MbfEngine`]s with
//! **frontier carry-over across simulated `H`-iterations**: instead of
//! rewriting `y ← P_λ x` wholesale and restarting all-dirty, each level
//! diffs the projection against its own buffer from the previous round,
//! rewrites only the vertices whose projected state actually changed,
//! and seeds exactly those into the engine (on top of the engine's
//! residual frontier — changes from its own last hop that neighbors have
//! not yet absorbed). A vertex outside the closed neighborhood of
//! (residual ∪ changed) provably recomputes to its current value, so the
//! carry-over schedule is **bit-identical** to the all-dirty restart
//! (asserted against [`oracle_run_with_schedule`] with `carry_over:
//! false`) while the per-round work tracks how much of the projection
//! actually moved. Only a level's very first round (no previous buffer
//! to diff against) sweeps all-dirty. Hops after the level's fixpoint
//! are skipped outright — the iteration map is deterministic, so an
//! unchanged state vector can never change again, and the result is
//! bit-identical to running all `d` hops.
//!
//! The **diff itself is frontier-sized**, not `O(n)` per round: the
//! slots where `y_λ` can disagree with the fresh projection `P_λ x` are
//! contained in `moved_λ ∪ C`, where `moved_λ` is the set of `y`-slots
//! the level itself touched last round (projection rewrites plus the
//! engine's change log of its inner hops) and `C` is the set of
//! vertices of `x` the previous aggregation changed. Every other slot
//! satisfies `y_λ[v] = P_λ x_prev[v] = P_λ x[v]` and is skipped without
//! being read. The aggregation is frontier-sized by the same argument:
//! `x[v] = r(⊕_λ P_λ y_λ[v])` holds for every vertex at the end of a
//! round, so only vertices some level moved this round can aggregate to
//! a new value — the per-round cost of a converging oracle run shrinks
//! with the wave instead of staying `Θ(Λ·n)`. (Only the round after a
//! wholesale rewrite pays one full diff: a wholesale round has no moved
//! set.)
//!
//! # Parallel structure
//!
//! The `Λ + 1` level contributions `P_λ (r^V A_λ)^d P_λ x` are mutually
//! independent — they all read the same input vector `x` — so the level
//! loop runs **in parallel** (one task per level, each with its own
//! engine and level buffer `y_λ`, all reused across simulated
//! `H`-iterations). The aggregation `⊕_λ P_λ y_λ` then runs parallel
//! over *vertices*, each folding its level contributions in ascending-`λ`
//! order — a fixed combination order independent of the thread count, so
//! oracle outputs are bit-identical for every `MTE_THREADS` (asserted by
//! the determinism suite). Per-level `WorkStats` merge through the same
//! fixed-shape reduction tree.

use crate::engine::{initial_states, EngineStrategy, MbfAlgorithm, MbfEngine};
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_algebra::{MinPlus, NodeId, Semimodule};
use rayon::prelude::*;

/// Result of an oracle computation: the states `A^h(H)` and the cost of
/// simulating them on `G'`.
#[derive(Clone, Debug)]
pub struct OracleRun<M> {
    /// Final states, indexed by node.
    pub states: Vec<M>,
    /// Number of simulated `H`-iterations.
    pub h_iterations: usize,
    /// Whether a fixpoint on `H` was reached (`h > SPD(H)`).
    pub fixpoint: bool,
    /// Alias of [`fixpoint`](OracleRun::fixpoint) under the run-report
    /// vocabulary: `true` iff the simulation converged within its
    /// iteration budget.
    pub converged: bool,
    /// Total inner `G'`-hops executed across all levels and simulated
    /// iterations (`work.iterations`).
    pub hops: u64,
    /// Work spent, including all inner `G'`-iterations.
    pub work: WorkStats,
}

/// Reusable per-level buffers: one engine (shadow vectors, frontier
/// marks) and one projected state vector per level task. `primed` flips
/// once the level has run its first round — from then on `y` holds the
/// level's own `(r^V A_λ)^d P_λ x` from the previous simulated
/// iteration, the baseline the next projection is diffed against.
struct LevelScratch<A: MbfAlgorithm> {
    engine: MbfEngine<A>,
    y: Vec<A::M>,
    primed: bool,
    /// `y`-slots this level changed during its last round — projection
    /// rewrites plus the engine's inner-hop change log — sorted
    /// ascending, deduplicated. The frontier-sized diff of the next
    /// round only examines `moved ∪ C`. Meaningless while `moved_all`.
    moved: Vec<NodeId>,
    /// The last round rewrote `y` wholesale (priming round or carry-over
    /// disabled): the next diff must examine every slot and the
    /// aggregation cannot skip anything.
    moved_all: bool,
    /// Scratch: this round's projection-rewrite seeds.
    seeds: Vec<NodeId>,
}

/// Reusable buffers for repeated oracle iterations: one [`LevelScratch`]
/// per level, so the independent level tasks can run in parallel while
/// still reusing their heap buffers across simulated `H`-iterations.
struct OracleScratch<A: MbfAlgorithm> {
    strategy: EngineStrategy,
    /// `false` forces the all-dirty wholesale rewrite every round — the
    /// PR 2 reference schedule, kept for ablation/differential testing.
    carry_over: bool,
    levels: Vec<LevelScratch<A>>,
}

impl<A: MbfAlgorithm> OracleScratch<A> {
    fn new(strategy: EngineStrategy, carry_over: bool) -> Self {
        OracleScratch {
            strategy,
            carry_over,
            levels: Vec::new(),
        }
    }

    /// Sizes the per-level buffers for `num_levels` levels of `n` nodes.
    fn ensure(&mut self, num_levels: usize, n: usize) {
        while self.levels.len() < num_levels {
            let mut engine = MbfEngine::new(self.strategy);
            // The change log feeds the frontier-sized diff of the next
            // round: which y-slots did this level's hops move?
            engine.enable_change_log();
            self.levels.push(LevelScratch {
                engine,
                y: Vec::new(),
                primed: false,
                moved: Vec::new(),
                moved_all: true,
                seeds: Vec::new(),
            });
        }
        self.levels.truncate(num_levels);
        for level in &mut self.levels {
            if level.y.len() != n {
                level.y.clear();
                level.y.extend((0..n).map(|_| A::M::zero()));
                level.primed = false;
                level.moved_all = true;
            }
        }
    }
}

/// Visits the sorted union of two ascending, duplicate-free vertex
/// lists exactly once per vertex, in ascending order. The shared
/// co-walk under both oracles' frontier-sized carry-over diffs (owned
/// and arena), kept in one place because its boundary behavior is
/// correctness-critical.
pub(crate) fn for_each_sorted_union(a: &[NodeId], b: &[NodeId], mut f: impl FnMut(NodeId)) {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let v = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        f(v);
    }
}

/// The level phase of one simulated `H`-iteration: every level rewrites
/// its projection baseline and runs `(r^V A_λ)^d` on its own engine,
/// leaving the result in `level.y` and the set of moved `y`-slots in
/// `level.moved`. `x_changed` is the set of `x`-slots the previous
/// aggregation changed (`None` = unknown, diff everything).
fn level_phase<A>(
    alg: &A,
    sim: &SimulatedGraph,
    x: &[A::M],
    scratch: &mut OracleScratch<A>,
    x_changed: Option<&[NodeId]>,
) -> WorkStats
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let n = sim.augmented().n();
    debug_assert_eq!(n, x.len());
    let lambda_max = sim.levels().lambda();
    scratch.ensure(lambda_max as usize + 1, n);
    let carry_over = scratch.carry_over;
    let zero = A::M::zero();

    // The Λ+1 level contributions are independent: one parallel task per
    // level (`with_min_len(1)`: Λ is small but each task is heavy), each
    // leaving `(r^V A_λ)^d P_λ x` in its own `y` buffer. Per-level work
    // tallies merge through the fixed-shape reduction tree.
    scratch
        .levels
        .par_iter_mut()
        .with_min_len(1)
        .enumerate()
        .map(|(lambda, level)| {
            let lambda = lambda as u32;
            // Fault-injection site: one level task fails (`panic`) or
            // corrupts its level state (`poison_nan`) while the sibling
            // levels keep running.
            match mte_faults::check_for(
                mte_faults::FaultSite::OracleLevelLoop,
                &[
                    mte_faults::FaultKind::Panic,
                    mte_faults::FaultKind::PoisonNan,
                ],
            ) {
                Some(mte_faults::FaultKind::Panic) => {
                    mte_faults::trigger_panic(mte_faults::FaultSite::OracleLevelLoop)
                }
                Some(mte_faults::FaultKind::PoisonNan) => {
                    if let Some(slot) = level.y.first_mut() {
                        slot.poison();
                    }
                }
                _ => {}
            }
            let scale = sim.level_scale(lambda);
            let wholesale = !level.primed || !carry_over;
            // The previous round left `moved` (or `moved_all`); this
            // round's diff may only skip slots both unmoved and outside
            // `x_changed`. A wholesale previous round (or an unknown
            // `x_changed`) forces one full diff.
            let full_diff = level.moved_all || x_changed.is_none();
            level.seeds.clear();
            if wholesale {
                // First round (or carry-over disabled): y ← P_λ x
                // wholesale, frontier restarts full. `clone_from` reuses
                // each slot's heap buffer across iterations.
                level.y.par_iter_mut().enumerate().for_each(|(v, slot)| {
                    if sim.levels().level(v as NodeId) >= lambda {
                        slot.clone_from(&x[v]);
                    } else {
                        slot.clone_from(&zero);
                    }
                });
                level.engine.mark_all_dirty(sim.augmented());
                level.primed = true;
            } else if full_diff {
                // Carry-over after a wholesale round: y still holds this
                // level's previous result, but there is no moved set to
                // bound the diff — compare every slot once, rewrite and
                // seed exactly the differing ones. The changed list
                // collects in ascending vertex order (chunk-order
                // concatenation), independent of the thread count.
                level.seeds = level
                    .y
                    .par_iter_mut()
                    .enumerate()
                    .flat_map_iter(|(v, slot)| {
                        let want = if sim.levels().level(v as NodeId) >= lambda {
                            &x[v]
                        } else {
                            &zero
                        };
                        if slot != want {
                            slot.clone_from(want);
                            Some(v as NodeId)
                        } else {
                            None
                        }
                    })
                    .collect();
                level
                    .engine
                    .mark_dirty(sim.augmented(), level.seeds.iter().copied());
            } else {
                // Frontier-sized diff: a slot can disagree with the
                // fresh projection only if this level moved it last
                // round (`moved`) or the aggregation changed its `x`
                // source (`x_changed`) — everything else still equals
                // `P_λ x` and is skipped without being read. Walk the
                // sorted union of the two lists.
                let changed = x_changed.unwrap_or(&[]);
                let LevelScratch {
                    y, moved, seeds, ..
                } = level;
                for_each_sorted_union(moved, changed, |v| {
                    let want = if sim.levels().level(v) >= lambda {
                        &x[v as usize]
                    } else {
                        &zero
                    };
                    let slot = &mut y[v as usize];
                    if slot != want {
                        slot.clone_from(want);
                        seeds.push(v);
                    }
                });
                level
                    .engine
                    .mark_dirty(sim.augmented(), level.seeds.iter().copied());
            }
            // y ← (r^V A_λ)^d y : d filtered hops on the scaled G'; once
            // a hop changes nothing the level is at its fixpoint and the
            // remaining hops are identity.
            let mut work = WorkStats::new();
            for _ in 0..sim.d() {
                let (w, changed) = level.engine.step(alg, sim.augmented(), &mut level.y, scale);
                work += w;
                if !changed {
                    break;
                }
            }
            // Record what this round moved, for the next round's diff
            // and this round's aggregation: rewrites plus hop changes.
            level.moved.clear();
            level.engine.drain_change_log(&mut level.moved);
            if wholesale {
                level.moved_all = true;
                level.moved.clear();
            } else {
                level.moved_all = false;
                level.moved.extend_from_slice(&level.seeds);
                level.moved.sort_unstable();
                level.moved.dedup();
            }
            work
        })
        .reduce(WorkStats::new, |mut a, b| {
            a += b;
            a
        })
}

/// The aggregation phase: `x_v ← r(⊕_λ [level(v) ≥ λ] y_λ[v])` for every
/// vertex in `recompute` (`None` = all of `V`), writing only the slots
/// that actually changed and returning them, sorted ascending. The
/// per-vertex fold runs in ascending-λ order — a fixed combination
/// order independent of the thread count — with the final filter `r^V`
/// fused in. Skipped vertices provably re-aggregate to their current
/// value: `x_v = r(⊕_λ P_λ y_λ[v])` held at the end of the previous
/// round and none of their `y`-inputs moved.
fn aggregate<A>(
    alg: &A,
    sim: &SimulatedGraph,
    levels: &[LevelScratch<A>],
    x: &mut [A::M],
    recompute: Option<&[NodeId]>,
) -> Vec<NodeId>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let fold = |v: NodeId| -> A::M {
        let node_level = sim.levels().level(v);
        let mut acc = A::M::zero();
        for (lambda, level) in levels.iter().enumerate() {
            if node_level >= lambda as u32 {
                acc.add_assign(&level.y[v as usize]);
            }
        }
        alg.filter(&mut acc);
        acc
    };
    let x_ref: &[A::M] = x;
    // Both paths collect `(v, new value)` pairs in ascending vertex
    // order (chunk-order concatenation over an ascending input list).
    let changed: Vec<(NodeId, A::M)> = match recompute {
        None => (0..x.len() as NodeId)
            .into_par_iter()
            .flat_map_iter(|v| {
                let acc = fold(v);
                if acc != x_ref[v as usize] {
                    Some((v, acc))
                } else {
                    None
                }
            })
            .collect(),
        Some(list) => list
            .par_iter()
            .flat_map_iter(|&v| {
                let acc = fold(v);
                if acc != x_ref[v as usize] {
                    Some((v, acc))
                } else {
                    None
                }
            })
            .collect(),
    };
    let ids: Vec<NodeId> = changed.iter().map(|&(v, _)| v).collect();
    for (v, m) in changed {
        x[v as usize] = m;
    }
    ids
}

/// Simulates **one** iteration of `alg` on `H`:
/// `x ← r^V (⊕_λ P_λ (r^V A_λ)^d P_λ x)`.
pub fn oracle_iteration<A>(alg: &A, sim: &SimulatedGraph, x: &[A::M]) -> (Vec<A::M>, WorkStats)
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let mut scratch = OracleScratch::new(EngineStrategy::default(), true);
    let work = level_phase(alg, sim, x, &mut scratch, None);
    let mut next = x.to_vec();
    aggregate(alg, sim, &scratch.levels, &mut next, None);
    (next, work)
}

/// Runs up to `h` iterations of `alg` on `H` starting from `r^V x⁽⁰⁾`
/// (Theorem 5.2 (1)), with the given inner-engine strategy.
///
/// The iteration map is deterministic, so a simulated `H`-iteration that
/// changes nothing proves every later iteration is the identity: the run
/// stops there, reports `fixpoint: true`, and `h_iterations` counts the
/// iterations actually executed (including the confirming one) — it may
/// be less than `h`. The returned states are bit-identical to burning
/// all `h` iterations.
pub fn oracle_run_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    oracle_run_with_schedule(alg, sim, h, strategy, true)
}

/// [`oracle_run_with`] with the level schedule made explicit:
/// `carry_over: true` (the default everywhere else) diffs each level's
/// projection against its previous round and seeds only the changed
/// vertices; `false` restarts every level all-dirty each round — the
/// reference schedule, kept for ablation and differential testing. Both
/// produce bit-identical states, iteration counts, and fixpoint flags;
/// only the work counters differ.
pub fn oracle_run_with_schedule<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
    carry_over: bool,
) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let states = initial_states(alg, sim.augmented().n());
    match oracle_loop(alg, sim, h, strategy, carry_over, states, 0, |_, _| Ok(())) {
        Ok(run) => run,
        Err(e) => unreachable!("no-op round hook cannot fail: {e}"),
    }
}

/// The oracle's fixpoint loop, shared by [`oracle_run_with_schedule`]
/// and the checkpoint-resume drivers: iterates from `states` (already
/// past `executed` simulated iterations) up to `h` total, calling
/// `on_round(round, states)` after every round that changed something.
/// Resuming from a recorded `(states, executed)` pair with fresh
/// scratch is bit-identical to the uninterrupted run: an unprimed level
/// rewrites wholesale on its first round, which the carry-over schedule
/// already proves equivalent to the diffing restart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn oracle_loop<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
    carry_over: bool,
    mut states: Vec<A::M>,
    mut executed: usize,
    mut on_round: impl FnMut(usize, &[A::M]) -> Result<(), crate::error::RunError>,
) -> Result<OracleRun<A::M>, crate::error::RunError>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let mut scratch = OracleScratch::new(strategy, carry_over);
    let mut work = WorkStats::new();
    let mut fixpoint = false;
    // `x`-slots the previous aggregation changed; `None` = unknown (no
    // previous round), forcing full diffs.
    let mut prev_changed: Option<Vec<NodeId>> = None;
    while executed < h {
        work += level_phase(alg, sim, &states, &mut scratch, prev_changed.as_deref());
        executed += 1;
        // Aggregation can skip every vertex no level moved this round
        // (their fold inputs are unchanged, so recomputation would
        // reproduce the current value bit for bit) — unless some level
        // rewrote wholesale and has no moved set.
        let recompute: Option<Vec<NodeId>> = if scratch.levels.iter().any(|l| l.moved_all) {
            None
        } else {
            let mut union: Vec<NodeId> = Vec::new();
            for level in &scratch.levels {
                union.extend_from_slice(&level.moved);
            }
            union.sort_unstable();
            union.dedup();
            Some(union)
        };
        let changed = aggregate(alg, sim, &scratch.levels, &mut states, recompute.as_deref());
        if changed.is_empty() {
            fixpoint = true;
            break;
        }
        prev_changed = Some(changed);
        on_round(executed, &states)?;
    }
    Ok(OracleRun {
        states,
        h_iterations: executed,
        fixpoint,
        converged: fixpoint,
        hops: work.iterations,
        work,
    })
}

/// Runs `h` iterations of `alg` on `H` under the default hybrid engine.
pub fn oracle_run<A>(alg: &A, sim: &SimulatedGraph, h: usize) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    oracle_run_with(alg, sim, h, EngineStrategy::default())
}

/// Iterates `alg` on `H` until a fixpoint, capped at `cap` iterations,
/// with the given inner-engine strategy. W.h.p. the fixpoint arrives
/// after `SPD(H) ∈ O(log² n)` iterations (Theorems 4.5 and 5.2 (2)).
pub fn oracle_run_to_fixpoint_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    cap: usize,
    strategy: EngineStrategy,
) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
    A::M: PartialEq,
{
    // `oracle_run_with` detects the fixpoint and stops early, so the
    // capped run *is* the run-to-fixpoint.
    oracle_run_with(alg, sim, cap, strategy)
}

/// Iterates `alg` on `H` to a fixpoint under the default hybrid engine.
pub fn oracle_run_to_fixpoint<A>(alg: &A, sim: &SimulatedGraph, cap: usize) -> OracleRun<A::M>
where
    A: MbfAlgorithm<S = MinPlus>,
    A::M: PartialEq,
{
    oracle_run_to_fixpoint_with(alg, sim, cap, EngineStrategy::default())
}

/// Guarded [`oracle_run_with`]: panics become typed errors, injected
/// faults are audited, final states are sanity-scanned. An exhausted
/// iteration budget is reported as `converged: false`, not an error.
pub fn try_oracle_run_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
) -> Result<(OracleRun<A::M>, crate::error::RunReport), crate::error::RunError>
where
    A: MbfAlgorithm<S = MinPlus>,
{
    let run = crate::error::run_guarded(|| oracle_run_with(alg, sim, h, strategy))?;
    crate::error::check_states::<A::S, A::M>(&run.states)?;
    let report = crate::error::RunReport {
        converged: run.converged,
        hops: run.hops,
        degradations: Vec::new(),
    };
    Ok((run, report))
}

/// Guarded [`oracle_run_to_fixpoint_with`] (see [`try_oracle_run_with`]).
pub fn try_oracle_run_to_fixpoint_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    cap: usize,
    strategy: EngineStrategy,
) -> Result<(OracleRun<A::M>, crate::error::RunReport), crate::error::RunError>
where
    A: MbfAlgorithm<S = MinPlus>,
    A::M: PartialEq,
{
    try_oracle_run_with(alg, sim, cap, strategy)
}

/// Default iteration cap: `SPD(H) ∈ O(log² n)` w.h.p. (Theorem 4.5), with
/// a generous constant; the fixpoint check stops earlier in practice.
pub fn default_iteration_cap(n: usize) -> usize {
    let log = (n.max(2) as f64).log2();
    (6.0 * log * log) as usize + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SourceDetection;
    use crate::engine::run_to_fixpoint;
    use mte_graph::algorithms::shortest_path_diameter;
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Theorem 5.2 ground truth: running APSP through the oracle must
    /// agree exactly with running APSP directly on the explicit `H`.
    #[test]
    fn oracle_apsp_equals_explicit_h_apsp() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gnm_graph(30, 70, 1.0..6.0, &mut rng);
        let spd = shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd.max(1), 0.2, &mut rng);
        let h_explicit = sim.explicit_h();

        let alg = SourceDetection::apsp(g.n());
        let via_oracle = oracle_run_to_fixpoint(&alg, &sim, 4 * g.n());
        assert!(via_oracle.fixpoint);
        // The run metadata mirrors the flags it summarizes.
        assert!(via_oracle.converged);
        assert_eq!(via_oracle.hops, via_oracle.work.iterations);
        let via_h = run_to_fixpoint(&alg, &h_explicit, 4 * g.n());
        assert!(via_h.fixpoint);

        for v in 0..g.n() {
            assert!(
                via_oracle.states[v].approx_eq(&via_h.states[v], 1e-9),
                "oracle and explicit H disagree at node {v}:\n{:?}\nvs\n{:?}",
                via_oracle.states[v],
                via_h.states[v]
            );
        }
    }

    #[test]
    fn oracle_single_iteration_matches_h_iteration() {
        // One oracle iteration = one MBF iteration on H (not more).
        let mut rng = StdRng::seed_from_u64(22);
        let g = path_graph(12, 1.0);
        let sim = SimulatedGraph::without_hopset(&g, 11, 0.1, &mut rng);
        let h_explicit = sim.explicit_h();
        let alg = SourceDetection::apsp(g.n());

        let o1 = oracle_run(&alg, &sim, 1);
        let d1 = crate::engine::run(&alg, &h_explicit, 1);
        for v in 0..g.n() {
            assert!(
                o1.states[v].approx_eq(&d1.states[v], 1e-9),
                "node {v}: {:?} vs {:?}",
                o1.states[v],
                d1.states[v]
            );
        }
    }

    #[test]
    fn fixpoint_reached_within_cap() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = path_graph(64, 1.0);
        let sim = SimulatedGraph::without_hopset(&g, 63, 0.1, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 0);
        let run = oracle_run_to_fixpoint(&alg, &sim, default_iteration_cap(g.n()));
        assert!(
            run.fixpoint,
            "no fixpoint within {} iterations",
            default_iteration_cap(g.n())
        );
        // SPD(H) ∈ O(log² n): far fewer than the 64 iterations plain MBF
        // would need on this path.
        assert!(
            run.h_iterations < 40,
            "took {} iterations",
            run.h_iterations
        );
        assert!(run.converged);
        // Each H-iteration drives Λ+1 inner level loops, so the total
        // G'-hop count dominates the H-iteration count.
        assert!(run.hops >= run.h_iterations as u64);
    }

    #[test]
    fn fixed_iteration_budget_stops_at_fixpoint() {
        // Regression: `oracle_run_with` used to hardcode `fixpoint: false`
        // and burn the whole budget even after the states stopped
        // changing. It must stop at the confirming iteration, report the
        // fixpoint, and still return the exact `A^h(H)` states.
        let mut rng = StdRng::seed_from_u64(25);
        let g = path_graph(32, 1.0);
        let sim = SimulatedGraph::without_hopset(&g, 31, 0.1, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 0);
        let budget = 10_000;
        let run = oracle_run(&alg, &sim, budget);
        assert!(run.fixpoint, "fixpoint not reported");
        assert!(
            run.h_iterations < budget,
            "burned all {budget} iterations past the fixpoint"
        );
        let fix = oracle_run_to_fixpoint(&alg, &sim, budget);
        assert_eq!(run.states, fix.states);
        assert_eq!(run.h_iterations, fix.h_iterations);
        assert!(run.converged);
        assert_eq!(run.hops, fix.hops);
        // A budget too small to converge reports honestly.
        let short = oracle_run(&alg, &sim, 1);
        assert!(!short.fixpoint);
        assert!(!short.converged);
        assert_eq!(short.h_iterations, 1);
    }

    #[test]
    fn oracle_strategies_agree() {
        // Dense and frontier inner engines must produce identical oracle
        // results (the skip is exact, not approximate).
        let mut rng = StdRng::seed_from_u64(24);
        let g = gnm_graph(24, 50, 1.0..5.0, &mut rng);
        let spd = shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd.max(1), 0.15, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let dense = oracle_run_to_fixpoint_with(&alg, &sim, 4 * g.n(), EngineStrategy::Dense);
        let frontier = oracle_run_to_fixpoint_with(&alg, &sim, 4 * g.n(), EngineStrategy::Frontier);
        assert_eq!(dense.states, frontier.states);
        assert_eq!(dense.h_iterations, frontier.h_iterations);
        assert!(frontier.work.edge_relaxations <= dense.work.edge_relaxations);
        // Convergence metadata is strategy-invariant (hop counts are
        // not: the frontier engine confirms levels with fewer hops).
        assert_eq!(dense.converged, frontier.converged);
        assert!(dense.converged);
    }
}
