//! Connectivity over the Boolean semiring (Section 3.4, Example 3.25):
//! which pairs of nodes are connected by `≤ h`-hop paths?

use crate::dense::DenseMbfAlgorithm;
use crate::engine::MbfAlgorithm;
use mte_algebra::{Bool, NodeId, NodeSet};

/// Multi-source connectivity: `S = B`, `M = B^V`, `r = id`.
/// After `h` iterations, node `v`'s state contains source `s` iff
/// `P^h(v, s, G) ≠ ∅` (Equation (3.30)).
#[derive(Clone, Debug)]
pub struct Connectivity {
    is_source: Vec<bool>,
}

impl Connectivity {
    /// Connectivity towards the given sources.
    pub fn new(n: usize, sources: &[NodeId]) -> Self {
        let mut is_source = vec![false; n];
        for &s in sources {
            is_source[s as usize] = true;
        }
        Connectivity { is_source }
    }

    /// All-pairs connectivity.
    pub fn all_pairs(n: usize) -> Self {
        Connectivity {
            is_source: vec![true; n],
        }
    }
}

impl MbfAlgorithm for Connectivity {
    type S = Bool;
    type M = NodeSet;

    /// Adjacency per Equation (3.28): every edge is `1`.
    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, _weight: f64) -> Bool {
        Bool(true)
    }

    fn filter(&self, _x: &mut NodeSet) {}

    /// Initialization per Equation (3.29): each source is connected to
    /// itself.
    fn init(&self, v: NodeId) -> NodeSet {
        if self.is_source[v as usize] {
            NodeSet::singleton(v)
        } else {
            NodeSet::new()
        }
    }

    /// `1 ⊙ x = x`: union the neighbor state directly instead of
    /// materializing the scaled copy the default would clone.
    #[inline]
    fn propagate_into(&self, acc: &mut NodeSet, state: &NodeSet, coeff: &Bool) {
        if coeff.0 {
            use mte_algebra::Semimodule;
            acc.add_assign(state);
        }
    }

    fn state_size(&self, x: &NodeSet) -> usize {
        x.len().max(1)
    }
}

impl DenseMbfAlgorithm for Connectivity {
    /// `r = id`: connectivity states are dense-representable as-is
    /// (`B^V` rows of the Boolean semiring), so all-pairs connectivity
    /// rides the dense block backend for free.
    fn advertises_dense(&self) -> bool {
        true
    }

    /// Set union only grows and the filter is the identity: an absorbed
    /// contribution stays absorbed, so skipping clean neighbors is
    /// bit-identical.
    fn absorption_stable(&self) -> bool {
        true
    }

    /// `r = id` literally: the fused recompute path applies.
    fn dense_filter_is_identity(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, run_to_fixpoint};
    use mte_graph::algorithms::bfs_hops;
    use mte_graph::Graph;

    /// Two disconnected components (Section 3.4 drops the connectivity
    /// assumption for this problem).
    fn two_components() -> Graph {
        Graph::from_edges(6, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
    }

    #[test]
    fn components_are_separated() {
        let g = two_components();
        let alg = Connectivity::all_pairs(g.n());
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert!(res.states[0].contains(2));
        assert!(!res.states[0].contains(3));
        assert!(res.states[5].contains(3));
        assert!(!res.states[5].contains(0));
    }

    #[test]
    fn h_hop_connectivity_matches_bfs() {
        let g = two_components();
        let h = 1;
        let alg = Connectivity::all_pairs(g.n());
        let res = run(&alg, &g, h);
        for v in 0..g.n() as NodeId {
            let hops = bfs_hops(&g, v);
            for s in 0..g.n() as NodeId {
                let connected = hops[s as usize] != u32::MAX && hops[s as usize] <= h as u32;
                assert_eq!(res.states[v as usize].contains(s), connected, "({v},{s})");
            }
        }
    }
}
