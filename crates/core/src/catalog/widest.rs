//! Widest-path problems over the max-min semiring (Section 3.2,
//! Examples 3.13–3.15): SSWP, APWP and MSWP.

use crate::dense::DenseMbfAlgorithm;
use crate::engine::MbfAlgorithm;
use mte_algebra::{NodeId, Width, WidthMap};

/// Multi-source widest paths: every node computes, for each source `s`,
/// `width^h(v, s, G)` — the best bottleneck capacity of an `≤ h`-hop
/// path (Definition 3.8). `S = S_{max,min}`, `M = W`, `r = id`.
#[derive(Clone, Debug)]
pub struct WidestPaths {
    is_source: Vec<bool>,
}

impl WidestPaths {
    /// Widest paths towards the given sources (MSWP, Example 3.15).
    pub fn new(n: usize, sources: &[NodeId]) -> Self {
        let mut is_source = vec![false; n];
        for &s in sources {
            is_source[s as usize] = true;
        }
        WidestPaths { is_source }
    }

    /// All-pairs widest paths (APWP, Example 3.14).
    pub fn apwp(n: usize) -> Self {
        WidestPaths {
            is_source: vec![true; n],
        }
    }

    /// Single-source widest paths (SSWP, Example 3.13).
    pub fn sswp(n: usize, s: NodeId) -> Self {
        Self::new(n, &[s])
    }
}

impl MbfAlgorithm for WidestPaths {
    type S = Width;
    type M = WidthMap;

    /// Adjacency per Equation (3.9): an edge contributes its capacity.
    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> Width {
        Width::new(weight)
    }

    /// `r = id` — widest-path states are already small.
    fn filter(&self, _x: &mut WidthMap) {}

    /// Equation (3.10): each source knows the unbounded-width trivial path
    /// to itself.
    fn init(&self, v: NodeId) -> WidthMap {
        if self.is_source[v as usize] {
            WidthMap::singleton(v, Width::INF)
        } else {
            WidthMap::new()
        }
    }

    #[inline]
    fn propagate_into(&self, acc: &mut WidthMap, state: &WidthMap, coeff: &Width) {
        acc.merge_scaled(state, *coeff);
    }

    #[inline]
    fn state_size(&self, x: &WidthMap) -> usize {
        x.len().max(1)
    }
}

impl DenseMbfAlgorithm for WidestPaths {
    /// `r = id` over the max-min semiring: the semiring-generic row
    /// kernels give widest-path workloads the dense backend for free
    /// (`dst ← max(dst, min(src, w))` per column).
    fn advertises_dense(&self) -> bool {
        true
    }

    /// Widths only grow under max-merging and the filter is the
    /// identity: an absorbed contribution stays absorbed, so skipping
    /// clean neighbors is bit-identical.
    fn absorption_stable(&self) -> bool {
        true
    }

    /// `r = id` literally: the fused recompute path applies.
    fn dense_filter_is_identity(&self) -> bool {
        true
    }
}

/// Reference implementation: widest path from `s` by a max-bottleneck
/// Dijkstra variant (used only for testing the MBF-like formulation).
pub fn widest_path_reference(g: &mte_graph::Graph, s: NodeId) -> Vec<Width> {
    use std::collections::BinaryHeap;
    let n = g.n();
    let mut width = vec![Width::new(0.0); n];
    width[s as usize] = Width::INF;
    let mut heap: BinaryHeap<(Width, NodeId)> = BinaryHeap::new();
    heap.push((Width::INF, s));
    while let Some((wd, v)) = heap.pop() {
        if wd < width[v as usize] {
            continue;
        }
        for &(u, ew) in g.neighbors(v) {
            let cand = Width(wd.0.min(mte_algebra::Dist::new(ew)));
            if cand > width[u as usize] {
                width[u as usize] = cand;
                heap.push((cand, u));
            }
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, run_to_fixpoint};
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sswp_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = gnm_graph(40, 110, 1.0..10.0, &mut rng);
        let alg = WidestPaths::sswp(g.n(), 0);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert!(res.fixpoint);
        let reference = widest_path_reference(&g, 0);
        for v in 0..g.n() {
            assert_eq!(res.states[v].get(0), reference[v], "node {v}");
        }
    }

    #[test]
    fn apwp_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gnm_graph(20, 50, 1.0..9.0, &mut rng);
        let alg = WidestPaths::apwp(g.n());
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                assert_eq!(res.states[u as usize].get(v), res.states[v as usize].get(u));
            }
        }
    }

    #[test]
    fn hop_limited_widths_are_monotone_in_h() {
        // Lemma 3.12: x^{(h)} = width^h, which can only grow with h.
        let g = path_graph(6, 3.0);
        let alg = WidestPaths::sswp(g.n(), 0);
        let r1 = run(&alg, &g, 1);
        let r3 = run(&alg, &g, 3);
        for v in 0..g.n() {
            assert!(r3.states[v].get(0) >= r1.states[v].get(0));
        }
        // Node 2 is unreachable within 1 hop: width 0.
        assert_eq!(r1.states[2].get(0), Width::new(0.0));
        assert_eq!(r3.states[2].get(0), Width::new(3.0));
    }

    #[test]
    fn bottleneck_picks_wider_detour() {
        // 0-1 capacity 1; 0-2 capacity 10, 2-1 capacity 9: widest 0→1 is 9.
        let g = mte_graph::Graph::from_edges(3, vec![(0, 1, 1.0), (0, 2, 10.0), (2, 1, 9.0)]);
        let alg = WidestPaths::sswp(g.n(), 0);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert_eq!(res.states[1].get(0), Width::new(9.0));
    }
}
