//! The k-Shortest Distance Problem (k-SDP) and its distinct-weights
//! variant (k-DSDP) over the all-paths semiring (Section 3.3,
//! Definition 3.21, Examples 3.23/3.24).
//!
//! Each node determines the weights (and, as a bonus of the formulation,
//! the actual paths) of the `k` lightest **walks** to a designated target
//! `s` — something no semimodule over `S_{min,+}` can express
//! (Observation 3.16), which is why the all-paths semiring exists.
//! (Walk rather than simple-path semantics is required for the filter to
//! be a congruence — see the discussion in [`mte_algebra::allpaths`].)

use crate::engine::MbfAlgorithm;
use mte_algebra::allpaths::{AllPaths, Path};
use mte_algebra::{Dist, Filter, NodeId};
use std::collections::BTreeMap;

/// k-SDP / k-DSDP as an MBF-like algorithm with `S = M = P_{min,+}`.
#[derive(Clone, Debug)]
pub struct KShortestDistances {
    target: NodeId,
    k: usize,
    /// `true` for k-DSDP: the `k` best weights must be pairwise distinct.
    distinct: bool,
}

impl KShortestDistances {
    /// k-SDP towards target `s` (Example 3.23).
    pub fn new(target: NodeId, k: usize) -> Self {
        KShortestDistances {
            target,
            k,
            distinct: false,
        }
    }

    /// k-DSDP: `k` distinct shortest distances (Example 3.24).
    pub fn distinct(target: NodeId, k: usize) -> Self {
        KShortestDistances {
            target,
            k,
            distinct: true,
        }
    }

    /// The representative projection of Equations (3.24)/(3.26)/(3.27):
    /// for each start node `v`, keep (the representatives of) the `k`
    /// lightest `v`-target paths contained in `x`; drop everything else.
    fn project(&self, x: &mut AllPaths) {
        let mut entries: Vec<(Path, Dist)> = x.entries().to_vec();
        // The identity flag stands for all (v)-paths at weight 0; only (s)
        // ends at the target, so materialize exactly that one.
        if x.contains_identity() {
            entries.push((Path::single(self.target), Dist::ZERO));
        }
        entries.retain(|(p, _)| p.last() == self.target);

        // Ordered by start node: the `kept` concatenation below follows
        // map iteration order, which must not depend on hash state.
        let mut by_start: BTreeMap<NodeId, Vec<(Path, Dist)>> = BTreeMap::new();
        for (p, w) in entries {
            by_start.entry(p.first()).or_default().push((p, w));
        }
        let mut kept: Vec<(Path, Dist)> = Vec::new();
        for (_, mut group) in by_start {
            // Sort by (weight, path); the path order breaks ties
            // deterministically (the paper's "ties broken by an arbitrary
            // ordering on P" / lexicographic order for k-DSDP).
            group.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            if self.distinct {
                let mut last_weight: Option<Dist> = None;
                for (p, w) in group {
                    if kept_count_for_distinct(&mut last_weight, w) {
                        kept.push((p, w));
                        if count_start(&kept, self.k) {
                            break;
                        }
                    }
                }
            } else {
                group.truncate(self.k);
                kept.extend(group);
            }
        }
        *x = AllPaths::normalize(false, kept);
    }
}

/// Helper for the distinct-weights rule: accept `w` iff it differs from
/// the previously accepted weight.
fn kept_count_for_distinct(last: &mut Option<Dist>, w: Dist) -> bool {
    if *last == Some(w) {
        false
    } else {
        *last = Some(w);
        true
    }
}

/// `true` once `kept`'s current group reached `k` entries. Groups are
/// appended contiguously, so counting the suffix with equal start works.
fn count_start(kept: &[(Path, Dist)], k: usize) -> bool {
    let Some(start) = kept.last().map(|(p, _)| p.first()) else {
        return false;
    };
    kept.iter()
        .rev()
        .take_while(|(p, _)| p.first() == start)
        .count()
        >= k
}

impl MbfAlgorithm for KShortestDistances {
    type S = AllPaths;
    type M = AllPaths;

    /// Adjacency per Equation (3.18): the edge `{v,w}` contributes the
    /// single path `(v, w)`.
    fn edge_coeff(&self, v: NodeId, w: NodeId, weight: f64) -> AllPaths {
        AllPaths::edge(v, w, Dist::new(weight))
    }

    fn filter(&self, x: &mut AllPaths) {
        self.project(x);
    }

    /// Initialization per Equation (3.19): node `v` knows the zero-hop
    /// path `(v)`.
    fn init(&self, v: NodeId) -> AllPaths {
        AllPaths::source(v)
    }

    fn state_size(&self, x: &AllPaths) -> usize {
        x.entries().len().max(1)
    }
}

/// The k-SDP projection as a standalone [`Filter`] for congruence
/// property tests (Lemma 3.22).
#[derive(Clone, Debug)]
pub struct KsdpFilter(pub KShortestDistances);

impl Filter<AllPaths, AllPaths> for KsdpFilter {
    fn apply(&self, x: &mut AllPaths) {
        self.0.project(x);
    }
}

/// Reference implementation: the weights of the `k` shortest `v`→`target`
/// walks, by the classic pop-at-most-k-times-per-node heap search
/// (for validating the MBF-like formulation on small graphs).
pub fn k_shortest_walk_weights(
    g: &mte_graph::Graph,
    v: NodeId,
    target: NodeId,
    k: usize,
) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut counts = vec![0usize; g.n()];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((Dist::ZERO, v)));
    let mut out = Vec::new();
    while let Some(Reverse((d, u))) = heap.pop() {
        if counts[u as usize] >= k {
            continue;
        }
        counts[u as usize] += 1;
        if u == target {
            out.push(d.value());
            if out.len() == k {
                break;
            }
        }
        for &(w, ew) in g.neighbors(u) {
            if counts[w as usize] < k {
                heap.push(Reverse((d + Dist::new(ew), w)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_to_fixpoint;
    use mte_graph::generators::gnm_graph;
    use mte_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weights_at(state: &AllPaths, v: NodeId) -> Vec<f64> {
        let mut w: Vec<f64> = state
            .entries()
            .iter()
            .filter(|(p, _)| p.first() == v)
            .map(|(_, d)| d.value())
            .collect();
        w.sort_by(f64::total_cmp);
        w
    }

    #[test]
    fn k_shortest_weights_match_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gnm_graph(9, 16, 1.0..5.0, &mut rng);
        let target = 0;
        let k = 3;
        let alg = KShortestDistances::new(target, k);
        let res = run_to_fixpoint(&alg, &g, 8 * g.n());
        for v in 1..g.n() as NodeId {
            let expect = k_shortest_walk_weights(&g, v, target, k);
            let got = weights_at(&res.states[v as usize], v);
            assert_eq!(got.len(), expect.len(), "node {v}");
            for (a, b) in got.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-9, "node {v}: {got:?} vs {expect:?}");
            }
        }
    }

    #[test]
    fn distinct_variant_skips_equal_weights() {
        // Two parallel-ish routes of equal weight 2 (via 1 and via 2):
        // plain 2-SDP reports {2, 2}; k-DSDP must skip the duplicate and
        // report the next *distinct* weight — 4, realized by the walk
        // 4→1→4→1→0 (walk semantics; the next simple path would be 10).
        let g = Graph::from_edges(
            5,
            vec![
                (4, 1, 1.0),
                (1, 0, 1.0),
                (4, 2, 1.0),
                (2, 0, 1.0),
                (4, 3, 5.0),
                (3, 0, 5.0),
            ],
        );
        let alg = KShortestDistances::distinct(0, 2);
        let res = run_to_fixpoint(&alg, &g, 8 * g.n());
        let got = weights_at(&res.states[4], 4);
        assert_eq!(got, vec![2.0, 4.0]);

        let plain = KShortestDistances::new(0, 2);
        let res2 = run_to_fixpoint(&plain, &g, 8 * g.n());
        assert_eq!(weights_at(&res2.states[4], 4), vec![2.0, 2.0]);
    }

    #[test]
    fn reported_paths_are_real_paths() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = gnm_graph(8, 14, 1.0..4.0, &mut rng);
        let alg = KShortestDistances::new(2, 2);
        let res = run_to_fixpoint(&alg, &g, 4 * g.n());
        for state in &res.states {
            for (p, w) in state.entries() {
                let nodes = p.nodes();
                let mut total = 0.0;
                for win in nodes.windows(2) {
                    let ew = g.weight(win[0], win[1]).expect("path must use graph edges");
                    total += ew;
                }
                assert!((total - w.value()).abs() < 1e-9);
                assert_eq!(p.last(), 2);
            }
        }
    }
}
