//! The catalog of MBF-like algorithms from Section 3 of the paper.
//!
//! Each example is expressed through the [`crate::engine::MbfAlgorithm`]
//! trait by choosing a semiring, a semimodule, a representative projection
//! and initial values — exactly the recipe the paper's conclusion spells
//! out:
//!
//! | Example | Problem | Semiring | Semimodule | module |
//! |---------|---------|----------|------------|--------|
//! | 3.2 | source detection | `S_{min,+}` | `D` | [`source_detection`] |
//! | 3.3–3.6 | SSSP, k-SSP, APSP, MSSP | `S_{min,+}` | `D` | [`source_detection`] |
//! | 3.7 | forest fires | `S_{min,+}` | `S_{min,+}` | [`forest_fire`] |
//! | 3.13–3.15 | SSWP, APWP, MSWP | `S_{max,min}` | `W` | [`widest`] |
//! | 3.23/3.24 | k-SDP / k-DSDP | `P_{min,+}` | `P_{min,+}` | [`ksdp`] |
//! | 3.25 | connectivity | `B` | `B^V` | [`connectivity`] |

pub mod connectivity;
pub mod forest_fire;
pub mod ksdp;
pub mod source_detection;
pub mod widest;

pub use connectivity::Connectivity;
pub use forest_fire::ForestFire;
pub use ksdp::KShortestDistances;
pub use source_detection::SourceDetection;
pub use widest::WidestPaths;
