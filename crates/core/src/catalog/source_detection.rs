//! Source detection (Example 3.2, after Lenzen & Peleg \[32\]) and the
//! classic distance problems it generalizes (Examples 3.3–3.6).
//!
//! `(S, h, d, k)`-source detection: every node determines the `k`
//! lexicographically smallest pairs `(dist^h(v, s), s)` over sources
//! `s ∈ S` with `dist(v, s) ≤ d`.

use crate::arena::{with_arena_acc, ArenaMbfAlgorithm, RecomputeCtx, SpanRecompute};
use crate::dense::DenseMbfAlgorithm;
use crate::engine::MbfAlgorithm;
use mte_algebra::store::{EpochStore, SpanOut};
use mte_algebra::{Dist, DistanceMap, Filter, MinPlus, NodeId, Semiring};
use mte_graph::Graph;

/// The `(S, h, d, k)`-source-detection MBF-like algorithm over the
/// min-plus semiring and the distance-map semimodule (Example 3.2).
/// The hop budget `h` is supplied when running the algorithm.
#[derive(Clone, Debug)]
pub struct SourceDetection {
    is_source: Vec<bool>,
    k: usize,
    max_dist: Dist,
    /// Cached `is_source ≡ true ∧ max_dist = ∞`: the source/distance
    /// mask is a no-op, so the dense filter can skip its column scan.
    mask_free: bool,
}

impl SourceDetection {
    /// General constructor: sources `S`, result limit `k`, distance
    /// limit `d`.
    pub fn new(n: usize, sources: &[NodeId], k: usize, max_dist: Dist) -> Self {
        let mut is_source = vec![false; n];
        for &s in sources {
            is_source[s as usize] = true;
        }
        let mask_free = is_source.iter().all(|&s| s) && max_dist == Dist::INF;
        SourceDetection {
            is_source,
            k,
            max_dist,
            mask_free,
        }
    }

    /// All nodes as sources.
    fn all_sources(n: usize, k: usize, max_dist: Dist) -> Self {
        SourceDetection {
            is_source: vec![true; n],
            k,
            max_dist,
            mask_free: max_dist == Dist::INF,
        }
    }

    /// APSP = `(V, h, ∞, n)`-source detection (Example 3.5).
    pub fn apsp(n: usize) -> Self {
        Self::all_sources(n, n, Dist::INF)
    }

    /// k-SSP = `(V, h, ∞, k)`-source detection (Example 3.4).
    pub fn k_ssp(n: usize, k: usize) -> Self {
        Self::all_sources(n, k, Dist::INF)
    }

    /// MSSP = `(S, h, ∞, |S|)`-source detection (Example 3.6).
    pub fn mssp(n: usize, sources: &[NodeId]) -> Self {
        Self::new(n, sources, sources.len().max(1), Dist::INF)
    }

    /// SSSP = `({s}, h, ∞, 1)`-source detection (Example 3.3).
    pub fn sssp(n: usize, s: NodeId) -> Self {
        Self::new(n, &[s], 1, Dist::INF)
    }

    /// The representative projection of Equation (3.4): keep an entry
    /// `(s, x_s)` iff `s ∈ S`, `x_s ≤ d`, and `(x_s, s)` is among the `k`
    /// lexicographically smallest such pairs.
    fn project(&self, x: &mut DistanceMap) {
        x.retain(|v, d| self.is_source[v as usize] && d <= self.max_dist);
        if x.len() > self.k {
            // Select the k smallest (dist, node) pairs inside the map's
            // own buffer; `edit_entries` restores node order afterwards.
            let k = self.k;
            x.edit_entries(|entries| {
                entries.sort_unstable_by_key(|&(v, d)| (d, v));
                entries.truncate(k);
            });
        }
    }

    /// The merge-time admission threshold of the top-k filter: the k-th
    /// smallest `(dist, node)` pair of `v`'s own filtered list (`None`
    /// while the list holds fewer than `k` entries). A filtered list
    /// never exceeds `k` entries, so this is simply its lexicographic
    /// maximum — an `O(k)` scan of the base list, paid once per
    /// recompute.
    ///
    /// Rejection against it is lossless: the base list's keys all
    /// survive the merge (`a_vv = 1`) and min-combining only ever
    /// *lowers* their pairs, so an absent incoming pair above the
    /// threshold is outranked by `k` persisting pairs and can never
    /// enter the filter's top k — and the top-k filter discards
    /// non-survivors independently, so dropping one cannot rescue or
    /// doom another.
    fn admission_threshold(&self, base: &DistanceMap) -> Option<(Dist, NodeId)> {
        if base.len() >= self.k {
            base.iter().map(|(u, d)| (d, u)).max()
        } else {
            None
        }
    }

    /// The admission predicate shared by the owned and arena pruned
    /// recomputes: sources only, within the distance limit, below the
    /// top-k threshold. Counts admitted entries in `admitted`.
    #[inline]
    fn admit(
        &self,
        threshold: Option<(Dist, NodeId)>,
        u: NodeId,
        d: Dist,
        admitted: &mut u64,
    ) -> bool {
        let ok = self.is_source[u as usize]
            && d <= self.max_dist
            && threshold.is_none_or(|t| (d, u) < t);
        if ok {
            *admitted += 1;
        }
        ok
    }
}

impl MbfAlgorithm for SourceDetection {
    type S = MinPlus;
    type M = DistanceMap;

    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
        MinPlus::new(weight)
    }

    fn filter(&self, x: &mut DistanceMap) {
        self.project(x);
    }

    fn init(&self, v: NodeId) -> DistanceMap {
        if self.is_source[v as usize] {
            DistanceMap::singleton(v, Dist::ZERO)
        } else {
            DistanceMap::new()
        }
    }

    #[inline]
    fn propagate_into(&self, acc: &mut DistanceMap, state: &DistanceMap, coeff: &MinPlus) {
        acc.merge_scaled(state, coeff.0);
    }

    #[inline]
    fn state_size(&self, x: &DistanceMap) -> usize {
        x.len().max(1)
    }

    /// Top-k-pruned recomputation through the admission-predicate merge
    /// kernels (the ROADMAP item closing the gap to the LE lists'
    /// rank-pruned path): an incoming entry absent from the accumulator
    /// is admitted only if it is a source within the distance limit
    /// whose `(dist, node)` pair beats the k-th smallest pair of `v`'s
    /// own list — everything else the filter would discard anyway, so
    /// `r(pruned merge) = r(full merge)` bit for bit (collisions always
    /// combine; see `SourceDetection::admission_threshold` for the
    /// losslessness argument). `entries_processed` counts `|x_v|` plus
    /// only the **admitted** entries, like every pruned path (see
    /// [`crate::work::WorkStats`]).
    fn recompute_into(
        &self,
        v: NodeId,
        g: &Graph,
        weight_scale: f64,
        states: &[DistanceMap],
        out: &mut DistanceMap,
    ) -> (u64, u64) {
        // a_vv = 1: keep the node's own state.
        let base = &states[v as usize];
        out.clone_from(base);
        let threshold = self.admission_threshold(base);
        let mut entries = self.state_size(base) as u64;
        let mut admitted = 0u64;
        let mut relaxations = 0u64;
        for &(w, ew) in g.neighbors(v) {
            let coeff = self.edge_coeff(v, w, ew * weight_scale);
            relaxations += 1;
            out.merge_scaled_pruned(&states[w as usize], coeff.0, &mut |u, d| {
                self.admit(threshold, u, d, &mut admitted)
            });
        }
        entries += admitted;
        self.filter(out);
        (entries, relaxations)
    }
}

impl ArenaMbfAlgorithm for SourceDetection {
    /// The arena twin of the pruned [`MbfAlgorithm::recompute_into`]
    /// override above: identical admission predicate and kernels, with
    /// the base and neighbor states read as borrowed spans.
    ///
    /// Additionally skips **clean** neighbors (nothing to absorb — see
    /// [`RecomputeCtx::neighbor_dirty`]): the top-k filter is
    /// absorption-stable. Entry values only improve under min-merging,
    /// a key the filter ever truncated was outranked by `k` pairs that
    /// persist and only improve, and the source/distance-limit
    /// predicates are static — so every entry of an already-absorbed
    /// contribution is either an identity collision or rejected by the
    /// admission threshold, and skipping the whole merge is
    /// bit-identical (differential-tested against the owned path, which
    /// merges every neighbor).
    fn recompute_span(
        &self,
        v: NodeId,
        g: &Graph,
        weight_scale: f64,
        states: &EpochStore,
        ctx: &RecomputeCtx<'_>,
        out: &mut SpanOut<'_>,
    ) -> SpanRecompute {
        with_arena_acc(|acc| {
            let base = states.get(v);
            acc.assign_from_entries(base.entries);
            let threshold = self.admission_threshold(acc);
            let full = ctx.require_full(v);
            let mut entries = self.slice_size(&base) as u64;
            let mut admitted = 0u64;
            let mut relaxations = 0u64;
            for &(w, ew) in g.neighbors(v) {
                if !full && !ctx.neighbor_dirty(w) {
                    continue; // already absorbed: provably an identity
                }
                let coeff = self.edge_coeff(v, w, ew * weight_scale);
                relaxations += 1;
                acc.merge_scaled_pruned_entries(states.get(w).entries, coeff.0, &mut |u, d| {
                    self.admit(threshold, u, d, &mut admitted)
                });
            }
            entries += admitted;
            self.filter(acc);
            for (u, d) in acc.iter() {
                out.push(u, d, 0);
            }
            SpanRecompute {
                entries,
                relaxations,
                unchanged_hint: false,
            }
        })
    }
}

impl DenseMbfAlgorithm for SourceDetection {
    /// The top-k truncation can only fire when more than `k` pairs
    /// survive the source/distance mask, and at most `|S|` pairs ever
    /// can — so `k ≥ |S|` makes the filter truncation-free, leaving
    /// only the columnwise mask, which the dense row represents
    /// exactly. APSP (`k = n`, all sources) always qualifies; k-SSP
    /// with `k < n` does not.
    fn advertises_dense(&self) -> bool {
        self.k >= self.is_source.iter().filter(|&&s| s).count()
    }

    /// The dense image of `project` when truncation cannot fire: mask
    /// non-source columns and clamp entries past the distance limit to
    /// `∞`. Bit-identical to [`MbfAlgorithm::filter`] — entries are
    /// kept or dropped, never recomputed.
    #[inline]
    fn dense_filter(&self, _v: NodeId, row: &mut [MinPlus]) {
        if self.mask_free {
            return;
        }
        for (u, x) in row.iter_mut().enumerate() {
            if x.0.is_finite() && (!self.is_source[u] || x.0 > self.max_dist) {
                *x = MinPlus::zero();
            }
        }
    }

    /// Without top-k truncation (the only regime the dense backend
    /// admits), entries only improve under min-merging and the
    /// source/distance mask is static — an absorbed contribution stays
    /// absorbed, so skipping clean neighbors is bit-identical (the same
    /// argument as the arena `recompute_span` override above).
    #[inline]
    fn absorption_stable(&self) -> bool {
        true
    }

    /// APSP-style instances (all sources, no distance limit) have a
    /// no-op mask: the engine may take the fused no-copy/no-compare
    /// recompute path.
    #[inline]
    fn dense_filter_is_identity(&self) -> bool {
        self.mask_free
    }
}

/// The filter of Equation (3.4) as a standalone [`Filter`], so the
/// congruence laws (Lemma 2.8 / Appendix B) can be property-tested.
#[derive(Clone, Debug)]
pub struct SourceDetectionFilter(pub SourceDetection);

impl Filter<MinPlus, DistanceMap> for SourceDetectionFilter {
    fn apply(&self, x: &mut DistanceMap) {
        self.0.project(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, run_to_fixpoint};
    use mte_graph::algorithms::{sssp, sssp_hop_limited};
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sssp_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm_graph(50, 120, 1.0..9.0, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 7);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert!(res.fixpoint);
        let exact = sssp(&g, 7);
        for v in 0..g.n() as NodeId {
            assert_eq!(res.states[v as usize].get(7), exact.dist(v));
        }
    }

    #[test]
    fn apsp_matches_dijkstra_all_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm_graph(25, 60, 1.0..5.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        for s in 0..g.n() as NodeId {
            let exact = sssp(&g, s);
            for v in 0..g.n() as NodeId {
                assert_eq!(
                    res.states[v as usize].get(s),
                    exact.dist(v),
                    "pair ({s},{v})"
                );
            }
        }
    }

    #[test]
    fn h_iterations_give_h_hop_distances() {
        // Lemma 3.1: x^{(h)}_{vw} = dist^h(v, w, G).
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm_graph(30, 70, 1.0..5.0, &mut rng);
        let h = 3;
        let alg = SourceDetection::apsp(g.n());
        let res = run(&alg, &g, h);
        for s in 0..g.n() as NodeId {
            let limited = sssp_hop_limited(&g, s, h);
            for v in 0..g.n() {
                assert_eq!(res.states[v].get(s), limited[v], "h-hop pair ({s},{v})");
            }
        }
    }

    #[test]
    fn k_ssp_keeps_k_closest() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gnm_graph(40, 90, 1.0..7.0, &mut rng);
        let k = 4;
        let alg = SourceDetection::k_ssp(g.n(), k);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        for v in 0..g.n() as NodeId {
            // Reference: k smallest (dist, node) pairs by full Dijkstra.
            let mut pairs: Vec<(Dist, NodeId)> = (0..g.n() as NodeId)
                .map(|s| (sssp(&g, s).dist(v), s))
                .collect();
            pairs.sort_unstable();
            pairs.truncate(k);
            let got = &res.states[v as usize];
            assert_eq!(got.len(), k);
            for (d, s) in pairs {
                assert_eq!(got.get(s), d);
            }
        }
    }

    #[test]
    fn mssp_restricted_to_sources() {
        let g = path_graph(6, 1.0);
        let sources = [0 as NodeId, 5];
        let alg = SourceDetection::mssp(g.n(), &sources);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        let x = &res.states[2];
        assert_eq!(x.get(0), Dist::new(2.0));
        assert_eq!(x.get(5), Dist::new(3.0));
        assert_eq!(x.get(3), Dist::INF); // 3 is not a source
    }

    #[test]
    fn distance_limit_is_respected() {
        let g = path_graph(5, 1.0);
        let alg = SourceDetection::new(g.n(), &[0], 1, Dist::new(2.0));
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert_eq!(res.states[2].get(0), Dist::new(2.0));
        assert!(res.states[3].is_empty()); // dist 3 > limit 2
    }
}
