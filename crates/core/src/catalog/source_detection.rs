//! Source detection (Example 3.2, after Lenzen & Peleg \[32\]) and the
//! classic distance problems it generalizes (Examples 3.3–3.6).
//!
//! `(S, h, d, k)`-source detection: every node determines the `k`
//! lexicographically smallest pairs `(dist^h(v, s), s)` over sources
//! `s ∈ S` with `dist(v, s) ≤ d`.

use crate::engine::MbfAlgorithm;
use mte_algebra::{Dist, DistanceMap, Filter, MinPlus, NodeId};

/// The `(S, h, d, k)`-source-detection MBF-like algorithm over the
/// min-plus semiring and the distance-map semimodule (Example 3.2).
/// The hop budget `h` is supplied when running the algorithm.
#[derive(Clone, Debug)]
pub struct SourceDetection {
    is_source: Vec<bool>,
    k: usize,
    max_dist: Dist,
}

impl SourceDetection {
    /// General constructor: sources `S`, result limit `k`, distance
    /// limit `d`.
    pub fn new(n: usize, sources: &[NodeId], k: usize, max_dist: Dist) -> Self {
        let mut is_source = vec![false; n];
        for &s in sources {
            is_source[s as usize] = true;
        }
        SourceDetection {
            is_source,
            k,
            max_dist,
        }
    }

    /// All nodes as sources.
    fn all_sources(n: usize, k: usize, max_dist: Dist) -> Self {
        SourceDetection {
            is_source: vec![true; n],
            k,
            max_dist,
        }
    }

    /// APSP = `(V, h, ∞, n)`-source detection (Example 3.5).
    pub fn apsp(n: usize) -> Self {
        Self::all_sources(n, n, Dist::INF)
    }

    /// k-SSP = `(V, h, ∞, k)`-source detection (Example 3.4).
    pub fn k_ssp(n: usize, k: usize) -> Self {
        Self::all_sources(n, k, Dist::INF)
    }

    /// MSSP = `(S, h, ∞, |S|)`-source detection (Example 3.6).
    pub fn mssp(n: usize, sources: &[NodeId]) -> Self {
        Self::new(n, sources, sources.len().max(1), Dist::INF)
    }

    /// SSSP = `({s}, h, ∞, 1)`-source detection (Example 3.3).
    pub fn sssp(n: usize, s: NodeId) -> Self {
        Self::new(n, &[s], 1, Dist::INF)
    }

    /// The representative projection of Equation (3.4): keep an entry
    /// `(s, x_s)` iff `s ∈ S`, `x_s ≤ d`, and `(x_s, s)` is among the `k`
    /// lexicographically smallest such pairs.
    fn project(&self, x: &mut DistanceMap) {
        x.retain(|v, d| self.is_source[v as usize] && d <= self.max_dist);
        if x.len() > self.k {
            // Select the k smallest (dist, node) pairs inside the map's
            // own buffer; `edit_entries` restores node order afterwards.
            let k = self.k;
            x.edit_entries(|entries| {
                entries.sort_unstable_by_key(|&(v, d)| (d, v));
                entries.truncate(k);
            });
        }
    }
}

impl MbfAlgorithm for SourceDetection {
    type S = MinPlus;
    type M = DistanceMap;

    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
        MinPlus::new(weight)
    }

    fn filter(&self, x: &mut DistanceMap) {
        self.project(x);
    }

    fn init(&self, v: NodeId) -> DistanceMap {
        if self.is_source[v as usize] {
            DistanceMap::singleton(v, Dist::ZERO)
        } else {
            DistanceMap::new()
        }
    }

    #[inline]
    fn propagate_into(&self, acc: &mut DistanceMap, state: &DistanceMap, coeff: &MinPlus) {
        acc.merge_scaled(state, coeff.0);
    }

    #[inline]
    fn state_size(&self, x: &DistanceMap) -> usize {
        x.len().max(1)
    }
}

/// The filter of Equation (3.4) as a standalone [`Filter`], so the
/// congruence laws (Lemma 2.8 / Appendix B) can be property-tested.
#[derive(Clone, Debug)]
pub struct SourceDetectionFilter(pub SourceDetection);

impl Filter<MinPlus, DistanceMap> for SourceDetectionFilter {
    fn apply(&self, x: &mut DistanceMap) {
        self.0.project(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, run_to_fixpoint};
    use mte_graph::algorithms::{sssp, sssp_hop_limited};
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sssp_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm_graph(50, 120, 1.0..9.0, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 7);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert!(res.fixpoint);
        let exact = sssp(&g, 7);
        for v in 0..g.n() as NodeId {
            assert_eq!(res.states[v as usize].get(7), exact.dist(v));
        }
    }

    #[test]
    fn apsp_matches_dijkstra_all_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm_graph(25, 60, 1.0..5.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        for s in 0..g.n() as NodeId {
            let exact = sssp(&g, s);
            for v in 0..g.n() as NodeId {
                assert_eq!(
                    res.states[v as usize].get(s),
                    exact.dist(v),
                    "pair ({s},{v})"
                );
            }
        }
    }

    #[test]
    fn h_iterations_give_h_hop_distances() {
        // Lemma 3.1: x^{(h)}_{vw} = dist^h(v, w, G).
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm_graph(30, 70, 1.0..5.0, &mut rng);
        let h = 3;
        let alg = SourceDetection::apsp(g.n());
        let res = run(&alg, &g, h);
        for s in 0..g.n() as NodeId {
            let limited = sssp_hop_limited(&g, s, h);
            for v in 0..g.n() {
                assert_eq!(res.states[v].get(s), limited[v], "h-hop pair ({s},{v})");
            }
        }
    }

    #[test]
    fn k_ssp_keeps_k_closest() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gnm_graph(40, 90, 1.0..7.0, &mut rng);
        let k = 4;
        let alg = SourceDetection::k_ssp(g.n(), k);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        for v in 0..g.n() as NodeId {
            // Reference: k smallest (dist, node) pairs by full Dijkstra.
            let mut pairs: Vec<(Dist, NodeId)> = (0..g.n() as NodeId)
                .map(|s| (sssp(&g, s).dist(v), s))
                .collect();
            pairs.sort_unstable();
            pairs.truncate(k);
            let got = &res.states[v as usize];
            assert_eq!(got.len(), k);
            for (d, s) in pairs {
                assert_eq!(got.get(s), d);
            }
        }
    }

    #[test]
    fn mssp_restricted_to_sources() {
        let g = path_graph(6, 1.0);
        let sources = [0 as NodeId, 5];
        let alg = SourceDetection::mssp(g.n(), &sources);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        let x = &res.states[2];
        assert_eq!(x.get(0), Dist::new(2.0));
        assert_eq!(x.get(5), Dist::new(3.0));
        assert_eq!(x.get(3), Dist::INF); // 3 is not a source
    }

    #[test]
    fn distance_limit_is_respected() {
        let g = path_graph(5, 1.0);
        let alg = SourceDetection::new(g.n(), &[0], 1, Dist::new(2.0));
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert_eq!(res.states[2].get(0), Dist::new(2.0));
        assert!(res.states[3].is_empty()); // dist 3 > limit 2
    }
}
