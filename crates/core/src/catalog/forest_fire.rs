//! Forest-fire detection (Example 3.7): every node learns whether some
//! burning node lies within distance `d` — in an anonymous network, since
//! states carry no node ids.

use crate::engine::MbfAlgorithm;
use mte_algebra::{Dist, Filter, MinPlus, NodeId};

/// The forest-fire MBF-like algorithm: `S = M = S_{min,+}`, the filter of
/// Equation (3.5) drops distances beyond `d`, and burning nodes start
/// at 0.
#[derive(Clone, Debug)]
pub struct ForestFire {
    burning: Vec<bool>,
    max_dist: Dist,
}

impl ForestFire {
    /// `on_fire` lists the burning nodes; `max_dist` is the alert radius.
    pub fn new(n: usize, on_fire: &[NodeId], max_dist: Dist) -> Self {
        let mut burning = vec![false; n];
        for &v in on_fire {
            burning[v as usize] = true;
        }
        ForestFire { burning, max_dist }
    }

    fn project(&self, x: &mut MinPlus) {
        if x.0 > self.max_dist {
            *x = MinPlus(Dist::INF);
        }
    }
}

impl MbfAlgorithm for ForestFire {
    type S = MinPlus;
    type M = MinPlus;

    #[inline]
    fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
        MinPlus::new(weight)
    }

    fn filter(&self, x: &mut MinPlus) {
        self.project(x);
    }

    fn init(&self, v: NodeId) -> MinPlus {
        if self.burning[v as usize] {
            MinPlus(Dist::ZERO)
        } else {
            MinPlus(Dist::INF)
        }
    }
}

/// The threshold filter of Equation (3.5) as a standalone [`Filter`] for
/// congruence property tests.
#[derive(Clone, Debug)]
pub struct ThresholdFilter(pub Dist);

impl Filter<MinPlus, MinPlus> for ThresholdFilter {
    fn apply(&self, x: &mut MinPlus) {
        if x.0 > self.0 {
            *x = MinPlus(Dist::INF);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_to_fixpoint;
    use mte_graph::algorithms::sssp;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn detects_fires_within_radius_only() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnm_graph(40, 90, 1.0..4.0, &mut rng);
        let fires = [3 as NodeId, 17];
        let radius = Dist::new(6.0);
        let alg = ForestFire::new(g.n(), &fires, radius);
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);

        let d3 = sssp(&g, 3);
        let d17 = sssp(&g, 17);
        for v in 0..g.n() as NodeId {
            let true_dist = d3.dist(v).min(d17.dist(v));
            let got = res.states[v as usize].0;
            if true_dist <= radius {
                assert_eq!(got, true_dist, "node {v} should see the fire");
            } else {
                assert_eq!(got, Dist::INF, "node {v} should not be alerted");
            }
        }
    }

    #[test]
    fn no_fires_no_alerts() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gnm_graph(10, 20, 1.0..2.0, &mut rng);
        let alg = ForestFire::new(g.n(), &[], Dist::new(100.0));
        let res = run_to_fixpoint(&alg, &g, g.n() + 1);
        assert!(res.states.iter().all(|x| x.0 == Dist::INF));
    }
}
