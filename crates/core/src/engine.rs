//! The MBF-like iteration engine (paper Sections 2.3–2.4).
//!
//! An MBF-like algorithm `A` (Definition 2.11) is given by a semiring `S`,
//! a zero-preserving semimodule `M` over `S`, a congruence relation with
//! representative projection `r`, and initial values `x⁽⁰⁾ ∈ M^V`. One
//! iteration computes `x⁽ⁱ⁺¹⁾ = r^V A x⁽ⁱ⁾`: **propagate** each node's
//! state over its incident edges (`⊙` with the adjacency coefficient),
//! **aggregate** incoming states (`⊕`), **filter** with `r`. By
//! Corollary 2.17 the interleaved filtering never changes the output
//! class, so `h` iterations compute `r^V A^h x⁽⁰⁾`.
//!
//! The engine parallelizes each iteration over destination vertices with
//! rayon — the "implicit parallelism of the MBF algorithm" the paper
//! leverages (cf. its comparison with Mohri's inherently sequential
//! framework).

use crate::work::WorkStats;
use mte_algebra::{Filter, NodeId, Semimodule, Semiring};
use mte_graph::Graph;
use rayon::prelude::*;

/// An MBF-like algorithm (Definition 2.11): the semiring, semimodule,
/// adjacency coefficients, filter, and initialization.
pub trait MbfAlgorithm: Send + Sync {
    /// The semiring `S` whose elements weight the edges.
    type S: Semiring;
    /// The node-state semimodule `M` over `S`.
    type M: Semimodule<Self::S>;

    /// Adjacency coefficient `a_vw` for the edge `{v, w}` of weight
    /// `weight`, used when propagating `w`'s state to `v`. The diagonal is
    /// always the semiring one (cf. Equations (1.4), (3.9), (3.18),
    /// (3.28)) and is applied by the engine.
    fn edge_coeff(&self, v: NodeId, w: NodeId, weight: f64) -> Self::S;

    /// The representative projection `r`, applied component-wise.
    fn filter(&self, x: &mut Self::M);

    /// Initial state `x⁽⁰⁾_v`.
    fn init(&self, v: NodeId) -> Self::M;

    /// Fused `acc ← acc ⊕ (coeff ⊙ state)`. Override to avoid
    /// materializing the scaled intermediate (the hot path of every
    /// iteration).
    fn propagate_into(&self, acc: &mut Self::M, state: &Self::M, coeff: &Self::S) {
        acc.add_assign(&state.scale(coeff));
    }

    /// Size of a state's sparse representation (the paper's `|x|`),
    /// used for work accounting. Defaults to 1 for constant-size states.
    fn state_size(&self, _x: &Self::M) -> usize {
        1
    }
}

/// Result of running an MBF-like algorithm: final states and work tally.
#[derive(Clone, Debug)]
pub struct MbfRun<M> {
    /// Final state vector `x⁽ʰ⁾ = r^V A^h x⁽⁰⁾`, indexed by node.
    pub states: Vec<M>,
    /// Number of iterations actually executed.
    pub iterations: usize,
    /// Whether a fixpoint (`x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾`) was reached.
    pub fixpoint: bool,
    /// Work accounting.
    pub work: WorkStats,
}

/// The initial state vector `r^V x⁽⁰⁾`.
pub fn initial_states<A: MbfAlgorithm>(alg: &A, n: usize) -> Vec<A::M> {
    (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            let mut x = alg.init(v);
            alg.filter(&mut x);
            x
        })
        .collect()
}

/// One MBF-like iteration `x ← r^V A x` on `g`, with all edge weights
/// multiplied by `weight_scale` (the oracle's `A_λ`, Lemma 5.1, scales the
/// adjacency matrix of `G'` level by level). Returns the new states and
/// the work spent.
pub fn iterate_scaled<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    x: &[A::M],
    weight_scale: f64,
) -> (Vec<A::M>, WorkStats) {
    debug_assert_eq!(g.n(), x.len());
    let results: Vec<(A::M, u64, u64)> = (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            // a_vv = 1: keep the node's own state.
            let mut acc = x[v as usize].clone();
            let mut entries = alg.state_size(&acc) as u64;
            let mut relaxations = 0u64;
            for &(w, ew) in g.neighbors(v) {
                let coeff = alg.edge_coeff(v, w, ew * weight_scale);
                alg.propagate_into(&mut acc, &x[w as usize], &coeff);
                entries += alg.state_size(&x[w as usize]) as u64;
                relaxations += 1;
            }
            alg.filter(&mut acc);
            (acc, entries, relaxations)
        })
        .collect();

    let mut states = Vec::with_capacity(results.len());
    let mut work = WorkStats { iterations: 1, ..WorkStats::default() };
    for (s, e, r) in results {
        work.entries_processed += e;
        work.edge_relaxations += r;
        states.push(s);
    }
    (states, work)
}

/// One MBF-like iteration `x ← r^V A x` on `g`.
pub fn iterate<A: MbfAlgorithm>(alg: &A, g: &Graph, x: &[A::M]) -> (Vec<A::M>, WorkStats) {
    iterate_scaled(alg, g, x, 1.0)
}

/// Runs exactly `h` iterations: `A^h(G) = r^V A^h x⁽⁰⁾` (Equation (2.17)).
pub fn run<A: MbfAlgorithm>(alg: &A, g: &Graph, h: usize) -> MbfRun<A::M> {
    let mut states = initial_states(alg, g.n());
    let mut work = WorkStats::new();
    for _ in 0..h {
        let (next, w) = iterate(alg, g, &states);
        work += w;
        states = next;
    }
    MbfRun { states, iterations: h, fixpoint: false, work }
}

/// Iterates until the fixpoint `x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾`, reached after at most
/// `SPD(G) < n` iterations (Definition 2.11), or until `cap` iterations.
pub fn run_to_fixpoint<A: MbfAlgorithm>(alg: &A, g: &Graph, cap: usize) -> MbfRun<A::M>
where
    A::M: PartialEq,
{
    let mut states = initial_states(alg, g.n());
    let mut work = WorkStats::new();
    let mut iterations = 0;
    let mut fixpoint = false;
    while iterations < cap {
        let (next, w) = iterate(alg, g, &states);
        work += w;
        iterations += 1;
        if next == states {
            fixpoint = true;
            break;
        }
        states = next;
    }
    MbfRun { states, iterations, fixpoint, work }
}

/// Applies a [`Filter`] component-wise to a state vector: the paper's
/// `r^V` (Definition 2.9). Exposed for the oracle, which interleaves
/// filters with projections between iterations.
pub fn filter_states<S, M, F>(filter: &F, states: &mut [M])
where
    S: Semiring,
    M: Semimodule<S>,
    F: Filter<S, M> + Sync,
{
    states.par_iter_mut().for_each(|x| filter.apply(x));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::{Dist, MinPlus};
    use mte_graph::generators::path_graph;

    /// Plain single-source MBF: S = M = S_{min,+}, r = id (Example 3.3).
    struct PlainSssp {
        source: NodeId,
    }

    impl MbfAlgorithm for PlainSssp {
        type S = MinPlus;
        type M = MinPlus;

        fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
            MinPlus::new(weight)
        }

        fn filter(&self, _x: &mut MinPlus) {}

        fn init(&self, v: NodeId) -> MinPlus {
            if v == self.source {
                MinPlus(Dist::ZERO)
            } else {
                MinPlus(Dist::INF)
            }
        }
    }

    #[test]
    fn h_iterations_compute_h_hop_distances() {
        // Path 0-1-2-3-4: after h iterations node v knows dist iff v ≤ h.
        let g = path_graph(5, 2.0);
        let alg = PlainSssp { source: 0 };
        let run2 = run(&alg, &g, 2);
        assert_eq!(run2.states[2], MinPlus::new(4.0));
        assert_eq!(run2.states[3], MinPlus(Dist::INF));
        let full = run_to_fixpoint(&alg, &g, 100);
        assert!(full.fixpoint);
        // SPD(path of 5 nodes) = 4, plus one confirming iteration.
        assert_eq!(full.iterations, 5);
        assert_eq!(full.states[4], MinPlus::new(8.0));
    }

    #[test]
    fn work_is_counted() {
        let g = path_graph(4, 1.0);
        let alg = PlainSssp { source: 0 };
        let r = run(&alg, &g, 3);
        assert_eq!(r.work.iterations, 3);
        // 2m relaxations per iteration.
        assert_eq!(r.work.edge_relaxations, 3 * 2 * g.m() as u64);
    }

    #[test]
    fn scaled_iteration_scales_weights() {
        let g = path_graph(3, 1.0);
        let alg = PlainSssp { source: 0 };
        let x = initial_states(&alg, g.n());
        let (y, _) = iterate_scaled(&alg, &g, &x, 3.0);
        assert_eq!(y[1], MinPlus::new(3.0));
    }
}
