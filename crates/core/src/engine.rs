//! The MBF-like iteration engine (paper Sections 2.3–2.4), with a
//! frontier-driven sparse core.
//!
//! # The model
//!
//! An MBF-like algorithm `A` (Definition 2.11) is given by a semiring `S`,
//! a zero-preserving semimodule `M` over `S`, a congruence relation with
//! representative projection `r`, and initial values `x⁽⁰⁾ ∈ M^V`. One
//! iteration computes `x⁽ⁱ⁺¹⁾ = r^V A x⁽ⁱ⁾`: **propagate** each node's
//! state over its incident edges (`⊙` with the adjacency coefficient),
//! **aggregate** incoming states (`⊕`), **filter** with `r`. By
//! Corollary 2.17 the interleaved filtering never changes the output
//! class, so `h` iterations compute `r^V A^h x⁽⁰⁾`.
//!
//! # Frontier/dense hybrid
//!
//! The paper's efficiency argument (Lemmas 7.6–7.8) charges each
//! iteration `O(Σ_v |x_v|)` work because filtered states stay small — but
//! it also observes that iterations *converge*: after a few hops most
//! vertices are quiescent. [`MbfEngine`] exploits this. It tracks the
//! **frontier** — the set of vertices whose state changed in the previous
//! hop — and recomputes only vertices with a frontier vertex in their
//! closed neighborhood. Everything else provably cannot change:
//! `x⁽ⁱ⁺¹⁾_v = r(x⁽ⁱ⁾_v ⊕ ⊕_w a_vw x⁽ⁱ⁾_w)` depends only on `v`'s closed
//! in-neighborhood, and if none of those states moved since the hop that
//! produced `x⁽ⁱ⁾_v`, recomputation would reproduce `x⁽ⁱ⁾_v` verbatim.
//! The skip is therefore **bit-identical** to the dense sweep — no
//! approximation is involved — which the equivalence suite asserts
//! state-for-state.
//!
//! Recomputed vertices re-aggregate their whole neighborhood (a *pull*);
//! incremental *push*-style accumulation is unsound here because a filter
//! may shrink a neighbor's state, and `⊕` has no inverse to retract the
//! stale contribution. When the frontier's incident-edge count exceeds a
//! density threshold, [`EngineStrategy::Hybrid`] falls back to the dense
//! sweep for that hop (Ligra-style direction switching): scanning the
//! whole CSR row block is cheaper than chasing a frontier that covers
//! most of the graph.
//!
//! States are **double-buffered**: the engine owns a shadow vector and
//! writes hop `i+1` into it via `clone_from` (which reuses each state's
//! heap buffer), then swaps only the vertices that changed. Combined with
//! the zero-allocation merge kernels of [`mte_algebra::merge`] and the
//! engine-owned stats buffer, a steady-state hop performs no per-vertex
//! allocation; what remains per hop is an `O(n)` bookkeeping pass over
//! the mark vectors plus `O(#chunks)` scheduling bookkeeping (a
//! frontier-list schedule that avoids the former is a possible follow-up
//! for extremely sparse waves).
//!
//! The engine parallelizes each hop over destination vertices with
//! rayon's thread pool (`MTE_THREADS` workers; see the shim's crate docs)
//! — the "implicit parallelism of the MBF algorithm" the paper leverages
//! (cf. its comparison with Mohri's inherently sequential framework).
//! Both the pull-recompute sweep and the commit pass partition the node
//! range into chunks whose layout depends only on `n`; per-chunk
//! `WorkStats` and changed-flags merge through a fixed-shape reduction
//! tree, so every output — states, work counters, frontier bookkeeping —
//! is bit-identical across thread counts (asserted by the determinism
//! suite in `tests/engine_equivalence.rs`).

use crate::work::WorkStats;
use mte_algebra::{Filter, NodeId, Semimodule, Semiring};
use mte_graph::Graph;
use rayon::prelude::*;

/// An MBF-like algorithm (Definition 2.11): the semiring, semimodule,
/// adjacency coefficients, filter, and initialization.
pub trait MbfAlgorithm: Send + Sync {
    /// The semiring `S` whose elements weight the edges.
    type S: Semiring;
    /// The node-state semimodule `M` over `S`.
    type M: Semimodule<Self::S>;

    /// Adjacency coefficient `a_vw` for the edge `{v, w}` of weight
    /// `weight`, used when propagating `w`'s state to `v`. The diagonal is
    /// always the semiring one (cf. Equations (1.4), (3.9), (3.18),
    /// (3.28)) and is applied by the engine.
    fn edge_coeff(&self, v: NodeId, w: NodeId, weight: f64) -> Self::S;

    /// The representative projection `r`, applied component-wise.
    fn filter(&self, x: &mut Self::M);

    /// Initial state `x⁽⁰⁾_v`.
    fn init(&self, v: NodeId) -> Self::M;

    /// Fused `acc ← acc ⊕ (coeff ⊙ state)`. Override to avoid
    /// materializing the scaled intermediate (the hot path of every
    /// iteration).
    fn propagate_into(&self, acc: &mut Self::M, state: &Self::M, coeff: &Self::S) {
        acc.add_assign(&state.scale(coeff));
    }

    /// Size of a state's sparse representation (the paper's `|x|`),
    /// used for work accounting. Defaults to 1 for constant-size states.
    fn state_size(&self, _x: &Self::M) -> usize {
        1
    }
}

/// How the engine schedules one hop's relaxations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineStrategy {
    /// Re-relax every vertex's full neighborhood each hop — the paper's
    /// literal `r^V A x` and the reference the sparse paths are
    /// differential-tested against.
    Dense,
    /// Always recompute only the closed neighborhood of the frontier,
    /// however large it is.
    Frontier,
    /// Frontier-driven, but fall back to the dense sweep for hops whose
    /// frontier touches more than `dense_threshold · 2m` directed edges
    /// (Ligra-style push/pull direction switching).
    Hybrid {
        /// Fraction of the graph's directed edges above which a hop goes
        /// dense. `0.0` is effectively [`EngineStrategy::Dense`] after
        /// the first change, `1.0`-plus effectively
        /// [`EngineStrategy::Frontier`].
        dense_threshold: f64,
    },
}

impl Default for EngineStrategy {
    /// Hybrid with a 25% density threshold: sparse once convergence sets
    /// in, dense while the wave still covers most of the graph.
    fn default() -> Self {
        EngineStrategy::Hybrid {
            dense_threshold: 0.25,
        }
    }
}

/// Result of running an MBF-like algorithm: final states and work tally.
#[derive(Clone, Debug)]
pub struct MbfRun<M> {
    /// Final state vector `x⁽ʰ⁾ = r^V A^h x⁽⁰⁾`, indexed by node.
    pub states: Vec<M>,
    /// Number of iterations actually executed.
    pub iterations: usize,
    /// Whether a fixpoint (`x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾`) was reached.
    pub fixpoint: bool,
    /// Work accounting.
    pub work: WorkStats,
}

/// The initial state vector `r^V x⁽⁰⁾`.
pub fn initial_states<A: MbfAlgorithm>(alg: &A, n: usize) -> Vec<A::M> {
    (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            let mut x = alg.init(v);
            alg.filter(&mut x);
            x
        })
        .collect()
}

/// The reusable iteration state of the frontier engine: shadow buffer,
/// dirty flags, and recompute marks. One engine serves arbitrarily many
/// hops (and state vectors of the same length) without reallocating.
#[derive(Clone, Debug)]
pub struct MbfEngine<A: MbfAlgorithm> {
    strategy: EngineStrategy,
    /// Shadow state vector written during a hop, swapped element-wise.
    next: Vec<A::M>,
    /// `dirty[v]` ⇔ `v`'s state changed in the previous hop.
    dirty: Vec<bool>,
    /// Per-hop recompute marks (closed neighborhood of the frontier).
    touched: Vec<bool>,
    /// Per-vertex `(entries, relaxations, changed)` of the current hop,
    /// reused across hops so stepping allocates nothing.
    per_vertex: Vec<(u64, u64, bool)>,
    /// `Σ deg(v)` over dirty vertices, the hybrid switch statistic.
    frontier_degree: usize,
    /// Number of dirty vertices.
    frontier_len: usize,
}

impl<A: MbfAlgorithm> MbfEngine<A> {
    /// A fresh engine with the given scheduling strategy. Buffers are
    /// sized lazily on first use.
    pub fn new(strategy: EngineStrategy) -> Self {
        MbfEngine {
            strategy,
            next: Vec::new(),
            dirty: Vec::new(),
            touched: Vec::new(),
            per_vertex: Vec::new(),
            frontier_degree: 0,
            frontier_len: 0,
        }
    }

    /// The engine's scheduling strategy.
    pub fn strategy(&self) -> EngineStrategy {
        self.strategy
    }

    /// Number of vertices currently on the frontier.
    pub fn frontier_len(&self) -> usize {
        self.frontier_len
    }

    /// Declares every vertex dirty. Call after the state vector was
    /// modified outside the engine (initialization, projections) — the
    /// next hop is then a full sweep, after which convergence narrows the
    /// frontier again.
    pub fn mark_all_dirty(&mut self, g: &Graph) {
        let n = g.n();
        self.dirty.clear();
        self.dirty.resize(n, true);
        self.touched.clear();
        self.touched.resize(n, false);
        self.frontier_degree = 2 * g.m();
        self.frontier_len = n;
    }

    /// One hop `x ← r^V A x` with all edge weights multiplied by
    /// `weight_scale` (the oracle's `A_λ`, Lemma 5.1). Returns the work
    /// spent and whether **any** state changed; once this reports
    /// `false`, the fixpoint is reached and further hops are no-ops.
    pub fn step(
        &mut self,
        alg: &A,
        g: &Graph,
        states: &mut [A::M],
        weight_scale: f64,
    ) -> (WorkStats, bool) {
        let n = g.n();
        assert_eq!(n, states.len(), "state vector / graph size mismatch");
        if self.dirty.len() != n {
            // First use (or a different graph size): treat as all-dirty.
            self.mark_all_dirty(g);
        }
        if self.next.len() != n {
            self.next.clear();
            self.next.extend((0..n).map(|_| A::M::zero()));
        }

        let go_dense = match self.strategy {
            EngineStrategy::Dense => true,
            EngineStrategy::Frontier => self.frontier_len == n,
            EngineStrategy::Hybrid { dense_threshold } => {
                self.frontier_len == n
                    || (self.frontier_degree as f64) > dense_threshold * (2 * g.m()) as f64
            }
        };

        // Mark the closed neighborhood of the frontier for recomputation.
        if go_dense {
            self.touched.clear();
            self.touched.resize(n, true);
        } else {
            self.touched.clear();
            self.touched.resize(n, false);
            for v in 0..n {
                if self.dirty[v] {
                    self.touched[v] = true;
                    for &(w, _) in g.neighbors(v as NodeId) {
                        self.touched[w as usize] = true;
                    }
                }
            }
        }

        // Pull-style recomputation of all touched vertices into the
        // shadow buffer. `clone_from` reuses each shadow state's heap
        // allocation, the overridden `propagate_into` kernels merge
        // through reusable scratch, and the stats land in the reused
        // `per_vertex` buffer — a steady-state hop allocates nothing
        // (the remaining per-hop cost is the O(n) bookkeeping scan).
        self.per_vertex.clear();
        self.per_vertex.resize(n, (0, 0, false));
        let states_ref: &[A::M] = states;
        let touched = &self.touched;
        self.next
            .par_iter_mut()
            .zip(self.per_vertex.par_iter_mut())
            .enumerate()
            .for_each(|(v, (shadow, stats))| {
                if !touched[v] {
                    return;
                }
                // a_vv = 1: keep the node's own state.
                shadow.clone_from(&states_ref[v]);
                let mut entries = alg.state_size(shadow) as u64;
                let mut relaxations = 0u64;
                for &(w, ew) in g.neighbors(v as NodeId) {
                    let coeff = alg.edge_coeff(v as NodeId, w, ew * weight_scale);
                    alg.propagate_into(shadow, &states_ref[w as usize], &coeff);
                    entries += alg.state_size(&states_ref[w as usize]) as u64;
                    relaxations += 1;
                }
                alg.filter(shadow);
                let changed = *shadow != states_ref[v];
                *stats = (entries, relaxations, changed);
            });

        // Commit: swap in changed states, refresh the frontier. The node
        // range is partitioned into chunks; each chunk swaps its own
        // vertices and tallies `(WorkStats, frontier degree/len, changed)`,
        // merged through the fixed-shape reduction tree — bit-identical
        // for every thread count.
        let per_vertex: &[(u64, u64, bool)] = &self.per_vertex;
        let touched: &[bool] = &self.touched;
        let (entries, relaxations, touched_vertices, frontier_degree, frontier_len, any_changed) =
            states
                .par_iter_mut()
                .zip(self.next.par_iter_mut())
                .zip(self.dirty.par_iter_mut())
                .enumerate()
                .map(|(v, ((state, shadow), dirty))| {
                    let (entries, relaxations, changed) = per_vertex[v];
                    *dirty = changed;
                    if changed {
                        std::mem::swap(state, shadow);
                    }
                    (
                        entries,
                        relaxations,
                        touched[v] as u64,
                        if changed { g.degree(v as NodeId) } else { 0 },
                        changed as usize,
                        changed,
                    )
                })
                .reduce(
                    || (0u64, 0u64, 0u64, 0usize, 0usize, false),
                    |a, b| {
                        (
                            a.0 + b.0,
                            a.1 + b.1,
                            a.2 + b.2,
                            a.3 + b.3,
                            a.4 + b.4,
                            a.5 || b.5,
                        )
                    },
                );
        let work = WorkStats {
            iterations: 1,
            entries_processed: entries,
            edge_relaxations: relaxations,
            touched_vertices,
        };
        self.frontier_degree = frontier_degree;
        self.frontier_len = frontier_len;
        (work, any_changed)
    }
}

/// One MBF-like iteration `x ← r^V A x` on `g`, with all edge weights
/// multiplied by `weight_scale`. One-shot dense kernel kept as the
/// differential-testing reference; iterated workloads should hold an
/// [`MbfEngine`] instead and let it track the frontier across hops.
pub fn iterate_scaled<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    x: &[A::M],
    weight_scale: f64,
) -> (Vec<A::M>, WorkStats) {
    debug_assert_eq!(g.n(), x.len());
    let results: Vec<(A::M, u64, u64)> = (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            // a_vv = 1: keep the node's own state.
            let mut acc = x[v as usize].clone();
            let mut entries = alg.state_size(&acc) as u64;
            let mut relaxations = 0u64;
            for &(w, ew) in g.neighbors(v) {
                let coeff = alg.edge_coeff(v, w, ew * weight_scale);
                alg.propagate_into(&mut acc, &x[w as usize], &coeff);
                entries += alg.state_size(&x[w as usize]) as u64;
                relaxations += 1;
            }
            alg.filter(&mut acc);
            (acc, entries, relaxations)
        })
        .collect();

    let mut states = Vec::with_capacity(results.len());
    let mut work = WorkStats {
        iterations: 1,
        ..WorkStats::default()
    };
    work.touched_vertices = g.n() as u64;
    for (s, e, r) in results {
        work.entries_processed += e;
        work.edge_relaxations += r;
        states.push(s);
    }
    (states, work)
}

/// One MBF-like iteration `x ← r^V A x` on `g` (dense one-shot kernel;
/// see [`iterate_scaled`]).
pub fn iterate<A: MbfAlgorithm>(alg: &A, g: &Graph, x: &[A::M]) -> (Vec<A::M>, WorkStats) {
    iterate_scaled(alg, g, x, 1.0)
}

/// Runs exactly `h` iterations under the given strategy:
/// `A^h(G) = r^V A^h x⁽⁰⁾` (Equation (2.17)).
pub fn run_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    h: usize,
    strategy: EngineStrategy,
) -> MbfRun<A::M> {
    let mut states = initial_states(alg, g.n());
    let mut engine = MbfEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut work = WorkStats::new();
    for _ in 0..h {
        let (w, _) = engine.step(alg, g, &mut states, 1.0);
        work += w;
    }
    MbfRun {
        states,
        iterations: h,
        fixpoint: false,
        work,
    }
}

/// Runs exactly `h` iterations under the default hybrid strategy.
pub fn run<A: MbfAlgorithm>(alg: &A, g: &Graph, h: usize) -> MbfRun<A::M> {
    run_with(alg, g, h, EngineStrategy::default())
}

/// Iterates until the fixpoint `x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾` under the given strategy,
/// reached after at most `SPD(G) < n` iterations (Definition 2.11), or
/// until `cap` iterations. The confirming hop (the one that changes
/// nothing) is counted, matching the dense reference semantics.
pub fn run_to_fixpoint_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
) -> MbfRun<A::M> {
    let mut states = initial_states(alg, g.n());
    let mut engine = MbfEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut work = WorkStats::new();
    let mut iterations = 0;
    let mut fixpoint = false;
    while iterations < cap {
        let (w, changed) = engine.step(alg, g, &mut states, 1.0);
        work += w;
        iterations += 1;
        if !changed {
            fixpoint = true;
            break;
        }
    }
    MbfRun {
        states,
        iterations,
        fixpoint,
        work,
    }
}

/// Iterates to the fixpoint under the default hybrid strategy.
pub fn run_to_fixpoint<A: MbfAlgorithm>(alg: &A, g: &Graph, cap: usize) -> MbfRun<A::M>
where
    A::M: PartialEq,
{
    run_to_fixpoint_with(alg, g, cap, EngineStrategy::default())
}

/// Applies a [`Filter`] component-wise to a state vector: the paper's
/// `r^V` (Definition 2.9). Exposed for the oracle, which interleaves
/// filters with projections between iterations.
pub fn filter_states<S, M, F>(filter: &F, states: &mut [M])
where
    S: Semiring,
    M: Semimodule<S>,
    F: Filter<S, M> + Sync,
{
    states.par_iter_mut().for_each(|x| filter.apply(x));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::{Dist, MinPlus};
    use mte_graph::generators::path_graph;

    /// Plain single-source MBF: S = M = S_{min,+}, r = id (Example 3.3).
    struct PlainSssp {
        source: NodeId,
    }

    impl MbfAlgorithm for PlainSssp {
        type S = MinPlus;
        type M = MinPlus;

        fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
            MinPlus::new(weight)
        }

        fn filter(&self, _x: &mut MinPlus) {}

        fn init(&self, v: NodeId) -> MinPlus {
            if v == self.source {
                MinPlus(Dist::ZERO)
            } else {
                MinPlus(Dist::INF)
            }
        }
    }

    #[test]
    fn h_iterations_compute_h_hop_distances() {
        // Path 0-1-2-3-4: after h iterations node v knows dist iff v ≤ h.
        let g = path_graph(5, 2.0);
        let alg = PlainSssp { source: 0 };
        let run2 = run(&alg, &g, 2);
        assert_eq!(run2.states[2], MinPlus::new(4.0));
        assert_eq!(run2.states[3], MinPlus(Dist::INF));
        let full = run_to_fixpoint(&alg, &g, 100);
        assert!(full.fixpoint);
        // SPD(path of 5 nodes) = 4, plus one confirming iteration.
        assert_eq!(full.iterations, 5);
        assert_eq!(full.states[4], MinPlus::new(8.0));
    }

    #[test]
    fn dense_work_is_counted() {
        let g = path_graph(4, 1.0);
        let alg = PlainSssp { source: 0 };
        let r = run_with(&alg, &g, 3, EngineStrategy::Dense);
        assert_eq!(r.work.iterations, 3);
        // 2m relaxations per dense iteration.
        assert_eq!(r.work.edge_relaxations, 3 * 2 * g.m() as u64);
        assert_eq!(r.work.touched_vertices, 3 * g.n() as u64);
    }

    #[test]
    fn frontier_relaxes_fewer_edges_than_dense() {
        let g = path_graph(64, 1.0);
        let alg = PlainSssp { source: 0 };
        let cap = g.n() + 1;
        let dense = run_to_fixpoint_with(&alg, &g, cap, EngineStrategy::Dense);
        let frontier = run_to_fixpoint_with(&alg, &g, cap, EngineStrategy::Frontier);
        assert!(dense.fixpoint && frontier.fixpoint);
        assert_eq!(dense.states, frontier.states);
        assert_eq!(dense.iterations, frontier.iterations);
        // On a path, the SSSP wave touches O(1) vertices per hop while
        // the dense sweep re-relaxes all 2m edge directions every hop.
        assert!(
            frontier.work.edge_relaxations * 4 < dense.work.edge_relaxations,
            "frontier {} vs dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }

    #[test]
    fn hybrid_switches_to_dense_on_wide_frontiers() {
        // Threshold 0 forces dense sweeps whenever anything is dirty, so
        // the work matches the dense engine exactly.
        let g = path_graph(16, 1.0);
        let alg = PlainSssp { source: 0 };
        let cap = g.n() + 1;
        let always_dense = run_to_fixpoint_with(
            &alg,
            &g,
            cap,
            EngineStrategy::Hybrid {
                dense_threshold: 0.0,
            },
        );
        let dense = run_to_fixpoint_with(&alg, &g, cap, EngineStrategy::Dense);
        assert_eq!(always_dense.work, dense.work);
        assert_eq!(always_dense.states, dense.states);
    }

    #[test]
    fn steps_after_fixpoint_are_free() {
        let g = path_graph(8, 1.0);
        let alg = PlainSssp { source: 0 };
        let r = run_with(&alg, &g, 50, EngineStrategy::Frontier);
        // Fixpoint after 7 productive + 1 confirming hop; the remaining
        // 42 hops have an empty frontier and cost only the O(n)
        // bookkeeping scan.
        let dense = run_with(&alg, &g, 50, EngineStrategy::Dense);
        assert_eq!(r.states, dense.states);
        assert!(r.work.edge_relaxations < dense.work.edge_relaxations / 4);
    }

    #[test]
    fn scaled_iteration_scales_weights() {
        let g = path_graph(3, 1.0);
        let alg = PlainSssp { source: 0 };
        let x = initial_states(&alg, g.n());
        let (y, _) = iterate_scaled(&alg, &g, &x, 3.0);
        assert_eq!(y[1], MinPlus::new(3.0));
    }

    #[test]
    fn engine_step_matches_iterate() {
        let g = path_graph(6, 1.5);
        let alg = PlainSssp { source: 2 };
        let mut states = initial_states(&alg, g.n());
        let mut engine = MbfEngine::new(EngineStrategy::Frontier);
        engine.mark_all_dirty(&g);
        let (reference, _) = iterate(&alg, &g, &states);
        let (_, changed) = engine.step(&alg, &g, &mut states, 1.0);
        assert!(changed);
        assert_eq!(states, reference);
    }
}
