//! The MBF-like iteration engine (paper Sections 2.3–2.4), with a
//! frontier-driven sparse core.
//!
//! # The model
//!
//! An MBF-like algorithm `A` (Definition 2.11) is given by a semiring `S`,
//! a zero-preserving semimodule `M` over `S`, a congruence relation with
//! representative projection `r`, and initial values `x⁽⁰⁾ ∈ M^V`. One
//! iteration computes `x⁽ⁱ⁺¹⁾ = r^V A x⁽ⁱ⁾`: **propagate** each node's
//! state over its incident edges (`⊙` with the adjacency coefficient),
//! **aggregate** incoming states (`⊕`), **filter** with `r`. By
//! Corollary 2.17 the interleaved filtering never changes the output
//! class, so `h` iterations compute `r^V A^h x⁽⁰⁾`.
//!
//! # Frontier/dense hybrid
//!
//! The paper's efficiency argument (Lemmas 7.6–7.8) charges each
//! iteration `O(Σ_v |x_v|)` work because filtered states stay small — but
//! it also observes that iterations *converge*: after a few hops most
//! vertices are quiescent. [`MbfEngine`] exploits this. It tracks the
//! **frontier** — the set of vertices whose state changed in the previous
//! hop — and recomputes only vertices with a frontier vertex in their
//! closed neighborhood. Everything else provably cannot change:
//! `x⁽ⁱ⁺¹⁾_v = r(x⁽ⁱ⁾_v ⊕ ⊕_w a_vw x⁽ⁱ⁾_w)` depends only on `v`'s closed
//! in-neighborhood, and if none of those states moved since the hop that
//! produced `x⁽ⁱ⁾_v`, recomputation would reproduce `x⁽ⁱ⁾_v` verbatim.
//! The skip is therefore **bit-identical** to the dense sweep — no
//! approximation is involved — which the equivalence suite asserts
//! state-for-state.
//!
//! Recomputed vertices re-aggregate their whole neighborhood (a *pull*);
//! incremental *push*-style accumulation is unsound here because a filter
//! may shrink a neighbor's state, and `⊕` has no inverse to retract the
//! stale contribution. When the frontier's incident-edge count exceeds a
//! density threshold, [`EngineStrategy::Hybrid`] falls back to the dense
//! sweep for that hop (Ligra-style direction switching): scanning the
//! whole CSR row block is cheaper than chasing a frontier that covers
//! most of the graph.
//!
//! States are **double-buffered**: the engine owns a shadow vector and
//! writes hop `i+1` into it via `clone_from` (which reuses each state's
//! heap buffer), then swaps only the vertices that changed. Combined with
//! the zero-allocation merge kernels of [`mte_algebra::merge`] and the
//! engine-owned stats buffer, a steady-state hop performs no per-vertex
//! allocation.
//!
//! # Frontier-list schedule
//!
//! The frontier is an **explicit sorted list** of vertices, not a bitset
//! scanned per hop, so a hop's bookkeeping is proportional to the
//! frontier's closed neighborhood — not `n`. The invariants:
//!
//! * `frontier` holds exactly the vertices whose state changed in the
//!   previous hop (or were declared dirty via [`MbfEngine::mark_dirty`] /
//!   [`MbfEngine::mark_all_dirty`]), in **ascending node order** with no
//!   duplicates.
//! * Membership is tracked by **generation stamps**: `frontier_mark[v] ==
//!   frontier_gen ⇔ v ∈ frontier`. Refreshing the frontier bumps the
//!   generation instead of clearing the mark vector, so a hop never pays
//!   an `O(n)` reset; on (u32) generation wrap-around the marks are
//!   zeroed once and the generation restarts at 1.
//! * The per-hop recompute list (the closed neighborhood of the
//!   frontier) is gathered through its own generation-stamped mark
//!   vector and then **deduplicated deterministically by sorting** — the
//!   schedule is a pure function of the frontier set, never of traversal
//!   or thread interleaving, and therefore bit-identical to the former
//!   bitset scan (asserted by the equivalence suite).
//!
//! Each hop chunks the recompute list by **cumulative degree** (a prefix
//! sum over `deg(v) + 1`), not by element count, so a skewed frontier —
//! a few hubs plus many leaves — still load-balances across workers.
//! Chunk boundaries are a pure function of the list and the graph's
//! degrees, and per-chunk `WorkStats`/changed-flags merge through the
//! fixed-shape reduction tree of the rayon shim, so every output —
//! states, work counters, frontier bookkeeping — is bit-identical across
//! thread counts (`MTE_THREADS`; asserted by the determinism suite in
//! `tests/engine_equivalence.rs`).
//!
//! Algorithms can override [`MbfAlgorithm::recompute_into`] to fuse the
//! representative projection into the merges — e.g. the LE-list
//! algorithm rejects echoed and rank-dominated entries per incoming
//! entry, batches the survivors, and combines them with one sorted
//! merge — as long as the result stays bit-identical to the default
//! merge-everything-then-filter reference (differential-tested by
//! `tests/schedule_equivalence.rs`).

use crate::error::{RunError, RunReport};
use crate::work::WorkStats;
use mte_algebra::{Filter, NodeId, Semimodule, Semiring};
use mte_graph::Graph;
use rayon::prelude::*;

/// An MBF-like algorithm (Definition 2.11): the semiring, semimodule,
/// adjacency coefficients, filter, and initialization.
pub trait MbfAlgorithm: Send + Sync {
    /// The semiring `S` whose elements weight the edges.
    type S: Semiring;
    /// The node-state semimodule `M` over `S`.
    type M: Semimodule<Self::S>;

    /// Adjacency coefficient `a_vw` for the edge `{v, w}` of weight
    /// `weight`, used when propagating `w`'s state to `v`. The diagonal is
    /// always the semiring one (cf. Equations (1.4), (3.9), (3.18),
    /// (3.28)) and is applied by the engine.
    fn edge_coeff(&self, v: NodeId, w: NodeId, weight: f64) -> Self::S;

    /// The representative projection `r`, applied component-wise.
    fn filter(&self, x: &mut Self::M);

    /// Initial state `x⁽⁰⁾_v`.
    fn init(&self, v: NodeId) -> Self::M;

    /// Fused `acc ← acc ⊕ (coeff ⊙ state)`. Override to avoid
    /// materializing the scaled intermediate (the hot path of every
    /// iteration).
    fn propagate_into(&self, acc: &mut Self::M, state: &Self::M, coeff: &Self::S) {
        acc.add_assign(&state.scale(coeff));
    }

    /// Size of a state's sparse representation (the paper's `|x|`),
    /// used for work accounting. Defaults to 1 for constant-size states.
    fn state_size(&self, _x: &Self::M) -> usize {
        1
    }

    /// Recomputes `v`'s next state `out ← r(x_v ⊕ ⊕_w a_vw x_w)` from the
    /// current state vector, returning `(entries_processed,
    /// edge_relaxations)`. The default is the literal
    /// merge-everything-then-filter pipeline (clone own state, propagate
    /// every neighbor, apply `r`).
    ///
    /// Algorithms whose filter admits a per-entry domination test can
    /// override this to prune at merge time — either through the
    /// admission-predicate kernels of [`mte_algebra::merge`] or with a
    /// bespoke pass like the LE lists' echo-rejecting gather-and-batch
    /// merge; an override **must** produce a result bit-identical to
    /// the default — the engine treats the two as interchangeable and
    /// the equivalence suite differential-tests them.
    fn recompute_into(
        &self,
        v: NodeId,
        g: &Graph,
        weight_scale: f64,
        states: &[Self::M],
        out: &mut Self::M,
    ) -> (u64, u64) {
        // a_vv = 1: keep the node's own state.
        out.clone_from(&states[v as usize]);
        let mut entries = self.state_size(out) as u64;
        let mut relaxations = 0u64;
        for &(w, ew) in g.neighbors(v) {
            let coeff = self.edge_coeff(v, w, ew * weight_scale);
            self.propagate_into(out, &states[w as usize], &coeff);
            entries += self.state_size(&states[w as usize]) as u64;
            relaxations += 1;
        }
        self.filter(out);
        (entries, relaxations)
    }
}

/// How the engine schedules one hop's relaxations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineStrategy {
    /// Re-relax every vertex's full neighborhood each hop — the paper's
    /// literal `r^V A x` and the reference the sparse paths are
    /// differential-tested against.
    Dense,
    /// Always recompute only the closed neighborhood of the frontier,
    /// however large it is.
    Frontier,
    /// Frontier-driven, but fall back to the dense sweep for hops whose
    /// frontier touches more than `dense_threshold · 2m` directed edges
    /// (Ligra-style push/pull direction switching).
    Hybrid {
        /// Fraction of the graph's directed edges above which a hop goes
        /// dense. `0.0` is effectively [`EngineStrategy::Dense`] after
        /// the first change, `1.0`-plus effectively
        /// [`EngineStrategy::Frontier`].
        dense_threshold: f64,
    },
}

impl Default for EngineStrategy {
    /// Hybrid with a 25% density threshold: sparse once convergence sets
    /// in, dense while the wave still covers most of the graph.
    fn default() -> Self {
        EngineStrategy::Hybrid {
            dense_threshold: 0.25,
        }
    }
}

/// Result of running an MBF-like algorithm: final states and work tally.
#[derive(Clone, Debug)]
pub struct MbfRun<M> {
    /// Final state vector `x⁽ʰ⁾ = r^V A^h x⁽⁰⁾`, indexed by node.
    pub states: Vec<M>,
    /// Number of iterations actually executed.
    pub iterations: usize,
    /// Whether a fixpoint (`x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾`) was reached.
    pub fixpoint: bool,
    /// Work accounting.
    pub work: WorkStats,
}

/// The initial state vector `r^V x⁽⁰⁾`.
pub fn initial_states<A: MbfAlgorithm>(alg: &A, n: usize) -> Vec<A::M> {
    (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            let mut x = alg.init(v);
            alg.filter(&mut x);
            x
        })
        .collect()
}

/// Minimum cumulative cost (`Σ deg(v) + 1` over a chunk's vertices) per
/// scheduling chunk: below this, shipping the chunk to a worker costs
/// more than the relaxations it carries.
const MIN_CHUNK_COST: usize = 256;

/// Hard cap on scheduling chunks per hop, matching the rayon shim's
/// fixed-shape reduction-tree width.
const MAX_HOP_CHUNKS: usize = 64;

/// Shared mutable base pointer for disjoint-index writes from parallel
/// chunks (used by the owned and dense engine backends).
///
/// Soundness contract (upheld by the `step` implementations): the
/// per-hop recompute list is sorted and deduplicated, and chunks
/// partition its *positions*, so no two chunks ever touch the same
/// vertex slot (or row window) or stats slot.
pub(crate) struct SyncPtr<T>(pub(crate) *mut T);

// SAFETY: the wrapper only makes the raw base pointer *shareable*; every
// dereference goes through `slot`, whose callers uphold the disjoint-index
// contract in the struct docs (chunks partition the recompute positions),
// so no two threads ever form overlapping references. `T: Send` covers
// handing the pointed-to values across threads.
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Raw slot pointer at index `i`. Going through a method (rather
    /// than the field) makes closures capture the whole wrapper, keeping
    /// its `Sync` impl in effect under disjoint closure capture.
    ///
    /// Safety: the caller must own index `i` exclusively (see the struct
    /// docs) and stay within the allocation the base pointer came from.
    pub(crate) unsafe fn slot(&self, i: usize) -> *mut T {
        // SAFETY: `i` is in bounds of the allocation behind the base
        // pointer (caller contract above).
        unsafe { self.0.add(i) }
    }
}

/// Generation-stamped taint table shared by the arena and dense
/// engines: a tainted vertex was externally rewritten since its last
/// recomputation (it has absorbed nothing), so its next recomputation
/// must merge every neighbor even under an absorption-stable skip.
/// Kept in one place so the resize/wrap-around semantics cannot
/// diverge between the backends.
#[derive(Clone, Debug)]
pub(crate) struct TaintTable {
    mark: Vec<u32>,
    gen: u32,
}

impl TaintTable {
    pub(crate) fn new() -> Self {
        TaintTable {
            mark: Vec::new(),
            gen: 1,
        }
    }

    /// Sizes the table for `n` vertices if needed, without clearing
    /// existing taints on a same-size table.
    pub(crate) fn ensure_sized(&mut self, n: usize) {
        if self.mark.len() != n {
            self.mark.clear();
            self.mark.resize(n, 0);
            self.gen = 1;
        }
    }

    /// Sizes for `n` vertices and discharges every taint (the engine's
    /// `mark_all_dirty` path: the next hop merges everything anyway).
    pub(crate) fn reset(&mut self, n: usize) {
        if self.mark.len() != n {
            self.mark.clear();
            self.mark.resize(n, 0);
            self.gen = 1;
        } else {
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                self.mark.iter_mut().for_each(|m| *m = 0);
                self.gen = 1;
            }
        }
    }

    #[inline]
    pub(crate) fn taint(&mut self, v: NodeId) {
        self.mark[v as usize] = self.gen;
    }

    #[inline]
    pub(crate) fn is_tainted(&self, v: NodeId) -> bool {
        self.mark[v as usize] == self.gen
    }

    /// Discharges `v`'s taint (after a full-merge recomputation).
    #[inline]
    pub(crate) fn discharge(&mut self, v: NodeId) {
        if self.is_tainted(v) {
            self.mark[v as usize] = 0;
        }
    }
}

/// Bumps a generation counter, zeroing the mark vector once on (u32)
/// wrap-around so stale stamps can never alias a live generation.
fn bump_generation(gen: &mut u32, marks: &mut [u32]) -> u32 {
    *gen = gen.wrapping_add(1);
    if *gen == 0 {
        marks.iter_mut().for_each(|m| *m = 0);
        *gen = 1;
    }
    *gen
}

/// Bytes one sparse state entry occupies in the owned (`Vec<M>`)
/// backend: a 16-byte `(NodeId, Dist)`-sized slot. Used for the
/// model-level `bytes_copied` accounting (see
/// [`crate::work::WorkStats`]).
const OWNED_ENTRY_BYTES: u64 = 16;

/// The scheduling core shared by the owned [`MbfEngine`] and the
/// arena-backed [`crate::arena::ArenaEngine`]: the frontier list,
/// generation-stamped membership marks, the per-hop recompute list with
/// its degree-balanced chunking, and an optional **change log** (the
/// union of all frontier refreshes since the last drain — what the
/// oracle's frontier-sized carry-over diff reads).
///
/// Extracting the schedule guarantees the two storage backends run the
/// *same* hops over the *same* chunks: any divergence between them is a
/// storage bug, never a scheduling one.
#[derive(Clone, Debug)]
pub(crate) struct FrontierSchedule {
    strategy: EngineStrategy,
    /// The frontier: vertices whose state changed in the previous hop,
    /// ascending, no duplicates.
    frontier: Vec<NodeId>,
    /// `frontier_mark[v] == frontier_gen` ⇔ `v` is on the frontier.
    frontier_mark: Vec<u32>,
    frontier_gen: u32,
    /// This hop's recompute list (closed neighborhood of the frontier),
    /// sorted ascending; reused across hops.
    touched: Vec<NodeId>,
    /// Generation-stamped dedup marks for gathering `touched`.
    touched_mark: Vec<u32>,
    touched_gen: u32,
    /// Degree-balanced chunk boundaries (position ranges into `touched`).
    chunks: Vec<std::ops::Range<usize>>,
    /// `Σ deg(v)` over frontier vertices, the hybrid switch statistic.
    frontier_degree: usize,
    /// Change log: every vertex whose state the engine changed since the
    /// last [`FrontierSchedule::drain_change_log`], deduplicated by
    /// generation stamps. Only maintained when enabled.
    log: Vec<NodeId>,
    log_mark: Vec<u32>,
    log_gen: u32,
    log_enabled: bool,
}

impl FrontierSchedule {
    pub(crate) fn new(strategy: EngineStrategy) -> Self {
        FrontierSchedule {
            strategy,
            frontier: Vec::new(),
            frontier_mark: Vec::new(),
            frontier_gen: 0,
            touched: Vec::new(),
            touched_mark: Vec::new(),
            touched_gen: 0,
            chunks: Vec::new(),
            frontier_degree: 0,
            log: Vec::new(),
            log_mark: Vec::new(),
            log_gen: 0,
            log_enabled: false,
        }
    }

    pub(crate) fn strategy(&self) -> EngineStrategy {
        self.strategy
    }

    pub(crate) fn frontier(&self) -> &[NodeId] {
        &self.frontier
    }

    /// `true` iff `v` is on the current frontier — i.e. its state may
    /// differ from what its neighbors absorbed in their last
    /// recomputation. Valid between [`FrontierSchedule::plan_hop`] and
    /// [`FrontierSchedule::refresh`] (the window the recompute phase
    /// runs in).
    #[inline]
    pub(crate) fn on_frontier(&self, v: NodeId) -> bool {
        self.frontier_mark[v as usize] == self.frontier_gen
    }

    /// `true` iff the mark vectors are sized for an `n`-vertex graph.
    pub(crate) fn sized_for(&self, n: usize) -> bool {
        self.frontier_mark.len() == n
    }

    /// Turns on the change log (see the struct docs). Idempotent.
    pub(crate) fn enable_change_log(&mut self) {
        self.log_enabled = true;
    }

    /// Appends the sorted, deduplicated set of vertices changed since
    /// the last drain to `out` and resets the log.
    pub(crate) fn drain_change_log(&mut self, out: &mut Vec<NodeId>) {
        debug_assert!(self.log_enabled, "change log was never enabled");
        self.log.sort_unstable();
        out.extend_from_slice(&self.log);
        self.log.clear();
        bump_generation(&mut self.log_gen, &mut self.log_mark);
    }

    /// Sizes the mark vectors for `g` (if needed) with an **empty**
    /// frontier — unlike [`FrontierSchedule::mark_all_dirty`], nothing
    /// is made dirty. Lets a caller prime a fresh schedule so a later
    /// [`FrontierSchedule::mark_dirty`] seeds exactly its vertices
    /// instead of falling back to the all-dirty restart.
    pub(crate) fn ensure_sized(&mut self, g: &Graph) {
        let n = g.n();
        if self.frontier_mark.len() != n {
            self.frontier_mark.clear();
            self.frontier_mark.resize(n, 0);
            // Marks are all 0: the generation must be nonzero so no
            // vertex reads as a frontier member.
            self.frontier_gen = 1;
            self.frontier.clear();
            self.frontier_degree = 0;
            self.touched_mark.clear();
            self.touched_mark.resize(n, 0);
            self.touched_gen = 0;
            self.log_mark.clear();
            self.log_mark.resize(n, 0);
            self.log_gen = 1;
            self.log.clear();
        }
    }

    pub(crate) fn mark_all_dirty(&mut self, g: &Graph) {
        let n = g.n();
        if self.frontier_mark.len() != n {
            self.frontier_mark.clear();
            self.frontier_mark.resize(n, 0);
            self.frontier_gen = 0;
            self.touched_mark.clear();
            self.touched_mark.resize(n, 0);
            self.touched_gen = 0;
            self.log_mark.clear();
            self.log_mark.resize(n, 0);
            self.log_gen = 1;
            self.log.clear();
        }
        let gen = bump_generation(&mut self.frontier_gen, &mut self.frontier_mark);
        self.frontier.clear();
        self.frontier.extend(0..n as NodeId);
        self.frontier_mark.iter_mut().for_each(|m| *m = gen);
        self.frontier_degree = 2 * g.m();
    }

    pub(crate) fn mark_dirty(&mut self, g: &Graph, vs: impl IntoIterator<Item = NodeId>) {
        if self.frontier_mark.len() != g.n() {
            // Never sized for this graph: there is no residual state to
            // carry over, so the conservative restart is the only sound
            // option.
            self.mark_all_dirty(g);
            return;
        }
        let gen = self.frontier_gen;
        let mut added = false;
        for v in vs {
            let mark = &mut self.frontier_mark[v as usize];
            if *mark != gen {
                *mark = gen;
                self.frontier.push(v);
                self.frontier_degree += g.degree(v);
                added = true;
            }
        }
        if added {
            self.frontier.sort_unstable();
        }
    }

    /// Decides this hop's density (the Ligra-style switch) and gathers
    /// the recompute list (the closed neighborhood of the frontier, or
    /// all of `V` for a dense hop) into `self.touched`, sorted
    /// ascending, cut into degree-balanced chunks. Returns whether the
    /// hop went dense.
    pub(crate) fn plan_hop(&mut self, g: &Graph) -> bool {
        let n = g.n();
        let go_dense = match self.strategy {
            EngineStrategy::Dense => true,
            EngineStrategy::Frontier => self.frontier.len() == n,
            EngineStrategy::Hybrid { dense_threshold } => {
                self.frontier.len() == n
                    || (self.frontier_degree as f64) > dense_threshold * (2 * g.m()) as f64
            }
        };
        self.touched.clear();
        if go_dense {
            self.touched.extend(0..n as NodeId);
        } else {
            let gen = bump_generation(&mut self.touched_gen, &mut self.touched_mark);
            for &v in &self.frontier {
                if self.touched_mark[v as usize] != gen {
                    self.touched_mark[v as usize] = gen;
                    self.touched.push(v);
                }
                for &(w, _) in g.neighbors(v) {
                    if self.touched_mark[w as usize] != gen {
                        self.touched_mark[w as usize] = gen;
                        self.touched.push(w);
                    }
                }
            }
            // Deterministic schedule: the list is a pure function of the
            // frontier *set*, not of gathering order.
            self.touched.sort_unstable();
        }

        // Chunk by cumulative degree (prefix sum over deg(v) + 1): a
        // skewed frontier — a few hubs plus many leaves — still splits
        // into chunks of comparable relaxation work. Boundaries depend
        // only on the list and the graph, never on the thread count.
        let total: usize = self.touched.iter().map(|&v| g.degree(v) + 1).sum();
        let k = (total / MIN_CHUNK_COST).clamp(1, MAX_HOP_CHUNKS);
        self.chunks.clear();
        if k <= 1 {
            self.chunks.push(0..self.touched.len());
            return go_dense;
        }
        let mut start = 0usize;
        let mut acc = 0usize;
        for (p, &v) in self.touched.iter().enumerate() {
            acc += g.degree(v) + 1;
            let closed = self.chunks.len();
            if closed + 1 < k && acc * k >= (closed + 1) * total {
                self.chunks.push(start..p + 1);
                start = p + 1;
            }
        }
        self.chunks.push(start..self.touched.len());
        go_dense
    }

    pub(crate) fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    pub(crate) fn chunks(&self) -> &[std::ops::Range<usize>] {
        &self.chunks
    }

    /// Refreshes the frontier from this hop's outcome: `changed(p)`
    /// reports whether the state at touched position `p` moved. The
    /// changed subsequence of the (sorted) touched list is already
    /// ascending and duplicate-free; the scan is proportional to the
    /// recompute list, not `n`. Feeds the change log when enabled.
    pub(crate) fn refresh(&mut self, g: &Graph, changed: impl Fn(usize) -> bool) {
        let gen = bump_generation(&mut self.frontier_gen, &mut self.frontier_mark);
        self.frontier.clear();
        let mut frontier_degree = 0usize;
        for (p, &v) in self.touched.iter().enumerate() {
            if changed(p) {
                self.frontier.push(v);
                self.frontier_mark[v as usize] = gen;
                frontier_degree += g.degree(v);
                if self.log_enabled && self.log_mark[v as usize] != self.log_gen {
                    self.log_mark[v as usize] = self.log_gen;
                    self.log.push(v);
                }
            }
        }
        self.frontier_degree = frontier_degree;
    }
}

/// The reusable iteration state of the frontier engine: shadow buffer,
/// frontier list, generation-stamped membership marks, and scheduling
/// scratch. One engine serves arbitrarily many hops (and state vectors
/// of the same length) without reallocating.
///
/// This is the **owned-storage** engine (`Vec<A::M>` state vectors) —
/// fully generic over the semimodule and kept as the semantics
/// reference. Algorithms whose states are distance maps should prefer
/// the span-backed [`crate::arena::ArenaEngine`], which schedules the
/// identical hops (same `FrontierSchedule`) over an epoch-arena pool
/// with copy-on-write commits.
#[derive(Clone, Debug)]
pub struct MbfEngine<A: MbfAlgorithm> {
    sched: FrontierSchedule,
    /// Shadow state vector written during a hop, swapped element-wise.
    next: Vec<A::M>,
    /// Per-touched-position `(entries, relaxations, bytes, changed)` of
    /// the current hop, reused across hops so stepping allocates
    /// nothing.
    per_vertex: Vec<(u64, u64, u64, bool)>,
}

impl<A: MbfAlgorithm> MbfEngine<A> {
    /// A fresh engine with the given scheduling strategy. Buffers are
    /// sized lazily on first use.
    pub fn new(strategy: EngineStrategy) -> Self {
        MbfEngine {
            sched: FrontierSchedule::new(strategy),
            next: Vec::new(),
            per_vertex: Vec::new(),
        }
    }

    /// The engine's scheduling strategy.
    pub fn strategy(&self) -> EngineStrategy {
        self.sched.strategy()
    }

    /// Number of vertices currently on the frontier.
    pub fn frontier_len(&self) -> usize {
        self.sched.frontier().len()
    }

    /// The frontier list itself: ascending, no duplicates.
    pub fn frontier(&self) -> &[NodeId] {
        self.sched.frontier()
    }

    /// Turns on the change log: the engine then records every vertex
    /// whose state a hop changed, until drained. The oracle uses this to
    /// make its carry-over diff frontier-sized.
    pub fn enable_change_log(&mut self) {
        self.sched.enable_change_log();
    }

    /// Appends the sorted set of vertices changed since the last drain
    /// to `out` and resets the log. Requires
    /// [`MbfEngine::enable_change_log`].
    pub fn drain_change_log(&mut self, out: &mut Vec<NodeId>) {
        self.sched.drain_change_log(out);
    }

    /// Declares every vertex dirty. Call after the state vector was
    /// rewritten wholesale outside the engine (initialization) — the
    /// next hop is then a full sweep, after which convergence narrows the
    /// frontier again. For *sparse* external edits, prefer
    /// [`MbfEngine::mark_dirty`].
    pub fn mark_all_dirty(&mut self, g: &Graph) {
        self.sched.mark_all_dirty(g);
    }

    /// Sizes the schedule for `g` with an **empty** frontier, making no
    /// vertex dirty. The checkpoint-resume path uses this so a
    /// following [`MbfEngine::mark_dirty`] seeds exactly the recorded
    /// residual frontier instead of falling back to the conservative
    /// all-dirty restart an unsized schedule would take.
    pub fn prime(&mut self, g: &Graph) {
        self.sched.ensure_sized(g);
    }

    /// Adds the given vertices to the frontier (idempotently), keeping
    /// it sorted. This is the **carry-over** entry point: a caller that
    /// rewrote only a few states since the engine's last hop seeds
    /// exactly those — the engine's residual frontier (changes from its
    /// own last hop that neighbors have not yet absorbed) is preserved,
    /// so the next hop is bit-identical to a full [`mark_all_dirty`]
    /// restart while touching only the changed vertices' neighborhoods.
    ///
    /// [`mark_all_dirty`]: MbfEngine::mark_all_dirty
    pub fn mark_dirty(&mut self, g: &Graph, vs: impl IntoIterator<Item = NodeId>) {
        self.sched.mark_dirty(g, vs);
    }

    /// One hop `x ← r^V A x` with all edge weights multiplied by
    /// `weight_scale` (the oracle's `A_λ`, Lemma 5.1). Returns the work
    /// spent and whether **any** state changed; once this reports
    /// `false`, the fixpoint is reached and further hops are no-ops.
    pub fn step(
        &mut self,
        alg: &A,
        g: &Graph,
        states: &mut [A::M],
        weight_scale: f64,
    ) -> (WorkStats, bool) {
        let n = g.n();
        assert_eq!(n, states.len(), "state vector / graph size mismatch");
        if !self.sched.sized_for(n) {
            // First use (or a different graph size): treat as all-dirty.
            self.sched.mark_all_dirty(g);
        }
        let mut alloc_count = 0u64;
        if self.next.len() != n {
            self.next.clear();
            self.next.extend((0..n).map(|_| A::M::zero()));
            // Model-level storage accounting: the owned backend
            // materializes one state buffer per vertex slot.
            alloc_count = n as u64;
        }

        self.sched.plan_hop(g);
        let touched: &[NodeId] = self.sched.touched();
        let chunks: &[std::ops::Range<usize>] = self.sched.chunks();

        // Pull-style recomputation of the touched vertices into the
        // shadow buffer, parallel over the degree-balanced chunks.
        // `recompute_into` reuses each shadow state's heap allocation and
        // merges through reusable scratch, and the stats land in the
        // reused `per_vertex` buffer — a steady-state hop allocates
        // nothing and does work proportional to the frontier's closed
        // neighborhood, not `n`.
        self.per_vertex.clear();
        self.per_vertex.resize(touched.len(), (0, 0, 0, false));
        let states_ref: &[A::M] = states;
        let next_base = SyncPtr(self.next.as_mut_ptr());
        let stats_base = SyncPtr(self.per_vertex.as_mut_ptr());
        chunks.par_iter().with_min_len(1).for_each(|range| {
            for p in range.clone() {
                let v = touched[p];
                // SAFETY: chunks partition positions of the sorted,
                // deduplicated `touched` list, so slot `v` and stats
                // slot `p` are owned by exactly this chunk.
                let shadow = unsafe { &mut *next_base.slot(v as usize) };
                // SAFETY: as above — stats slot `p` belongs to this chunk.
                let stats = unsafe { &mut *stats_base.slot(p) };
                let (entries, relaxations) =
                    alg.recompute_into(v, g, weight_scale, states_ref, shadow);
                let changed = *shadow != states_ref[v as usize];
                // Every touched vertex's state was rewritten wholesale
                // into the shadow slot — the copy traffic the arena
                // backend's copy-on-write avoids for unchanged vertices.
                let bytes = alg.state_size(shadow) as u64 * OWNED_ENTRY_BYTES;
                *stats = (entries, relaxations, bytes, changed);
            }
        });

        // Commit: swap in changed states, parallel over the same chunks;
        // per-chunk tallies merge through the fixed-shape reduction tree
        // — bit-identical for every thread count.
        let per_vertex: &[(u64, u64, u64, bool)] = &self.per_vertex;
        let states_base = SyncPtr(states.as_mut_ptr());
        let (entries, relaxations, bytes_copied, any_changed) = chunks
            .par_iter()
            .with_min_len(1)
            .map(|range| {
                let mut tally = (0u64, 0u64, 0u64, false);
                for p in range.clone() {
                    let v = touched[p] as usize;
                    let (entries, relaxations, bytes, changed) = per_vertex[p];
                    tally.0 += entries;
                    tally.1 += relaxations;
                    tally.2 += bytes;
                    if changed {
                        // SAFETY: as above — disjoint vertices per chunk.
                        unsafe { std::ptr::swap(states_base.slot(v), next_base.slot(v)) };
                        tally.3 = true;
                    }
                }
                tally
            })
            .reduce(
                || (0u64, 0u64, 0u64, false),
                |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 || b.3),
            );

        let touched_vertices = touched.len() as u64;
        let per_vertex: &[(u64, u64, u64, bool)] = &self.per_vertex;
        self.sched.refresh(g, |p| per_vertex[p].3);

        // Fault-injection site: the hop's commit just completed; a
        // `panic` unwinds mid-run, a `poison_nan` corrupts one committed
        // state (the audit in `error::run_guarded` catches either).
        match mte_faults::check_for(
            mte_faults::FaultSite::EngineHopCommit,
            &[
                mte_faults::FaultKind::Panic,
                mte_faults::FaultKind::PoisonNan,
            ],
        ) {
            Some(mte_faults::FaultKind::Panic) => {
                mte_faults::trigger_panic(mte_faults::FaultSite::EngineHopCommit)
            }
            Some(mte_faults::FaultKind::PoisonNan) => {
                if let Some(&v) = self.sched.touched().first() {
                    states[v as usize].poison();
                }
            }
            _ => {}
        }

        let work = WorkStats {
            iterations: 1,
            entries_processed: entries,
            edge_relaxations: relaxations,
            touched_vertices,
            bytes_copied,
            alloc_count,
            ..WorkStats::default()
        };
        (work, any_changed)
    }
}

/// One MBF-like iteration `x ← r^V A x` on `g`, with all edge weights
/// multiplied by `weight_scale`. One-shot dense kernel kept as the
/// differential-testing reference; iterated workloads should hold an
/// [`MbfEngine`] instead and let it track the frontier across hops.
pub fn iterate_scaled<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    x: &[A::M],
    weight_scale: f64,
) -> (Vec<A::M>, WorkStats) {
    debug_assert_eq!(g.n(), x.len());
    let results: Vec<(A::M, u64, u64)> = (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            // a_vv = 1: keep the node's own state.
            let mut acc = x[v as usize].clone();
            let mut entries = alg.state_size(&acc) as u64;
            let mut relaxations = 0u64;
            for &(w, ew) in g.neighbors(v) {
                let coeff = alg.edge_coeff(v, w, ew * weight_scale);
                alg.propagate_into(&mut acc, &x[w as usize], &coeff);
                entries += alg.state_size(&x[w as usize]) as u64;
                relaxations += 1;
            }
            alg.filter(&mut acc);
            (acc, entries, relaxations)
        })
        .collect();

    let mut states = Vec::with_capacity(results.len());
    let mut work = WorkStats {
        iterations: 1,
        ..WorkStats::default()
    };
    work.touched_vertices = g.n() as u64;
    for (s, e, r) in results {
        work.entries_processed += e;
        work.edge_relaxations += r;
        states.push(s);
    }
    (states, work)
}

/// One MBF-like iteration `x ← r^V A x` on `g` (dense one-shot kernel;
/// see [`iterate_scaled`]).
pub fn iterate<A: MbfAlgorithm>(alg: &A, g: &Graph, x: &[A::M]) -> (Vec<A::M>, WorkStats) {
    iterate_scaled(alg, g, x, 1.0)
}

/// Runs exactly `h` iterations under the given strategy:
/// `A^h(G) = r^V A^h x⁽⁰⁾` (Equation (2.17)).
pub fn run_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    h: usize,
    strategy: EngineStrategy,
) -> MbfRun<A::M> {
    let mut states = initial_states(alg, g.n());
    let mut engine = MbfEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut work = WorkStats::new();
    for _ in 0..h {
        let (w, _) = engine.step(alg, g, &mut states, 1.0);
        work += w;
    }
    MbfRun {
        states,
        iterations: h,
        fixpoint: false,
        work,
    }
}

/// Runs exactly `h` iterations under the default hybrid strategy.
pub fn run<A: MbfAlgorithm>(alg: &A, g: &Graph, h: usize) -> MbfRun<A::M> {
    run_with(alg, g, h, EngineStrategy::default())
}

/// Iterates until the fixpoint `x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾` under the given strategy,
/// reached after at most `SPD(G) < n` iterations (Definition 2.11), or
/// until `cap` iterations. The confirming hop (the one that changes
/// nothing) is counted, matching the dense reference semantics.
pub fn run_to_fixpoint_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
) -> MbfRun<A::M> {
    let mut states = initial_states(alg, g.n());
    let mut engine = MbfEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut work = WorkStats::new();
    let mut iterations = 0;
    let mut fixpoint = false;
    while iterations < cap {
        let (w, changed) = engine.step(alg, g, &mut states, 1.0);
        work += w;
        iterations += 1;
        if !changed {
            fixpoint = true;
            break;
        }
    }
    MbfRun {
        states,
        iterations,
        fixpoint,
        work,
    }
}

/// Iterates to the fixpoint under the default hybrid strategy.
pub fn run_to_fixpoint<A: MbfAlgorithm>(alg: &A, g: &Graph, cap: usize) -> MbfRun<A::M>
where
    A::M: PartialEq,
{
    run_to_fixpoint_with(alg, g, cap, EngineStrategy::default())
}

/// Guarded [`run_with`]: panics become typed errors, injected faults
/// are audited, final states are sanity-scanned. On success the
/// [`RunReport`] carries convergence and hop metadata.
pub fn try_run_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    h: usize,
    strategy: EngineStrategy,
) -> Result<(MbfRun<A::M>, RunReport), RunError> {
    let run = crate::error::run_guarded(|| run_with(alg, g, h, strategy))?;
    crate::error::check_states::<A::S, A::M>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations: Vec::new(),
    };
    Ok((run, report))
}

/// Guarded [`run_to_fixpoint_with`] (see [`try_run_with`]). A run that
/// exhausts `cap` without reaching the fixpoint is *not* an error; it
/// returns `converged: false`.
pub fn try_run_to_fixpoint_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
) -> Result<(MbfRun<A::M>, RunReport), RunError> {
    let run = crate::error::run_guarded(|| run_to_fixpoint_with(alg, g, cap, strategy))?;
    crate::error::check_states::<A::S, A::M>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations: Vec::new(),
    };
    Ok((run, report))
}

/// Applies a [`Filter`] component-wise to a state vector: the paper's
/// `r^V` (Definition 2.9). Exposed for the oracle, which interleaves
/// filters with projections between iterations.
pub fn filter_states<S, M, F>(filter: &F, states: &mut [M])
where
    S: Semiring,
    M: Semimodule<S>,
    F: Filter<S, M> + Sync,
{
    states.par_iter_mut().for_each(|x| filter.apply(x));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::{Dist, MinPlus};
    use mte_graph::generators::path_graph;

    /// Plain single-source MBF: S = M = S_{min,+}, r = id (Example 3.3).
    struct PlainSssp {
        source: NodeId,
    }

    impl MbfAlgorithm for PlainSssp {
        type S = MinPlus;
        type M = MinPlus;

        fn edge_coeff(&self, _v: NodeId, _w: NodeId, weight: f64) -> MinPlus {
            MinPlus::new(weight)
        }

        fn filter(&self, _x: &mut MinPlus) {}

        fn init(&self, v: NodeId) -> MinPlus {
            if v == self.source {
                MinPlus(Dist::ZERO)
            } else {
                MinPlus(Dist::INF)
            }
        }
    }

    #[test]
    fn h_iterations_compute_h_hop_distances() {
        // Path 0-1-2-3-4: after h iterations node v knows dist iff v ≤ h.
        let g = path_graph(5, 2.0);
        let alg = PlainSssp { source: 0 };
        let run2 = run(&alg, &g, 2);
        assert_eq!(run2.states[2], MinPlus::new(4.0));
        assert_eq!(run2.states[3], MinPlus(Dist::INF));
        let full = run_to_fixpoint(&alg, &g, 100);
        assert!(full.fixpoint);
        // SPD(path of 5 nodes) = 4, plus one confirming iteration.
        assert_eq!(full.iterations, 5);
        assert_eq!(full.states[4], MinPlus::new(8.0));
    }

    #[test]
    fn dense_work_is_counted() {
        let g = path_graph(4, 1.0);
        let alg = PlainSssp { source: 0 };
        let r = run_with(&alg, &g, 3, EngineStrategy::Dense);
        assert_eq!(r.work.iterations, 3);
        // 2m relaxations per dense iteration.
        assert_eq!(r.work.edge_relaxations, 3 * 2 * g.m() as u64);
        assert_eq!(r.work.touched_vertices, 3 * g.n() as u64);
    }

    #[test]
    fn frontier_relaxes_fewer_edges_than_dense() {
        let g = path_graph(64, 1.0);
        let alg = PlainSssp { source: 0 };
        let cap = g.n() + 1;
        let dense = run_to_fixpoint_with(&alg, &g, cap, EngineStrategy::Dense);
        let frontier = run_to_fixpoint_with(&alg, &g, cap, EngineStrategy::Frontier);
        assert!(dense.fixpoint && frontier.fixpoint);
        assert_eq!(dense.states, frontier.states);
        assert_eq!(dense.iterations, frontier.iterations);
        // On a path, the SSSP wave touches O(1) vertices per hop while
        // the dense sweep re-relaxes all 2m edge directions every hop.
        assert!(
            frontier.work.edge_relaxations * 4 < dense.work.edge_relaxations,
            "frontier {} vs dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }

    #[test]
    fn hybrid_switches_to_dense_on_wide_frontiers() {
        // Threshold 0 forces dense sweeps whenever anything is dirty, so
        // the work matches the dense engine exactly.
        let g = path_graph(16, 1.0);
        let alg = PlainSssp { source: 0 };
        let cap = g.n() + 1;
        let always_dense = run_to_fixpoint_with(
            &alg,
            &g,
            cap,
            EngineStrategy::Hybrid {
                dense_threshold: 0.0,
            },
        );
        let dense = run_to_fixpoint_with(&alg, &g, cap, EngineStrategy::Dense);
        assert_eq!(always_dense.work, dense.work);
        assert_eq!(always_dense.states, dense.states);
    }

    #[test]
    fn steps_after_fixpoint_are_free() {
        let g = path_graph(8, 1.0);
        let alg = PlainSssp { source: 0 };
        let r = run_with(&alg, &g, 50, EngineStrategy::Frontier);
        // Fixpoint after 7 productive + 1 confirming hop; the remaining
        // 42 hops have an empty frontier and cost only the O(n)
        // bookkeeping scan.
        let dense = run_with(&alg, &g, 50, EngineStrategy::Dense);
        assert_eq!(r.states, dense.states);
        assert!(r.work.edge_relaxations < dense.work.edge_relaxations / 4);
    }

    #[test]
    fn scaled_iteration_scales_weights() {
        let g = path_graph(3, 1.0);
        let alg = PlainSssp { source: 0 };
        let x = initial_states(&alg, g.n());
        let (y, _) = iterate_scaled(&alg, &g, &x, 3.0);
        assert_eq!(y[1], MinPlus::new(3.0));
    }

    #[test]
    fn engine_step_matches_iterate() {
        let g = path_graph(6, 1.5);
        let alg = PlainSssp { source: 2 };
        let mut states = initial_states(&alg, g.n());
        let mut engine = MbfEngine::new(EngineStrategy::Frontier);
        engine.mark_all_dirty(&g);
        let (reference, _) = iterate(&alg, &g, &states);
        let (_, changed) = engine.step(&alg, &g, &mut states, 1.0);
        assert!(changed);
        assert_eq!(states, reference);
    }
}
