//! Work/depth accounting (DESIGN.md §3, substitution 1).
//!
//! The paper analyses algorithms in an abstract DAG model where **work** is
//! the number of DAG nodes and **depth** its longest path. We track the
//! model-level quantities the theorems bound:
//!
//! * `entries_processed` — total sparse state entries touched by
//!   propagate/aggregate/filter steps: the paper's `Σ|x_i|`-style work
//!   terms (Lemma 2.3, Lemma 7.8),
//! * `edge_relaxations` — semiring multiplications attributed to edges,
//! * `iterations` — sequential MBF-like rounds: the depth proxy (each
//!   round has polylog critical path by Lemmas 2.3/7.7).

use std::ops::AddAssign;

/// Counted work of an MBF-like computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Sequential MBF-like rounds executed (depth proxy).
    pub iterations: u64,
    /// Sparse state entries processed across all rounds (work proxy).
    /// Algorithms that prune at merge time (see
    /// [`MbfAlgorithm::recompute_into`](crate::engine::MbfAlgorithm::recompute_into))
    /// count only the entries **admitted** into aggregation — a pruned
    /// entry costs one `O(log |x|)` domination probe, not a merge, a
    /// sort, and a filter pass, so it is examined but not processed.
    pub entries_processed: u64,
    /// Edge relaxations (semiring `⊙` applications attributed to edges).
    pub edge_relaxations: u64,
    /// Vertices whose state was recomputed across all rounds. Dense
    /// sweeps recompute `n` per round; the frontier engine only the
    /// closed neighborhood of the previous hop's changes.
    pub touched_vertices: u64,
}

impl WorkStats {
    /// The empty tally.
    pub fn new() -> Self {
        WorkStats::default()
    }
}

impl AddAssign for WorkStats {
    fn add_assign(&mut self, rhs: WorkStats) {
        self.iterations += rhs.iterations;
        self.entries_processed += rhs.entries_processed;
        self.edge_relaxations += rhs.edge_relaxations;
        self.touched_vertices += rhs.touched_vertices;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut a = WorkStats {
            iterations: 1,
            entries_processed: 10,
            edge_relaxations: 5,
            touched_vertices: 2,
        };
        a += WorkStats {
            iterations: 2,
            entries_processed: 1,
            edge_relaxations: 1,
            touched_vertices: 3,
        };
        assert_eq!(
            a,
            WorkStats {
                iterations: 3,
                entries_processed: 11,
                edge_relaxations: 6,
                touched_vertices: 5,
            }
        );
    }
}
