//! Work/depth accounting (DESIGN.md §3, substitution 1).
//!
//! The paper analyses algorithms in an abstract DAG model where **work** is
//! the number of DAG nodes and **depth** its longest path. We track the
//! model-level quantities the theorems bound:
//!
//! * `entries_processed` — total sparse state entries touched by
//!   propagate/aggregate/filter steps: the paper's `Σ|x_i|`-style work
//!   terms (Lemma 2.3, Lemma 7.8),
//! * `edge_relaxations` — semiring multiplications attributed to edges,
//! * `iterations` — sequential MBF-like rounds: the depth proxy (each
//!   round has polylog critical path by Lemmas 2.3/7.7).
//!
//! Beyond the model-level counters, the **storage counters**
//! (`bytes_copied`, `alloc_count`, `arena_bytes`) track what the
//! complexity story does *not* charge but real hardware does: copy and
//! allocation traffic of the state store. The paper charges work per
//! list entry; a `Vec<DistanceMap>` backend pays per vertex per hop
//! (every touched state is rewritten wholesale), while the epoch-arena
//! backend ([`mte_algebra::store::EpochStore`]) pays only for entries
//! that actually changed (copy-on-write) plus amortized compaction.
//! Recording both makes the gap visible in `BENCH_engine.json`.

use std::ops::AddAssign;

/// Counted work of an MBF-like computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Sequential MBF-like rounds executed (depth proxy).
    pub iterations: u64,
    /// Sparse state entries processed across all rounds (work proxy).
    /// Algorithms that prune at merge time (see
    /// [`MbfAlgorithm::recompute_into`](crate::engine::MbfAlgorithm::recompute_into))
    /// count only the entries **admitted** into aggregation — a pruned
    /// entry costs one `O(log |x|)` domination probe, not a merge, a
    /// sort, and a filter pass, so it is examined but not processed.
    pub entries_processed: u64,
    /// Edge relaxations (semiring `⊙` applications attributed to edges).
    pub edge_relaxations: u64,
    /// Vertices whose state was recomputed across all rounds. Dense
    /// sweeps recompute `n` per round; the frontier engine only the
    /// closed neighborhood of the previous hop's changes.
    pub touched_vertices: u64,
    /// Bytes of state entries written into the state store. The owned
    /// (`Vec<M>`) backend rewrites every *touched* vertex's state
    /// (16 bytes per sparse entry into the shadow buffer, changed or
    /// not); the epoch-arena backend appends only *changed* states
    /// (20 bytes per entry including the rank column) plus amortized
    /// compaction copies. Model-level accounting, not a heap profiler.
    pub bytes_copied: u64,
    /// Heap buffers the state-storage layer acquired: the owned backend
    /// materializes one buffer per vertex per state vector (`Θ(n)` per
    /// engine); the arena backend grows a handful of pooled columns
    /// (`O(log pool)` growth events).
    pub alloc_count: u64,
    /// Peak bytes held by the epoch-arena span pool (0 for the owned
    /// backend). **Max-combined**, not summed, by [`AddAssign`]: the
    /// high-water mark of a run is the max over its hops.
    pub arena_bytes: u64,
    /// Representation-switching activity: vertices whose state crossed
    /// the row-density threshold and flipped to a dense row
    /// (`mte_core::dense`). 0 for the purely sparse and purely dense
    /// backends.
    pub dense_flips: u64,
    /// Hops executed in whole-matrix mode (every state a dense row,
    /// relaxations through the contiguous row kernels).
    pub dense_hops: u64,
    /// Dense flips the switching engine *declined* because the block
    /// allocation exceeded the memory budget (graceful degradation:
    /// the run completed sparse with bit-identical output).
    pub dense_declined: u64,
    /// Cross-shard exchange messages sent by the sharded engine
    /// (`core::shard`): one per ordered shard pair per hop, including
    /// the empty keep-alives the drop-detection barrier requires. 0
    /// for unsharded runs and single-shard specs. This is the Congest
    /// model's message count (`congest::CongestCost::from_exchange`),
    /// and the trackable exchange-volume metric on hosts where
    /// wall-clock speedups are meaningless.
    pub shard_msgs: u64,
    /// Model-level bytes of those messages: a fixed per-message header
    /// plus 16 bytes per cross-shard frontier entry carried (cf.
    /// `OWNED_ENTRY_BYTES`) — the exchange payload volume.
    pub shard_msg_bytes: u64,
}

impl WorkStats {
    /// The empty tally.
    pub fn new() -> Self {
        WorkStats::default()
    }
}

impl AddAssign for WorkStats {
    fn add_assign(&mut self, rhs: WorkStats) {
        self.iterations += rhs.iterations;
        self.entries_processed += rhs.entries_processed;
        self.edge_relaxations += rhs.edge_relaxations;
        self.touched_vertices += rhs.touched_vertices;
        self.bytes_copied += rhs.bytes_copied;
        self.alloc_count += rhs.alloc_count;
        // A high-water mark, not a flow: combining two tallies keeps the
        // larger footprint.
        self.arena_bytes = self.arena_bytes.max(rhs.arena_bytes);
        self.dense_flips += rhs.dense_flips;
        self.dense_hops += rhs.dense_hops;
        self.dense_declined += rhs.dense_declined;
        self.shard_msgs += rhs.shard_msgs;
        self.shard_msg_bytes += rhs.shard_msg_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut a = WorkStats {
            iterations: 1,
            entries_processed: 10,
            edge_relaxations: 5,
            touched_vertices: 2,
            bytes_copied: 100,
            alloc_count: 3,
            arena_bytes: 64,
            dense_flips: 2,
            dense_hops: 1,
            dense_declined: 1,
            shard_msgs: 6,
            shard_msg_bytes: 200,
        };
        a += WorkStats {
            iterations: 2,
            entries_processed: 1,
            edge_relaxations: 1,
            touched_vertices: 3,
            bytes_copied: 20,
            alloc_count: 1,
            arena_bytes: 32,
            dense_flips: 3,
            dense_hops: 4,
            dense_declined: 2,
            shard_msgs: 2,
            shard_msg_bytes: 50,
        };
        assert_eq!(
            a,
            WorkStats {
                iterations: 3,
                entries_processed: 11,
                edge_relaxations: 6,
                touched_vertices: 5,
                bytes_copied: 120,
                alloc_count: 4,
                // Max-combined: the peak footprint, not the sum.
                arena_bytes: 64,
                dense_flips: 5,
                dense_hops: 5,
                dense_declined: 3,
                shard_msgs: 8,
                shard_msg_bytes: 250,
            }
        );
    }
}
