//! Typed run errors and run reports for the MBF pipeline.
//!
//! The `try_*` entry points on the engines and the oracle wrap a run in
//! [`run_guarded`]: the closure executes under `catch_unwind`, and after
//! it returns the fault registry's fired log is audited for injected
//! faults that no layer absorbed. The contract the differential fault
//! harness enforces is
//!
//! > a run either returns a typed [`RunError`], or its output is
//! > bit-identical to the clean run,
//!
//! and the fired-log audit is what makes it sound: a poisoned (NaN)
//! entry can be *overwritten* by a later aggregation and leave behind a
//! plausible but wrong finite value, so scanning the final states
//! ([`check_states`]) is only defense in depth — the log never forgets
//! that a fault fired. Faults a layer handles by design (an `alloc_fail`
//! absorbed by the switching engine's sparse fallback, an `io` fault
//! answered by the parser's typed error) are logged as *handled* and do
//! not fail the audit.

use mte_algebra::{NodeId, Semimodule, Semiring};
use mte_faults::{FaultKind, FaultSite, InjectedPanic};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A guarded run failed. Every variant is a *detected* failure — the
/// differential harness treats any of them as an acceptable outcome,
/// whereas silent corruption is not.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// An injected fault fired and was not absorbed by any layer.
    InjectedFault { site: FaultSite, kind: FaultKind },
    /// The run panicked (injected panics that identify themselves are
    /// reported as [`RunError::InjectedFault`] instead).
    Panicked { message: String },
    /// The final states contain a value no semiring operation can
    /// produce (NaN poison that survived to the end).
    CorruptState { vertex: NodeId },
    /// A dense-only run could not allocate its matrix within the budget
    /// (the switching engine degrades instead; see
    /// [`Degradation::DenseFlipDeclined`]).
    DenseBudgetExceeded {
        requested_bytes: u64,
        budget_bytes: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InjectedFault { site, kind } => {
                write!(f, "injected fault at site {site} ({kind}) was not handled")
            }
            RunError::Panicked { message } => write!(f, "run panicked: {message}"),
            RunError::CorruptState { vertex } => {
                write!(f, "corrupt state detected at vertex {vertex}")
            }
            RunError::DenseBudgetExceeded {
                requested_bytes,
                budget_bytes,
            } => write!(
                f,
                "dense run needs {requested_bytes} bytes, budget is {budget_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// A degradation a run took to complete instead of failing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// The switching engine declined (or could not take) a dense flip
    /// because the block allocation exceeded the memory budget, and
    /// completed on the sparse representation instead — bit-identical
    /// output, different performance.
    DenseFlipDeclined {
        requested_bytes: u64,
        budget_bytes: Option<u64>,
    },
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::DenseFlipDeclined {
                requested_bytes,
                budget_bytes,
            } => match budget_bytes {
                Some(b) => write!(
                    f,
                    "dense flip declined: {requested_bytes} bytes over budget {b}"
                ),
                None => write!(
                    f,
                    "dense flip declined: allocation of {requested_bytes} bytes failed"
                ),
            },
        }
    }
}

/// How a guarded run went: the success-side metadata of the `try_*`
/// entry points.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// `true` iff the run reached its fixpoint within the hop cap.
    pub converged: bool,
    /// Hops executed.
    pub hops: u64,
    /// Degradations taken to complete (empty for a clean run).
    pub degradations: Vec<Degradation>,
}

/// Runs `f` under `catch_unwind` and audits the fault registry's fired
/// log around it. Returns `f`'s value only if no panic unwound *and*
/// no unhandled injected fault fired during the run.
pub fn run_guarded<T>(f: impl FnOnce() -> T) -> Result<T, RunError> {
    let serial = mte_faults::fired_serial();
    let outcome = catch_unwind(AssertUnwindSafe(f));
    let value = match outcome {
        Ok(value) => value,
        Err(payload) => return Err(panic_to_error(payload)),
    };
    if let Some(fired) = mte_faults::first_unhandled_since(serial) {
        return Err(RunError::InjectedFault {
            site: fired.site,
            kind: fired.kind,
        });
    }
    Ok(value)
}

/// Maps a caught panic payload to a [`RunError`], identifying injected
/// panics by their typed payload.
fn panic_to_error(payload: Box<dyn std::any::Any + Send>) -> RunError {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        return RunError::InjectedFault {
            site: injected.site,
            kind: FaultKind::Panic,
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    RunError::Panicked { message }
}

/// Defense-in-depth scan of a final state vector: reports the first
/// vertex whose state fails [`Semimodule::is_sane`].
pub fn check_states<S, M>(states: &[M]) -> Result<(), RunError>
where
    S: Semiring,
    M: Semimodule<S>,
{
    match states.iter().position(|x| !x.is_sane()) {
        Some(v) => Err(RunError::CorruptState {
            vertex: v as NodeId,
        }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::MinPlus;

    #[test]
    fn guarded_run_passes_values_through() {
        mte_faults::clear();
        assert_eq!(run_guarded(|| 7), Ok(7));
    }

    #[test]
    fn guarded_run_reports_plain_panics() {
        mte_faults::clear();
        let err = run_guarded(|| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(
            err,
            RunError::Panicked {
                message: "boom".to_string()
            }
        );
    }

    #[test]
    fn state_scan_flags_poison() {
        let mut states = vec![MinPlus::new(1.0), MinPlus::new(2.0)];
        assert_eq!(check_states::<MinPlus, MinPlus>(&states), Ok(()));
        Semiring::poison(&mut states[1]);
        assert_eq!(
            check_states::<MinPlus, MinPlus>(&states),
            Err(RunError::CorruptState { vertex: 1 })
        );
    }
}
