//! Typed run errors and run reports for the MBF pipeline.
//!
//! The `try_*` entry points on the engines and the oracle wrap a run in
//! [`run_guarded`]: the closure executes under `catch_unwind`, and after
//! it returns the fault registry's fired log is audited for injected
//! faults that no layer absorbed. The contract the differential fault
//! harness enforces is
//!
//! > a run either returns a typed [`RunError`], or its output is
//! > bit-identical to the clean run,
//!
//! and the fired-log audit is what makes it sound: a poisoned (NaN)
//! entry can be *overwritten* by a later aggregation and leave behind a
//! plausible but wrong finite value, so scanning the final states
//! ([`check_states`]) is only defense in depth — the log never forgets
//! that a fault fired. Faults a layer handles by design (an `alloc_fail`
//! absorbed by the switching engine's sparse fallback, an `io` fault
//! answered by the parser's typed error) are logged as *handled* and do
//! not fail the audit.

use mte_algebra::{NodeId, Semimodule, Semiring};
use mte_faults::{FaultKind, FaultSite, InjectedPanic};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A guarded run failed. Every variant is a *detected* failure — the
/// differential harness treats any of them as an acceptable outcome,
/// whereas silent corruption is not.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// An injected fault fired and was not absorbed by any layer.
    InjectedFault { site: FaultSite, kind: FaultKind },
    /// The run panicked (injected panics that identify themselves are
    /// reported as [`RunError::InjectedFault`] instead).
    Panicked { message: String },
    /// The final states contain a value no semiring operation can
    /// produce (NaN poison that survived to the end).
    CorruptState { vertex: NodeId },
    /// A dense-only run could not allocate its matrix within the budget
    /// (the switching engine degrades instead; see
    /// [`Degradation::DenseFlipDeclined`]).
    DenseBudgetExceeded {
        requested_bytes: u64,
        budget_bytes: u64,
    },
    /// A snapshot failed to encode, write, or decode — the persistence
    /// layer's typed `SnapshotError` mapped into the run vocabulary
    /// (checkpoint sinks and resume sources raise this).
    SnapshotCorrupt { detail: String },
    /// The recovery ladder ran dry: every rung the policy allowed
    /// (checkpoint retries, then recompute-from-scratch if enabled)
    /// failed. `last` is the final rung's error.
    RetriesExhausted { attempts: u32, last: Box<RunError> },
    /// A cross-shard exchange message failed sequence/digest/sanity
    /// validation (`core::shard`): a dropped, duplicated, reordered, or
    /// bit-flipped message was *detected* at the hop barrier instead of
    /// silently corrupting the embedding. `from_shard`/`to_shard` name
    /// the channel, `hop` the 1-based hop the exchange served.
    ShardExchangeCorrupt {
        from_shard: u32,
        to_shard: u32,
        hop: u64,
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InjectedFault { site, kind } => {
                write!(f, "injected fault at site {site} ({kind}) was not handled")
            }
            RunError::Panicked { message } => write!(f, "run panicked: {message}"),
            RunError::CorruptState { vertex } => {
                write!(f, "corrupt state detected at vertex {vertex}")
            }
            RunError::DenseBudgetExceeded {
                requested_bytes,
                budget_bytes,
            } => write!(
                f,
                "dense run needs {requested_bytes} bytes, budget is {budget_bytes} bytes"
            ),
            RunError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot corrupt: {detail}")
            }
            RunError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "recovery ladder exhausted after {attempts} attempts: {last}"
                )
            }
            RunError::ShardExchangeCorrupt {
                from_shard,
                to_shard,
                hop,
                detail,
            } => write!(
                f,
                "shard exchange corrupt on channel {from_shard}->{to_shard} at hop {hop}: {detail}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// A degradation a run took to complete instead of failing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// The switching engine declined (or could not take) a dense flip
    /// because the block allocation exceeded the memory budget, and
    /// completed on the sparse representation instead — bit-identical
    /// output, different performance.
    DenseFlipDeclined {
        requested_bytes: u64,
        budget_bytes: Option<u64>,
    },
    /// One checkpoint-retry rung of the recovery ladder failed; the
    /// supervisor moved on to the next rung. Recorded per failed
    /// attempt so the report shows the full ladder taken.
    CheckpointRetryFailed { attempt: u32, cause: String },
    /// The run failed but a retry from the last good checkpoint
    /// succeeded on attempt `attempt` — the output is as good as an
    /// uninterrupted run's (bit-identical states by the resume
    /// contract), only the path there degraded.
    RecoveredFromCheckpoint { attempt: u32, cause: String },
    /// Checkpoint retries were exhausted (or no checkpoint existed) and
    /// the supervisor fell back to recomputing from scratch, which
    /// succeeded.
    RecomputedFromScratch { cause: String },
    /// A sharded hop attempt failed (shard panic, staged-state
    /// corruption, or exchange validation) and the shard supervisor
    /// re-executed the hop from its hop-entry state — deterministic by
    /// the commit-after-validate protocol, so the retried hop is
    /// bit-identical to an unfaulted one. Recorded per re-execution.
    ShardReExecuted {
        hop: u64,
        attempt: u32,
        cause: String,
    },
    /// A shard exhausted its re-execution budget and was quarantined:
    /// its vertex ranges were handed to `taken_over_by` (state
    /// transferred from the quarantined shard's hop-entry mirror) and
    /// the run continued without it.
    ShardQuarantined {
        shard: u32,
        taken_over_by: u32,
        hop: u64,
    },
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::DenseFlipDeclined {
                requested_bytes,
                budget_bytes,
            } => match budget_bytes {
                Some(b) => write!(
                    f,
                    "dense flip declined: {requested_bytes} bytes over budget {b}"
                ),
                None => write!(
                    f,
                    "dense flip declined: allocation of {requested_bytes} bytes failed"
                ),
            },
            Degradation::CheckpointRetryFailed { attempt, cause } => {
                write!(f, "checkpoint retry {attempt} failed: {cause}")
            }
            Degradation::RecoveredFromCheckpoint { attempt, cause } => {
                write!(f, "recovered from checkpoint on retry {attempt} ({cause})")
            }
            Degradation::RecomputedFromScratch { cause } => {
                write!(f, "recomputed from scratch ({cause})")
            }
            Degradation::ShardReExecuted {
                hop,
                attempt,
                cause,
            } => {
                write!(
                    f,
                    "shard hop {hop} re-executed (attempt {attempt}): {cause}"
                )
            }
            Degradation::ShardQuarantined {
                shard,
                taken_over_by,
                hop,
            } => write!(
                f,
                "shard {shard} quarantined at hop {hop}; ranges taken over by shard {taken_over_by}"
            ),
        }
    }
}

/// How a guarded run went: the success-side metadata of the `try_*`
/// entry points.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// `true` iff the run reached its fixpoint within the hop cap.
    pub converged: bool,
    /// Hops executed.
    pub hops: u64,
    /// Degradations taken to complete (empty for a clean run).
    pub degradations: Vec<Degradation>,
}

/// Runs `f` under `catch_unwind` and audits the fault registry's fired
/// log around it. Returns `f`'s value only if no panic unwound *and*
/// no unhandled injected fault fired during the run.
pub fn run_guarded<T>(f: impl FnOnce() -> T) -> Result<T, RunError> {
    let serial = mte_faults::fired_serial();
    let outcome = catch_unwind(AssertUnwindSafe(f));
    let value = match outcome {
        Ok(value) => value,
        Err(payload) => return Err(panic_to_error(payload)),
    };
    if let Some(fired) = mte_faults::first_unhandled_since(serial) {
        return Err(RunError::InjectedFault {
            site: fired.site,
            kind: fired.kind,
        });
    }
    Ok(value)
}

/// Maps a caught panic payload to a [`RunError`], identifying injected
/// panics by their typed payload. `pub(crate)` so the sharded engine's
/// per-shard panic isolation reports with the same vocabulary.
pub(crate) fn panic_to_error(payload: Box<dyn std::any::Any + Send>) -> RunError {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        return RunError::InjectedFault {
            site: injected.site,
            kind: FaultKind::Panic,
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    RunError::Panicked { message }
}

/// Defense-in-depth scan of a final state vector: reports the first
/// vertex whose state fails [`Semimodule::is_sane`].
pub fn check_states<S, M>(states: &[M]) -> Result<(), RunError>
where
    S: Semiring,
    M: Semimodule<S>,
{
    match states.iter().position(|x| !x.is_sane()) {
        Some(v) => Err(RunError::CorruptState {
            vertex: v as NodeId,
        }),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------
// The deterministic recovery supervisor.
// ---------------------------------------------------------------------

/// Bounds of the recovery ladder a [`Supervisor`] walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries from the last good checkpoint before falling back (0 =
    /// skip straight to the scratch rung).
    pub max_retries: u32,
    /// Base of the deterministic backoff: retry `a` spins
    /// `backoff_base · 2^{a−1}` iterations of [`std::hint::spin_loop`]
    /// before re-entering. Attempt-count-based, never wall-clock-based —
    /// the hygiene rule bans clocks in engine crates, and a
    /// deterministic run must not observe time.
    pub backoff_base: u32,
    /// Whether the final rung — recompute from scratch, ignoring all
    /// checkpoints — is allowed.
    pub allow_scratch: bool,
}

impl Default for RecoveryPolicy {
    /// Two checkpoint retries, then scratch.
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base: 64,
            allow_scratch: true,
        }
    }
}

/// Which rung of the recovery ladder an entry closure is asked to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAttempt {
    /// The first, ordinary execution.
    Primary,
    /// Retry `attempt` (1-based) from the last good checkpoint. The
    /// entry closure decides what "last good checkpoint" means — resume
    /// from an in-memory [`crate::checkpoint::Checkpoint`], reload a
    /// snapshot file, or re-enter with a fresh sink.
    RetryFromCheckpoint { attempt: u32 },
    /// The final rung: recompute from scratch, using no checkpoint.
    Scratch,
}

/// The deterministic recovery supervisor: walks a failed guarded run
/// down the recovery ladder — primary → bounded checkpoint retries
/// (with attempt-count backoff) → recompute-from-scratch — and records
/// every rung taken as [`Degradation`]s in the successful rung's
/// [`RunReport`]. Deterministic end to end: the ladder is a pure
/// function of the entry closure's results, no clocks, no randomness.
#[derive(Clone, Copy, Debug, Default)]
pub struct Supervisor {
    policy: RecoveryPolicy,
}

impl Supervisor {
    /// A supervisor with the given ladder bounds.
    pub fn new(policy: RecoveryPolicy) -> Self {
        Supervisor { policy }
    }

    /// The ladder bounds.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Spins for `backoff_base · 2^{attempt−1}` iterations — the
    /// deterministic stand-in for a retry backoff (see
    /// [`RecoveryPolicy::backoff_base`]).
    fn backoff(&self, attempt: u32) {
        let spins = (self.policy.backoff_base as u64) << (attempt.saturating_sub(1)).min(16);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }

    /// Runs `entry` down the recovery ladder until a rung succeeds.
    ///
    /// `entry` is invoked with the [`RecoveryAttempt`] describing the
    /// rung; it should wrap one of the guarded `try_*` twins (or a
    /// checkpointed/resume driver). On success the ladder's history is
    /// merged into the returned [`RunReport::degradations`]. If every
    /// allowed rung fails, the result is
    /// [`RunError::RetriesExhausted`] wrapping the last rung's error.
    ///
    /// A retry that fails with [`RunError::SnapshotCorrupt`] proves the
    /// checkpoint itself is unusable: the remaining checkpoint retries
    /// are skipped and the ladder drops straight to the scratch rung.
    pub fn run<T>(
        &self,
        mut entry: impl FnMut(RecoveryAttempt) -> Result<(T, RunReport), RunError>,
    ) -> Result<(T, RunReport), RunError> {
        let mut ladder: Vec<Degradation> = Vec::new();
        let mut last = match entry(RecoveryAttempt::Primary) {
            Ok(ok) => return Ok(ok),
            Err(e) => e,
        };
        let mut attempts = 1u32;
        let mut checkpoint_unusable = matches!(last, RunError::SnapshotCorrupt { .. });
        for attempt in 1..=self.policy.max_retries {
            if checkpoint_unusable {
                break;
            }
            self.backoff(attempt);
            let cause = last.to_string();
            match entry(RecoveryAttempt::RetryFromCheckpoint { attempt }) {
                Ok((value, mut report)) => {
                    ladder.push(Degradation::RecoveredFromCheckpoint { attempt, cause });
                    ladder.append(&mut report.degradations);
                    report.degradations = ladder;
                    return Ok((value, report));
                }
                Err(e) => {
                    ladder.push(Degradation::CheckpointRetryFailed {
                        attempt,
                        cause: e.to_string(),
                    });
                    checkpoint_unusable = matches!(e, RunError::SnapshotCorrupt { .. });
                    last = e;
                    attempts += 1;
                }
            }
        }
        if self.policy.allow_scratch {
            let cause = last.to_string();
            match entry(RecoveryAttempt::Scratch) {
                Ok((value, mut report)) => {
                    ladder.push(Degradation::RecomputedFromScratch { cause });
                    ladder.append(&mut report.degradations);
                    report.degradations = ladder;
                    return Ok((value, report));
                }
                Err(e) => {
                    last = e;
                    attempts += 1;
                }
            }
        }
        Err(RunError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::MinPlus;

    #[test]
    fn guarded_run_passes_values_through() {
        mte_faults::clear();
        assert_eq!(run_guarded(|| 7), Ok(7));
    }

    #[test]
    fn guarded_run_reports_plain_panics() {
        mte_faults::clear();
        let err = run_guarded(|| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(
            err,
            RunError::Panicked {
                message: "boom".to_string()
            }
        );
    }

    #[test]
    fn state_scan_flags_poison() {
        let mut states = vec![MinPlus::new(1.0), MinPlus::new(2.0)];
        assert_eq!(check_states::<MinPlus, MinPlus>(&states), Ok(()));
        Semiring::poison(&mut states[1]);
        assert_eq!(
            check_states::<MinPlus, MinPlus>(&states),
            Err(RunError::CorruptState { vertex: 1 })
        );
    }

    fn boom() -> RunError {
        RunError::Panicked {
            message: "boom".to_string(),
        }
    }

    #[test]
    fn supervisor_passes_clean_runs_through() {
        let sup = Supervisor::new(RecoveryPolicy::default());
        let (value, report) = sup
            .run(|attempt| {
                assert_eq!(attempt, RecoveryAttempt::Primary);
                Ok((
                    7,
                    RunReport {
                        converged: true,
                        hops: 3,
                        degradations: Vec::new(),
                    },
                ))
            })
            .unwrap();
        assert_eq!(value, 7);
        assert!(report.degradations.is_empty());
    }

    #[test]
    fn supervisor_recovers_from_checkpoint_and_records_the_ladder() {
        let sup = Supervisor::new(RecoveryPolicy::default());
        let mut calls = Vec::new();
        let (value, report) = sup
            .run(|attempt| {
                calls.push(attempt);
                match attempt {
                    RecoveryAttempt::Primary => Err(boom()),
                    RecoveryAttempt::RetryFromCheckpoint { attempt: 1 } => Err(boom()),
                    _ => Ok((
                        42,
                        RunReport {
                            converged: true,
                            hops: 5,
                            degradations: Vec::new(),
                        },
                    )),
                }
            })
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(
            calls,
            vec![
                RecoveryAttempt::Primary,
                RecoveryAttempt::RetryFromCheckpoint { attempt: 1 },
                RecoveryAttempt::RetryFromCheckpoint { attempt: 2 },
            ]
        );
        assert_eq!(report.degradations.len(), 2);
        assert!(matches!(
            report.degradations[0],
            Degradation::CheckpointRetryFailed { attempt: 1, .. }
        ));
        assert!(matches!(
            report.degradations[1],
            Degradation::RecoveredFromCheckpoint { attempt: 2, .. }
        ));
    }

    #[test]
    fn supervisor_falls_back_to_scratch() {
        let sup = Supervisor::new(RecoveryPolicy {
            max_retries: 1,
            backoff_base: 1,
            allow_scratch: true,
        });
        let (_, report) = sup
            .run(|attempt| match attempt {
                RecoveryAttempt::Scratch => Ok((
                    (),
                    RunReport {
                        converged: true,
                        hops: 1,
                        degradations: Vec::new(),
                    },
                )),
                _ => Err(boom()),
            })
            .unwrap();
        assert!(matches!(
            report.degradations.last(),
            Some(Degradation::RecomputedFromScratch { .. })
        ));
    }

    #[test]
    fn supervisor_reports_exhaustion_with_the_last_error() {
        let sup = Supervisor::new(RecoveryPolicy {
            max_retries: 2,
            backoff_base: 1,
            allow_scratch: false,
        });
        let err = sup.run(|_| -> Result<((), RunReport), _> { Err(boom()) });
        match err.unwrap_err() {
            RunError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3); // primary + 2 retries
                assert_eq!(*last, boom());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn corrupt_snapshot_skips_straight_to_scratch() {
        let sup = Supervisor::new(RecoveryPolicy::default());
        let mut calls = Vec::new();
        let (_, report) = sup
            .run(|attempt| {
                calls.push(attempt);
                match attempt {
                    RecoveryAttempt::Primary => Err(boom()),
                    RecoveryAttempt::RetryFromCheckpoint { .. } => Err(RunError::SnapshotCorrupt {
                        detail: "bad crc".to_string(),
                    }),
                    RecoveryAttempt::Scratch => Ok((
                        (),
                        RunReport {
                            converged: true,
                            hops: 1,
                            degradations: Vec::new(),
                        },
                    )),
                }
            })
            .unwrap();
        // Retry 1 proves the checkpoint unusable; retry 2 never runs.
        assert_eq!(
            calls,
            vec![
                RecoveryAttempt::Primary,
                RecoveryAttempt::RetryFromCheckpoint { attempt: 1 },
                RecoveryAttempt::Scratch,
            ]
        );
        assert_eq!(report.degradations.len(), 2);
    }

    #[test]
    fn supervisor_ladder_is_deterministic() {
        // Same failure script, same ladder — run twice and compare the
        // recorded degradations exactly.
        let script = |attempt: RecoveryAttempt| match attempt {
            RecoveryAttempt::Primary => Err(boom()),
            _ => Ok((
                1u32,
                RunReport {
                    converged: true,
                    hops: 2,
                    degradations: Vec::new(),
                },
            )),
        };
        let sup = Supervisor::new(RecoveryPolicy::default());
        let a = sup.run(script).unwrap();
        let b = sup.run(script).unwrap();
        assert_eq!(a.1, b.1);
    }
}
