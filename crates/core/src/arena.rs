//! The arena-backed engine: MBF-like iteration over the epoch-arena
//! state store ([`mte_algebra::store::EpochStore`]).
//!
//! # Mapping back to the paper
//!
//! The paper iterates `x ← r^V A x` over a state vector `x ∈ D^V`
//! (Definition 2.11) and charges each iteration `O(Σ_v |x_v|)` work —
//! per **list entry**, never per vertex (Lemma 2.3, Lemma 7.8). The
//! owned backend ([`crate::engine::MbfEngine`], `Vec<A::M>`) breaks that accounting on
//! real hardware: every touched vertex's state is rewritten wholesale
//! into a per-vertex heap buffer, so a hop pays copy traffic per
//! *vertex*, changed or not. Here the whole vector `x` lives in one
//! [`EpochStore`]: `x_v` is a `(offset, len)` **span** into a shared
//! entry pool, a hop appends only the states that actually changed (the
//! next **epoch**) and commits by retargeting spans — an unchanged
//! vertex keeps its old span at zero cost (copy-on-write), which is
//! exactly the `Σ|x_v|`-over-*changed*-states cost the lemmas charge.
//!
//! # Scheduling and determinism
//!
//! [`ArenaEngine`] drives the *same* `FrontierSchedule` as the owned
//! engine — same frontier, same touched list, same degree-balanced
//! chunks — so the two backends execute identical hops and their
//! outputs are bit-identical by construction (differential-tested by
//! `tests/schedule_equivalence.rs`). During a hop, each scheduling
//! chunk writes its recomputed states into its own **chunk append
//! region** (plain `Vec`s owned by the chunk slot — no synchronization,
//! no `unsafe`); the commit concatenates the regions into the pool in
//! chunk order, so the pool layout is a pure function of the schedule
//! and the inputs, never of `MTE_THREADS`.
//!
//! # The algorithm hook
//!
//! [`ArenaMbfAlgorithm`] is the span-level counterpart of
//! [`MbfAlgorithm::recompute_into`]: [`ArenaMbfAlgorithm::recompute_span`]
//! reads neighbor states as borrowed [`DistanceSlice`]s straight out of
//! the pool and appends the result to the chunk region through a
//! [`SpanOut`]. The default implementation is the literal
//! merge-everything-then-filter pipeline over spans; `LeListAlgorithm`
//! overrides it with the rank-domination probe reading the pool's rank
//! column, `SourceDetection` with the top-k admission threshold. Every
//! override **must** be bit-identical to the owned
//! `recompute_into` on exported states — the equivalence suite
//! differential-tests engine, oracle, and the FRT pipeline across both
//! backends and `MTE_THREADS ∈ {1, 4}`.
//!
//! The oracle variant ([`oracle_run_arena_with_schedule`]) runs its
//! `Λ + 1` level contributions over one shared arena scratch — a pool
//! lane and span table per level inside a single structure, `O(Λ)`
//! buffers total instead of the owned path's `Θ(Λ·n)` per-vertex maps —
//! with the same frontier-sized carry-over diff as
//! [`crate::oracle::oracle_run_with_schedule`].

use crate::engine::{initial_states, EngineStrategy, FrontierSchedule, MbfAlgorithm, MbfRun};
use crate::error::{RunError, RunReport};
use crate::oracle::OracleRun;
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_algebra::store::{DistanceSlice, EpochStore, SpanOut, StoreStats};
use mte_algebra::{Dist, DistanceMap, MinPlus, NodeId};
use mte_graph::Graph;
use rayon::prelude::*;
use std::cell::RefCell;

/// Outcome of one span recomputation (the arena counterpart of
/// `recompute_into`'s `(entries, relaxations)` pair).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanRecompute {
    /// Entries processed (the paper's `Σ|x|` work term; pruned paths
    /// count admitted entries only, like the owned overrides).
    pub entries: u64,
    /// Edge relaxations performed.
    pub relaxations: u64,
    /// `true` asserts the result is **bit-identical to the current
    /// span** and nothing was written to the output: the engine keeps
    /// the old span without copying or comparing. The hint must be
    /// exact — a wrong hint is a correctness bug, not a performance
    /// one.
    pub unchanged_hint: bool,
}

thread_local! {
    /// Per-thread accumulator for span recomputations that build their
    /// result in an owned map before appending (the default path and
    /// the pruned source-detection override).
    static ARENA_ACC: RefCell<DistanceMap> = RefCell::new(DistanceMap::new());
}

/// Runs `f` with this thread's recompute accumulator. Falls back to a
/// fresh map on re-entrant use instead of panicking, mirroring
/// [`mte_algebra::merge::with_dist_scratch`].
pub fn with_arena_acc<R>(f: impl FnOnce(&mut DistanceMap) -> R) -> R {
    ARENA_ACC.with(|cell| match cell.try_borrow_mut() {
        Ok(mut acc) => f(&mut acc),
        Err(_) => f(&mut DistanceMap::new()),
    })
}

/// An MBF-like algorithm over min-plus distance maps that can recompute
/// straight out of (and into) the epoch-arena store. See the module
/// docs; the owned [`MbfAlgorithm`] methods remain the semantics
/// reference.
pub trait ArenaMbfAlgorithm: MbfAlgorithm<S = MinPlus, M = DistanceMap> {
    /// Whether the algorithm reads the pool's per-entry rank column
    /// (via [`mte_algebra::store::DistanceSlice::ranks`] or
    /// [`ArenaMbfAlgorithm::entry_aux`]). Off by default: the store
    /// then skips the 4 B/entry column entirely — sssp- and
    /// source-detection-style appends carried it as dead traffic. The
    /// LE lists opt in (their domination probe reads ranks straight
    /// from the pool).
    const USES_RANK_COLUMN: bool = false;

    /// Rank-column value stored alongside an entry with key `node`.
    /// Must be a **pure function of the key** (identical entries ⇒
    /// identical aux), since the engine's change detection compares
    /// entries only. The LE lists store the node's permutation rank;
    /// the default is 0. Never consulted when
    /// [`ArenaMbfAlgorithm::USES_RANK_COLUMN`] is off.
    #[inline]
    fn entry_aux(&self, _node: NodeId) -> u32 {
        0
    }

    /// [`MbfAlgorithm::state_size`] for a borrowed span. Must agree
    /// with `state_size` on the materialized map; the default matches
    /// the distance-map convention `|x|.max(1)`.
    #[inline]
    fn slice_size(&self, x: &DistanceSlice<'_>) -> usize {
        x.len().max(1)
    }

    /// Recomputes `v`'s next state `r(x_v ⊕ ⊕_w a_vw x_w)` from the
    /// span-backed state vector, appending the resulting entries (with
    /// their rank column) to `out` — or writing nothing and setting
    /// [`SpanRecompute::unchanged_hint`] when the result provably
    /// equals the current span. Must be bit-identical to
    /// [`MbfAlgorithm::recompute_into`] on exported states.
    ///
    /// `ctx` reports which neighbor states are **dirty** (may differ
    /// from what `v` last absorbed). Algorithms whose filter is
    /// *absorption-stable* (see [`RecomputeCtx::neighbor_dirty`]) may
    /// skip merging clean neighbors — their contributions are provably
    /// identities — as the LE-list and source-detection overrides do;
    /// the default implementation merges everything unconditionally.
    fn recompute_span(
        &self,
        v: NodeId,
        g: &Graph,
        weight_scale: f64,
        states: &EpochStore,
        _ctx: &RecomputeCtx<'_>,
        out: &mut SpanOut<'_>,
    ) -> SpanRecompute {
        default_recompute_span(self, v, g, weight_scale, states, out)
    }
}

/// Per-hop context handed to [`ArenaMbfAlgorithm::recompute_span`]:
/// which states moved since each vertex last absorbed them.
///
/// # Absorption stability
///
/// The engine guarantees: whenever a neighbor `w`'s state changes at
/// hop `t`, every `v ∈ N[w]` is recomputed at hop `t + 1` (the
/// closed-neighborhood schedule). So if `w` is **not** dirty now, `v`
/// has already merged `a_vw x_w` (with the current `x_w`) in an earlier
/// recompute. For a filter where absorbed contributions stay absorbed —
/// entry values only improve, and an entry the filter ever discarded is
/// justified by witnesses that persist (LE rank domination and the
/// source-detection top-k both qualify; the engine's own docs call the
/// general case unsound) — re-merging a clean neighbor is the identity,
/// and skipping it is bit-identical. External edits break the "already
/// absorbed" premise for the **edited vertex itself**, so
/// [`ArenaEngine::mark_dirty`] taints its vertices:
/// [`RecomputeCtx::require_full`] forces their next recomputation to
/// merge every neighbor once.
pub struct RecomputeCtx<'a> {
    sched: &'a FrontierSchedule,
    taint: &'a crate::engine::TaintTable,
}

impl RecomputeCtx<'_> {
    /// `true` iff `w`'s state may differ from what `v` last absorbed
    /// (`w` is on the frontier seeding this hop).
    #[inline]
    pub fn neighbor_dirty(&self, w: NodeId) -> bool {
        self.sched.on_frontier(w)
    }

    /// `true` iff `v`'s own state was externally rewritten since its
    /// last recomputation: it has absorbed nothing, so this
    /// recomputation must merge every neighbor regardless of dirtiness.
    #[inline]
    pub fn require_full(&self, v: NodeId) -> bool {
        self.taint.is_tainted(v)
    }
}

/// The literal merge-everything-then-filter recomputation over spans —
/// the arena counterpart of the default [`MbfAlgorithm::recompute_into`]
/// body, provided as a free function so overriding implementations can
/// fall back to it.
///
/// Assumes (like every distance-map algorithm in the catalog) that
/// `propagate_into` is the fused min-plus merge `acc ← acc ⊕ (s ⊙ x)`.
pub fn default_recompute_span<A: ArenaMbfAlgorithm + ?Sized>(
    alg: &A,
    v: NodeId,
    g: &Graph,
    weight_scale: f64,
    states: &EpochStore,
    out: &mut SpanOut<'_>,
) -> SpanRecompute {
    with_arena_acc(|acc| {
        let base = states.get(v);
        // a_vv = 1: keep the node's own state.
        acc.assign_from_entries(base.entries);
        let mut entries = alg.slice_size(&base) as u64;
        let mut relaxations = 0u64;
        for &(w, ew) in g.neighbors(v) {
            let coeff = alg.edge_coeff(v, w, ew * weight_scale);
            let nb = states.get(w);
            acc.merge_scaled_entries(nb.entries, coeff.0);
            entries += alg.slice_size(&nb) as u64;
            relaxations += 1;
        }
        alg.filter(acc);
        for (u, d) in acc.iter() {
            out.push(u, d, alg.entry_aux(u));
        }
        SpanRecompute {
            entries,
            relaxations,
            unchanged_hint: false,
        }
    })
}

/// Storage counters of a [`StoreStats`] snapshot folded into the
/// work-accounting shape.
pub(crate) fn storage_work(stats: StoreStats) -> WorkStats {
    WorkStats {
        bytes_copied: stats.bytes_copied,
        alloc_count: stats.alloc_count,
        arena_bytes: stats.arena_bytes,
        ..WorkStats::default()
    }
}

/// Storage-counter delta between two snapshots (`arena_bytes` is a
/// high-water mark: the later snapshot wins).
fn storage_delta(before: StoreStats, after: StoreStats) -> WorkStats {
    WorkStats {
        bytes_copied: after.bytes_copied - before.bytes_copied,
        alloc_count: after.alloc_count - before.alloc_count,
        arena_bytes: after.arena_bytes,
        ..WorkStats::default()
    }
}

/// Per-vertex outcome record inside a chunk append region.
#[derive(Clone, Copy, Debug)]
struct Rec {
    /// Offset of this vertex's output inside the chunk region (0-length
    /// and meaningless when unchanged).
    off: u32,
    len: u32,
    entries: u64,
    relaxations: u64,
    changed: bool,
}

/// One chunk's append region: the entry/rank columns the chunk's
/// recomputations write (changed states only — unchanged output is
/// truncated away immediately), plus the per-vertex records. Owned by
/// the chunk slot and reused across hops.
#[derive(Clone, Debug, Default)]
struct ChunkBuf {
    entries: Vec<(NodeId, Dist)>,
    ranks: Vec<u32>,
    recs: Vec<Rec>,
}

/// The arena-backed iteration engine: the `FrontierSchedule` of the
/// owned [`crate::engine::MbfEngine`] driving copy-on-write hops over an
/// [`EpochStore`]. One engine serves arbitrarily many hops without
/// reallocating; the store is passed per step so callers (the oracle)
/// can own several state vectors.
#[derive(Clone, Debug)]
pub struct ArenaEngine {
    sched: FrontierSchedule,
    chunk_bufs: Vec<ChunkBuf>,
    /// Per-touched-position changed flags of the current hop.
    changed: Vec<bool>,
    /// Taints for externally rewritten vertices (see
    /// [`RecomputeCtx::require_full`]): a tainted `v` must do one
    /// full-merge recomputation. Cleared per vertex when it is
    /// recomputed, wholesale on [`ArenaEngine::mark_all_dirty`].
    taint: crate::engine::TaintTable,
}

impl ArenaEngine {
    /// A fresh engine with the given scheduling strategy.
    pub fn new(strategy: EngineStrategy) -> Self {
        ArenaEngine {
            sched: FrontierSchedule::new(strategy),
            chunk_bufs: Vec::new(),
            changed: Vec::new(),
            taint: crate::engine::TaintTable::new(),
        }
    }

    /// The engine's scheduling strategy.
    pub fn strategy(&self) -> EngineStrategy {
        self.sched.strategy()
    }

    /// The frontier list: ascending, no duplicates.
    pub fn frontier(&self) -> &[NodeId] {
        self.sched.frontier()
    }

    /// See [`crate::engine::MbfEngine::enable_change_log`].
    pub fn enable_change_log(&mut self) {
        self.sched.enable_change_log();
    }

    /// See [`crate::engine::MbfEngine::drain_change_log`].
    pub fn drain_change_log(&mut self, out: &mut Vec<NodeId>) {
        self.sched.drain_change_log(out);
    }

    /// See [`crate::engine::MbfEngine::mark_all_dirty`]. Also clears
    /// all taints: the next hop merges every neighbor of every vertex
    /// anyway (the whole graph is on the frontier).
    pub fn mark_all_dirty(&mut self, g: &Graph) {
        self.sched.mark_all_dirty(g);
        self.taint.reset(g.n());
    }

    /// Sizes the schedule and taint table for `g` with an **empty**
    /// frontier (cf. [`crate::engine::MbfEngine::prime`]): a following
    /// [`ArenaEngine::mark_dirty`] then seeds exactly its vertices
    /// instead of falling back to the all-dirty restart. Used by the
    /// checkpoint-resume path.
    pub fn prime(&mut self, g: &Graph) {
        self.sched.ensure_sized(g);
        self.taint.ensure_sized(g.n());
    }

    /// See [`crate::engine::MbfEngine::mark_dirty`]. The seeded
    /// vertices are additionally **tainted**: their states were
    /// rewritten outside the engine, so their next recomputation must
    /// merge every neighbor (see [`RecomputeCtx::require_full`]).
    pub fn mark_dirty(&mut self, g: &Graph, vs: impl IntoIterator<Item = NodeId>) {
        if !self.sched.sized_for(g.n()) {
            // Falls back to an all-dirty restart inside the schedule;
            // keep the taint table in sync.
            self.mark_all_dirty(g);
            return;
        }
        let taint = &mut self.taint;
        self.sched
            .mark_dirty(g, vs.into_iter().inspect(|&v| taint.taint(v)));
    }

    /// One hop `x ← r^V A x` over the span-backed state vector, with
    /// all edge weights multiplied by `weight_scale`. Bit-identical to
    /// [`crate::engine::MbfEngine::step`] on the exported states; returns the work
    /// spent (including storage counters) and whether any state
    /// changed.
    pub fn step<A: ArenaMbfAlgorithm>(
        &mut self,
        alg: &A,
        g: &Graph,
        store: &mut EpochStore,
        weight_scale: f64,
    ) -> (WorkStats, bool) {
        let n = g.n();
        assert_eq!(n, store.len(), "state store / graph size mismatch");
        if !self.sched.sized_for(n) {
            self.mark_all_dirty(g);
        }
        self.sched.plan_hop(g);
        let touched: &[NodeId] = self.sched.touched();
        let chunks: &[std::ops::Range<usize>] = self.sched.chunks();
        let k = chunks.len();
        if self.chunk_bufs.len() < k {
            self.chunk_bufs.resize_with(k, ChunkBuf::default);
        }

        // Recompute phase: each chunk pulls its vertices' next states
        // out of the (immutably shared) store and writes them into its
        // own append region — disjoint plain buffers, no aliasing, no
        // synchronization. Unchanged output is truncated away on the
        // spot, so quiescent vertices contribute zero bytes.
        let store_ref: &EpochStore = store;
        let ctx = RecomputeCtx {
            sched: &self.sched,
            taint: &self.taint,
        };
        self.chunk_bufs[..k]
            .par_iter_mut()
            .with_min_len(1)
            .enumerate()
            .for_each(|(ci, buf)| {
                buf.entries.clear();
                buf.ranks.clear();
                buf.recs.clear();
                for p in chunks[ci].clone() {
                    let v = touched[p];
                    let start = buf.entries.len();
                    let r = {
                        let mut out = SpanOut::with_rank_column(
                            &mut buf.entries,
                            &mut buf.ranks,
                            A::USES_RANK_COLUMN,
                        );
                        alg.recompute_span(v, g, weight_scale, store_ref, &ctx, &mut out)
                    };
                    let len = buf.entries.len() - start;
                    let changed = if r.unchanged_hint {
                        debug_assert_eq!(len, 0, "unchanged_hint with written output");
                        false
                    } else {
                        store_ref.get(v).entries != &buf.entries[start..]
                    };
                    if !changed {
                        // Copy-on-write: the vertex keeps its old span;
                        // the speculative output never reaches the pool.
                        buf.entries.truncate(start);
                        buf.ranks.truncate(start);
                    }
                    buf.recs.push(Rec {
                        off: start as u32,
                        len: if changed { len as u32 } else { 0 },
                        entries: r.entries,
                        relaxations: r.relaxations,
                        changed,
                    });
                }
            });

        // Commit phase (sequential, deterministic): open the next
        // epoch — possibly compacting first — then concatenate the
        // chunk regions into the pool in chunk order and retarget the
        // spans of changed vertices.
        //
        // Fault-injection site: a `panic` here unwinds with the commit
        // not yet applied, leaving the store on the previous epoch.
        if mte_faults::check_for(
            mte_faults::FaultSite::EngineHopCommit,
            &[mte_faults::FaultKind::Panic],
        )
        .is_some()
        {
            mte_faults::trigger_panic(mte_faults::FaultSite::EngineHopCommit);
        }
        let before = store.stats();
        let total_new: usize = self.chunk_bufs[..k].iter().map(|b| b.entries.len()).sum();
        store.begin_epoch(total_new);
        self.changed.clear();
        let mut entries = 0u64;
        let mut relaxations = 0u64;
        let mut any_changed = false;
        for (ci, buf) in self.chunk_bufs[..k].iter().enumerate() {
            let base = store.append_region(&buf.entries, &buf.ranks);
            debug_assert_eq!(buf.recs.len(), chunks[ci].len());
            for (rec, p) in buf.recs.iter().zip(chunks[ci].clone()) {
                entries += rec.entries;
                relaxations += rec.relaxations;
                if rec.changed {
                    store.set_span(touched[p], base + rec.off, rec.len);
                    any_changed = true;
                }
                self.changed.push(rec.changed);
            }
        }
        debug_assert_eq!(self.changed.len(), touched.len());

        // Every touched vertex was recomputed (tainted ones with full
        // merges), so its taint is discharged.
        for &v in touched {
            self.taint.discharge(v);
        }

        let touched_vertices = touched.len() as u64;
        let changed: &[bool] = &self.changed;
        self.sched.refresh(g, |p| changed[p]);

        let mut work = WorkStats {
            iterations: 1,
            entries_processed: entries,
            edge_relaxations: relaxations,
            touched_vertices,
            ..WorkStats::default()
        };
        work += storage_delta(before, store.stats());
        (work, any_changed)
    }
}

/// Builds the initial span-backed state vector `r^V x⁽⁰⁾`: one pool
/// bulk-load instead of `n` per-vertex map buffers. The rank column is
/// allocated only when the algorithm opts in
/// ([`ArenaMbfAlgorithm::USES_RANK_COLUMN`]).
pub fn initial_store<A: ArenaMbfAlgorithm>(alg: &A, n: usize) -> EpochStore {
    let states = initial_states(alg, n);
    let mut store = EpochStore::with_rank_column(n, A::USES_RANK_COLUMN);
    store.import(&states, |u| alg.entry_aux(u));
    store
}

/// Runs exactly `h` iterations on the arena backend (cf.
/// [`crate::engine::run_with`]); bit-identical states, exported as
/// owned maps.
pub fn run_arena_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    g: &Graph,
    h: usize,
    strategy: EngineStrategy,
) -> MbfRun<DistanceMap> {
    let mut store = initial_store(alg, g.n());
    let mut work = storage_work(store.stats());
    let mut engine = ArenaEngine::new(strategy);
    engine.mark_all_dirty(g);
    for _ in 0..h {
        let (w, _) = engine.step(alg, g, &mut store, 1.0);
        work += w;
    }
    MbfRun {
        states: store.export(),
        iterations: h,
        fixpoint: false,
        work,
    }
}

/// Iterates the arena backend to the fixpoint, capped at `cap` hops
/// (cf. [`crate::engine::run_to_fixpoint_with`]: the confirming hop is
/// counted).
pub fn run_to_fixpoint_arena_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
) -> MbfRun<DistanceMap> {
    let mut store = initial_store(alg, g.n());
    let mut work = storage_work(store.stats());
    let mut engine = ArenaEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut iterations = 0;
    let mut fixpoint = false;
    while iterations < cap {
        let (w, changed) = engine.step(alg, g, &mut store, 1.0);
        work += w;
        iterations += 1;
        if !changed {
            fixpoint = true;
            break;
        }
    }
    MbfRun {
        states: store.export(),
        iterations,
        fixpoint,
        work,
    }
}

/// Iterates the arena backend to the fixpoint under the default hybrid
/// strategy.
pub fn run_to_fixpoint_arena<A: ArenaMbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
) -> MbfRun<DistanceMap> {
    run_to_fixpoint_arena_with(alg, g, cap, EngineStrategy::default())
}

/// Guarded [`run_to_fixpoint_arena_with`] (cf.
/// [`crate::engine::try_run_to_fixpoint_with`]): panics become typed
/// errors, injected faults are audited, exported states are scanned.
pub fn try_run_to_fixpoint_arena_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
) -> Result<(MbfRun<DistanceMap>, RunReport), RunError> {
    let run = crate::error::run_guarded(|| run_to_fixpoint_arena_with(alg, g, cap, strategy))?;
    crate::error::check_states::<MinPlus, DistanceMap>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations: Vec::new(),
    };
    Ok((run, report))
}

// ---------------------------------------------------------------------
// The arena oracle: Λ+1 level contributions over one shared arena
// scratch.
// ---------------------------------------------------------------------

/// One level's slice of the shared oracle arena: a pool lane + span
/// table (its `y_λ` vector), the engine driving it, and the carry-over
/// bookkeeping mirroring `oracle::LevelScratch`.
struct ArenaLevel {
    engine: ArenaEngine,
    store: EpochStore,
    primed: bool,
    moved: Vec<NodeId>,
    moved_all: bool,
    seeds: Vec<NodeId>,
}

impl ArenaLevel {
    fn new(strategy: EngineStrategy, n: usize, ranked: bool) -> Self {
        let mut engine = ArenaEngine::new(strategy);
        engine.enable_change_log();
        ArenaLevel {
            engine,
            store: EpochStore::with_rank_column(n, ranked),
            primed: false,
            moved: Vec::new(),
            moved_all: true,
            seeds: Vec::new(),
        }
    }
}

/// [`crate::oracle::oracle_run_with_schedule`] on the arena backend:
/// each of the `Λ + 1` level contributions `P_λ (r^V A_λ)^d P_λ x`
/// lives in a lane of one shared arena scratch (`O(Λ)` buffers total —
/// no per-vertex maps), with the same frontier-sized carry-over diff
/// and frontier-sized aggregation as the owned oracle. Bit-identical
/// states, iteration counts, and fixpoint flags; only the storage
/// counters differ.
pub fn oracle_run_arena_with_schedule<A: ArenaMbfAlgorithm>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
    carry_over: bool,
) -> OracleRun<DistanceMap> {
    let n = sim.augmented().n();
    let mut states: Vec<DistanceMap> = initial_states(alg, n);
    let lambda_max = sim.levels().lambda() as usize;
    let mut levels: Vec<ArenaLevel> = (0..=lambda_max)
        .map(|_| ArenaLevel::new(strategy, n, A::USES_RANK_COLUMN))
        .collect();
    let mut work = WorkStats::new();
    let mut executed = 0;
    let mut fixpoint = false;
    let mut prev_changed: Option<Vec<NodeId>> = None;

    while executed < h {
        let x: &[DistanceMap] = &states;
        let x_changed = if carry_over {
            prev_changed.as_deref()
        } else {
            None
        };
        // Level phase: independent contributions, one parallel task per
        // level, all writing their own arena lane.
        work += levels
            .par_iter_mut()
            .with_min_len(1)
            .enumerate()
            .map(|(lambda, level)| {
                let lambda = lambda as u32;
                let scale = sim.level_scale(lambda);
                let wholesale = !level.primed || !carry_over;
                let full_diff = level.moved_all || x_changed.is_none();
                let before = level.store.stats();
                level.seeds.clear();
                let aug = sim.augmented();
                if wholesale || full_diff {
                    // Compare-and-assign every slot against the fresh
                    // projection P_λ x (writing an identical state is a
                    // no-op, so the compare is sound for the wholesale
                    // reference too).
                    for v in 0..n as NodeId {
                        let want: &[(NodeId, Dist)] = if sim.levels().level(v) >= lambda {
                            x[v as usize].entries()
                        } else {
                            &[]
                        };
                        if level.store.get(v).entries != want {
                            level.store.assign(v, want, |u| alg.entry_aux(u));
                            level.seeds.push(v);
                        }
                    }
                    if wholesale {
                        level.engine.mark_all_dirty(aug);
                        level.primed = true;
                    } else {
                        level.engine.mark_dirty(aug, level.seeds.iter().copied());
                    }
                } else {
                    // Frontier-sized diff: walk the sorted union of the
                    // slots this level moved last round and the x-slots
                    // the aggregation changed (see the oracle module
                    // docs for why nothing else can disagree).
                    let changed = x_changed.unwrap_or(&[]);
                    let ArenaLevel {
                        store,
                        moved,
                        seeds,
                        ..
                    } = level;
                    crate::oracle::for_each_sorted_union(moved, changed, |v| {
                        let want: &[(NodeId, Dist)] = if sim.levels().level(v) >= lambda {
                            x[v as usize].entries()
                        } else {
                            &[]
                        };
                        if store.get(v).entries != want {
                            store.assign(v, want, |u| alg.entry_aux(u));
                            seeds.push(v);
                        }
                    });
                    level.engine.mark_dirty(aug, level.seeds.iter().copied());
                }
                // Rewrite copy traffic (the hops account themselves).
                let mut work = storage_delta(before, level.store.stats());
                for _ in 0..sim.d() {
                    let (w, changed) = level.engine.step(alg, aug, &mut level.store, scale);
                    work += w;
                    if !changed {
                        break;
                    }
                }
                level.moved.clear();
                level.engine.drain_change_log(&mut level.moved);
                if wholesale {
                    level.moved_all = true;
                    level.moved.clear();
                } else {
                    level.moved_all = false;
                    level.moved.extend_from_slice(&level.seeds);
                    level.moved.sort_unstable();
                    level.moved.dedup();
                }
                work
            })
            .reduce(WorkStats::new, |mut a, b| {
                a += b;
                a
            });
        executed += 1;

        // Frontier-sized aggregation, folding spans in ascending-λ
        // order (identical combination order and kernels as the owned
        // oracle's fold).
        let recompute: Option<Vec<NodeId>> = if levels.iter().any(|l| l.moved_all) {
            None
        } else {
            let mut union: Vec<NodeId> = Vec::new();
            for level in &levels {
                union.extend_from_slice(&level.moved);
            }
            union.sort_unstable();
            union.dedup();
            Some(union)
        };
        let levels_ref: &[ArenaLevel] = &levels;
        let x_ref: &[DistanceMap] = &states;
        let fold = |v: NodeId| -> DistanceMap {
            let node_level = sim.levels().level(v);
            let mut acc = DistanceMap::new();
            for (lambda, level) in levels_ref.iter().enumerate() {
                if node_level >= lambda as u32 {
                    acc.merge_min_entries(level.store.get(v).entries);
                }
            }
            alg.filter(&mut acc);
            acc
        };
        let changed: Vec<(NodeId, DistanceMap)> = match recompute.as_deref() {
            None => (0..n as NodeId)
                .into_par_iter()
                .flat_map_iter(|v| {
                    let acc = fold(v);
                    if acc != x_ref[v as usize] {
                        Some((v, acc))
                    } else {
                        None
                    }
                })
                .collect(),
            Some(list) => list
                .par_iter()
                .flat_map_iter(|&v| {
                    let acc = fold(v);
                    if acc != x_ref[v as usize] {
                        Some((v, acc))
                    } else {
                        None
                    }
                })
                .collect(),
        };
        if changed.is_empty() {
            fixpoint = true;
            break;
        }
        let mut ids: Vec<NodeId> = Vec::with_capacity(changed.len());
        for (v, m) in changed {
            ids.push(v);
            states[v as usize] = m;
        }
        prev_changed = Some(ids);
    }

    // The Λ+1 level pools are live *simultaneously*: the run's true
    // arena high-water mark is the sum of the per-level peaks, not the
    // max the per-hop tallies fold to.
    work.arena_bytes = levels.iter().map(|l| l.store.stats().arena_bytes).sum();

    OracleRun {
        states,
        h_iterations: executed,
        fixpoint,
        converged: fixpoint,
        hops: work.iterations,
        work,
    }
}

/// Arena oracle with the production carry-over schedule.
pub fn oracle_run_arena_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
) -> OracleRun<DistanceMap> {
    oracle_run_arena_with_schedule(alg, sim, h, strategy, true)
}

/// Iterates the arena oracle to a fixpoint, capped at `cap` simulated
/// iterations (the capped run *is* the run-to-fixpoint — the fixpoint
/// check stops early).
pub fn oracle_run_arena_to_fixpoint_with<A: ArenaMbfAlgorithm>(
    alg: &A,
    sim: &SimulatedGraph,
    cap: usize,
    strategy: EngineStrategy,
) -> OracleRun<DistanceMap> {
    oracle_run_arena_with(alg, sim, cap, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SourceDetection;
    use crate::engine::{run_to_fixpoint_with, MbfEngine};
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arena_sssp_matches_owned_engine() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = gnm_graph(60, 150, 1.0..9.0, &mut rng);
        let alg = SourceDetection::sssp(g.n(), 3);
        for strategy in [
            EngineStrategy::Dense,
            EngineStrategy::Frontier,
            EngineStrategy::default(),
        ] {
            let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy);
            let arena = run_to_fixpoint_arena_with(&alg, &g, g.n() + 1, strategy);
            assert_eq!(owned.states, arena.states, "{strategy:?}");
            assert_eq!(owned.iterations, arena.iterations);
            assert_eq!(owned.fixpoint, arena.fixpoint);
            // The schedule is shared, so touched counts agree exactly;
            // the arena may skip provably-absorbed merges, so its
            // relaxation count can only be lower.
            assert!(
                arena.work.edge_relaxations <= owned.work.edge_relaxations,
                "{strategy:?}"
            );
            assert_eq!(owned.work.touched_vertices, arena.work.touched_vertices);
        }
    }

    #[test]
    fn arena_copy_on_write_beats_owned_copy_traffic() {
        // On a path, the SSSP wave is O(1) vertices per hop: the owned
        // backend still rewrites every touched state while the arena
        // appends only the wave.
        let g = path_graph(256, 1.0);
        let alg = SourceDetection::sssp(g.n(), 0);
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        let arena = run_to_fixpoint_arena_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        assert_eq!(owned.states, arena.states);
        assert!(
            arena.work.bytes_copied * 2 < owned.work.bytes_copied,
            "arena {} !< owned {} / 2",
            arena.work.bytes_copied,
            owned.work.bytes_copied
        );
        assert!(arena.work.alloc_count < owned.work.alloc_count);
        assert!(arena.work.arena_bytes > 0 && owned.work.arena_bytes == 0);
    }

    #[test]
    fn rank_column_is_per_algorithm_and_cuts_append_traffic() {
        use crate::frt::le_list::{LeListAlgorithm, Ranks};
        use mte_algebra::store::{ENTRY_BYTES, ENTRY_BYTES_UNRANKED};
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(73);
        let g = gnm_graph(50, 140, 1.0..8.0, &mut rng);

        // Source detection never reads ranks: its store is unranked and
        // every entry costs 16 B instead of 20 — the ROADMAP's "20%
        // dead rank traffic" item.
        let sssp = SourceDetection::sssp(g.n(), 0);
        const { assert!(!SourceDetection::USES_RANK_COLUMN) };
        let store = initial_store(&sssp, g.n());
        assert!(!store.is_ranked());
        assert_eq!(store.entry_bytes(), ENTRY_BYTES_UNRANKED);
        let run = run_to_fixpoint_arena_with(&sssp, &g, g.n() + 1, EngineStrategy::Frontier);
        let owned = run_to_fixpoint_with(&sssp, &g, g.n() + 1, EngineStrategy::Frontier);
        assert_eq!(run.states, owned.states);

        // The LE lists opt in; their probe needs the pool ranks.
        const { assert!(LeListAlgorithm::USES_RANK_COLUMN) };
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let le_store = initial_store(&LeListAlgorithm::new(ranks), g.n());
        assert!(le_store.is_ranked());
        assert_eq!(le_store.entry_bytes(), ENTRY_BYTES);
    }

    #[test]
    fn arena_step_survives_external_edits_and_compaction() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = gnm_graph(40, 100, 1.0..6.0, &mut rng);
        let alg = SourceDetection::k_ssp(g.n(), 3);

        let mut owned_states = initial_states(&alg, g.n());
        let mut owned_engine = MbfEngine::new(EngineStrategy::Frontier);
        owned_engine.mark_all_dirty(&g);
        let mut store = initial_store(&alg, g.n());
        let mut engine = ArenaEngine::new(EngineStrategy::Frontier);
        engine.mark_all_dirty(&g);

        for round in 0..6u64 {
            // External sparse edit on both backends.
            let v = (round * 7 % g.n() as u64) as NodeId;
            let edit = alg.init((v + 1) % g.n() as NodeId);
            owned_states[v as usize] = edit.clone();
            owned_engine.mark_dirty(&g, [v]);
            store.assign(v, edit.entries(), |u| alg.entry_aux(u));
            engine.mark_dirty(&g, [v]);
            // Interleave a forced compaction: spans move, states must
            // not.
            if round % 2 == 1 {
                store.compact();
            }
            for _ in 0..3 {
                owned_engine.step(&alg, &g, &mut owned_states, 1.0);
                engine.step(&alg, &g, &mut store, 1.0);
            }
            assert_eq!(store.export(), owned_states, "round {round}");
        }
    }
}
