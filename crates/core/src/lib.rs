//! The paper's core contribution, implemented end to end:
//!
//! * [`engine`] — the class of **MBF-like algorithms** (paper Section 2):
//!   simple linear functions given by semiring adjacency matrices,
//!   interleaved with representative projections (filters); iterated in
//!   parallel with rayon,
//! * [`arena`] — the **epoch-arena backend** of the same engine: state
//!   vectors `x ∈ D^V` as spans into one copy-on-write pool
//!   ([`mte_algebra::store`]), bit-identical to the owned `Vec` paths
//!   (which remain the semantics reference) while paying copy traffic
//!   only for states that actually changed,
//! * [`dense`] — the **dense-block backend** for APSP-class workloads:
//!   state vectors as flat row-major semiring matrices
//!   ([`mte_algebra::dense`]) relaxed by contiguous cache-tiled row
//!   kernels, plus the Ligra-style representation-switching hybrid
//!   store (sparse maps → dense rows → matrix-mode hops) and the
//!   dense oracle routing,
//! * [`catalog`] — every example MBF-like algorithm of Section 3
//!   (source detection, SSSP, k-SSP, APSP, MSSP, forest fire, widest
//!   paths, k-SDP, k-DSDP, connectivity),
//! * [`simgraph`] — the **simulated graph `H`** (Section 4): vertex
//!   levels, penalty weights, `SPD(H) ∈ O(log² n)` w.h.p.,
//! * [`oracle`] — the **oracle for MBF-like queries** on `H`
//!   (Section 5): simulates iterations of any MBF-like algorithm on the
//!   complete graph `H` using only the edges of `G'`,
//! * [`metric`] — `(1+o(1))`- and `O(1)`-approximate metrics
//!   (Section 6, Theorems 6.1 and 6.2),
//! * [`frt`] — **sampling from the FRT distribution** via Least-Element
//!   lists (Section 7, Theorem 7.9 and Corollaries 7.10/7.11), FRT tree
//!   construction (Lemma 7.2), baselines, and path reconstruction
//!   (Section 7.5),
//! * [`shard`] — the **fault-tolerant sharded engine**: contiguous
//!   degree-balanced vertex-range shards running each hop locally and
//!   recombining through typed, digest-checked exchange messages, with
//!   a supervisor that re-executes failed hops deterministically and
//!   quarantines repeatedly-failing shards,
//! * [`work`] — work/depth accounting used by the experiments,
//! * [`checkpoint`] — checkpointed, resumable fixpoint runs across all
//!   backends (bit-identical resume), with the deterministic recovery
//!   supervisor in [`error`].

pub mod arena;
pub mod catalog;
pub mod checkpoint;
pub mod dense;
pub mod engine;
pub mod error;
pub mod frt;
pub mod metric;
pub mod oracle;
pub mod shard;
pub mod simgraph;
pub mod work;

pub use arena::{ArenaEngine, ArenaMbfAlgorithm};
pub use checkpoint::{Checkpoint, CheckpointPolicy};
pub use dense::{DenseEngine, DenseMbfAlgorithm, SwitchThresholds, SwitchingEngine};
pub use engine::{EngineStrategy, MbfAlgorithm, MbfEngine, MbfRun};
pub use error::{Degradation, RecoveryAttempt, RecoveryPolicy, RunError, RunReport, Supervisor};
pub use shard::{
    try_run_sharded_to_fixpoint_with, ExchangeEntry, ExchangeMsg, ShardPolicy, ShardSpec,
    ShardSupervisor, ShardedEngine, ShardedRun,
};
pub use simgraph::{LevelAssignment, SimulatedGraph};
pub use work::WorkStats;
