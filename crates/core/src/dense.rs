//! The dense-block engine backend: MBF-like iteration over flat
//! row-major state matrices ([`mte_algebra::dense`]), plus Ligra-style
//! **representation switching** between the sparse and dense stores.
//!
//! # Why a third backend
//!
//! The owned (`Vec<M>`) and arena backends serve the regime the paper's
//! complexity story targets: filtered states of size `O(log n)`
//! (Lemma 7.6), merged entry-by-entry. APSP-class workloads
//! (`SourceDetection::apsp`, `Connectivity::all_pairs`, widest-path
//! analogues over max-min, metric-like FRT inputs) invert that regime —
//! states converge towards **full** rows (`|x_v| → n`) and the sorted
//! merges pay branch mispredictions and per-entry key bookkeeping for
//! coordinates that are all present anyway. [`DenseEngine`] runs the
//! *same* hops (the shared `FrontierSchedule`: same frontier, same
//! touched list, same degree-balanced chunks) over a
//! [`DenseBlock`] — the paper's matrix-semimodule view taken literally:
//! one hop of vertex `v` is `row_v ← r(row_v ⊕ ⊕_w a_vw ⊙ row_w)`,
//! computed by the contiguous, cache-tiled row kernels of
//! [`mte_algebra::dense`].
//!
//! # Bit-identity
//!
//! Min over `f64` is order-independent and each dense relaxation
//! computes the same single `x + w` the sparse merge kernels compute,
//! so dense states are **bit-identical to the owned/arena paths by
//! construction** — differential testing is exact, not approximate
//! (asserted by `tests/schedule_equivalence.rs` across
//! `MTE_THREADS ∈ {1, 4}`). The contract an algorithm must uphold is
//! [`DenseMbfAlgorithm::dense_filter`] ≡ [`MbfAlgorithm::filter`] on
//! the materialized state; [`DenseMbfAlgorithm::advertises_dense`]
//! reports whether the instance's filter is dense-representable at all
//! (e.g. source detection with `k` below the source count is not).
//!
//! # Representation switching
//!
//! [`SwitchingEngine`] is the hybrid store (Ligra-style direction
//! switching lifted to the *representation*): a run starts sparse
//! (owned maps, frontier hops), tracks per-vertex state sizes, and
//! marks a vertex a **dense-row candidate** once `|x_v|` crosses
//! [`SwitchThresholds::row_density`]`·k` ([`WorkStats::dense_flips`]
//! counts the upward crossings). Once candidates saturate
//! ([`SwitchThresholds::saturation`]`·n`), the whole hop flips to
//! **matrix mode**: states convert into a [`DenseBlock`] once and
//! subsequent hops run the row kernels ([`WorkStats::dense_hops`]
//! counts them). If external edits ([`SwitchingEngine::assign_dirty`])
//! shrink the live density below [`SwitchThresholds::revert`], the
//! engine converts back to the sparse store. Every conversion preserves
//! states bit-for-bit (both representations are canonical), and the
//! frontier carries over across the switch, so a switching run's
//! states, iteration counts, and fixpoint flags match the
//! single-representation runs exactly.
//!
//! # Oracle routing
//!
//! [`oracle_run_dense_with_schedule`] mirrors the owned/arena oracles —
//! `Λ + 1` level contributions `P_λ (r^V A_λ)^d P_λ x` with the
//! frontier-sized carry-over diff — but keeps every level vector `y_λ`
//! and the aggregate `x` as dense blocks: projections compare and copy
//! rows, the aggregation folds level rows in ascending-λ order through
//! [`fold_row_into`]. `approximate_metric_on` (Theorem 6.1 — the APSP
//! query, whose output *is* an `n × n` matrix) routes through it.

use crate::engine::{
    initial_states, EngineStrategy, FrontierSchedule, MbfAlgorithm, MbfEngine, MbfRun, SyncPtr,
};
use crate::error::{Degradation, RunError, RunReport};
use crate::oracle::OracleRun;
use crate::simgraph::SimulatedGraph;
use crate::work::WorkStats;
use mte_algebra::dense::{
    fold_row_into, relax_rows_into, relax_rows_tracked, rows_equal, DenseBlock, DenseKernel,
    DenseState,
};
use mte_algebra::{NodeId, Semimodule, Semiring};
use mte_graph::Graph;
use rayon::prelude::*;

/// An MBF-like algorithm whose states admit the dense row
/// representation: `M ≅ S^V` with coordinate `u` at column `u`. See the
/// module docs for the contract.
pub trait DenseMbfAlgorithm: MbfAlgorithm
where
    Self::S: DenseKernel,
    Self::M: DenseState<Self::S>,
{
    /// `true` iff this instance's filter is representable on dense rows
    /// (i.e. [`DenseMbfAlgorithm::dense_filter`] can be made exactly
    /// equal to [`MbfAlgorithm::filter`]). The dense entry points
    /// assert this.
    fn advertises_dense(&self) -> bool;

    /// The representative projection `r` applied to `v`'s dense row.
    /// **Must** be bit-identical to [`MbfAlgorithm::filter`] on the
    /// materialized sparse state — the engine treats the two as
    /// interchangeable and the equivalence suite differential-tests
    /// them. The default is the identity (filters like APSP,
    /// connectivity, and widest paths that keep everything).
    #[inline]
    fn dense_filter(&self, _v: NodeId, _row: &mut [Self::S]) {}

    /// `true` iff absorbed contributions stay absorbed (see
    /// [`crate::arena::RecomputeCtx`] for the general argument): row
    /// values only ever improve under `⊕` and the filter's masking is
    /// static, so re-merging a neighbor whose row did not change since
    /// `v` last absorbed it is provably an identity. The engine then
    /// **skips clean source rows outright** — on a memory-bound dense
    /// hop that is a direct traffic cut, not just saved arithmetic.
    /// Must only return `true` when the skip is exactly lossless; the
    /// default is `false` (merge everything).
    #[inline]
    fn absorption_stable(&self) -> bool {
        false
    }

    /// `true` iff [`DenseMbfAlgorithm::dense_filter`] is the identity
    /// on every row this instance can produce. The engine then takes
    /// the fused recompute path
    /// ([`mte_algebra::dense::relax_rows_tracked`]): no separate
    /// own-row copy pass, no filter call, and change detection tracked
    /// inside the relaxations instead of a whole-row compare. The
    /// default is `false` (safe: copy + relax + filter + compare);
    /// returning `true` for a masking instance is a correctness bug,
    /// not a performance one.
    #[inline]
    fn dense_filter_is_identity(&self) -> bool {
        false
    }
}

/// The dense-block iteration engine: the `FrontierSchedule` of the
/// owned [`MbfEngine`] driving row-kernel hops over a [`DenseBlock`].
/// One engine serves arbitrarily many hops without reallocating; the
/// block is passed per step so callers (the oracle) can own several
/// state matrices.
#[derive(Clone, Debug)]
pub struct DenseEngine<A: DenseMbfAlgorithm>
where
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    sched: FrontierSchedule,
    /// Flat shadow matrix (`n·k` values) written during a hop; changed
    /// rows are copied into the block at commit.
    next: Vec<A::S>,
    /// Per-touched-position `(entries, relaxations, changed)` of the
    /// current hop.
    per_vertex: Vec<(u64, u64, bool)>,
    /// Taints for externally rewritten rows (the dense counterpart of
    /// [`crate::arena::RecomputeCtx::require_full`]): a tainted vertex
    /// has absorbed nothing, so its next recomputation must merge
    /// every neighbor even under the absorption-stable skip. Cleared
    /// per vertex on recompute, wholesale on
    /// [`DenseEngine::mark_all_dirty`].
    taint: crate::engine::TaintTable,
}

impl<A: DenseMbfAlgorithm> DenseEngine<A>
where
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    /// A fresh engine with the given scheduling strategy.
    pub fn new(strategy: EngineStrategy) -> Self {
        DenseEngine {
            sched: FrontierSchedule::new(strategy),
            next: Vec::new(),
            per_vertex: Vec::new(),
            taint: crate::engine::TaintTable::new(),
        }
    }

    /// Sizes the schedule and taint table for `g` with an **empty**
    /// frontier, so a later [`DenseEngine::mark_dirty`] seeds exactly
    /// its vertices instead of falling back to the all-dirty restart
    /// (the [`SwitchingEngine`] primes its matrix engine with this at
    /// construction, keeping the flip's frontier hand-over
    /// frontier-sized from the very first conversion).
    pub fn ensure_sized(&mut self, g: &Graph) {
        self.sched.ensure_sized(g);
        self.taint.ensure_sized(g.n());
    }

    /// The engine's scheduling strategy.
    pub fn strategy(&self) -> EngineStrategy {
        self.sched.strategy()
    }

    /// The frontier list: ascending, no duplicates.
    pub fn frontier(&self) -> &[NodeId] {
        self.sched.frontier()
    }

    /// See [`MbfEngine::enable_change_log`].
    pub fn enable_change_log(&mut self) {
        self.sched.enable_change_log();
    }

    /// See [`MbfEngine::drain_change_log`].
    pub fn drain_change_log(&mut self, out: &mut Vec<NodeId>) {
        self.sched.drain_change_log(out);
    }

    /// See [`MbfEngine::mark_all_dirty`]. Also clears all taints: the
    /// next hop merges every neighbor of every vertex anyway (the whole
    /// graph is on the frontier).
    pub fn mark_all_dirty(&mut self, g: &Graph) {
        self.sched.mark_all_dirty(g);
        self.taint.reset(g.n());
    }

    /// See [`MbfEngine::mark_dirty`]. The seeded vertices are
    /// additionally **tainted**: their rows were rewritten outside the
    /// engine, so their next recomputation must merge every neighbor
    /// (the absorption-stable skip would otherwise drop contributions
    /// the old row had absorbed).
    pub fn mark_dirty(&mut self, g: &Graph, vs: impl IntoIterator<Item = NodeId>) {
        if !self.sched.sized_for(g.n()) {
            // Falls back to an all-dirty restart inside the schedule;
            // keep the taint table in sync.
            self.mark_all_dirty(g);
            return;
        }
        let taint = &mut self.taint;
        self.sched
            .mark_dirty(g, vs.into_iter().inspect(|&v| taint.taint(v)));
    }

    /// One hop `x ← r^V A x` over the dense block, with all edge
    /// weights multiplied by `weight_scale`. Bit-identical to
    /// [`MbfEngine::step`] on the exported states; returns the work
    /// spent and whether any row changed.
    ///
    /// `entries_processed` counts **dense coordinates** touched
    /// (`k` per source row folded, own row included) — a different
    /// currency than the sparse backends' per-entry counts; states,
    /// iterations, fixpoints, `edge_relaxations`, and
    /// `touched_vertices` remain exactly comparable.
    pub fn step(
        &mut self,
        alg: &A,
        g: &Graph,
        block: &mut DenseBlock<A::S>,
        weight_scale: f64,
    ) -> (WorkStats, bool) {
        let n = g.n();
        assert_eq!(n, block.rows(), "state block / graph size mismatch");
        let k = block.cols();
        if !self.sched.sized_for(n) {
            // First use (or a different graph size): treat as
            // all-dirty. Goes through the engine-level method so the
            // taint table is sized in the same stroke.
            self.mark_all_dirty(g);
        }
        let mut alloc_count = 0u64;
        if self.next.len() != n * k {
            self.next.clear();
            self.next.resize(n * k, <A::S as Semiring>::zero());
            // One flat shadow buffer — versus Θ(n) per-vertex buffers
            // of the owned backend.
            alloc_count = 1;
        }

        self.sched.plan_hop(g);
        let touched: &[NodeId] = self.sched.touched();
        let chunks: &[std::ops::Range<usize>] = self.sched.chunks();

        // Recompute phase: each chunk pulls its vertices' rows through
        // the cache-tiled row kernels into its disjoint shadow rows.
        self.per_vertex.clear();
        self.per_vertex.resize(touched.len(), (0, 0, false));
        let block_ref: &DenseBlock<A::S> = block;
        let next_base = SyncPtr(self.next.as_mut_ptr());
        let stats_base = SyncPtr(self.per_vertex.as_mut_ptr());
        // Absorption-stable algorithms skip source rows that did not
        // change since `v` last absorbed them (the frontier tells us
        // which did) — on a memory-bound hop, rows never read are the
        // dominant saving. Tainted vertices (externally rewritten) must
        // merge everything once.
        let skip_clean = alg.absorption_stable();
        let identity_filter = alg.dense_filter_is_identity();
        let sched_ref = &self.sched;
        let taint_ref = &self.taint;
        chunks.par_iter().with_min_len(1).for_each(|range| {
            // Per-chunk neighbor-row gather list, reused across the
            // chunk's vertices (one small allocation per chunk per hop).
            let mut srcs: Vec<(&[A::S], A::S)> = Vec::new();
            for p in range.clone() {
                let v = touched[p];
                // SAFETY: chunks partition positions of the sorted,
                // deduplicated `touched` list, so row window `v·k..` and
                // stats slot `p` are owned by exactly this chunk.
                let dst: &mut [A::S] =
                    unsafe { std::slice::from_raw_parts_mut(next_base.slot(v as usize * k), k) };
                // SAFETY: as above — stats slot `p` belongs to this chunk.
                let stats = unsafe { &mut *stats_base.slot(p) };
                srcs.clear();
                let full = !skip_clean || taint_ref.is_tainted(v);
                let mut relaxations = 0u64;
                for &(w, ew) in g.neighbors(v) {
                    if !full && !sched_ref.on_frontier(w) {
                        continue; // already absorbed: provably an identity
                    }
                    let coeff = alg.edge_coeff(v, w, ew * weight_scale);
                    relaxations += 1;
                    if !Semiring::is_zero(&coeff) {
                        // 0 ⊙ x = ⊥: a zero coefficient contributes
                        // nothing — skip the k-element no-op.
                        srcs.push((block_ref.row(w), coeff));
                    }
                }
                // a_vv = 1: the node's own row is the base of the fold.
                let changed = if identity_filter {
                    if srcs.is_empty() {
                        // Nothing to merge and `r = id`: the hop is the
                        // identity on `v` — the shadow row is not even
                        // written (commit only reads changed rows).
                        false
                    } else {
                        // Fused path: init-from-base first relaxation,
                        // change tracking inside the passes — no copy
                        // pass, no compare pass.
                        relax_rows_tracked(dst, block_ref.row(v), &srcs)
                    }
                } else {
                    dst.copy_from_slice(block_ref.row(v));
                    relax_rows_into(dst, &srcs);
                    alg.dense_filter(v, dst);
                    !rows_equal(&*dst, block_ref.row(v))
                };
                let entries = k as u64 * (srcs.len() as u64 + 1);
                *stats = (entries, relaxations, changed);
            }
        });

        // Commit: copy changed rows from the shadow back into the
        // block, parallel over the same chunks (a plain copy — half the
        // traffic of a swap; the shadow row is rewritten from scratch
        // on its next recompute anyway); tallies merge through the
        // fixed-shape reduction tree — bit-identical for every thread
        // count.
        let per_vertex: &[(u64, u64, bool)] = &self.per_vertex;
        let block_base = SyncPtr(block.values_mut().as_mut_ptr());
        let (entries, relaxations, any_changed) = chunks
            .par_iter()
            .with_min_len(1)
            .map(|range| {
                let mut tally = (0u64, 0u64, false);
                for p in range.clone() {
                    let v = touched[p] as usize;
                    let (entries, relaxations, changed) = per_vertex[p];
                    tally.0 += entries;
                    tally.1 += relaxations;
                    if changed {
                        // SAFETY: as above — disjoint rows per chunk,
                        // and the shadow and block are distinct
                        // allocations.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                next_base.slot(v * k) as *const A::S,
                                block_base.slot(v * k),
                                k,
                            )
                        };
                        tally.2 = true;
                    }
                }
                tally
            })
            .reduce(
                || (0u64, 0u64, false),
                |a, b| (a.0 + b.0, a.1 + b.1, a.2 || b.2),
            );

        // Every touched vertex was recomputed (tainted ones with full
        // merges), so its taint is discharged.
        for &v in touched {
            self.taint.discharge(v);
        }

        let touched_vertices = touched.len() as u64;
        // Every touched row was rewritten wholesale into the shadow —
        // the same model-level accounting as the owned backend.
        let bytes_copied = touched_vertices * (k * std::mem::size_of::<A::S>()) as u64;
        let per_vertex: &[(u64, u64, bool)] = &self.per_vertex;
        self.sched.refresh(g, |p| per_vertex[p].2);

        // Fault-injection site: the hop's commit just completed; a
        // `panic` unwinds mid-run, a `poison_nan` corrupts one matrix
        // element.
        match mte_faults::check_for(
            mte_faults::FaultSite::EngineHopCommit,
            &[
                mte_faults::FaultKind::Panic,
                mte_faults::FaultKind::PoisonNan,
            ],
        ) {
            Some(mte_faults::FaultKind::Panic) => {
                mte_faults::trigger_panic(mte_faults::FaultSite::EngineHopCommit)
            }
            Some(mte_faults::FaultKind::PoisonNan) => {
                if let Some(s) = block.values_mut().first_mut() {
                    Semiring::poison(s);
                }
            }
            _ => {}
        }

        let work = WorkStats {
            iterations: 1,
            entries_processed: entries,
            edge_relaxations: relaxations,
            touched_vertices,
            bytes_copied,
            alloc_count,
            dense_hops: 1,
            ..WorkStats::default()
        };
        (work, any_changed)
    }
}

/// Builds the initial dense state matrix `r^V x⁽⁰⁾` (`n` columns: the
/// coordinates of APSP-class states are node ids).
pub fn initial_block<A>(alg: &A, n: usize) -> DenseBlock<A::S>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    DenseBlock::from_states(&initial_states(alg, n), n)
}

/// Runs exactly `h` iterations on the dense backend (cf.
/// [`crate::engine::run_with`]); bit-identical states, exported as
/// sparse maps.
pub fn run_dense_with<A>(alg: &A, g: &Graph, h: usize, strategy: EngineStrategy) -> MbfRun<A::M>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    assert!(
        alg.advertises_dense(),
        "algorithm instance does not advertise dense states"
    );
    let mut block = initial_block(alg, g.n());
    let mut engine = DenseEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut work = WorkStats::new();
    for _ in 0..h {
        let (w, _) = engine.step(alg, g, &mut block, 1.0);
        work += w;
    }
    MbfRun {
        states: block.export(),
        iterations: h,
        fixpoint: false,
        work,
    }
}

/// Iterates the dense backend to the fixpoint, capped at `cap` hops
/// (cf. [`crate::engine::run_to_fixpoint_with`]: the confirming hop is
/// counted).
pub fn run_to_fixpoint_dense_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
) -> MbfRun<A::M>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    assert!(
        alg.advertises_dense(),
        "algorithm instance does not advertise dense states"
    );
    let mut block = initial_block(alg, g.n());
    let mut engine = DenseEngine::new(strategy);
    engine.mark_all_dirty(g);
    let mut work = WorkStats::new();
    let mut iterations = 0;
    let mut fixpoint = false;
    while iterations < cap {
        let (w, changed) = engine.step(alg, g, &mut block, 1.0);
        work += w;
        iterations += 1;
        if !changed {
            fixpoint = true;
            break;
        }
    }
    MbfRun {
        states: block.export(),
        iterations,
        fixpoint,
        work,
    }
}

// ---------------------------------------------------------------------
// Representation switching: the sparse↔dense hybrid store.
// ---------------------------------------------------------------------

/// Thresholds of the representation-switching policy (fractions; see
/// the module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchThresholds {
    /// A vertex becomes a dense-row candidate once `|x_v| ≥
    /// row_density · k` (and stops being one if an edit shrinks it back
    /// below).
    pub row_density: f64,
    /// The engine flips to matrix mode once candidates reach
    /// `saturation · n`.
    pub saturation: f64,
    /// Matrix mode reverts to the sparse store once the live density
    /// `Σ_v |x_v|` drops below `revert · n · k`. Keep `revert` well
    /// below `row_density · saturation` so the two switches have
    /// hysteresis.
    pub revert: f64,
    /// Memory budget for the dense block, in bytes. A flip whose
    /// `n × k` allocation would exceed it is **declined**: the engine
    /// stays sparse (bit-identical output, recorded in
    /// `WorkStats::dense_declined` and the run report's degradations).
    /// `None` = unlimited.
    pub budget_bytes: Option<u64>,
}

impl Default for SwitchThresholds {
    /// Flip a row at half density, the hop at a quarter of the vertices
    /// dense, revert below 5% live density. The memory budget comes
    /// from `MTE_DENSE_BUDGET_BYTES` (unlimited when unset).
    fn default() -> Self {
        SwitchThresholds {
            row_density: 0.5,
            saturation: 0.25,
            revert: 0.05,
            budget_bytes: dense_budget_from_env(),
        }
    }
}

/// Dense-block memory budget requested by the environment:
/// `MTE_DENSE_BUDGET_BYTES` parsed as bytes, `None` when unset or
/// unparsable (unlimited).
pub fn dense_budget_from_env() -> Option<u64> {
    std::env::var("MTE_DENSE_BUDGET_BYTES")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
}

/// Which store currently holds the states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReprMode {
    Sparse,
    Matrix,
}

/// The representation-switching engine: owned sparse maps while states
/// are small, one flat [`DenseBlock`] once they saturate, converting
/// back and forth at the thresholds — with states, iteration counts,
/// and fixpoint flags bit-identical to either single-representation
/// run (see the module docs for why). The engine owns the states; read
/// them out with [`SwitchingEngine::export_states`].
pub struct SwitchingEngine<A: DenseMbfAlgorithm>
where
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    thresholds: SwitchThresholds,
    mode: ReprMode,
    sparse_engine: MbfEngine<A>,
    dense_engine: DenseEngine<A>,
    /// The sparse store (authoritative in [`ReprMode::Sparse`]; zeroed
    /// in matrix mode so its heap buffers are released).
    states: Vec<A::M>,
    /// The dense store (authoritative in [`ReprMode::Matrix`]).
    block: DenseBlock<A::S>,
    /// Per-vertex state size (`state_size`, so ⊥ counts as 1 like the
    /// work accounting does) and its sum — the density statistics the
    /// switching policy reads.
    row_len: Vec<usize>,
    total_live: usize,
    is_dense_row: Vec<bool>,
    dense_rows: usize,
    /// Upward row-density crossings since the last step (external edits
    /// included), drained into the next step's `WorkStats`.
    pending_flips: u64,
    /// `false` once a flip was declined for exceeding the memory
    /// budget: the engine then completes sparse without re-attempting
    /// the allocation every hop.
    dense_allowed: bool,
    /// Declined flips since the last step, drained into the next step's
    /// `WorkStats::dense_declined`.
    pending_declined: u64,
    /// Degradations taken so far (for the run report).
    degradations: Vec<Degradation>,
    changed_scratch: Vec<NodeId>,
    frontier_scratch: Vec<NodeId>,
}

impl<A: DenseMbfAlgorithm> SwitchingEngine<A>
where
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    /// A fresh engine holding `r^V x⁽⁰⁾` in the sparse store, all
    /// vertices dirty.
    pub fn new(alg: &A, g: &Graph, strategy: EngineStrategy, thresholds: SwitchThresholds) -> Self {
        assert!(
            alg.advertises_dense(),
            "algorithm instance does not advertise dense states"
        );
        let n = g.n();
        let states = initial_states(alg, n);
        let row_len: Vec<usize> = states.iter().map(|x| alg.state_size(x)).collect();
        let total_live = row_len.iter().sum();
        let mut is_dense_row = vec![false; n];
        let mut dense_rows = 0;
        let mut pending_flips = 0;
        for (v, &len) in row_len.iter().enumerate() {
            if (len as f64) >= thresholds.row_density * n as f64 {
                is_dense_row[v] = true;
                dense_rows += 1;
                pending_flips += 1;
            }
        }
        let mut sparse_engine = MbfEngine::new(strategy);
        sparse_engine.enable_change_log();
        sparse_engine.mark_all_dirty(g);
        // The matrix-mode engine always runs the frontier-list
        // schedule: a Ligra-style dense fallback would only re-relax
        // quiescent full rows (states are bit-identical either way —
        // the strategies differ only in work).
        let mut dense_engine = DenseEngine::new(EngineStrategy::Frontier);
        // Pre-size it so the first flip's `mark_dirty` hand-over seeds
        // exactly the sparse frontier instead of falling back to an
        // all-dirty restart.
        dense_engine.ensure_sized(g);
        dense_engine.enable_change_log();
        SwitchingEngine {
            thresholds,
            mode: ReprMode::Sparse,
            sparse_engine,
            dense_engine,
            states,
            block: DenseBlock::new(0, 0),
            row_len,
            total_live,
            is_dense_row,
            dense_rows,
            pending_flips,
            dense_allowed: true,
            pending_declined: 0,
            degradations: Vec::new(),
            changed_scratch: Vec::new(),
            frontier_scratch: Vec::new(),
        }
    }

    /// Degradations this engine took so far (declined dense flips).
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// `true` iff the engine currently holds the states as a dense
    /// block (matrix mode).
    pub fn in_matrix_mode(&self) -> bool {
        self.mode == ReprMode::Matrix
    }

    /// The active store's frontier list (ascending, no duplicates) —
    /// whichever representation currently holds the states. The
    /// checkpoint driver records this as the resume seed.
    pub fn frontier(&self) -> &[NodeId] {
        match self.mode {
            ReprMode::Sparse => self.sparse_engine.frontier(),
            ReprMode::Matrix => self.dense_engine.frontier(),
        }
    }

    /// Exports the current states as sparse maps (bit-identical in
    /// either mode).
    pub fn export_states(&self) -> Vec<A::M> {
        match self.mode {
            ReprMode::Sparse => self.states.clone(),
            ReprMode::Matrix => self.block.export(),
        }
    }

    /// Updates the density bookkeeping for `v`'s new size, counting
    /// upward row-density crossings into `pending_flips`.
    fn note_row_len(&mut self, v: NodeId, new_len: usize) {
        let k = self.row_len.len();
        let old = std::mem::replace(&mut self.row_len[v as usize], new_len);
        self.total_live = self.total_live - old + new_len;
        let dense_now = (new_len as f64) >= self.thresholds.row_density * k as f64;
        let was = self.is_dense_row[v as usize];
        if dense_now && !was {
            self.is_dense_row[v as usize] = true;
            self.dense_rows += 1;
            self.pending_flips += 1;
        } else if !dense_now && was {
            self.is_dense_row[v as usize] = false;
            self.dense_rows -= 1;
        }
    }

    /// External copy-on-edit assignment: overwrites `v`'s state (in
    /// whichever store is active), updates the density bookkeeping, and
    /// seeds `v` into the active schedule — the switching counterpart
    /// of rewriting `states[v]` + [`MbfEngine::mark_dirty`].
    pub fn assign_dirty(&mut self, alg: &A, g: &Graph, v: NodeId, state: &A::M) {
        match self.mode {
            ReprMode::Sparse => {
                self.states[v as usize] = state.clone();
                self.sparse_engine.mark_dirty(g, [v]);
            }
            ReprMode::Matrix => {
                self.block.set_row(v, state);
                self.dense_engine.mark_dirty(g, [v]);
            }
        }
        self.note_row_len(v, alg.state_size(state));
    }

    /// Converts the sparse store into the dense block and hands the
    /// frontier over (states bit-identical; only the representation
    /// changes). If the block allocation exceeds the memory budget the
    /// flip is **declined**: the engine records the degradation, stops
    /// attempting further flips, and completes on the sparse store —
    /// the output stays bit-identical, only the performance profile
    /// changes.
    fn flip_to_matrix(&mut self, g: &Graph) {
        let n = g.n();
        if self.block.rows() == n && self.block.cols() == n {
            // The block is already allocated (an earlier flip/revert
            // cycle): reuse is free, no budget decision to make.
            for (v, x) in self.states.iter().enumerate() {
                self.block.set_row(v as NodeId, x);
            }
        } else {
            match DenseBlock::try_from_states(&self.states, n, self.thresholds.budget_bytes) {
                Ok(block) => self.block = block,
                Err(e) => {
                    self.dense_allowed = false;
                    self.pending_declined += 1;
                    self.degradations.push(Degradation::DenseFlipDeclined {
                        requested_bytes: e.requested_bytes,
                        budget_bytes: e.budget_bytes,
                    });
                    return;
                }
            }
        }
        // Release the sparse heap buffers; the vector itself is kept
        // for the reverse conversion.
        for s in self.states.iter_mut() {
            *s = A::M::zero();
        }
        self.frontier_scratch.clear();
        self.frontier_scratch
            .extend_from_slice(self.sparse_engine.frontier());
        self.dense_engine
            .mark_dirty(g, self.frontier_scratch.iter().copied());
        self.mode = ReprMode::Matrix;
    }

    /// Converts the dense block back into the sparse store and hands
    /// the frontier over.
    fn flip_to_sparse(&mut self, g: &Graph) {
        for (v, s) in self.states.iter_mut().enumerate() {
            *s = A::M::read_dense(self.block.row(v as NodeId));
        }
        self.frontier_scratch.clear();
        self.frontier_scratch
            .extend_from_slice(self.dense_engine.frontier());
        self.sparse_engine
            .mark_dirty(g, self.frontier_scratch.iter().copied());
        self.mode = ReprMode::Sparse;
    }

    /// One hop `x ← r^V A x` on whichever store is active, followed by
    /// the switching decision. Returns the work spent (including
    /// `dense_flips`/`dense_hops` switching counters) and whether any
    /// state changed.
    pub fn step(&mut self, alg: &A, g: &Graph, weight_scale: f64) -> (WorkStats, bool) {
        let n = g.n();
        let (mut work, changed) = match self.mode {
            ReprMode::Sparse => {
                let (work, changed) =
                    self.sparse_engine
                        .step(alg, g, &mut self.states, weight_scale);
                self.changed_scratch.clear();
                self.sparse_engine
                    .drain_change_log(&mut self.changed_scratch);
                for i in 0..self.changed_scratch.len() {
                    let v = self.changed_scratch[i];
                    self.note_row_len(v, alg.state_size(&self.states[v as usize]));
                }
                if self.dense_allowed
                    && (self.dense_rows as f64) >= self.thresholds.saturation * n as f64
                {
                    self.flip_to_matrix(g);
                }
                (work, changed)
            }
            ReprMode::Matrix => {
                let (work, changed) = self
                    .dense_engine
                    .step(alg, g, &mut self.block, weight_scale);
                self.changed_scratch.clear();
                self.dense_engine
                    .drain_change_log(&mut self.changed_scratch);
                for i in 0..self.changed_scratch.len() {
                    let v = self.changed_scratch[i];
                    let len = A::M::dense_len(self.block.row(v)).max(1);
                    self.note_row_len(v, len);
                }
                let k = self.block.cols();
                if (self.total_live as f64) < self.thresholds.revert * (n * k) as f64 {
                    self.flip_to_sparse(g);
                }
                (work, changed)
            }
        };
        work.dense_flips += std::mem::take(&mut self.pending_flips);
        work.dense_declined += std::mem::take(&mut self.pending_declined);
        (work, changed)
    }
}

/// Iterates the representation-switching engine to the fixpoint, capped
/// at `cap` hops; bit-identical states/iterations/fixpoint to the
/// single-representation runs.
pub fn run_to_fixpoint_switching_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    thresholds: SwitchThresholds,
) -> MbfRun<A::M>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    let mut engine = SwitchingEngine::new(alg, g, strategy, thresholds);
    let mut work = WorkStats::new();
    let mut iterations = 0;
    let mut fixpoint = false;
    while iterations < cap {
        let (w, changed) = engine.step(alg, g, 1.0);
        work += w;
        iterations += 1;
        if !changed {
            fixpoint = true;
            break;
        }
    }
    MbfRun {
        states: engine.export_states(),
        iterations,
        fixpoint,
        work,
    }
}

/// Guarded [`run_to_fixpoint_switching_with`]: panics become typed
/// errors, injected faults are audited, exported states are scanned —
/// and degradations the engine took (declined dense flips) surface in
/// the [`RunReport`] instead of failing the run.
pub fn try_run_to_fixpoint_switching_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    thresholds: SwitchThresholds,
) -> Result<(MbfRun<A::M>, RunReport), RunError>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    let (run, degradations) = crate::error::run_guarded(|| {
        let mut engine = SwitchingEngine::new(alg, g, strategy, thresholds);
        let mut work = WorkStats::new();
        let mut iterations = 0;
        let mut fixpoint = false;
        while iterations < cap {
            let (w, changed) = engine.step(alg, g, 1.0);
            work += w;
            iterations += 1;
            if !changed {
                fixpoint = true;
                break;
            }
        }
        let run = MbfRun {
            states: engine.export_states(),
            iterations,
            fixpoint,
            work,
        };
        (run, engine.degradations().to_vec())
    })?;
    crate::error::check_states::<A::S, A::M>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations,
    };
    Ok((run, report))
}

/// Guarded [`run_to_fixpoint_dense_with`] with an explicit memory
/// budget. Unlike the switching engine — which *degrades* to sparse —
/// a dense-only run that cannot afford its `n × n` block has no
/// fallback: the budget violation is a typed
/// [`RunError::DenseBudgetExceeded`], checked before any allocation.
pub fn try_run_to_fixpoint_dense_with<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
    strategy: EngineStrategy,
    budget_bytes: Option<u64>,
) -> Result<(MbfRun<A::M>, RunReport), RunError>
where
    A: DenseMbfAlgorithm,
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    let n = g.n();
    let requested = DenseBlock::<A::S>::bytes_for(n, n);
    if let Some(budget) = budget_bytes {
        if requested > budget {
            return Err(RunError::DenseBudgetExceeded {
                requested_bytes: requested,
                budget_bytes: budget,
            });
        }
    }
    let run = crate::error::run_guarded(|| run_to_fixpoint_dense_with(alg, g, cap, strategy))?;
    crate::error::check_states::<A::S, A::M>(&run.states)?;
    let report = RunReport {
        converged: run.fixpoint,
        hops: run.iterations as u64,
        degradations: Vec::new(),
    };
    Ok((run, report))
}

// ---------------------------------------------------------------------
// The dense oracle: Λ+1 level contributions as dense blocks.
// ---------------------------------------------------------------------

/// One level's slice of the dense oracle: its `y_λ` block, the engine
/// driving it, and the carry-over bookkeeping mirroring
/// `oracle::LevelScratch`.
struct DenseLevel<A: DenseMbfAlgorithm>
where
    A::S: DenseKernel,
    A::M: DenseState<A::S>,
{
    engine: DenseEngine<A>,
    y: DenseBlock<A::S>,
    primed: bool,
    moved: Vec<NodeId>,
    moved_all: bool,
    seeds: Vec<NodeId>,
}

/// [`crate::oracle::oracle_run_with_schedule`] on the dense backend:
/// every level vector `y_λ` and the aggregate `x` live as
/// [`DenseBlock`]s, the projection diff compares rows, and the
/// aggregation folds level rows in ascending-λ order through
/// [`fold_row_into`] with the filter fused in — the same frontier-sized
/// carry-over structure as the owned/arena oracles, bit-identical
/// states, iteration counts, and fixpoint flags (only the work
/// counters' currency differs; see [`DenseEngine::step`]).
pub fn oracle_run_dense_with_schedule<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
    carry_over: bool,
) -> OracleRun<A::M>
where
    A: DenseMbfAlgorithm<S = mte_algebra::MinPlus>,
    A::M: DenseState<A::S>,
{
    assert!(
        alg.advertises_dense(),
        "algorithm instance does not advertise dense states"
    );
    let n = sim.augmented().n();
    let k = n;
    let mut x = DenseBlock::<A::S>::from_states(&initial_states(alg, n), k);
    let zero_row = vec![<A::S as Semiring>::zero(); k];
    let lambda_max = sim.levels().lambda() as usize;
    let mut levels: Vec<DenseLevel<A>> = (0..=lambda_max)
        .map(|_| {
            let mut engine = DenseEngine::new(strategy);
            engine.enable_change_log();
            DenseLevel {
                engine,
                y: DenseBlock::new(n, k),
                primed: false,
                moved: Vec::new(),
                moved_all: true,
                seeds: Vec::new(),
            }
        })
        .collect();
    // Aggregation scratch: one shadow matrix reused across rounds.
    let mut agg: Vec<A::S> = vec![<A::S as Semiring>::zero(); n * k];
    let mut work = WorkStats::new();
    let mut executed = 0;
    let mut fixpoint = false;
    let mut prev_changed: Option<Vec<NodeId>> = None;

    while executed < h {
        let x_ref = &x;
        let zero_row_ref: &[A::S] = &zero_row;
        let x_changed = if carry_over {
            prev_changed.as_deref()
        } else {
            None
        };
        // Level phase: independent contributions, one parallel task per
        // level, each rewriting its projection baseline row-wise and
        // running d filtered hops on its own engine.
        work += levels
            .par_iter_mut()
            .with_min_len(1)
            .enumerate()
            .map(|(lambda, level)| {
                let lambda = lambda as u32;
                let scale = sim.level_scale(lambda);
                let aug = sim.augmented();
                let wholesale = !level.primed || !carry_over;
                let full_diff = level.moved_all || x_changed.is_none();
                level.seeds.clear();
                if wholesale || full_diff {
                    for v in 0..n as NodeId {
                        let want: &[A::S] = if sim.levels().level(v) >= lambda {
                            x_ref.row(v)
                        } else {
                            zero_row_ref
                        };
                        if !rows_equal(level.y.row(v), want) {
                            level.y.row_mut(v).copy_from_slice(want);
                            level.seeds.push(v);
                        }
                    }
                    if wholesale {
                        level.engine.mark_all_dirty(aug);
                        level.primed = true;
                    } else {
                        level.engine.mark_dirty(aug, level.seeds.iter().copied());
                    }
                } else {
                    // Frontier-sized diff: only `moved_λ ∪ C` can
                    // disagree with the fresh projection (see the
                    // oracle module docs).
                    let changed = x_changed.unwrap_or(&[]);
                    let DenseLevel {
                        y, moved, seeds, ..
                    } = level;
                    crate::oracle::for_each_sorted_union(moved, changed, |v| {
                        let want: &[A::S] = if sim.levels().level(v) >= lambda {
                            x_ref.row(v)
                        } else {
                            zero_row_ref
                        };
                        if !rows_equal(y.row(v), want) {
                            y.row_mut(v).copy_from_slice(want);
                            seeds.push(v);
                        }
                    });
                    level.engine.mark_dirty(aug, level.seeds.iter().copied());
                }
                let mut work = WorkStats::new();
                for _ in 0..sim.d() {
                    let (w, changed) = level.engine.step(alg, aug, &mut level.y, scale);
                    work += w;
                    if !changed {
                        break;
                    }
                }
                level.moved.clear();
                level.engine.drain_change_log(&mut level.moved);
                if wholesale {
                    level.moved_all = true;
                    level.moved.clear();
                } else {
                    level.moved_all = false;
                    level.moved.extend_from_slice(&level.seeds);
                    level.moved.sort_unstable();
                    level.moved.dedup();
                }
                work
            })
            .reduce(WorkStats::new, |mut a, b| {
                a += b;
                a
            });
        executed += 1;

        // Frontier-sized aggregation: fold level rows in ascending-λ
        // order into the scratch matrix, filter, and compare — only
        // vertices some level moved can aggregate to a new value.
        let recompute: Option<Vec<NodeId>> = if levels.iter().any(|l| l.moved_all) {
            None
        } else {
            let mut union: Vec<NodeId> = Vec::new();
            for level in &levels {
                union.extend_from_slice(&level.moved);
            }
            union.sort_unstable();
            union.dedup();
            Some(union)
        };
        let levels_ref: &[DenseLevel<A>] = &levels;
        let x_imm = &x;
        let agg_base = SyncPtr(agg.as_mut_ptr());
        let fold = |v: NodeId| -> bool {
            // SAFETY: callers iterate distinct vertices (a range or a
            // deduplicated list), so row windows are disjoint.
            let dst: &mut [A::S] =
                unsafe { std::slice::from_raw_parts_mut(agg_base.slot(v as usize * k), k) };
            dst.fill(<A::S as Semiring>::zero());
            let node_level = sim.levels().level(v);
            for (lambda, level) in levels_ref.iter().enumerate() {
                if node_level >= lambda as u32 {
                    fold_row_into(dst, level.y.row(v));
                }
            }
            alg.dense_filter(v, dst);
            !rows_equal(&*dst, x_imm.row(v))
        };
        let changed_list: Vec<NodeId> = match recompute.as_deref() {
            None => (0..n as NodeId)
                .into_par_iter()
                .flat_map_iter(|v| if fold(v) { Some(v) } else { None })
                .collect(),
            Some(list) => list
                .par_iter()
                .flat_map_iter(|&v| if fold(v) { Some(v) } else { None })
                .collect(),
        };
        if changed_list.is_empty() {
            fixpoint = true;
            break;
        }
        for &v in &changed_list {
            let a = v as usize * k;
            x.row_mut(v).copy_from_slice(&agg[a..a + k]);
        }
        prev_changed = Some(changed_list);
    }

    OracleRun {
        states: x.export(),
        h_iterations: executed,
        fixpoint,
        converged: fixpoint,
        hops: work.iterations,
        work,
    }
}

/// Dense oracle with the production carry-over schedule.
pub fn oracle_run_dense_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    h: usize,
    strategy: EngineStrategy,
) -> OracleRun<A::M>
where
    A: DenseMbfAlgorithm<S = mte_algebra::MinPlus>,
    A::M: DenseState<A::S>,
{
    oracle_run_dense_with_schedule(alg, sim, h, strategy, true)
}

/// Iterates the dense oracle to a fixpoint, capped at `cap` simulated
/// iterations (the capped run *is* the run-to-fixpoint — the fixpoint
/// check stops early).
pub fn oracle_run_dense_to_fixpoint_with<A>(
    alg: &A,
    sim: &SimulatedGraph,
    cap: usize,
    strategy: EngineStrategy,
) -> OracleRun<A::M>
where
    A: DenseMbfAlgorithm<S = mte_algebra::MinPlus>,
    A::M: DenseState<A::S>,
{
    oracle_run_dense_with(alg, sim, cap, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Connectivity, SourceDetection, WidestPaths};
    use crate::engine::{run_to_fixpoint_with, EngineStrategy};
    use mte_graph::generators::{gnm_graph, grid_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_apsp_matches_owned_engine() {
        let mut rng = StdRng::seed_from_u64(81);
        let g = gnm_graph(50, 130, 1.0..9.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        for strategy in [
            EngineStrategy::Dense,
            EngineStrategy::Frontier,
            EngineStrategy::default(),
        ] {
            let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy);
            let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, strategy);
            assert_eq!(owned.states, dense.states, "{strategy:?}");
            assert_eq!(owned.iterations, dense.iterations, "{strategy:?}");
            assert_eq!(owned.fixpoint, dense.fixpoint, "{strategy:?}");
            // Same schedule, same hops: scheduling counters agree.
            // The dense backend may skip provably-absorbed merges, so its
            // relaxation count can only be lower.
            assert!(dense.work.edge_relaxations <= owned.work.edge_relaxations);
            assert_eq!(owned.work.touched_vertices, dense.work.touched_vertices);
            assert!(dense.work.dense_hops > 0);
        }
    }

    #[test]
    fn fresh_engine_step_sizes_schedule_and_taint_together() {
        // Regression: the unsized-schedule fallback used to size only
        // the schedule, so an absorption-stable algorithm's first step
        // on a never-primed engine read past the empty taint table.
        let g = path_graph(6, 1.0);
        let alg = SourceDetection::apsp(g.n());
        let mut block = initial_block(&alg, g.n());
        let mut engine = DenseEngine::new(EngineStrategy::Frontier);
        let (_, changed) = engine.step(&alg, &g, &mut block, 1.0);
        assert!(changed);
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        loop {
            let (_, changed) = engine.step(&alg, &g, &mut block, 1.0);
            if !changed {
                break;
            }
        }
        assert_eq!(block.export::<mte_algebra::DistanceMap>(), owned.states);
    }

    #[test]
    fn dense_connectivity_matches_owned_engine() {
        let g = mte_graph::Graph::from_edges(
            7,
            vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)],
        );
        let alg = Connectivity::all_pairs(g.n());
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        assert_eq!(owned.states, dense.states);
        assert_eq!(owned.iterations, dense.iterations);
    }

    #[test]
    fn dense_widest_paths_matches_owned_engine() {
        let mut rng = StdRng::seed_from_u64(82);
        let g = gnm_graph(40, 110, 1.0..10.0, &mut rng);
        let alg = WidestPaths::apwp(g.n());
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default());
        let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, EngineStrategy::default());
        assert_eq!(owned.states, dense.states);
        assert_eq!(owned.iterations, dense.iterations);
        assert_eq!(owned.fixpoint, dense.fixpoint);
    }

    #[test]
    fn dense_respects_source_mask_and_distance_limit() {
        // A filter that actually masks: non-sources and a finite limit.
        let g = path_graph(6, 1.0);
        let alg = SourceDetection::new(g.n(), &[0, 5], 2, mte_algebra::Dist::new(3.0));
        assert!(alg.advertises_dense());
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        assert_eq!(owned.states, dense.states);
    }

    #[test]
    fn truncating_top_k_does_not_advertise_dense() {
        let alg = SourceDetection::k_ssp(10, 3);
        assert!(!alg.advertises_dense());
        let apsp = SourceDetection::apsp(10);
        assert!(apsp.advertises_dense());
    }

    #[test]
    fn switching_engine_flips_and_stays_bit_identical() {
        let mut rng = StdRng::seed_from_u64(83);
        let g = gnm_graph(60, 170, 1.0..8.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default());
        // Aggressive thresholds so the flip happens early in the run.
        let switching = run_to_fixpoint_switching_with(
            &alg,
            &g,
            g.n() + 1,
            EngineStrategy::default(),
            SwitchThresholds {
                row_density: 0.2,
                saturation: 0.2,
                revert: 0.01,
                budget_bytes: None,
            },
        );
        assert_eq!(owned.states, switching.states);
        assert_eq!(owned.iterations, switching.iterations);
        assert_eq!(owned.fixpoint, switching.fixpoint);
        assert!(switching.work.dense_flips > 0, "no rows ever flipped");
        assert!(switching.work.dense_hops > 0, "matrix mode never entered");
    }

    #[test]
    fn switching_engine_never_flipping_matches_sparse() {
        let mut rng = StdRng::seed_from_u64(84);
        let g = grid_graph(6, 6, 1.0..4.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        let switching = run_to_fixpoint_switching_with(
            &alg,
            &g,
            g.n() + 1,
            EngineStrategy::Frontier,
            SwitchThresholds {
                row_density: 2.0, // unreachable: never a candidate
                saturation: 2.0,
                revert: 0.0,
                budget_bytes: None,
            },
        );
        assert_eq!(owned.states, switching.states);
        assert_eq!(owned.iterations, switching.iterations);
        assert_eq!(switching.work.dense_hops, 0);
        assert_eq!(switching.work.dense_flips, 0);
    }

    #[test]
    fn switching_engine_reverts_to_sparse_on_shrinking_edits() {
        let mut rng = StdRng::seed_from_u64(85);
        let g = gnm_graph(24, 70, 1.0..6.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let thresholds = SwitchThresholds {
            row_density: 0.2,
            saturation: 0.2,
            revert: 0.3, // high: shrinink edits drop below this quickly
            budget_bytes: None,
        };
        let mut engine = SwitchingEngine::new(&alg, &g, EngineStrategy::default(), thresholds);
        for _ in 0..g.n() {
            let (_, changed) = engine.step(&alg, &g, 1.0);
            if !changed {
                break;
            }
        }
        assert!(engine.in_matrix_mode(), "run never saturated");
        // Shrink every state back to its singleton init: live density
        // collapses and the engine must revert to the sparse store.
        for v in 0..g.n() as NodeId {
            let init = alg.init(v);
            engine.assign_dirty(&alg, &g, v, &init);
        }
        let (_, _) = engine.step(&alg, &g, 1.0);
        assert!(!engine.in_matrix_mode(), "revert threshold ignored");
        // And the run still converges to the owned reference.
        let mut owned_states = initial_states(&alg, g.n());
        let mut owned_engine = MbfEngine::new(EngineStrategy::default());
        owned_engine.mark_all_dirty(&g);
        loop {
            let (_, c) = owned_engine.step(&alg, &g, &mut owned_states, 1.0);
            if !c {
                break;
            }
        }
        for _ in 0..2 * g.n() {
            let (_, c) = engine.step(&alg, &g, 1.0);
            if !c {
                break;
            }
        }
        assert_eq!(engine.export_states(), owned_states);
    }

    #[test]
    fn dense_oracle_matches_owned_oracle() {
        let mut rng = StdRng::seed_from_u64(86);
        let g = gnm_graph(30, 70, 1.0..6.0, &mut rng);
        let sim = crate::simgraph::SimulatedGraph::without_hopset(&g, 12, 0.2, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let cap = 4 * g.n();
        for carry_over in [true, false] {
            let owned = crate::oracle::oracle_run_with_schedule(
                &alg,
                &sim,
                cap,
                EngineStrategy::Frontier,
                carry_over,
            );
            let dense = oracle_run_dense_with_schedule(
                &alg,
                &sim,
                cap,
                EngineStrategy::Frontier,
                carry_over,
            );
            assert_eq!(owned.states, dense.states, "carry={carry_over}");
            assert_eq!(owned.h_iterations, dense.h_iterations);
            assert_eq!(owned.fixpoint, dense.fixpoint);
        }
    }
}
