//! The **fault-tolerant sharded engine**: vertex-range shards with
//! typed exchange, deterministic re-execution, and quarantine.
//!
//! The paper's PRAM construction decomposes each MBF hop into
//! independent per-vertex work recombined through a reduction — the
//! seam the worker pool's fixed-shape reduction tree and the
//! degree-balanced chunking already exploit. This module promotes that
//! seam to real **vertex-range shards** in the style of the MPC
//! construction of "Tree Embedding in High Dimensions" (arXiv
//! 2510.22490): each shard owns a contiguous vertex range, runs every
//! hop shard-locally against its own state mirror, and recombines with
//! its siblings through explicit typed [`ExchangeMsg`] values carrying
//! **only cross-shard frontier entries** — the changed states with an
//! edge into another shard's range.
//!
//! # Protocol
//!
//! Every live shard holds a full-length *mirror* of the state vector
//! that is authoritative on its owned ranges and fresh on their closed
//! neighborhood (it receives every remote change adjacent to its
//! ranges). One hop is a barriered round:
//!
//! 1. **Local recompute** (parallel, panic-isolated per shard): each
//!    shard pull-recomputes the owned closed neighborhood of its dirty
//!    set against its mirror and *stages* the changed entries. Nothing
//!    is committed.
//! 2. **Exchange build** (deterministic coordinator order): for every
//!    ordered pair of live shards one [`ExchangeMsg`] is built — even
//!    when empty, so a *missing* message is detectable — carrying the
//!    sender's changed entries that have an edge into the receiver's
//!    ranges, a per-message sequence number, and an order-sensitive
//!    FNV-1a digest over the canonical (ascending-node) entry order.
//! 3. **Validation**: receivers check sequence number, per-channel
//!    message count (drop/duplicate), ascending entry order, sender
//!    ownership of every entry, digest, and per-entry sanity. Any
//!    mismatch is a typed [`RunError::ShardExchangeCorrupt`] — never a
//!    silently wrong embedding.
//! 4. **Commit**: only after every message validated and the fault
//!    audit came back clean are owned changes and validated deliveries
//!    applied to the mirrors. A failed hop therefore leaves every
//!    mirror at its hop-entry state, which is what makes re-execution
//!    exact (the PR 8 checkpoint skip-exactness argument: identical
//!    inputs, deterministic recompute, identical outputs).
//!
//! # Supervision
//!
//! [`ShardSupervisor`] re-executes a failed hop from its hop-entry
//! state up to a bounded retry budget
//! ([`Degradation::ShardReExecuted`]); when the budget is exhausted
//! and a culprit shard is attributable (panic origin, corrupt channel
//! sender, or insane staged entry), the culprit's vertex ranges are
//! **quarantined** and taken over by a sibling shard — the sibling
//! copies the authoritative and halo states for those ranges out of
//! the quarantined shard's hop-entry mirror
//! ([`Degradation::ShardQuarantined`]) — and the hop re-runs under the
//! new ownership. With one live shard left, failures surface as
//! [`RunError::RetriesExhausted`].
//!
//! # Invariant
//!
//! Because every hop recomputes exactly the unsharded engine's touched
//! set against hop-entry states, engine outputs are **bit-identical
//! across shard counts, `MTE_THREADS`, and every survivable fault
//! arrival** — enforced by `tests/shard_equivalence.rs` and
//! `tests/shard_faults.rs`.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use mte_algebra::{NodeId, Semimodule};
use mte_faults::{self as faults, FaultKind, FaultSite};
use mte_graph::Graph;

use crate::engine::{initial_states, MbfAlgorithm};
use crate::error::{check_states, panic_to_error, Degradation, RunError, RunReport};
use crate::work::WorkStats;

/// Model-level bytes per exchanged state entry (node id + value), the
/// same unit as the engine's `OWNED_ENTRY_BYTES`.
pub const EXCHANGE_ENTRY_BYTES: u64 = 16;

/// Model-level bytes per message header (channel, hop, seq, digest,
/// length).
pub const EXCHANGE_HEADER_BYTES: u64 = 32;

/// The message-level fault kinds the exchange sites accept.
const MSG_KINDS: [FaultKind; 4] = [
    FaultKind::DropMsg,
    FaultKind::DupMsg,
    FaultKind::ReorderMsg,
    FaultKind::CorruptMsg,
];

// ---------------------------------------------------------------------
// Partitioning.

/// A partition of `0..n` into contiguous vertex ranges, one per shard
/// slot. Degree-balanced: range boundaries are cut on the cumulative
/// `deg(v) + 1` cost prefix, the same cost model as the frontier
/// schedule's chunking, so shards carry comparable relaxation work on
/// skewed graphs. A pure function of `(graph, shards)` — partitioning
/// never depends on thread count or timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// `starts[i]..starts[i + 1]` is slot `i`'s range; `starts[0] == 0`
    /// and `starts[shards] == n`. Ranges may be empty on tiny graphs.
    starts: Vec<NodeId>,
}

impl ShardSpec {
    /// Cuts `g`'s vertex set into `shards` contiguous degree-balanced
    /// ranges.
    pub fn balanced(g: &Graph, shards: usize) -> ShardSpec {
        assert!(shards >= 1, "a spec needs at least one shard");
        let n = g.n();
        let total: u64 = (0..n as NodeId).map(|v| g.degree(v) as u64 + 1).sum();
        let k = shards as u64;
        let mut starts = Vec::with_capacity(shards + 1);
        starts.push(0);
        let mut acc = 0u64;
        for v in 0..n as NodeId {
            acc += g.degree(v) as u64 + 1;
            let closed = starts.len() as u64 - 1;
            // Same boundary rule as the hop chunker: close range `closed`
            // once its share of the total cost is met, keeping the last
            // range open for the remainder.
            if closed + 1 < k && acc * k >= (closed + 1) * total {
                starts.push(v + 1);
            }
        }
        while starts.len() < shards + 1 {
            starts.push(n as NodeId);
        }
        ShardSpec { starts }
    }

    /// Number of shard slots (quarantined slots keep their ranges in
    /// the spec; ownership moves in the engine).
    pub fn shard_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Vertices covered.
    pub fn n(&self) -> usize {
        *self.starts.last().expect("spec has a sentinel") as usize
    }

    /// Slot `i`'s contiguous range.
    pub fn range(&self, i: usize) -> Range<NodeId> {
        self.starts[i]..self.starts[i + 1]
    }

    /// The slot whose range contains `v`.
    pub fn slot_of(&self, v: NodeId) -> usize {
        // Binary search over range starts; `partition_point` returns the
        // first start beyond `v`, whose predecessor owns it. Empty
        // ranges are skipped naturally (their start equals the next).
        self.starts.partition_point(|&s| s <= v) - 1
    }
}

// ---------------------------------------------------------------------
// Exchange messages.

/// One cross-shard frontier entry: a changed vertex and its new state.
#[derive(Clone, Debug, PartialEq)]
pub struct ExchangeEntry<M> {
    /// The changed vertex (owned by the sending shard).
    pub node: NodeId,
    /// Its post-hop state.
    pub state: M,
}

/// A typed cross-shard exchange message — the **only** sanctioned way
/// state crosses a shard boundary (enforced by the `shard-isolation`
/// rule of `cargo xtask analyze`). One message per ordered pair of
/// live shards per hop, empty when the sender has no boundary changes
/// for the receiver, so a dropped message is always detectable.
#[derive(Clone, Debug, PartialEq)]
pub struct ExchangeMsg<M> {
    /// Sending shard id.
    pub from_shard: u32,
    /// Receiving shard id.
    pub to_shard: u32,
    /// 1-based hop this exchange serves.
    pub hop: u64,
    /// Per-message sequence number; the protocol sends exactly one
    /// message per channel per hop, so `seq == hop` — a duplicate,
    /// reordered, or replayed message breaks the equation.
    pub seq: u64,
    /// Order-sensitive FNV-1a checksum over the canonical
    /// (ascending-node) entry order, mixed with the channel and hop.
    pub digest: u64,
    /// The cross-shard frontier entries, ascending by node.
    pub entries: Vec<ExchangeEntry<M>>,
}

#[inline]
fn fnv_step(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01B3)
}

/// The canonical message digest: FNV-1a over channel, hop, entry count
/// and the entry nodes **in order** — so dropped, injected, renamed,
/// and reordered entries all shift the checksum.
pub fn exchange_digest(from_shard: u32, to_shard: u32, hop: u64, nodes: &[NodeId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv_step(h, from_shard as u64);
    h = fnv_step(h, to_shard as u64);
    h = fnv_step(h, hop);
    h = fnv_step(h, nodes.len() as u64);
    for &v in nodes {
        h = fnv_step(h, v as u64 + 1);
    }
    h
}

// ---------------------------------------------------------------------
// Engine state.

/// One shard's private state. Cross-shard code must not reach into
/// this store directly — every access outside the commit/transfer seam
/// is a `shard-isolation` finding.
#[derive(Clone, Debug)]
struct ShardState<M> {
    /// Still executing (false once quarantined).
    live: bool,
    /// Spec slots this shard currently owns (its own, plus any taken
    /// over from quarantined siblings).
    owned_slots: Vec<usize>,
    /// Full-length state mirror: authoritative on owned ranges, fresh
    /// on their closed neighborhood, stale (and never read) elsewhere.
    mirror: Vec<M>,
    /// Vertices whose state changed last hop and are relevant here:
    /// owned changes plus delivered remote changes. Sorted ascending.
    dirty: Vec<NodeId>,
}

/// Per-shard output of the parallel recompute phase.
struct ShardHopOut<M> {
    /// Owned vertices whose recomputed state differs, ascending, with
    /// the staged new state.
    changed: Vec<(NodeId, M)>,
    entries: u64,
    relaxations: u64,
    touched: u64,
    bytes: u64,
}

/// Everything a successful hop attempt staged; applied by
/// [`ShardedEngine::commit`], dropped wholesale on failure.
struct StagedHop<M> {
    /// Per shard slot: staged owned changes.
    changed: Vec<Vec<(NodeId, M)>>,
    /// Per shard slot: validated deliveries to apply to the mirror.
    deliveries: Vec<Vec<(NodeId, M)>>,
    /// Work delta for this hop (including exchange volume).
    work: WorkStats,
    /// Fold of every message digest in build order.
    hop_digest: u64,
    /// Whether any shard changed any state.
    changed_any: bool,
}

/// A hop attempt failed; mirrors are untouched (commit never ran).
struct HopFailure {
    error: RunError,
    /// The shard to blame, when attributable: the panicking shard, the
    /// corrupt channel's sender, or the owner of an insane staged
    /// entry.
    culprit: Option<u32>,
}

/// Result of a sharded fixpoint run, mirroring
/// [`MbfRun`](crate::engine::MbfRun) plus the exchange digests.
#[derive(Clone, Debug)]
pub struct ShardedRun<M> {
    /// Final states, gathered from the owning shards' mirrors —
    /// bit-identical to the unsharded engine's.
    pub states: Vec<M>,
    /// Hops executed (the confirming hop included, like the unsharded
    /// fixpoint driver).
    pub iterations: usize,
    /// Whether the fixpoint was reached within the cap.
    pub fixpoint: bool,
    /// Work accounting, including `shard_msgs`/`shard_msg_bytes`.
    pub work: WorkStats,
    /// One digest per committed hop: the fold of every exchange
    /// message's digest in canonical build order. A pure function of
    /// the input, so stable across `MTE_THREADS` and re-execution.
    pub hop_digests: Vec<u64>,
}

/// Retry/quarantine budget of the [`ShardSupervisor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Re-executions of a failed hop before the culprit is quarantined
    /// (or, with no culprit/sibling, the run fails).
    pub max_hop_retries: u32,
    /// Whether an attributable repeat offender may be quarantined and
    /// its ranges taken over by a sibling.
    pub allow_quarantine: bool,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            max_hop_retries: 2,
            allow_quarantine: true,
        }
    }
}

/// The sharded engine: owns the shard states and drives barriered
/// hops. Use [`try_run_sharded_to_fixpoint_with`] (fail-fast) or
/// [`ShardSupervisor`] (re-execution + quarantine) instead of driving
/// it manually.
pub struct ShardedEngine<A: MbfAlgorithm> {
    spec: ShardSpec,
    /// Spec slot -> owning shard id (quarantine reassigns).
    slot_owner: Vec<u32>,
    shards: Vec<ShardState<A::M>>,
    /// Committed hops.
    hop: u64,
    work: WorkStats,
    hop_digests: Vec<u64>,
}

impl<A: MbfAlgorithm> ShardedEngine<A> {
    /// A fresh engine over `spec`, every shard holding the filtered
    /// initial states and an all-dirty first frontier (the first hop
    /// recomputes every owned vertex, like the unsharded engine's
    /// `mark_all_dirty`).
    pub fn new(alg: &A, g: &Graph, spec: ShardSpec) -> Self {
        assert_eq!(spec.n(), g.n(), "spec must cover the graph");
        let k = spec.shard_count();
        let init = initial_states(alg, g.n());
        let all: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let shards: Vec<ShardState<A::M>> = (0..k)
            .map(|i| ShardState {
                live: true,
                owned_slots: vec![i],
                mirror: init.clone(),
                dirty: all.clone(),
            })
            .collect();
        // Each shard materializes one full-length mirror.
        let work = WorkStats {
            alloc_count: k as u64,
            ..WorkStats::default()
        };
        ShardedEngine {
            slot_owner: (0..k as u32).collect(),
            spec,
            shards,
            hop: 0,
            work,
            hop_digests: Vec::new(),
        }
    }

    /// The current owner shard of vertex `v`.
    fn owner(&self, v: NodeId) -> u32 {
        self.slot_owner[self.spec.slot_of(v)]
    }

    /// Live shard ids, ascending.
    fn live_ids(&self) -> Vec<u32> {
        (0..self.shards.len() as u32)
            .filter(|&i| self.shards[i as usize].live)
            .collect()
    }

    /// Does `v` have an edge into (or live in) a range owned by `t`?
    fn crosses_into(&self, g: &Graph, v: NodeId, t: u32) -> bool {
        g.neighbors(v).iter().any(|&(w, _)| self.owner(w) == t)
    }

    /// One hop **attempt**: recompute, exchange, validate, audit —
    /// staging everything and mutating nothing. On `Err` the engine is
    /// still exactly at its hop-entry state.
    fn hop_attempt(&self, alg: &A, g: &Graph) -> Result<StagedHop<A::M>, HopFailure> {
        let hop = self.hop + 1;
        let serial = faults::fired_serial();
        let k = self.shards.len();

        // Phase 1: shard-local recompute (parallel, panic-isolated).
        let shards = &self.shards;
        let task = |sid: usize| -> ShardHopOut<A::M> {
            let st = &shards[sid];
            if !st.live {
                return ShardHopOut {
                    changed: Vec::new(),
                    entries: 0,
                    relaxations: 0,
                    touched: 0,
                    bytes: 0,
                };
            }
            // Owned closed neighborhood of the dirty set — exactly the
            // unsharded schedule's touched set restricted to this shard.
            let mut touched: Vec<NodeId> = Vec::new();
            for &d in &st.dirty {
                if self.owner(d) as usize == sid {
                    touched.push(d);
                }
                for &(w, _) in g.neighbors(d) {
                    if self.owner(w) as usize == sid {
                        touched.push(w);
                    }
                }
            }
            touched.sort_unstable();
            touched.dedup();
            let mut out = ShardHopOut {
                changed: Vec::new(),
                entries: 0,
                relaxations: 0,
                touched: touched.len() as u64,
                bytes: 0,
            };
            let mut scratch = <A::M as Semimodule<A::S>>::zero();
            for &v in &touched {
                let (e, r) = alg.recompute_into(v, g, 1.0, &st.mirror, &mut scratch);
                out.entries += e;
                out.relaxations += r;
                if scratch != st.mirror[v as usize] {
                    out.bytes += EXCHANGE_ENTRY_BYTES * alg.state_size(&scratch) as u64;
                    let staged =
                        std::mem::replace(&mut scratch, <A::M as Semimodule<A::S>>::zero());
                    out.changed.push((v, staged));
                }
            }
            match faults::check_for(
                FaultSite::ShardHopExec,
                &[FaultKind::Panic, FaultKind::PoisonNan],
            ) {
                Some(FaultKind::Panic) => faults::trigger_panic(FaultSite::ShardHopExec),
                Some(FaultKind::PoisonNan) => {
                    if let Some((_, m)) = out.changed.first_mut() {
                        m.poison();
                    }
                }
                _ => {}
            }
            out
        };
        let results = match catch_unwind(AssertUnwindSafe(|| rayon::execute_isolated(k, task))) {
            Ok(results) => results,
            // A pool-level panic (e.g. the worker_chunk site) aborts the
            // whole phase; no single shard is to blame.
            Err(payload) => {
                return Err(HopFailure {
                    error: panic_to_error(payload),
                    culprit: None,
                })
            }
        };
        let mut outs: Vec<ShardHopOut<A::M>> = Vec::with_capacity(k);
        for (sid, r) in results.into_iter().enumerate() {
            match r {
                Ok(out) => outs.push(out),
                Err(payload) => {
                    return Err(HopFailure {
                        error: panic_to_error(payload),
                        culprit: Some(sid as u32),
                    })
                }
            }
        }

        // Phase 2: build + tamper + validate the exchange, in
        // deterministic coordinator order.
        let mut work = WorkStats {
            iterations: 1,
            ..WorkStats::default()
        };
        let mut hop_digest = 0xcbf2_9ce4_8422_2325u64;
        for out in &outs {
            work.entries_processed += out.entries;
            work.edge_relaxations += out.relaxations;
            work.touched_vertices += out.touched;
            work.bytes_copied += out.bytes;
        }
        let live = self.live_ids();
        let mut queue: Vec<ExchangeMsg<A::M>> = Vec::new();
        for &s in &live {
            for &t in &live {
                if s == t {
                    continue;
                }
                let entries: Vec<ExchangeEntry<A::M>> = outs[s as usize]
                    .changed
                    .iter()
                    .filter(|(v, _)| self.crosses_into(g, *v, t))
                    .map(|(v, m)| ExchangeEntry {
                        node: *v,
                        state: m.clone(),
                    })
                    .collect();
                let nodes: Vec<NodeId> = entries.iter().map(|e| e.node).collect();
                let digest = exchange_digest(s, t, hop, &nodes);
                work.shard_msgs += 1;
                work.shard_msg_bytes +=
                    EXCHANGE_HEADER_BYTES + EXCHANGE_ENTRY_BYTES * entries.len() as u64;
                hop_digest = fnv_step(hop_digest, digest);
                let mut msg = ExchangeMsg {
                    from_shard: s,
                    to_shard: t,
                    hop,
                    seq: hop,
                    digest,
                    entries,
                };
                // The send-side loss model: tampering is applied after
                // the digest is sealed, so validation must catch it.
                match faults::check_handled(FaultSite::ShardExchangeSend, &MSG_KINDS) {
                    Some(FaultKind::DropMsg) => {}
                    Some(FaultKind::DupMsg) => {
                        queue.push(msg.clone());
                        queue.push(msg);
                    }
                    Some(FaultKind::ReorderMsg) => {
                        msg.entries.reverse();
                        queue.push(msg);
                    }
                    Some(FaultKind::CorruptMsg) => {
                        tamper_corrupt(&mut msg);
                        queue.push(msg);
                    }
                    _ => queue.push(msg),
                }
            }
        }

        // Phase 3: deliver + validate. `seen[s * k + t]` counts the
        // messages accepted on channel s -> t this hop.
        let mut seen = vec![0u32; k * k];
        let mut deliveries: Vec<Vec<(NodeId, A::M)>> = (0..k).map(|_| Vec::new()).collect();
        for msg in queue {
            let copies = match faults::check_handled(FaultSite::ShardExchangeRecv, &MSG_KINDS) {
                Some(FaultKind::DropMsg) => Vec::new(),
                Some(FaultKind::DupMsg) => vec![msg.clone(), msg],
                Some(FaultKind::ReorderMsg) => {
                    let mut m = msg;
                    m.entries.reverse();
                    vec![m]
                }
                Some(FaultKind::CorruptMsg) => {
                    let mut m = msg;
                    tamper_corrupt(&mut m);
                    vec![m]
                }
                _ => vec![msg],
            };
            for msg in copies {
                self.validate_msg(g, hop, &msg)
                    .map_err(|detail| HopFailure {
                        error: RunError::ShardExchangeCorrupt {
                            from_shard: msg.from_shard,
                            to_shard: msg.to_shard,
                            hop,
                            detail,
                        },
                        culprit: Some(msg.from_shard),
                    })?;
                let slot = &mut seen[msg.from_shard as usize * k + msg.to_shard as usize];
                *slot += 1;
                if *slot > 1 {
                    return Err(HopFailure {
                        error: RunError::ShardExchangeCorrupt {
                            from_shard: msg.from_shard,
                            to_shard: msg.to_shard,
                            hop,
                            detail: "duplicate message on channel".to_owned(),
                        },
                        culprit: Some(msg.from_shard),
                    });
                }
                deliveries[msg.to_shard as usize]
                    .extend(msg.entries.into_iter().map(|e| (e.node, e.state)));
            }
        }
        // The drop barrier: every live ordered pair must have delivered
        // exactly one message.
        for &s in &live {
            for &t in &live {
                if s != t && seen[s as usize * k + t as usize] == 0 {
                    return Err(HopFailure {
                        error: RunError::ShardExchangeCorrupt {
                            from_shard: s,
                            to_shard: t,
                            hop,
                            detail: "message missing at hop barrier (dropped)".to_owned(),
                        },
                        culprit: Some(s),
                    });
                }
            }
        }

        // Phase 4: audit. Attribute an insane staged entry to its
        // owner; an unhandled fire (e.g. shard_hop_exec poison) is the
        // ground truth either way.
        let insane = outs.iter().enumerate().find_map(|(sid, out)| {
            out.changed
                .iter()
                .find(|(_, m)| !m.is_sane())
                .map(|(v, _)| (sid as u32, *v))
        });
        if let Some(fired) = faults::first_unhandled_since(serial) {
            return Err(HopFailure {
                error: RunError::InjectedFault {
                    site: fired.site,
                    kind: fired.kind,
                },
                culprit: insane.map(|(sid, _)| sid),
            });
        }
        if let Some((sid, v)) = insane {
            return Err(HopFailure {
                error: RunError::CorruptState { vertex: v },
                culprit: Some(sid),
            });
        }

        let changed_any = outs.iter().any(|o| !o.changed.is_empty());
        Ok(StagedHop {
            changed: outs.into_iter().map(|o| o.changed).collect(),
            deliveries,
            work,
            hop_digest,
            changed_any,
        })
    }

    /// Structural validation of one received message (sequence, order,
    /// ownership, digest, sanity). Returns the failure detail.
    fn validate_msg(&self, g: &Graph, hop: u64, msg: &ExchangeMsg<A::M>) -> Result<(), String> {
        if msg.hop != hop || msg.seq != hop {
            return Err(format!(
                "sequence number mismatch: got hop {}/seq {}, expected {hop}",
                msg.hop, msg.seq
            ));
        }
        let n = g.n() as NodeId;
        let mut prev: Option<NodeId> = None;
        for e in &msg.entries {
            if e.node >= n {
                return Err(format!("entry node {} out of range", e.node));
            }
            if self.owner(e.node) != msg.from_shard {
                return Err(format!(
                    "entry node {} not owned by sending shard {}",
                    e.node, msg.from_shard
                ));
            }
            if prev.is_some_and(|p| p >= e.node) {
                return Err("entries not in canonical ascending order".to_owned());
            }
            prev = Some(e.node);
            if !e.state.is_sane() {
                return Err(format!("entry state for node {} fails sanity", e.node));
            }
        }
        let nodes: Vec<NodeId> = msg.entries.iter().map(|e| e.node).collect();
        let expect = exchange_digest(msg.from_shard, msg.to_shard, hop, &nodes);
        if expect != msg.digest {
            return Err(format!(
                "digest mismatch: message carries {:#018x}, canonical order gives {expect:#018x}",
                msg.digest
            ));
        }
        Ok(())
    }

    /// Applies a validated staged hop: owned commits, deliveries, next
    /// dirty sets, accounting. Infallible — all validation happened in
    /// [`Self::hop_attempt`].
    fn commit(&mut self, staged: StagedHop<A::M>) {
        let StagedHop {
            changed,
            deliveries,
            work,
            hop_digest,
            ..
        } = staged;
        for (sid, (changes, delivered)) in changed.into_iter().zip(deliveries).enumerate() {
            let st = &mut self.shards[sid];
            let mut dirty: Vec<NodeId> = Vec::with_capacity(changes.len() + delivered.len());
            for (v, m) in changes {
                dirty.push(v);
                // Owned commit: the shard's own staged recompute result
                // lands in its authoritative range.
                st.mirror[v as usize] = m; // analyze: shard-ok(owner-side commit seam: staged owned changes land post-validation)
            }
            for (v, m) in delivered {
                dirty.push(v);
                // Halo commit: a validated exchange entry updates this
                // shard's copy of the remote boundary vertex.
                st.mirror[v as usize] = m; // analyze: shard-ok(receiver-side commit seam: validated exchange deliveries only)
            }
            dirty.sort_unstable();
            dirty.dedup();
            st.dirty = dirty;
        }
        self.hop += 1;
        self.work += work;
        self.hop_digests.push(hop_digest);
    }

    /// Quarantines shard `dead` and hands its slots to the next live
    /// sibling (cyclic id order): authoritative states for the dead
    /// shard's ranges **and** their halo are copied out of the dead
    /// shard's hop-entry mirror — intact, because commit never ran on
    /// the failed hop — and the dirty set migrates with them. Returns
    /// the sibling, or `None` when no live sibling exists.
    fn quarantine(&mut self, dead: u32, g: &Graph) -> Option<u32> {
        if !self.shards[dead as usize].live {
            return None;
        }
        let k = self.shards.len() as u32;
        let sib = (1..k)
            .map(|off| (dead + off) % k)
            .find(|&i| self.shards[i as usize].live)?;
        let slots = std::mem::take(&mut self.shards[dead as usize].owned_slots);
        let dirty = std::mem::take(&mut self.shards[dead as usize].dirty);
        self.shards[dead as usize].live = false;
        for &slot in &slots {
            self.slot_owner[slot] = sib;
        }
        // Two disjoint shard borrows for the state transfer.
        let (a, b) = (dead.min(sib) as usize, dead.max(sib) as usize);
        let (lo, hi) = self.shards.split_at_mut(b);
        let (dead_st, sib_st) = if (dead as usize) < (sib as usize) {
            (&lo[a], &mut hi[0])
        } else {
            (&hi[0], &mut lo[a])
        };
        for &slot in &slots {
            for v in self.spec.range(slot) {
                // Takeover transfer seam: the sibling adopts the
                // quarantined shard's authoritative states...
                sib_st.mirror[v as usize] = dead_st.mirror[v as usize].clone(); // analyze: shard-ok(quarantine state transfer: adopting the dead shard's authoritative range)
                for &(w, _) in g.neighbors(v) {
                    // ...and its halo, which the sibling may never have
                    // received (it was not adjacent to these ranges).
                    // analyze: shard-ok(quarantine halo transfer: boundary copies the sibling never received)
                    sib_st.mirror[w as usize] = dead_st.mirror[w as usize].clone();
                }
            }
        }
        sib_st.owned_slots.extend(slots);
        sib_st.owned_slots.sort_unstable();
        let mut merged = std::mem::take(&mut sib_st.dirty);
        merged.extend(dirty);
        merged.sort_unstable();
        merged.dedup();
        sib_st.dirty = merged;
        Some(sib)
    }

    /// Gathers the final global state vector from the owning shards'
    /// mirrors, in vertex order.
    fn gather_states(&self) -> Vec<A::M> {
        let mut out = Vec::with_capacity(self.spec.n());
        for slot in 0..self.spec.shard_count() {
            let owner = self.slot_owner[slot] as usize;
            for v in self.spec.range(slot) {
                // Gather seam: read-only export of authoritative states.
                out.push(self.shards[owner].mirror[v as usize].clone()); // analyze: shard-ok(gather seam: read-only export of owned ranges into the result vector)
            }
        }
        out
    }
}

/// Deterministic bit-level tamper for `corrupt_msg`: flip the low bit
/// of the first entry's node id, or of the digest when the message is
/// empty. Either way the receiver's canonical-recompute must disagree.
fn tamper_corrupt<M>(msg: &mut ExchangeMsg<M>) {
    match msg.entries.first_mut() {
        Some(e) => e.node ^= 1,
        None => msg.digest ^= 1,
    }
}

// ---------------------------------------------------------------------
// Entry points.

/// Runs `alg` to fixpoint over `shards` degree-balanced vertex-range
/// shards, **fail-fast**: the first shard panic, staged-state
/// corruption, or exchange-validation failure surfaces as its typed
/// [`RunError`] with hop-entry state discarded. Output is bit-identical
/// to the unsharded engine's.
pub fn try_run_sharded_to_fixpoint_with<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    shards: usize,
) -> Result<(ShardedRun<A::M>, RunReport), RunError> {
    drive(alg, g, cap, ShardSpec::balanced(g, shards), None)
}

/// The shard supervisor: drives the sharded engine with bounded
/// deterministic re-execution and quarantine takeover (see the module
/// docs). Survivable fault arrivals end in a bit-identical result with
/// the recovery path recorded as [`Degradation`]s; unsurvivable ones
/// in a typed [`RunError`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSupervisor {
    policy: ShardPolicy,
}

impl ShardSupervisor {
    /// A supervisor with the given budget.
    pub fn new(policy: ShardPolicy) -> Self {
        ShardSupervisor { policy }
    }

    /// Supervised sharded fixpoint run over `shards` ranges.
    pub fn run_to_fixpoint_with<A: MbfAlgorithm>(
        &self,
        alg: &A,
        g: &Graph,
        cap: usize,
        shards: usize,
    ) -> Result<(ShardedRun<A::M>, RunReport), RunError> {
        drive(
            alg,
            g,
            cap,
            ShardSpec::balanced(g, shards),
            Some(self.policy),
        )
    }

    /// Supervised run over an explicit (pre-cut) spec.
    pub fn run_spec_to_fixpoint_with<A: MbfAlgorithm>(
        &self,
        alg: &A,
        g: &Graph,
        cap: usize,
        spec: ShardSpec,
    ) -> Result<(ShardedRun<A::M>, RunReport), RunError> {
        drive(alg, g, cap, spec, Some(self.policy))
    }
}

/// The shared hop driver. `policy: None` is the fail-fast path.
fn drive<A: MbfAlgorithm>(
    alg: &A,
    g: &Graph,
    cap: usize,
    spec: ShardSpec,
    policy: Option<ShardPolicy>,
) -> Result<(ShardedRun<A::M>, RunReport), RunError> {
    let mut engine = ShardedEngine::<A>::new(alg, g, spec);
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut fixpoint = false;
    let mut iterations = 0usize;
    for hop in 1..=cap as u64 {
        let mut attempt: u32 = 0;
        let staged = loop {
            match engine.hop_attempt(alg, g) {
                Ok(staged) => break staged,
                Err(fail) => {
                    let Some(policy) = policy else {
                        return Err(fail.error);
                    };
                    if attempt < policy.max_hop_retries {
                        attempt += 1;
                        degradations.push(Degradation::ShardReExecuted {
                            hop,
                            attempt,
                            cause: fail.error.to_string(),
                        });
                        continue;
                    }
                    if policy.allow_quarantine {
                        if let Some(culprit) = fail.culprit {
                            if let Some(sib) = engine.quarantine(culprit, g) {
                                degradations.push(Degradation::ShardQuarantined {
                                    shard: culprit,
                                    taken_over_by: sib,
                                    hop,
                                });
                                // The takeover re-runs the hop with a
                                // fresh budget; total quarantines are
                                // bounded by the live-shard count, so
                                // this terminates.
                                attempt = 0;
                                continue;
                            }
                        }
                    }
                    return Err(RunError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(fail.error),
                    });
                }
            }
        };
        let changed = staged.changed_any;
        engine.commit(staged);
        iterations = hop as usize;
        if !changed {
            fixpoint = true;
            break;
        }
    }
    let states = engine.gather_states();
    check_states::<A::S, A::M>(&states)?;
    let run = ShardedRun {
        states,
        iterations,
        fixpoint,
        work: engine.work,
        hop_digests: engine.hop_digests,
    };
    let report = RunReport {
        converged: fixpoint,
        hops: iterations as u64,
        degradations,
    };
    Ok((run, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SourceDetection;
    use crate::engine::{run_to_fixpoint, MbfRun};
    use mte_algebra::DistanceMap;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> Graph {
        gnm_graph(60, 150, 1.0..9.0, &mut StdRng::seed_from_u64(0x5AAD))
    }

    #[test]
    fn balanced_spec_covers_and_orders() {
        let g = fixture();
        for k in [1usize, 2, 3, 4, 8] {
            let spec = ShardSpec::balanced(&g, k);
            assert_eq!(spec.shard_count(), k);
            assert_eq!(spec.n(), g.n());
            let mut covered = 0usize;
            for i in 0..k {
                let r = spec.range(i);
                assert!(r.start <= r.end);
                covered += r.len();
                for v in r {
                    assert_eq!(spec.slot_of(v), i);
                }
            }
            assert_eq!(covered, g.n());
        }
    }

    #[test]
    fn sharded_matches_unsharded_states() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let reference: MbfRun<DistanceMap> = run_to_fixpoint(&alg, &g, g.n() + 1);
        for k in [1usize, 2, 4, 8] {
            let (run, report) = try_run_sharded_to_fixpoint_with(&alg, &g, g.n() + 1, k)
                .unwrap_or_else(|e| panic!("clean sharded run failed at k={k}: {e}"));
            assert_eq!(run.states, reference.states, "states diverged at k={k}");
            assert_eq!(run.iterations, reference.iterations);
            assert!(run.fixpoint && report.converged);
            assert!(report.degradations.is_empty());
            if k == 1 {
                assert_eq!(run.work.shard_msgs, 0, "single shard exchanges nothing");
            } else {
                assert!(run.work.shard_msgs > 0, "multi-shard runs exchange");
                assert!(run.work.shard_msg_bytes > 0);
            }
        }
    }

    #[test]
    fn hop_digests_are_reproducible() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let (a, _) = try_run_sharded_to_fixpoint_with(&alg, &g, g.n() + 1, 4).expect("run");
        let (b, _) = try_run_sharded_to_fixpoint_with(&alg, &g, g.n() + 1, 4).expect("rerun");
        assert_eq!(a.hop_digests, b.hop_digests);
        assert_eq!(a.hop_digests.len(), a.iterations);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let d0 = exchange_digest(0, 1, 3, &[2, 5, 9]);
        assert_ne!(d0, exchange_digest(0, 1, 3, &[9, 5, 2]), "order-sensitive");
        assert_ne!(d0, exchange_digest(0, 1, 3, &[2, 5]), "length-sensitive");
        assert_ne!(d0, exchange_digest(0, 1, 4, &[2, 5, 9]), "hop-sensitive");
        assert_ne!(
            d0,
            exchange_digest(1, 0, 3, &[2, 5, 9]),
            "channel-sensitive"
        );
    }

    #[test]
    fn corrupt_tamper_is_always_detected() {
        let g = fixture();
        let alg = SourceDetection::sssp(g.n(), 0);
        let engine = ShardedEngine::<SourceDetection>::new(&alg, &g, ShardSpec::balanced(&g, 2));
        let mut msg: ExchangeMsg<DistanceMap> = ExchangeMsg {
            from_shard: 0,
            to_shard: 1,
            hop: 1,
            seq: 1,
            digest: exchange_digest(0, 1, 1, &[]),
            entries: Vec::new(),
        };
        assert!(engine.validate_msg(&g, 1, &msg).is_ok());
        tamper_corrupt(&mut msg);
        assert!(
            engine.validate_msg(&g, 1, &msg).is_err(),
            "empty-msg tamper"
        );
    }
}
