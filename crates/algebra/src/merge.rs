//! Zero-allocation sorted-merge kernels for sparse map semimodules.
//!
//! Aggregation (`⊕`) and fused propagate-aggregate (`⊕` of `s ⊙ x`) over
//! the sparse map semimodules ([`crate::DistanceMap`],
//! [`crate::WidthMap`]) are linear merges of node-id-sorted entry
//! vectors. The paper charges every MBF-like iteration `O(Σ|x_v|)` work
//! (Lemma 2.3, Lemma 7.8) — but a naive merge *allocates* a fresh output
//! vector per edge relaxation, which dominates the constant factor at
//! engine scale. The kernels here merge into a reusable scratch buffer
//! and swap it with the accumulator, so steady-state iterations perform
//! **zero** allocations: the two buffers ping-pong and keep their
//! capacity.
//!
//! A thread-local scratch ([`with_dist_scratch`] / [`with_width_scratch`])
//! serves callers without their own buffer (each rayon worker thread gets
//! its own, so the layer is Send-clean under the thread-parallel
//! backend); hot loops that want explicit control pass a caller-owned
//! scratch instead.
//!
//! # Admission predicates (pruning at merge time)
//!
//! [`merge_sorted_pruned_into`] extends the plain merge with an
//! **admission predicate**: a `FnMut(NodeId, T) -> bool` consulted for
//! every entry of `b` whose key is *absent* from `a`. Rejected entries
//! are dropped before insertion; key collisions always `combine` (the
//! key is already paid for, and combining cannot grow the output).
//!
//! The contract a caller's predicate must satisfy for the pruned merge
//! to be *semantically* lossless: an entry may be rejected only if the
//! downstream representative projection (`r`) would discard it anyway —
//! i.e. rejection must be justified by an entry that is guaranteed to
//! survive into `r`'s input with at least equal discarding power. The LE
//! rank-domination filter is the canonical instance (paper Definition
//! 7.3): an incoming entry `(u, d)` dominated by the accumulator's base
//! list can never appear in `r`'s output, and since domination is
//! transitive, dropping it cannot rescue any other entry. Under that
//! contract `r(merge) = r(pruned merge)` **bit-for-bit**: admitted
//! entries are transformed by the same `map_b` in the same order, so no
//! floating-point operation is reordered. The predicate runs `O(1)`–
//! `O(log |a|)` per entry versus the sort/filter work it saves per
//! *inserted* entry, which is what makes LE-list construction
//! work-efficient (Lemma 7.6: filtered lists stay `O(log n)` w.h.p., so
//! most merged entries are dominated and discardable before insertion).

use crate::NodeId;
use std::cell::RefCell;

/// Merges two node-id-sorted entry slices into `out` (cleared first):
/// entries of `b` are transformed by `map_b`, and key collisions are
/// resolved by `combine`. `O(|a| + |b|)`, no allocation beyond `out`'s
/// growth.
#[inline]
pub fn merge_sorted_into<T: Copy, U: Copy>(
    a: &[(NodeId, T)],
    b: &[(NodeId, U)],
    mut map_b: impl FnMut(U) -> T,
    mut combine: impl FnMut(T, T) -> T,
    out: &mut Vec<(NodeId, T)>,
) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((b[j].0, map_b(b[j].1)));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, combine(a[i].1, map_b(b[j].1))));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend(b[j..].iter().map(|&(v, u)| (v, map_b(u))));
}

/// [`merge_sorted_into`] with an admission predicate: entries of `b`
/// whose key is **absent** from `a` are inserted only if
/// `admit(key, map_b(value))` returns `true`; key collisions always
/// `combine` (see the module docs for the admission contract). Still
/// `O(|a| + |b|)` with no allocation beyond `out`'s growth — the
/// predicate runs on the already-transformed value, so rejected entries
/// cost one `map_b` and one predicate call, never an insertion.
#[inline]
pub fn merge_sorted_pruned_into<T: Copy, U: Copy>(
    a: &[(NodeId, T)],
    b: &[(NodeId, U)],
    mut map_b: impl FnMut(U) -> T,
    mut combine: impl FnMut(T, T) -> T,
    admit: &mut impl FnMut(NodeId, T) -> bool,
    out: &mut Vec<(NodeId, T)>,
) {
    out.clear();
    out.reserve(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let t = map_b(b[j].1);
                if admit(b[j].0, t) {
                    out.push((b[j].0, t));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, combine(a[i].1, map_b(b[j].1))));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    for &(v, u) in &b[j..] {
        let t = map_b(u);
        if admit(v, t) {
            out.push((v, t));
        }
    }
}

thread_local! {
    /// Per-thread scratch for `(NodeId, u64)`-sized entries. `Dist` and
    /// `Width` are both 8-byte wrappers, so one buffer (reinterpreted via
    /// the generic helpers below) would do — but keeping a dedicated
    /// buffer per entry type avoids any transmutation. Distances are the
    /// hot path; widths get their own.
    static DIST_SCRATCH: RefCell<Vec<(NodeId, crate::dist::Dist)>> =
        const { RefCell::new(Vec::new()) };
    static WIDTH_SCRATCH: RefCell<Vec<(NodeId, crate::maxmin::Width)>> =
        const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's distance-entry scratch buffer. The buffer
/// arrives in an unspecified state (callers clear it) and keeps its
/// capacity across calls, which is what makes repeated merges
/// allocation-free.
#[inline]
pub fn with_dist_scratch<R>(f: impl FnOnce(&mut Vec<(NodeId, crate::dist::Dist)>) -> R) -> R {
    DIST_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Re-entrant merge (merge inside a merge callback): fall back to
        // a fresh buffer rather than panicking.
        Err(_) => f(&mut Vec::new()),
    })
}

/// Runs `f` with this thread's width-entry scratch buffer (see
/// [`with_dist_scratch`]).
#[inline]
pub fn with_width_scratch<R>(f: impl FnOnce(&mut Vec<(NodeId, crate::maxmin::Width)>) -> R) -> R {
    WIDTH_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Vec::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;

    /// The merge layer must be Send-clean: with the thread-parallel
    /// rayon backend, every engine worker merges through its *own*
    /// thread-local scratch, and the map semimodules cross thread
    /// boundaries freely. Compile-time assertion plus a cross-thread
    /// smoke test against the sequential reference.
    #[test]
    fn merge_layer_is_send_clean_across_worker_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::DistanceMap>();
        assert_send_sync::<crate::WidthMap>();
        assert_send_sync::<crate::NodeSet>();
        assert_send_sync::<(NodeId, Dist)>();

        use rayon::prelude::*;
        let a: Vec<(u32, Dist)> = (0..500).map(|i| (2 * i, Dist::new(i as f64))).collect();
        let b: Vec<(u32, Dist)> = (0..500)
            .map(|i| (3 * i, Dist::new(1.5 * i as f64)))
            .collect();
        let mut sequential = Vec::new();
        merge_sorted_into(&a, &b, |d| d, Dist::min, &mut sequential);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let merged: Vec<Vec<(u32, Dist)>> = pool.install(|| {
            (0..256u32)
                .into_par_iter()
                .map(|_| {
                    with_dist_scratch(|scratch| {
                        merge_sorted_into(&a, &b, |d| d, Dist::min, scratch);
                        scratch.clone()
                    })
                })
                .collect()
        });
        for m in merged {
            assert_eq!(m, sequential);
        }
    }

    #[test]
    fn merge_combines_and_maps() {
        let a = vec![(1u32, Dist::new(2.0)), (3, Dist::new(5.0))];
        let b = vec![
            (1u32, Dist::new(1.0)),
            (2, Dist::new(1.0)),
            (3, Dist::new(9.0)),
        ];
        let mut out = Vec::new();
        merge_sorted_into(&a, &b, |d| d + Dist::new(1.0), Dist::min, &mut out);
        assert_eq!(
            out,
            vec![
                (1, Dist::new(2.0)),
                (2, Dist::new(2.0)),
                (3, Dist::new(5.0))
            ]
        );
    }

    #[test]
    fn merge_handles_empty_sides() {
        let a: Vec<(u32, Dist)> = vec![(4, Dist::new(1.0))];
        let mut out = Vec::new();
        merge_sorted_into(&a, &[], |d: Dist| d, Dist::min, &mut out);
        assert_eq!(out, a);
        merge_sorted_into(&[], &a, |d| d, Dist::min, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn pruned_merge_rejects_only_absent_keys() {
        let a = vec![(1u32, Dist::new(2.0)), (3, Dist::new(5.0))];
        let b = vec![
            (1u32, Dist::new(0.5)), // collision: combined despite admit = false
            (2, Dist::new(1.0)),    // absent: rejected
            (4, Dist::new(7.0)),    // absent: admitted
            (9, Dist::new(3.0)),    // absent tail: rejected
        ];
        let mut out = Vec::new();
        let mut admit = |v: NodeId, _d: Dist| v == 4;
        merge_sorted_pruned_into(&a, &b, |d| d, Dist::min, &mut admit, &mut out);
        assert_eq!(
            out,
            vec![
                (1, Dist::new(0.5)),
                (3, Dist::new(5.0)),
                (4, Dist::new(7.0)),
            ]
        );
    }

    #[test]
    fn pruned_merge_with_always_admit_matches_unpruned() {
        let a: Vec<(u32, Dist)> = (0..40).map(|i| (3 * i, Dist::new(i as f64))).collect();
        let b: Vec<(u32, Dist)> = (0..40)
            .map(|i| (2 * i, Dist::new(0.7 * i as f64)))
            .collect();
        let mut plain = Vec::new();
        merge_sorted_into(&a, &b, |d| d + Dist::new(0.25), Dist::min, &mut plain);
        let mut pruned = Vec::new();
        merge_sorted_pruned_into(
            &a,
            &b,
            |d| d + Dist::new(0.25),
            Dist::min,
            &mut |_, _| true,
            &mut pruned,
        );
        assert_eq!(plain, pruned);
    }

    #[test]
    fn pruned_merge_sees_transformed_values() {
        let a: Vec<(u32, Dist)> = vec![];
        let b = vec![(5u32, Dist::new(1.0))];
        let mut seen = Vec::new();
        let mut out = Vec::new();
        let mut admit = |v: NodeId, d: Dist| {
            seen.push((v, d));
            false
        };
        merge_sorted_pruned_into(
            &a,
            &b,
            |d| d + Dist::new(2.0),
            Dist::min,
            &mut admit,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(seen, vec![(5, Dist::new(3.0))]);
    }

    #[test]
    fn scratch_keeps_capacity() {
        let cap_after_big = with_dist_scratch(|s| {
            s.clear();
            s.extend((0..1000u32).map(|v| (v, Dist::ZERO)));
            s.capacity()
        });
        let cap_next = with_dist_scratch(|s| s.capacity());
        assert!(cap_next >= cap_after_big);
    }
}
