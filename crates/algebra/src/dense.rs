//! Dense semiring blocks: flat row-major state matrices for APSP-class
//! workloads.
//!
//! # The algebraic view, taken literally
//!
//! The paper's framing (Sections 2.3–2.4) is that an MBF-like iteration
//! *is* a semiring matrix-(semimodule-)vector product: the state vector
//! `x ∈ M^V` is multiplied by the adjacency SLF `A`, component-wise
//! `(Ax)_v = ⊕_w a_vw ⊙ x_w`. The sparse [`crate::DistanceMap`]
//! representation serves the regime the complexity story targets —
//! filtered states of size `O(log n)` (Lemma 7.6) — but APSP-class
//! states (`SourceDetection::apsp`, all-pairs connectivity, metric-like
//! FRT inputs) converge towards **full** rows: `|x_v| → n`. There the
//! sorted-merge kernels pay branch mispredictions, per-entry key
//! comparisons, and scratch ping-pong for entries that are *all present
//! anyway*, and the semimodule `M = D ≅ S^V` is better stored as what
//! it is: one row of `n` semiring elements per vertex, the whole vector
//! a flat `n × k` matrix.
//!
//! [`DenseBlock`] is that matrix: row-major `Vec<S>`, vertex `v`'s
//! state at `values[v·k .. (v+1)·k]`, absent coordinates holding the
//! semiring zero (`∞` for min-plus, `0` for max-min, `false` for
//! Boolean). The row kernels implement the semimodule operations as
//! contiguous loops:
//!
//! * [`relax_row_into`] — `dst ← dst ⊕ (w ⊙ src)` per column: for
//!   min-plus one fused `x + w` / `min` pair per element,
//!   auto-vectorizable, no branches, no allocation;
//! * [`relax_rows_into`] — the same over many source rows,
//!   **cache-tiled** ([`ROW_TILE`] columns at a time) so for large `k`
//!   the destination tile stays in L1 while the source rows stream;
//! * [`fold_row_into`] — plain aggregation `dst ← dst ⊕ src` (the
//!   oracle's level fold `⊕_λ P_λ y_λ`).
//!
//! # Bit-identity with the sparse backends
//!
//! Every value a dense kernel produces is computed by the *same*
//! scalar operations as the sparse merge kernels: one `⊙` with the edge
//! coefficient and a fold of `⊕` over the incoming values. For min-plus
//! each entry is a single `x + w` and `⊕ = min` over `f64` is
//! idempotent, commutative, and associative — order-independent — so
//! dense results are **bit-identical to the owned/arena paths by
//! construction**, which makes differential testing exact (asserted by
//! `tests/schedule_equivalence.rs`). The tiled kernel visits, per
//! element, the source rows in exactly the same order as the untiled
//! loop, so even non-commutative folds would agree.
//!
//! [`DenseState`] bridges the sparse semimodules to their dense rows
//! ([`crate::DistanceMap`] ↔ `[MinPlus]`, [`crate::WidthMap`] ↔
//! `[Width]`, [`crate::NodeSet`] ↔ `[Bool]`): `write_dense` scatters
//! the non-zero coordinates, `read_dense` gathers them back in node
//! order — a lossless round trip because both representations are
//! canonical for the same function `V → S`.

use crate::boolean::Bool;
use crate::distance_map::DistanceMap;
use crate::maxmin::Width;
use crate::minplus::MinPlus;
use crate::node_set::NodeSet;
use crate::semimodule::Semimodule;
use crate::semiring::Semiring;
use crate::width_map::WidthMap;
use crate::NodeId;

/// Columns per cache tile of [`relax_rows_into`]: 1024 elements keep a
/// destination tile of `f64`-sized semiring values (8 KiB) resident in
/// L1 while the source rows stream through.
pub const ROW_TILE: usize = 1024;

/// The row-kernel hooks of a dense-representable semiring scalar: a
/// scalar reference implementation plus optional platform-tuned
/// overrides. An override **must** be bit-identical to the scalar
/// default — the engines treat the two as interchangeable, and the unit
/// suite differential-tests every override against the default on rows
/// covering the SIMD remainder lanes. `MinPlus` and `Width` override
/// with runtime-dispatched 256-bit AVX kernels (their `f64`-transparent
/// layout makes a row of wrapped values a plain `[f64]`); `Bool` keeps
/// the scalar loops.
pub trait DenseKernel: Semiring + Copy {
    /// `dst ← dst ⊕ (w ⊙ src)`, column by column — one MBF-like
    /// relaxation of a whole dense row.
    #[inline]
    fn relax_row(dst: &mut [Self], src: &[Self], w: Self) {
        scalar_relax(dst, src, w);
    }

    /// `dst ← dst ⊕ src`, column by column — plain aggregation without
    /// a coefficient (the oracle's ascending-λ level fold).
    #[inline]
    fn fold_row(dst: &mut [Self], src: &[Self]) {
        scalar_fold(dst, src);
    }

    /// Row equality: must return exactly `a == b` on the slices (the
    /// engines' change detection compares whole rows).
    #[inline]
    fn rows_equal(a: &[Self], b: &[Self]) -> bool {
        a == b
    }

    /// Three-address relaxation `dst ← base ⊕ (w ⊙ src)`, returning
    /// whether any column of `dst` differs from `base` — the fused
    /// initialize-and-track pass of [`relax_rows_tracked`] (no separate
    /// copy, no separate compare).
    #[inline]
    fn relax_row_init(dst: &mut [Self], base: &[Self], src: &[Self], w: Self) -> bool {
        scalar_relax_init(dst, base, src, w)
    }

    /// [`DenseKernel::relax_row`] that additionally reports whether any
    /// column changed relative to its value before the call.
    #[inline]
    fn relax_row_track(dst: &mut [Self], src: &[Self], w: Self) -> bool {
        scalar_relax_track(dst, src, w)
    }
}

/// The scalar relaxation loop — the reference every platform kernel is
/// differential-tested against.
#[inline]
fn scalar_relax<S: Semiring + Copy>(dst: &mut [S], src: &[S], w: S) {
    debug_assert_eq!(dst.len(), src.len(), "row length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.add(&s.mul(&w));
    }
}

/// The scalar aggregation loop (cf. [`scalar_relax`]).
#[inline]
fn scalar_fold<S: Semiring + Copy>(dst: &mut [S], src: &[S]) {
    debug_assert_eq!(dst.len(), src.len(), "row length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.add(s);
    }
}

/// The scalar three-address initialize-and-track loop (cf.
/// [`scalar_relax`]).
#[inline]
fn scalar_relax_init<S: Semiring + Copy>(dst: &mut [S], base: &[S], src: &[S], w: S) -> bool {
    debug_assert!(dst.len() == base.len() && dst.len() == src.len());
    let mut changed = false;
    for ((d, b), s) in dst.iter_mut().zip(base).zip(src) {
        let out = b.add(&s.mul(&w));
        changed |= out != *b;
        *d = out;
    }
    changed
}

/// The scalar tracked-relaxation loop (cf. [`scalar_relax`]).
#[inline]
fn scalar_relax_track<S: Semiring + Copy>(dst: &mut [S], src: &[S], w: S) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let out = d.add(&s.mul(&w));
        changed |= out != *d;
        *d = out;
    }
    changed
}

impl DenseKernel for Bool {}

impl DenseKernel for MinPlus {
    #[inline]
    fn relax_row(dst: &mut [MinPlus], src: &[MinPlus], w: MinPlus) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: AVX support was just checked; `MinPlus` is
            // `repr(transparent)` over `f64` (see `as_f64s`).
            unsafe { simd::minplus_relax(as_f64s_mut(dst), as_f64s(src), w.0.value()) };
            return;
        }
        scalar_relax(dst, src, w);
    }

    #[inline]
    fn fold_row(dst: &mut [MinPlus], src: &[MinPlus]) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            unsafe { simd::minplus_fold(as_f64s_mut(dst), as_f64s(src)) };
            return;
        }
        scalar_fold(dst, src);
    }

    #[inline]
    fn rows_equal(a: &[MinPlus], b: &[MinPlus]) -> bool {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            return unsafe { simd::f64_rows_equal(as_f64s(a), as_f64s(b)) };
        }
        a == b
    }

    #[inline]
    fn relax_row_init(dst: &mut [MinPlus], base: &[MinPlus], src: &[MinPlus], w: MinPlus) -> bool {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            return unsafe {
                simd::minplus_relax_init(as_f64s_mut(dst), as_f64s(base), as_f64s(src), w.0.value())
            };
        }
        scalar_relax_init(dst, base, src, w)
    }

    #[inline]
    fn relax_row_track(dst: &mut [MinPlus], src: &[MinPlus], w: MinPlus) -> bool {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            return unsafe {
                simd::minplus_relax_track(as_f64s_mut(dst), as_f64s(src), w.0.value())
            };
        }
        scalar_relax_track(dst, src, w)
    }
}

impl DenseKernel for Width {
    #[inline]
    fn relax_row(dst: &mut [Width], src: &[Width], w: Width) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: AVX support was just checked; `Width` is
            // `repr(transparent)` over `f64` (see `as_f64s`).
            unsafe { simd::maxmin_relax(width_f64s_mut(dst), width_f64s(src), w.0.value()) };
            return;
        }
        scalar_relax(dst, src, w);
    }

    #[inline]
    fn fold_row(dst: &mut [Width], src: &[Width]) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            unsafe { simd::maxmin_fold(width_f64s_mut(dst), width_f64s(src)) };
            return;
        }
        scalar_fold(dst, src);
    }

    #[inline]
    fn rows_equal(a: &[Width], b: &[Width]) -> bool {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            return unsafe { simd::f64_rows_equal(width_f64s(a), width_f64s(b)) };
        }
        a == b
    }

    #[inline]
    fn relax_row_init(dst: &mut [Width], base: &[Width], src: &[Width], w: Width) -> bool {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            return unsafe {
                simd::maxmin_relax_init(
                    width_f64s_mut(dst),
                    width_f64s(base),
                    width_f64s(src),
                    w.0.value(),
                )
            };
        }
        scalar_relax_init(dst, base, src, w)
    }

    #[inline]
    fn relax_row_track(dst: &mut [Width], src: &[Width], w: Width) -> bool {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if simd::avx_available() {
            // SAFETY: as in `relax_row`.
            return unsafe {
                simd::maxmin_relax_track(width_f64s_mut(dst), width_f64s(src), w.0.value())
            };
        }
        scalar_relax_track(dst, src, w)
    }
}

/// Views a `MinPlus` row as its raw `f64`s. Sound because `MinPlus` and
/// `Dist` are both `repr(transparent)` single-field wrappers, so the
/// slice layouts are identical; the kernels only ever write min/add/max
/// results of values that were valid `Dist`s, preserving the
/// non-negative/non-NaN invariant.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn as_f64s(row: &[MinPlus]) -> &[f64] {
    // SAFETY: `MinPlus` (and its inner `Dist`) is a `repr(transparent)`
    // single-field wrapper over `f64`, so the slice layouts coincide and
    // the lifetime/length are carried over unchanged.
    unsafe { std::slice::from_raw_parts(row.as_ptr() as *const f64, row.len()) }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn as_f64s_mut(row: &mut [MinPlus]) -> &mut [f64] {
    // SAFETY: as in `as_f64s`, plus the `&mut` borrow is unique, so no
    // aliasing view exists for the reborrow's lifetime.
    unsafe { std::slice::from_raw_parts_mut(row.as_mut_ptr() as *mut f64, row.len()) }
}

/// The `Width` counterpart of [`as_f64s`] (same layout argument).
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn width_f64s(row: &[Width]) -> &[f64] {
    // SAFETY: `Width` (and its inner `Dist`) is a `repr(transparent)`
    // single-field wrapper over `f64`, so the slice layouts coincide and
    // the lifetime/length are carried over unchanged.
    unsafe { std::slice::from_raw_parts(row.as_ptr() as *const f64, row.len()) }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn width_f64s_mut(row: &mut [Width]) -> &mut [f64] {
    // SAFETY: as in `width_f64s`, plus the `&mut` borrow is unique, so
    // no aliasing view exists for the reborrow's lifetime.
    unsafe { std::slice::from_raw_parts_mut(row.as_mut_ptr() as *mut f64, row.len()) }
}

/// Runtime-dispatched 256-bit AVX row kernels. Every lane computes the
/// *same* select the scalar wrappers compute (`cmp` + `blendv`, never
/// `vminpd`/`vmaxpd`, whose tie-breaking on signed zeros differs from
/// the scalar `<=`/`>=` selects), so the vector paths are bit-identical
/// to the scalar reference by construction — asserted lane-by-lane by
/// the unit suite, remainder lengths included. Excluded under miri
/// (the interpreter has no SIMD); the scalar fallback keeps every
/// platform correct.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod simd {
    use std::arch::x86_64::*;

    /// Whether the 256-bit kernels may run (cached by std's feature
    /// detection).
    #[inline]
    pub fn avx_available() -> bool {
        std::arch::is_x86_feature_detected!("avx")
    }

    /// `dst[i] ← if dst[i] <= cand { dst[i] } else { cand }` with
    /// `cand = src[i] + w`: exactly `MinPlus::add ∘ MinPlus::mul`.
    ///
    /// # Safety
    /// AVX must be available; `dst` and `src` must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn minplus_relax(dst: &mut [f64], src: &[f64], w: f64) {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let wv = _mm256_set1_pd(w);
            let mut i = 0;
            while i + 4 <= n {
                let dv = _mm256_loadu_pd(d.add(i));
                let cand = _mm256_add_pd(_mm256_loadu_pd(s.add(i)), wv);
                // keep dst where dst <= cand — the `Dist::min` select.
                let keep = _mm256_cmp_pd::<_CMP_LE_OQ>(dv, cand);
                _mm256_storeu_pd(d.add(i), _mm256_blendv_pd(cand, dv, keep));
                i += 4;
            }
            while i < n {
                let cand = *s.add(i) + w;
                let dv = *d.add(i);
                *d.add(i) = if dv <= cand { dv } else { cand };
                i += 1;
            }
        }
    }

    /// [`minplus_relax`] without the coefficient: `dst[i] ←
    /// min-select(dst[i], src[i])`.
    ///
    /// # Safety
    /// AVX must be available; `dst` and `src` must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn minplus_fold(dst: &mut [f64], src: &[f64]) {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let dv = _mm256_loadu_pd(d.add(i));
                let sv = _mm256_loadu_pd(s.add(i));
                let keep = _mm256_cmp_pd::<_CMP_LE_OQ>(dv, sv);
                _mm256_storeu_pd(d.add(i), _mm256_blendv_pd(sv, dv, keep));
                i += 4;
            }
            while i < n {
                let dv = *d.add(i);
                let sv = *s.add(i);
                *d.add(i) = if dv <= sv { dv } else { sv };
                i += 1;
            }
        }
    }

    /// `dst[i] ← max-select(dst[i], min-select(src[i], w))`: exactly
    /// `Width::add ∘ Width::mul` (`⊕ = max`, `⊙ = min`).
    ///
    /// # Safety
    /// AVX must be available; `dst` and `src` must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn maxmin_relax(dst: &mut [f64], src: &[f64], w: f64) {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let wv = _mm256_set1_pd(w);
            let mut i = 0;
            while i + 4 <= n {
                let dv = _mm256_loadu_pd(d.add(i));
                let sv = _mm256_loadu_pd(s.add(i));
                // cand = if src <= w { src } else { w } — the `Dist::min`
                // select of `Width::mul`.
                let keep_s = _mm256_cmp_pd::<_CMP_LE_OQ>(sv, wv);
                let cand = _mm256_blendv_pd(wv, sv, keep_s);
                // out = if dst >= cand { dst } else { cand } — `Dist::max`.
                let keep_d = _mm256_cmp_pd::<_CMP_GE_OQ>(dv, cand);
                _mm256_storeu_pd(d.add(i), _mm256_blendv_pd(cand, dv, keep_d));
                i += 4;
            }
            while i < n {
                let sv = *s.add(i);
                let cand = if sv <= w { sv } else { w };
                let dv = *d.add(i);
                *d.add(i) = if dv >= cand { dv } else { cand };
                i += 1;
            }
        }
    }

    /// [`maxmin_relax`] without the coefficient: `dst[i] ←
    /// max-select(dst[i], src[i])`.
    ///
    /// # Safety
    /// AVX must be available; `dst` and `src` must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn maxmin_fold(dst: &mut [f64], src: &[f64]) {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let dv = _mm256_loadu_pd(d.add(i));
                let sv = _mm256_loadu_pd(s.add(i));
                let keep = _mm256_cmp_pd::<_CMP_GE_OQ>(dv, sv);
                _mm256_storeu_pd(d.add(i), _mm256_blendv_pd(sv, dv, keep));
                i += 4;
            }
            while i < n {
                let dv = *d.add(i);
                let sv = *s.add(i);
                *d.add(i) = if dv >= sv { dv } else { sv };
                i += 1;
            }
        }
    }

    /// [`minplus_relax`] in three-address form with fused change
    /// tracking: `dst[i] ← min-select(base[i], src[i] + w)`, returning
    /// whether any lane differs from `base` (`_CMP_NEQ_UQ`; no NaN, so
    /// it is plain `!=`).
    ///
    /// # Safety
    /// AVX must be available; all three slices must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn minplus_relax_init(dst: &mut [f64], base: &[f64], src: &[f64], w: f64) -> bool {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert!(dst.len() == base.len() && dst.len() == src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let b = base.as_ptr();
            let s = src.as_ptr();
            let wv = _mm256_set1_pd(w);
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                let bv = _mm256_loadu_pd(b.add(i));
                let cand = _mm256_add_pd(_mm256_loadu_pd(s.add(i)), wv);
                let keep = _mm256_cmp_pd::<_CMP_LE_OQ>(bv, cand);
                let out = _mm256_blendv_pd(cand, bv, keep);
                acc = _mm256_or_pd(acc, _mm256_cmp_pd::<_CMP_NEQ_UQ>(out, bv));
                _mm256_storeu_pd(d.add(i), out);
                i += 4;
            }
            let mut changed = _mm256_movemask_pd(acc) != 0;
            while i < n {
                let bv = *b.add(i);
                let cand = *s.add(i) + w;
                let out = if bv <= cand { bv } else { cand };
                changed |= out != bv;
                *d.add(i) = out;
                i += 1;
            }
            changed
        }
    }

    /// [`minplus_relax`] with fused change tracking (cf.
    /// [`minplus_relax_init`], two-address form).
    ///
    /// # Safety
    /// AVX must be available; `dst` and `src` must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn minplus_relax_track(dst: &mut [f64], src: &[f64], w: f64) -> bool {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let wv = _mm256_set1_pd(w);
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                let dv = _mm256_loadu_pd(d.add(i));
                let cand = _mm256_add_pd(_mm256_loadu_pd(s.add(i)), wv);
                let moved = _mm256_cmp_pd::<_CMP_NEQ_UQ>(
                    _mm256_blendv_pd(cand, dv, _mm256_cmp_pd::<_CMP_LE_OQ>(dv, cand)),
                    dv,
                );
                acc = _mm256_or_pd(acc, moved);
                // Masked store: only lanes that actually improved are
                // written (an improved lane's new value is `cand`) — on a
                // converging hop most lanes are quiescent and the row's
                // cache lines stay clean.
                _mm256_maskstore_pd(d.add(i), _mm256_castpd_si256(moved), cand);
                i += 4;
            }
            let mut changed = _mm256_movemask_pd(acc) != 0;
            while i < n {
                let dv = *d.add(i);
                let cand = *s.add(i) + w;
                if dv > cand {
                    // (no NaN in the rows: dv > cand ⟺ !(dv <= cand))
                    *d.add(i) = cand;
                    changed = true;
                }
                i += 1;
            }
            changed
        }
    }

    /// [`maxmin_relax`] in three-address form with fused change
    /// tracking (cf. [`minplus_relax_init`]).
    ///
    /// # Safety
    /// AVX must be available; all three slices must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn maxmin_relax_init(dst: &mut [f64], base: &[f64], src: &[f64], w: f64) -> bool {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert!(dst.len() == base.len() && dst.len() == src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let b = base.as_ptr();
            let s = src.as_ptr();
            let wv = _mm256_set1_pd(w);
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                let bv = _mm256_loadu_pd(b.add(i));
                let sv = _mm256_loadu_pd(s.add(i));
                let keep_s = _mm256_cmp_pd::<_CMP_LE_OQ>(sv, wv);
                let cand = _mm256_blendv_pd(wv, sv, keep_s);
                let keep_b = _mm256_cmp_pd::<_CMP_GE_OQ>(bv, cand);
                let out = _mm256_blendv_pd(cand, bv, keep_b);
                acc = _mm256_or_pd(acc, _mm256_cmp_pd::<_CMP_NEQ_UQ>(out, bv));
                _mm256_storeu_pd(d.add(i), out);
                i += 4;
            }
            let mut changed = _mm256_movemask_pd(acc) != 0;
            while i < n {
                let sv = *s.add(i);
                let cand = if sv <= w { sv } else { w };
                let bv = *b.add(i);
                let out = if bv >= cand { bv } else { cand };
                changed |= out != bv;
                *d.add(i) = out;
                i += 1;
            }
            changed
        }
    }

    /// [`maxmin_relax`] with fused change tracking (two-address form).
    ///
    /// # Safety
    /// AVX must be available; `dst` and `src` must have equal length.
    #[target_feature(enable = "avx")]
    pub unsafe fn maxmin_relax_track(dst: &mut [f64], src: &[f64], w: f64) -> bool {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let wv = _mm256_set1_pd(w);
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                let dv = _mm256_loadu_pd(d.add(i));
                let sv = _mm256_loadu_pd(s.add(i));
                let keep_s = _mm256_cmp_pd::<_CMP_LE_OQ>(sv, wv);
                let cand = _mm256_blendv_pd(wv, sv, keep_s);
                let keep_d = _mm256_cmp_pd::<_CMP_GE_OQ>(dv, cand);
                let moved = _mm256_cmp_pd::<_CMP_NEQ_UQ>(_mm256_blendv_pd(cand, dv, keep_d), dv);
                acc = _mm256_or_pd(acc, moved);
                // Masked store (cf. `minplus_relax_track`): a moved lane's
                // new value is `cand`; quiescent lanes stay unwritten.
                _mm256_maskstore_pd(d.add(i), _mm256_castpd_si256(moved), cand);
                i += 4;
            }
            let mut changed = _mm256_movemask_pd(acc) != 0;
            while i < n {
                let sv = *s.add(i);
                let cand = if sv <= w { sv } else { w };
                let dv = *d.add(i);
                if dv < cand {
                    // (no NaN in the rows: dv < cand ⟺ !(dv >= cand))
                    *d.add(i) = cand;
                    changed = true;
                }
                i += 1;
            }
            changed
        }
    }

    /// Whole-row `f64` equality with IEEE `==` semantics (`_CMP_EQ_OQ`;
    /// the rows never hold NaN), identical to the scalar slice compare.
    ///
    /// # Safety
    /// AVX must be available.
    #[target_feature(enable = "avx")]
    pub unsafe fn f64_rows_equal(a: &[f64], b: &[f64]) -> bool {
        // SAFETY: the caller guarantees AVX support and the slice-length
        // contract in the doc comment; every pointer below is derived from
        // one of the argument slices and offset by an index < its length.
        unsafe {
            if a.len() != b.len() {
                return false;
            }
            let n = a.len();
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(
                    _mm256_loadu_pd(pa.add(i)),
                    _mm256_loadu_pd(pb.add(i)),
                );
                if _mm256_movemask_pd(eq) != 0b1111 {
                    return false;
                }
                i += 4;
            }
            while i < n {
                if *pa.add(i) != *pb.add(i) {
                    return false;
                }
                i += 1;
            }
            true
        }
    }
}

/// `dst ← dst ⊕ (w ⊙ src)`, column by column — one MBF-like relaxation
/// of a whole dense row through the scalar's [`DenseKernel`] (the AVX
/// fast path for min-plus and max-min, the scalar loop otherwise); the
/// scalar operations are exactly those of the sparse merge kernels, so
/// the results are bit-identical.
#[inline]
pub fn relax_row_into<S: DenseKernel>(dst: &mut [S], src: &[S], w: S) {
    S::relax_row(dst, src, w);
}

/// `dst ← dst ⊕ src`, column by column — plain aggregation without a
/// coefficient (the oracle's ascending-λ level fold).
#[inline]
pub fn fold_row_into<S: DenseKernel>(dst: &mut [S], src: &[S]) {
    S::fold_row(dst, src);
}

/// Row equality through the scalar's [`DenseKernel`]: exactly `a == b`,
/// vectorized where the scalar provides it (the engines' change
/// detection runs this per touched row).
#[inline]
pub fn rows_equal<S: DenseKernel>(a: &[S], b: &[S]) -> bool {
    S::rows_equal(a, b)
}

/// Aggregates many source rows into `dst`, cache-tiled: columns are
/// processed [`ROW_TILE`] at a time, all source rows relaxing one tile
/// before moving to the next, so the destination tile stays hot across
/// the whole in-neighborhood. Per element, the sources are folded in
/// slice order — exactly the order the untiled neighbor loop uses — so
/// tiling never changes a result, even for non-commutative folds.
pub fn relax_rows_into<S: DenseKernel>(dst: &mut [S], srcs: &[(&[S], S)]) {
    dense_kernel_fault(dst);
    let k = dst.len();
    let mut start = 0;
    while start < k {
        let end = (start + ROW_TILE).min(k);
        for &(src, w) in srcs {
            S::relax_row(&mut dst[start..end], &src[start..end], w);
        }
        start = end;
    }
}

/// The fused hot path of a dense recompute under an **identity
/// filter**: `dst ← base ⊕ ⊕ᵢ (wᵢ ⊙ srcᵢ)` computed tile by tile with
/// no separate copy pass and no separate compare pass, returning
/// whether `dst` differs from `base` — bit-identical (result *and*
/// changed flag) to copy + [`relax_rows_into`] + [`rows_equal`].
///
/// The fused changed flag is sound because every [`DenseKernel`]
/// scalar's `⊕` is an idempotent **semilattice fold** (min, max, or):
/// per lane the value moves monotonically away from its base and can
/// never return, so "some pass moved some lane" ⟺ `dst != base`. With
/// `srcs` empty the row is copied verbatim (`false`).
pub fn relax_rows_tracked<S: DenseKernel>(dst: &mut [S], base: &[S], srcs: &[(&[S], S)]) -> bool {
    dense_kernel_fault(dst);
    let k = dst.len();
    debug_assert_eq!(k, base.len());
    let Some((first, rest)) = srcs.split_first() else {
        dst.copy_from_slice(base);
        return false;
    };
    let mut changed = false;
    let mut start = 0;
    while start < k {
        let end = (start + ROW_TILE).min(k);
        changed |= S::relax_row_init(
            &mut dst[start..end],
            &base[start..end],
            &first.0[start..end],
            first.1,
        );
        for &(src, w) in rest {
            changed |= S::relax_row_track(&mut dst[start..end], &src[start..end], w);
        }
        start = end;
    }
    changed
}

/// Fault-injection hook shared by the row kernels: a `panic` fault
/// unwinds mid-relaxation, a `poison_nan` fault corrupts the first
/// destination element before the kernel runs.
#[inline]
fn dense_kernel_fault<S: Semiring>(dst: &mut [S]) {
    match mte_faults::check_for(
        mte_faults::FaultSite::DenseRowKernel,
        &[
            mte_faults::FaultKind::Panic,
            mte_faults::FaultKind::PoisonNan,
        ],
    ) {
        Some(mte_faults::FaultKind::Panic) => {
            mte_faults::trigger_panic(mte_faults::FaultSite::DenseRowKernel)
        }
        Some(mte_faults::FaultKind::PoisonNan) => {
            if let Some(d) = dst.first_mut() {
                d.poison();
            }
        }
        _ => {}
    }
}

/// A semimodule state that admits a dense row representation over the
/// columns `0..k` (node ids): coordinate `u` of the state lives at
/// column `u`, absent coordinates hold the semiring zero. The round
/// trip `read_dense(write_dense(x)) = x` is exact — both
/// representations are canonical for the same function `V → S`.
pub trait DenseState<S: Semiring + Copy>: Semimodule<S> {
    /// Scatters the state into `row` (overwriting it entirely: absent
    /// coordinates are set to the semiring zero).
    fn write_dense(&self, row: &mut [S]);

    /// Gathers the non-zero coordinates of `row` back into the sparse
    /// representation.
    fn read_dense(row: &[S]) -> Self;

    /// Number of non-zero coordinates of `row` (the paper's `|x|` read
    /// off the dense representation).
    fn dense_len(row: &[S]) -> usize {
        row.iter().filter(|v| !Semiring::is_zero(*v)).count()
    }
}

impl DenseState<MinPlus> for DistanceMap {
    fn write_dense(&self, row: &mut [MinPlus]) {
        row.fill(<MinPlus as Semiring>::zero());
        for (u, d) in self.iter() {
            row[u as usize] = MinPlus(d);
        }
    }

    fn read_dense(row: &[MinPlus]) -> Self {
        row.iter()
            .enumerate()
            .filter(|(_, v)| v.0.is_finite())
            .map(|(u, v)| (u as NodeId, v.0))
            .collect()
    }
}

impl DenseState<Width> for WidthMap {
    fn write_dense(&self, row: &mut [Width]) {
        row.fill(<Width as Semiring>::zero());
        for (u, w) in self.iter() {
            row[u as usize] = w;
        }
    }

    fn read_dense(row: &[Width]) -> Self {
        WidthMap::from_entries(
            row.iter()
                .enumerate()
                .filter(|(_, v)| !Semiring::is_zero(*v))
                .map(|(u, &v)| (u as NodeId, v))
                .collect(),
        )
    }
}

impl DenseState<Bool> for NodeSet {
    fn write_dense(&self, row: &mut [Bool]) {
        row.fill(Bool(false));
        for &u in self.nodes() {
            row[u as usize] = Bool(true);
        }
    }

    fn read_dense(row: &[Bool]) -> Self {
        NodeSet::from_nodes(
            row.iter()
                .enumerate()
                .filter(|(_, v)| v.0)
                .map(|(u, _)| u as NodeId)
                .collect(),
        )
    }
}

/// A dense-block allocation was refused: the requested matrix exceeds
/// the configured memory budget, or a simulated allocation failure was
/// injected. Recoverable — the switching engine declines the flip and
/// completes on the sparse representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DenseAllocError {
    /// Bytes the refused block would have occupied.
    pub requested_bytes: u64,
    /// The budget in force, if any (`None` for an injected failure
    /// under an unlimited budget).
    pub budget_bytes: Option<u64>,
}

impl std::fmt::Display for DenseAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.budget_bytes {
            Some(b) => write!(
                f,
                "dense block allocation of {} bytes exceeds budget of {} bytes",
                self.requested_bytes, b
            ),
            None => write!(
                f,
                "dense block allocation of {} bytes failed",
                self.requested_bytes
            ),
        }
    }
}

impl std::error::Error for DenseAllocError {}

/// A whole state vector `x ∈ M^V` as one flat row-major matrix: `rows`
/// vertices × `cols` coordinates of semiring values, vertex `v`'s state
/// at `values[v·cols .. (v+1)·cols]`. See the module docs for the
/// design; the engine backend lives in `mte_core::dense`.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseBlock<S> {
    rows: usize,
    cols: usize,
    values: Vec<S>,
}

impl<S: Semiring + Copy> DenseBlock<S> {
    /// An all-zero block (`⊥` in every row).
    pub fn new(rows: usize, cols: usize) -> Self {
        DenseBlock {
            rows,
            cols,
            values: vec![<S as Semiring>::zero(); rows * cols],
        }
    }

    /// Bytes the value storage of a `rows × cols` block would occupy.
    #[inline]
    pub fn bytes_for(rows: usize, cols: usize) -> u64 {
        rows as u64 * cols as u64 * std::mem::size_of::<S>() as u64
    }

    /// Like [`DenseBlock::new`], but refuses to allocate past
    /// `budget_bytes` — the graceful-degradation hook the switching
    /// engine uses to decline a dense flip instead of overcommitting
    /// memory. An armed `alloc_fail` fault at the `dense_row_kernel`
    /// site simulates exhaustion even under no (or a large) budget; it
    /// is logged as **handled** because the caller answers with a typed
    /// error or a recorded degradation, never silent corruption.
    pub fn try_new(
        rows: usize,
        cols: usize,
        budget_bytes: Option<u64>,
    ) -> Result<Self, DenseAllocError> {
        let requested_bytes = Self::bytes_for(rows, cols);
        let over_budget = budget_bytes.is_some_and(|b| requested_bytes > b);
        let injected = mte_faults::check_handled(
            mte_faults::FaultSite::DenseRowKernel,
            &[mte_faults::FaultKind::AllocFail],
        )
        .is_some();
        if over_budget || injected {
            return Err(DenseAllocError {
                requested_bytes,
                budget_bytes,
            });
        }
        Ok(DenseBlock::new(rows, cols))
    }

    /// Builds a block from a sparse state vector (`cols` columns per
    /// row; states must not hold coordinates ≥ `cols`).
    pub fn from_states<M: DenseState<S>>(states: &[M], cols: usize) -> Self {
        let mut block = DenseBlock::new(states.len(), cols);
        for (v, x) in states.iter().enumerate() {
            x.write_dense(block.row_mut(v as NodeId));
        }
        block
    }

    /// Budget-checked [`DenseBlock::from_states`].
    pub fn try_from_states<M: DenseState<S>>(
        states: &[M],
        cols: usize,
        budget_bytes: Option<u64>,
    ) -> Result<Self, DenseAllocError> {
        let mut block = DenseBlock::try_new(states.len(), cols, budget_bytes)?;
        for (v, x) in states.iter().enumerate() {
            x.write_dense(block.row_mut(v as NodeId));
        }
        Ok(block)
    }

    /// Exports every row back to the sparse representation
    /// (bit-identical round trip; the interop/verification boundary).
    pub fn export<M: DenseState<S>>(&self) -> Vec<M> {
        (0..self.rows)
            .map(|v| M::read_dense(self.row(v as NodeId)))
            .collect()
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (coordinates per state).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Vertex `v`'s row.
    #[inline]
    pub fn row(&self, v: NodeId) -> &[S] {
        let a = v as usize * self.cols;
        &self.values[a..a + self.cols]
    }

    /// Vertex `v`'s row, mutable.
    #[inline]
    pub fn row_mut(&mut self, v: NodeId) -> &mut [S] {
        let a = v as usize * self.cols;
        &mut self.values[a..a + self.cols]
    }

    /// Overwrites vertex `v`'s row from a sparse state.
    pub fn set_row<M: DenseState<S>>(&mut self, v: NodeId, state: &M) {
        state.write_dense(self.row_mut(v));
    }

    /// The whole flat value storage (row-major).
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// The whole flat value storage, mutable (the engine writes disjoint
    /// rows from parallel chunks through this).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// Non-zero coordinates across all rows (`Σ_v |x_v|`) — the
    /// density statistic the representation-switching engine reads.
    pub fn live_entries(&self) -> usize {
        self.values
            .iter()
            .filter(|v| !Semiring::is_zero(*v))
            .count()
    }

    /// Bytes held by the block's value storage.
    pub fn bytes(&self) -> u64 {
        (self.values.len() * std::mem::size_of::<S>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;

    fn dm(pairs: &[(NodeId, f64)]) -> DistanceMap {
        pairs.iter().map(|&(v, d)| (v, Dist::new(d))).collect()
    }

    #[test]
    fn distance_map_round_trips_through_dense_row() {
        let x = dm(&[(0, 0.0), (3, 2.5), (7, 9.0)]);
        let mut row = vec![<MinPlus as Semiring>::zero(); 8];
        x.write_dense(&mut row);
        assert_eq!(row[3], MinPlus::new(2.5));
        assert_eq!(row[1], <MinPlus as Semiring>::zero());
        assert_eq!(DistanceMap::read_dense(&row), x);
        assert_eq!(<DistanceMap as DenseState<MinPlus>>::dense_len(&row), 3);
    }

    #[test]
    fn width_map_and_node_set_round_trip() {
        let w = WidthMap::from_entries(vec![(1, Width::new(2.0)), (4, Width::INF)]);
        let mut row = vec![<Width as Semiring>::zero(); 6];
        w.write_dense(&mut row);
        assert_eq!(WidthMap::read_dense(&row), w);

        let s = NodeSet::from_nodes(vec![0, 2, 5]);
        let mut row = vec![Bool(false); 6];
        s.write_dense(&mut row);
        assert_eq!(NodeSet::read_dense(&row), s);
    }

    #[test]
    fn relax_row_matches_sparse_merge_scaled() {
        // The dense relaxation must produce bit-identical values to the
        // sparse merge kernel: same `x + w`, same `min`.
        let acc = dm(&[(1, 2.0), (3, 5.0), (7, 1.0)]);
        let other = dm(&[(1, 0.5), (2, 1.0), (7, 3.0)]);
        let k = 8;
        let mut dst = vec![<MinPlus as Semiring>::zero(); k];
        let mut src = vec![<MinPlus as Semiring>::zero(); k];
        acc.write_dense(&mut dst);
        other.write_dense(&mut src);
        relax_row_into(&mut dst, &src, MinPlus::new(1.5));

        let mut expect = acc.clone();
        expect.merge_scaled(&other, Dist::new(1.5));
        assert_eq!(DistanceMap::read_dense(&dst), expect);
    }

    #[test]
    fn fold_row_matches_merge_min() {
        let a = dm(&[(0, 1.0), (2, 4.0)]);
        let b = dm(&[(0, 0.5), (3, 2.0)]);
        let mut dst = vec![<MinPlus as Semiring>::zero(); 4];
        let mut src = vec![<MinPlus as Semiring>::zero(); 4];
        a.write_dense(&mut dst);
        b.write_dense(&mut src);
        fold_row_into(&mut dst, &src);
        let mut expect = a.clone();
        expect.merge_min(&b);
        assert_eq!(DistanceMap::read_dense(&dst), expect);
    }

    #[test]
    fn tracked_aggregation_matches_copy_relax_compare() {
        // The fused path (no copy, no compare) must reproduce the
        // reference pipeline exactly: values and changed flag, across
        // source counts 0..4 and tile-spanning lengths.
        for len in [0usize, 1, 5, ROW_TILE + 37] {
            for nsrcs in 0..4usize {
                let base = minplus_row(len, 7);
                let srcs_data: Vec<Vec<MinPlus>> = (0..nsrcs)
                    .map(|i| minplus_row(len, 31 + i as u64))
                    .collect();
                let srcs: Vec<(&[MinPlus], MinPlus)> = srcs_data
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_slice(), MinPlus::new(i as f64 + 0.5)))
                    .collect();

                let mut reference = vec![<MinPlus as Semiring>::zero(); len];
                reference.copy_from_slice(&base);
                relax_rows_into(&mut reference, &srcs);
                let ref_changed = reference != base;

                let mut fused = vec![<MinPlus as Semiring>::zero(); len];
                let fused_changed = relax_rows_tracked(&mut fused, &base, &srcs);
                assert_eq!(fused, reference, "len={len} nsrcs={nsrcs}");
                assert_eq!(fused_changed, ref_changed, "len={len} nsrcs={nsrcs}");
            }
        }
    }

    #[test]
    fn tiled_aggregation_is_bit_identical_to_untiled() {
        // k > ROW_TILE so tiling actually splits; fold order per element
        // must match the plain neighbor loop.
        let k = ROW_TILE + 37;
        let srcs_data: Vec<Vec<MinPlus>> = (0..3)
            .map(|s| {
                (0..k)
                    .map(|i| {
                        if (i + s) % 3 == 0 {
                            MinPlus::new(((i * 7 + s * 11) % 100) as f64)
                        } else {
                            <MinPlus as Semiring>::zero()
                        }
                    })
                    .collect()
            })
            .collect();
        let weights = [MinPlus::new(1.0), MinPlus::new(2.5), MinPlus::new(0.25)];
        let mut tiled = vec![<MinPlus as Semiring>::zero(); k];
        let srcs: Vec<(&[MinPlus], MinPlus)> = srcs_data
            .iter()
            .zip(weights)
            .map(|(s, w)| (s.as_slice(), w))
            .collect();
        relax_rows_into(&mut tiled, &srcs);

        let mut plain = vec![<MinPlus as Semiring>::zero(); k];
        for &(src, w) in &srcs {
            relax_row_into(&mut plain, src, w);
        }
        assert_eq!(tiled, plain);
    }

    #[test]
    fn relax_over_maxmin_is_widest_path_step() {
        // dst ← max(dst, min(src, w)): bottleneck relaxation.
        let mut dst = vec![Width::new(1.0), <Width as Semiring>::zero()];
        let src = vec![Width::INF, Width::new(5.0)];
        relax_row_into(&mut dst, &src, Width::new(3.0));
        assert_eq!(dst, vec![Width::new(3.0), Width::new(3.0)]);
    }

    #[test]
    fn block_from_states_and_export_round_trip() {
        let states = vec![dm(&[(0, 0.0), (2, 3.0)]), dm(&[]), dm(&[(1, 1.5)])];
        let block = DenseBlock::<MinPlus>::from_states(&states, 3);
        assert_eq!(block.rows(), 3);
        assert_eq!(block.cols(), 3);
        assert_eq!(block.row(0)[2], MinPlus::new(3.0));
        assert_eq!(block.live_entries(), 3);
        assert_eq!(block.bytes(), (9 * std::mem::size_of::<MinPlus>()) as u64);
        let back: Vec<DistanceMap> = block.export();
        assert_eq!(back, states);
    }

    /// Deterministic pseudo-random rows mixing finite values, zeros,
    /// and `∞`, at lengths covering the 4-lane SIMD remainder.
    fn minplus_row(len: usize, salt: u64) -> Vec<MinPlus> {
        (0..len)
            .map(|i| {
                let h = (i as u64 + 1)
                    .wrapping_mul(salt | 1)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                match h % 5 {
                    0 => MinPlus(Dist::INF),
                    1 => MinPlus::new(0.0),
                    _ => MinPlus::new(((h >> 16) % 1000) as f64 / 8.0),
                }
            })
            .collect()
    }

    #[test]
    fn platform_kernels_bit_identical_to_scalar_reference() {
        // The AVX overrides (when the host dispatches them) must agree
        // with the scalar loops lane for lane, remainders included.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 31, 257] {
            for salt in [1u64, 99, 12345] {
                let src = minplus_row(len, salt);
                let dst0 = minplus_row(len, salt ^ 0xABCD);
                let w = MinPlus::new(1.5);

                let mut scalar = dst0.clone();
                scalar_relax(&mut scalar, &src, w);
                let mut platform = dst0.clone();
                MinPlus::relax_row(&mut platform, &src, w);
                assert_eq!(scalar, platform, "relax len={len} salt={salt}");

                let mut scalar = dst0.clone();
                scalar_fold(&mut scalar, &src);
                let mut platform = dst0.clone();
                MinPlus::fold_row(&mut platform, &src);
                assert_eq!(scalar, platform, "fold len={len} salt={salt}");

                // Fused init/track kernels: values and changed flags.
                let mut scalar = vec![<MinPlus as Semiring>::zero(); len];
                let sc = scalar_relax_init(&mut scalar, &dst0, &src, w);
                let mut platform = vec![<MinPlus as Semiring>::zero(); len];
                let pc = MinPlus::relax_row_init(&mut platform, &dst0, &src, w);
                assert_eq!(scalar, platform, "init len={len} salt={salt}");
                assert_eq!(sc, pc, "init flag len={len} salt={salt}");
                let mut scalar = dst0.clone();
                let sc = scalar_relax_track(&mut scalar, &src, w);
                let mut platform = dst0.clone();
                let pc = MinPlus::relax_row_track(&mut platform, &src, w);
                assert_eq!(scalar, platform, "track len={len} salt={salt}");
                assert_eq!(sc, pc, "track flag len={len} salt={salt}");

                // Width init/track too.
                {
                    let wsrc: Vec<Width> = src.iter().map(|m| Width(m.0)).collect();
                    let wdst0: Vec<Width> = dst0.iter().map(|m| Width(m.0)).collect();
                    let ww = Width::new(3.0);
                    let mut scalar = vec![<Width as Semiring>::zero(); len];
                    let sc = scalar_relax_init(&mut scalar, &wdst0, &wsrc, ww);
                    let mut platform = vec![<Width as Semiring>::zero(); len];
                    let pc = Width::relax_row_init(&mut platform, &wdst0, &wsrc, ww);
                    assert_eq!(scalar, platform, "w-init len={len} salt={salt}");
                    assert_eq!(sc, pc, "w-init flag len={len} salt={salt}");
                    let mut scalar = wdst0.clone();
                    let sc = scalar_relax_track(&mut scalar, &wsrc, ww);
                    let mut platform = wdst0.clone();
                    let pc = Width::relax_row_track(&mut platform, &wsrc, ww);
                    assert_eq!(scalar, platform, "w-track len={len} salt={salt}");
                    assert_eq!(sc, pc, "w-track flag len={len} salt={salt}");
                }

                // Equality kernel: equal rows, a mutated row (every
                // position), and length mismatches.
                assert!(MinPlus::rows_equal(&dst0, &dst0.clone()));
                for flip in 0..len {
                    let mut other = dst0.clone();
                    other[flip] = MinPlus::new(123456.0);
                    assert_eq!(
                        MinPlus::rows_equal(&dst0, &other),
                        dst0 == other.as_slice(),
                        "eq len={len} flip={flip}"
                    );
                }
                if len > 0 {
                    assert!(!MinPlus::rows_equal(&dst0, &dst0[..len - 1]));
                }

                // Max-min: the same rows reinterpreted as widths.
                let wsrc: Vec<Width> = src.iter().map(|m| Width(m.0)).collect();
                let wdst0: Vec<Width> = dst0.iter().map(|m| Width(m.0)).collect();
                let ww = Width::new(3.0);
                let mut scalar = wdst0.clone();
                scalar_relax(&mut scalar, &wsrc, ww);
                let mut platform = wdst0.clone();
                Width::relax_row(&mut platform, &wsrc, ww);
                assert_eq!(scalar, platform, "width relax len={len} salt={salt}");
                let mut scalar = wdst0.clone();
                scalar_fold(&mut scalar, &wsrc);
                let mut platform = wdst0.clone();
                Width::fold_row(&mut platform, &wsrc);
                assert_eq!(scalar, platform, "width fold len={len} salt={salt}");
                assert!(Width::rows_equal(&wdst0, &wdst0.clone()));
            }
        }
    }

    #[test]
    fn set_row_overwrites_stale_contents() {
        let mut block = DenseBlock::<MinPlus>::new(2, 4);
        block.set_row(1, &dm(&[(0, 1.0), (3, 2.0)]));
        block.set_row(1, &dm(&[(2, 5.0)]));
        assert_eq!(
            DistanceMap::read_dense(block.row(1)),
            dm(&[(2, 5.0)]),
            "stale coordinates must be cleared"
        );
    }
}
