//! Representative projections ("filters") of congruence relations
//! (Definitions 2.4 and 2.6 of the paper).
//!
//! A filter `r : M → M` picks a small canonical representative of each
//! equivalence class of a congruence relation `∼` on the semimodule `M`.
//! MBF-like algorithms apply `r` after every aggregation step; by
//! Corollary 2.17 (`r^V ∼ id`) this never changes the (class of the)
//! output, only the cost of computing it.

use crate::semimodule::Semimodule;
use crate::semiring::Semiring;

/// A representative projection `r` with its induced congruence
/// `x ∼ y :⇔ r(x) = r(y)` (Equation (7.4)-style definition, Lemma 2.8).
///
/// Implementations must satisfy, for all `s ∈ S` and `x, y ∈ M`:
///
/// * `r(r(x)) = r(x)` (projection, Observation 2.7),
/// * `r(s ⊙ x) = r(s ⊙ r(x))` (Equation (2.12)),
/// * `r(x ⊕ y) = r(r(x) ⊕ r(y))` (Equation (2.13), in the symmetrized
///   form (7.7) that is equivalent for projections).
///
/// [`crate::laws::check_congruence`] verifies these on sample inputs and is
/// exercised by every filter's property tests.
pub trait Filter<S: Semiring, M: Semimodule<S>>: Send + Sync {
    /// Applies `r` in place.
    fn apply(&self, x: &mut M);

    /// Returns the canonical representative `r(x)`.
    fn canonical(&self, x: &M) -> M {
        let mut y = x.clone();
        self.apply(&mut y);
        y
    }

    /// Tests `x ∼ y`, i.e. `r(x) = r(y)`.
    fn equivalent(&self, x: &M, y: &M) -> bool {
        self.canonical(x) == self.canonical(y)
    }
}

/// The trivial filter `r = id` (used by SSSP, APSP, widest paths, …).
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityFilter;

impl<S: Semiring, M: Semimodule<S>> Filter<S, M> for IdentityFilter {
    #[inline]
    fn apply(&self, _x: &mut M) {}

    #[inline]
    fn canonical(&self, x: &M) -> M {
        x.clone()
    }

    #[inline]
    fn equivalent(&self, x: &M, y: &M) -> bool {
        x == y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minplus::MinPlus;

    #[test]
    fn identity_filter_is_identity() {
        let x = MinPlus::new(1.0);
        let f = IdentityFilter;
        assert_eq!(Filter::<MinPlus, MinPlus>::canonical(&f, &x), x);
        assert!(Filter::<MinPlus, MinPlus>::equivalent(&f, &x, &x));
        assert!(!Filter::<MinPlus, MinPlus>::equivalent(
            &f,
            &x,
            &MinPlus::new(2.0)
        ));
    }
}
