//! The Boolean semiring `B = ({0,1}, ∨, ∧)` (Section 3.4), used for
//! connectivity queries.

use crate::semiring::Semiring;

/// Element of the Boolean semiring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Bool(pub bool);

impl Bool {
    /// The "connected" value.
    pub const TRUE: Bool = Bool(true);
    /// The "not connected" value.
    pub const FALSE: Bool = Bool(false);
}

impl Semiring for Bool {
    #[inline]
    fn zero() -> Self {
        Bool(false)
    }

    #[inline]
    fn one() -> Self {
        Bool(true)
    }

    /// Logical or.
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        Bool(self.0 || rhs.0)
    }

    /// Logical and.
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        Bool(self.0 && rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table() {
        assert_eq!(Bool(true).add(&Bool(false)), Bool(true));
        assert_eq!(Bool(false).add(&Bool(false)), Bool(false));
        assert_eq!(Bool(true).mul(&Bool(false)), Bool(false));
        assert_eq!(Bool(true).mul(&Bool(true)), Bool(true));
    }

    #[test]
    fn neutral_and_annihilator() {
        assert_eq!(Bool::zero(), Bool(false));
        assert_eq!(Bool::one(), Bool(true));
        assert_eq!(Bool::zero().mul(&Bool(true)), Bool::zero());
    }
}
