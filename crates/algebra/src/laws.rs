//! Executable statements of the paper's algebraic laws
//! (Definitions A.2, A.3, 2.4, 2.6; Lemma 2.8).
//!
//! Each checker returns `Err` with a human-readable description of the
//! first violated law, which the property tests surface as a
//! counterexample. Keeping the laws in library code (rather than inlined
//! in tests) lets every semiring/semimodule/filter share one definition.

use crate::filter::Filter;
use crate::semimodule::Semimodule;
use crate::semiring::Semiring;

/// Checks all semiring laws of Definition A.2 on the sample `(x, y, z)`.
pub fn check_semiring<S: Semiring>(x: &S, y: &S, z: &S) -> Result<(), String> {
    let zero = S::zero();
    let one = S::one();

    // (1) (S, ⊕): associative, commutative, neutral zero.
    ensure(x.add(&y.add(z)) == x.add(y).add(z), "⊕ is not associative")?;
    ensure(x.add(y) == y.add(x), "⊕ is not commutative")?;
    ensure(
        x.add(&zero) == *x && zero.add(x) == *x,
        "0 is not ⊕-neutral",
    )?;

    // (2) (S, ⊙): associative, neutral one.
    ensure(x.mul(&y.mul(z)) == x.mul(y).mul(z), "⊙ is not associative")?;
    ensure(x.mul(&one) == *x && one.mul(x) == *x, "1 is not ⊙-neutral")?;

    // (3) distributive laws (A.4), (A.5).
    ensure(
        x.mul(&y.add(z)) == x.mul(y).add(&x.mul(z)),
        "left distributivity fails",
    )?;
    ensure(
        y.add(z).mul(x) == y.mul(x).add(&z.mul(x)),
        "right distributivity fails",
    )?;

    // (4) 0 annihilates (A.6).
    ensure(
        zero.mul(x) == zero && x.mul(&zero) == zero,
        "0 does not annihilate",
    )
}

/// Checks the zero-preserving semimodule laws of Definition A.3 /
/// Equations (2.1)–(2.5) on scalars `(s, t)` and vectors `(x, y)`.
pub fn check_semimodule<S: Semiring, M: Semimodule<S>>(
    s: &S,
    t: &S,
    x: &M,
    y: &M,
) -> Result<(), String> {
    let bot = M::zero();

    // (M, ⊕) is a semigroup with neutral ⊥.
    ensure(x.add(&bot) == *x && bot.add(x) == *x, "⊥ is not ⊕-neutral")?;
    ensure(
        x.add(&y.add(&bot)) == x.add(y).add(&bot),
        "⊕ is not associative",
    )?;

    // (2.1) / (A.7): 1 ⊙ x = x.
    ensure(x.scale(&S::one()) == *x, "1 ⊙ x ≠ x")?;
    // (2.2) / (A.11): 0 ⊙ x = ⊥ (zero preservation).
    ensure(x.scale(&S::zero()) == bot, "0 ⊙ x ≠ ⊥")?;
    // (2.3) / (A.8): s ⊙ (x ⊕ y) = sx ⊕ sy.
    ensure(
        x.add(y).scale(s) == x.scale(s).add(&y.scale(s)),
        "s(x ⊕ y) ≠ sx ⊕ sy",
    )?;
    // (2.4) / (A.9): (s ⊕ t) ⊙ x = sx ⊕ tx.
    ensure(
        x.scale(&s.add(t)) == x.scale(s).add(&x.scale(t)),
        "(s ⊕ t)x ≠ sx ⊕ tx",
    )?;
    // (2.5) / (A.10): (s ⊙ t) ⊙ x = s ⊙ (t ⊙ x).
    ensure(
        x.scale(&s.mul(t)) == x.scale(t).scale(s),
        "(s ⊙ t)x ≠ s(tx)",
    )
}

/// Checks that `r` is a representative projection of a congruence relation
/// (Lemma 2.8 in the symmetrized form used by Lemma 7.5): on samples
/// `(s, x, y)` it validates `r² = r`, `r(sx) = r(s·r(x))` and
/// `r(x ⊕ y) = r(r(x) ⊕ r(y))`.
pub fn check_congruence<S, M, F>(filter: &F, s: &S, x: &M, y: &M) -> Result<(), String>
where
    S: Semiring,
    M: Semimodule<S>,
    F: Filter<S, M>,
{
    let rx = filter.canonical(x);
    let ry = filter.canonical(y);

    // Projection: r² = r (Observation 2.7).
    ensure(
        filter.canonical(&rx) == rx,
        "r is not a projection (r² ≠ r)",
    )?;

    // (2.12): x ∼ r(x) ⇒ sx ∼ s·r(x).
    ensure(
        filter.canonical(&x.scale(s)) == filter.canonical(&rx.scale(s)),
        "congruence violated under scaling (2.12)",
    )?;

    // (2.13)/(7.7): r(x ⊕ y) = r(r(x) ⊕ r(y)).
    ensure(
        filter.canonical(&x.add(y)) == filter.canonical(&rx.add(&ry)),
        "congruence violated under aggregation (2.13)",
    )
}

fn ensure(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::maxmin::Width;
    use crate::minplus::MinPlus;

    #[test]
    fn minplus_is_a_semiring() {
        let zero = <MinPlus as Semiring>::zero();
        check_semiring(&MinPlus::new(1.0), &MinPlus::new(2.5), &zero).unwrap();
    }

    #[test]
    fn maxmin_is_a_semiring() {
        let one = <Width as Semiring>::one();
        check_semiring(&Width::new(1.0), &Width::new(2.5), &one).unwrap();
    }

    #[test]
    fn boolean_is_a_semiring() {
        for x in [Bool(false), Bool(true)] {
            for y in [Bool(false), Bool(true)] {
                for z in [Bool(false), Bool(true)] {
                    check_semiring(&x, &y, &z).unwrap();
                }
            }
        }
    }

    #[test]
    fn semiring_is_module_over_itself() {
        let zero = <MinPlus as Semiring>::zero();
        check_semimodule(
            &MinPlus::new(1.0),
            &MinPlus::new(0.5),
            &MinPlus::new(3.0),
            &zero,
        )
        .unwrap();
    }
}
