//! The [`Semiring`] trait (Definition A.2 of the paper).

use std::fmt::Debug;

/// A semiring `(S, ⊕, ⊙)`: a ring without additive inverses.
///
/// Requirements (Definition A.2):
/// 1. `(S, ⊕)` is a commutative semigroup with neutral element [`zero`](Semiring::zero),
/// 2. `(S, ⊙)` is a semigroup with neutral element [`one`](Semiring::one),
/// 3. the left- and right-distributive laws hold,
/// 4. `zero` annihilates with respect to `⊙`.
///
/// These laws cannot be enforced by the type system; they are verified for
/// every implementation in this workspace by the property tests built on
/// [`crate::laws`].
pub trait Semiring: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// Neutral element of `⊕` (and annihilator of `⊙`).
    fn zero() -> Self;
    /// Neutral element of `⊙`.
    fn one() -> Self;
    /// Semiring addition `⊕` (aggregation).
    fn add(&self, rhs: &Self) -> Self;
    /// Semiring multiplication `⊙` (propagation).
    fn mul(&self, rhs: &Self) -> Self;

    /// Returns `true` iff `self` equals [`zero`](Semiring::zero).
    #[inline]
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Returns `false` iff `self` holds a value no semiring operation can
    /// produce (e.g. a NaN distance injected by the fault harness).
    ///
    /// The default claims sanity; semirings backed by floating point
    /// override it. Used by the robustness audit as a defense-in-depth
    /// scan — the fault registry's fired log is the primary detector.
    #[inline]
    fn is_sane(&self) -> bool {
        true
    }

    /// Overwrites `self` with an insane value if the semiring has one.
    ///
    /// Fault-injection only: the default is a no-op, so poisoning a
    /// semiring without an insane representation silently does nothing
    /// (the differential harness then expects bit-identical output).
    #[inline]
    fn poison(&mut self) {}
}
