//! The reachability semimodule `B^V` over the Boolean semiring
//! (Section 3.4 of the paper): node states are sets of reachable nodes.

use crate::boolean::Bool;
use crate::semimodule::Semimodule;
use crate::NodeId;
use std::cell::RefCell;

thread_local! {
    /// Per-thread merge scratch for set unions (see [`crate::merge`] for
    /// the rationale).
    static NODE_SCRATCH: RefCell<Vec<NodeId>> = const { RefCell::new(Vec::new()) };
}

/// A sparse set of node ids (sorted, deduplicated): an element of `B^V`
/// with the listed coordinates set to 1.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NodeSet {
    nodes: Vec<NodeId>,
}

impl NodeSet {
    /// The empty set `⊥`.
    #[inline]
    pub fn new() -> Self {
        NodeSet { nodes: Vec::new() }
    }

    /// A one-element set.
    pub fn singleton(v: NodeId) -> Self {
        NodeSet { nodes: vec![v] }
    }

    /// Builds a set from arbitrary ids.
    pub fn from_nodes(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet { nodes }
    }

    /// Membership test.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sorted elements.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Union fallback allocating a fresh output (used when the scratch
    /// buffer is unavailable to a re-entrant merge).
    fn union_into_fresh(&mut self, rhs: &NodeSet) {
        let mut out = Vec::with_capacity(self.nodes.len() + rhs.nodes.len());
        let (a, b) = (&self.nodes, &rhs.nodes);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.nodes = out;
    }
}

impl Semimodule<Bool> for NodeSet {
    #[inline]
    fn zero() -> Self {
        NodeSet::new()
    }

    /// Union (coordinate-wise `∨`), merged through a thread-local
    /// scratch buffer (allocation-free in steady state).
    fn add_assign(&mut self, rhs: &Self) {
        if rhs.nodes.is_empty() {
            return;
        }
        if self.nodes.is_empty() {
            self.nodes.extend_from_slice(&rhs.nodes);
            return;
        }
        if *self.nodes.last().unwrap() < rhs.nodes[0] {
            self.nodes.extend_from_slice(&rhs.nodes);
            return;
        }
        NODE_SCRATCH.with(|cell| {
            let mut scratch = match cell.try_borrow_mut() {
                Ok(s) => s,
                Err(_) => return self.union_into_fresh(rhs),
            };
            scratch.clear();
            scratch.reserve(self.nodes.len() + rhs.nodes.len());
            let (a, b) = (&self.nodes, &rhs.nodes);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => {
                        scratch.push(a[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        scratch.push(b[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        scratch.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            scratch.extend_from_slice(&a[i..]);
            scratch.extend_from_slice(&b[j..]);
            std::mem::swap(&mut self.nodes, &mut scratch);
        });
    }

    /// `1 ⊙ x = x`, `0 ⊙ x = ∅` (coordinate-wise `∧` with a constant).
    fn scale(&self, s: &Bool) -> Self {
        if s.0 {
            self.clone()
        } else {
            NodeSet::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Semiring;

    #[test]
    fn union_and_scale() {
        let a = NodeSet::from_nodes(vec![3, 1, 3]);
        let b = NodeSet::from_nodes(vec![2, 3]);
        let mut u = a.clone();
        u.add_assign(&b);
        assert_eq!(u.nodes(), &[1, 2, 3]);
        assert_eq!(a.scale(&Bool(true)), a);
        assert!(a.scale(&<Bool as Semiring>::zero()).is_empty());
    }

    #[test]
    fn contains_works() {
        let a = NodeSet::from_nodes(vec![5, 9]);
        assert!(a.contains(5));
        assert!(!a.contains(6));
    }
}
