//! The distance-map semimodule `D = ((R≥0 ∪ {∞})^V, ⊕, ⊙)` over the
//! min-plus semiring (Definition 2.1 of the paper).
//!
//! A distance map conceptually assigns a distance to *every* node of `V`;
//! the sparse representation stores only the non-`∞` entries (the paper's
//! `|x|`), sorted by node id, which makes aggregation a linear merge —
//! the parallel-sort argument of Lemma 2.3 collapses to merging here.

use crate::dist::Dist;
use crate::merge;
use crate::minplus::MinPlus;
use crate::semimodule::Semimodule;
use crate::NodeId;

/// A sparse distance map: the non-`∞` coordinates of a vector in
/// `(R≥0 ∪ {∞})^V`, sorted by node id.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DistanceMap {
    entries: Vec<(NodeId, Dist)>,
}

impl DistanceMap {
    /// The empty map `⊥ = (∞, …, ∞)`.
    #[inline]
    pub fn new() -> Self {
        DistanceMap {
            entries: Vec::new(),
        }
    }

    /// Map with a single entry, typically `{v ↦ 0}` for initialization
    /// (Equation (3.1)).
    #[inline]
    pub fn singleton(v: NodeId, d: Dist) -> Self {
        if d.is_finite() {
            DistanceMap {
                entries: vec![(v, d)],
            }
        } else {
            DistanceMap::new()
        }
    }

    /// Builds a map from arbitrary entries; later duplicates are resolved
    /// by minimum, `∞` entries are dropped.
    pub fn from_entries(mut entries: Vec<(NodeId, Dist)>) -> Self {
        entries.retain(|(_, d)| d.is_finite());
        entries.sort_unstable_by_key(|&(v, d)| (v, d));
        entries.dedup_by(|next, prev| prev.0 == next.0); // keeps first = min dist
        DistanceMap { entries }
    }

    /// Number of non-`∞` entries (the paper's `|x|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the map is `⊥`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the distance for node `v` (`∞` if absent).
    pub fn get(&self, v: NodeId) -> Dist {
        match self.entries.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.entries[i].1,
            Err(_) => Dist::INF,
        }
    }

    /// Inserts `v ↦ min(current, d)`.
    pub fn merge_entry(&mut self, v: NodeId, d: Dist) {
        if !d.is_finite() {
            return;
        }
        match self.entries.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                if d < self.entries[i].1 {
                    self.entries[i].1 = d;
                }
            }
            Err(i) => self.entries.insert(i, (v, d)),
        }
    }

    /// Iterates over the non-`∞` entries in node-id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Dist)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted entry slice.
    #[inline]
    pub fn entries(&self) -> &[(NodeId, Dist)] {
        &self.entries
    }

    /// Consumes the map, returning its entries.
    #[inline]
    pub fn into_entries(self) -> Vec<(NodeId, Dist)> {
        self.entries
    }

    /// Retains only entries satisfying the predicate (used by filters).
    pub fn retain(&mut self, mut f: impl FnMut(NodeId, Dist) -> bool) {
        self.entries.retain(|&(v, d)| f(v, d));
    }

    /// Approximate equality: same node sets, distances within relative
    /// tolerance `rel`. Floating-point sums accumulated in different
    /// orders (e.g. MBF iteration vs. Dijkstra) differ in the last ulps;
    /// tests and cross-validation compare with this instead of `==`.
    pub fn approx_eq(&self, other: &DistanceMap, rel: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(&(v, d), &(w, e))| v == w && dist_close(d, e, rel))
    }

    /// Overwrites `self` with an already node-sorted, key-unique entry
    /// slice — the borrowed-view counterpart of `clone_from` (the arena
    /// paths seed their scratch accumulator from a span with this).
    pub fn assign_from_entries(&mut self, entries: &[(NodeId, Dist)]) {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be node-sorted with unique keys"
        );
        self.entries.clear();
        self.entries.extend_from_slice(entries);
    }

    /// Fused propagate-and-aggregate: `self ← self ⊕ (s ⊙ other)` without
    /// materializing the scaled copy. This is the hot operation of every
    /// MBF-like iteration over the distance-map semimodule; it merges via
    /// this thread's reusable scratch buffer, so steady-state calls
    /// allocate nothing (see [`crate::merge`]).
    pub fn merge_scaled(&mut self, other: &DistanceMap, s: Dist) {
        merge::with_dist_scratch(|scratch| {
            self.merge_scaled_entries_with(&other.entries, s, scratch)
        });
    }

    /// [`DistanceMap::merge_scaled`] over a borrowed entry slice (a
    /// span-backed state read straight out of an
    /// [`crate::store::EpochStore`]): same kernel, no owned map on the
    /// right-hand side.
    pub fn merge_scaled_entries(&mut self, other: &[(NodeId, Dist)], s: Dist) {
        merge::with_dist_scratch(|scratch| self.merge_scaled_entries_with(other, s, scratch));
    }

    /// The explicit-scratch primitive underlying
    /// [`DistanceMap::merge_scaled`], for callers that manage their own
    /// buffer instead of borrowing the thread-local one. After the call
    /// `scratch` holds the accumulator's previous entries (the buffers
    /// are swapped); its contents are otherwise unspecified.
    pub fn merge_scaled_with(
        &mut self,
        other: &DistanceMap,
        s: Dist,
        scratch: &mut Vec<(NodeId, Dist)>,
    ) {
        self.merge_scaled_entries_with(&other.entries, s, scratch);
    }

    /// The borrowed-view, explicit-scratch kernel every `merge_scaled*`
    /// variant bottoms out in — owned maps and arena spans share one
    /// code path, which is what makes the two storage backends
    /// bit-identical by construction.
    pub fn merge_scaled_entries_with(
        &mut self,
        other: &[(NodeId, Dist)],
        s: Dist,
        scratch: &mut Vec<(NodeId, Dist)>,
    ) {
        if !s.is_finite() || other.is_empty() {
            return; // ∞ ⊙ x = ⊥ (Equation (2.2))
        }
        if self.entries.is_empty() {
            self.entries.extend(other.iter().map(|&(v, d)| (v, d + s)));
            return;
        }
        // Disjoint tails append in place without touching the scratch.
        if self.entries.last().unwrap().0 < other[0].0 {
            self.entries.extend(other.iter().map(|&(v, d)| (v, d + s)));
            return;
        }
        merge::merge_sorted_into(&self.entries, other, |d| d + s, Dist::min, scratch);
        std::mem::swap(&mut self.entries, scratch);
    }

    /// [`DistanceMap::merge_scaled`] with an admission predicate:
    /// `admit(v, x_v + s)` is consulted for every entry of `other` whose
    /// node is **absent** from `self`; rejected entries are never
    /// inserted, collisions always take the minimum. See
    /// [`crate::merge`]'s module docs for the contract a predicate must
    /// satisfy so a downstream filter makes the prune lossless (the LE
    /// rank-domination filter is the canonical instance; the FRT hot
    /// path itself batches its admitted entries and combines them with
    /// one [`DistanceMap::assign_merged_min`] instead, so these
    /// per-merge kernels are the general-purpose route for filters —
    /// e.g. a top-k threshold — that prune incrementally). Unpruned
    /// [`DistanceMap::merge_scaled`] stays the semantics reference.
    pub fn merge_scaled_pruned(
        &mut self,
        other: &DistanceMap,
        s: Dist,
        admit: &mut impl FnMut(NodeId, Dist) -> bool,
    ) {
        merge::with_dist_scratch(|scratch| {
            self.merge_scaled_pruned_entries_with(&other.entries, s, admit, scratch)
        });
    }

    /// [`DistanceMap::merge_scaled_pruned`] over a borrowed entry slice
    /// (cf. [`DistanceMap::merge_scaled_entries`]).
    pub fn merge_scaled_pruned_entries(
        &mut self,
        other: &[(NodeId, Dist)],
        s: Dist,
        admit: &mut impl FnMut(NodeId, Dist) -> bool,
    ) {
        merge::with_dist_scratch(|scratch| {
            self.merge_scaled_pruned_entries_with(other, s, admit, scratch)
        });
    }

    /// The explicit-scratch primitive underlying
    /// [`DistanceMap::merge_scaled_pruned`] (cf.
    /// [`DistanceMap::merge_scaled_with`]). The append fast paths consult
    /// the predicate entry-by-entry too, so admission behavior never
    /// depends on which code path a merge takes.
    pub fn merge_scaled_pruned_with(
        &mut self,
        other: &DistanceMap,
        s: Dist,
        admit: &mut impl FnMut(NodeId, Dist) -> bool,
        scratch: &mut Vec<(NodeId, Dist)>,
    ) {
        self.merge_scaled_pruned_entries_with(&other.entries, s, admit, scratch);
    }

    /// The borrowed-view, explicit-scratch kernel every
    /// `merge_scaled_pruned*` variant bottoms out in (cf.
    /// [`DistanceMap::merge_scaled_entries_with`]).
    pub fn merge_scaled_pruned_entries_with(
        &mut self,
        other: &[(NodeId, Dist)],
        s: Dist,
        admit: &mut impl FnMut(NodeId, Dist) -> bool,
        scratch: &mut Vec<(NodeId, Dist)>,
    ) {
        if !s.is_finite() || other.is_empty() {
            return; // ∞ ⊙ x = ⊥ (Equation (2.2))
        }
        // Disjoint tails (or an empty accumulator) append in place
        // without touching the scratch.
        if self
            .entries
            .last()
            .is_none_or(|&(last, _)| last < other[0].0)
        {
            self.entries.extend(
                other
                    .iter()
                    .map(|&(v, d)| (v, d + s))
                    .filter(|&(v, d)| admit(v, d)),
            );
            return;
        }
        merge::merge_sorted_pruned_into(&self.entries, other, |d| d + s, Dist::min, admit, scratch);
        std::mem::swap(&mut self.entries, scratch);
    }

    /// [`DistanceMap::merge_min`] with an admission predicate (see
    /// [`DistanceMap::merge_scaled_pruned`]): entries of `other` absent
    /// from `self` are inserted only if admitted, collisions always take
    /// the minimum.
    pub fn merge_min_pruned(
        &mut self,
        other: &DistanceMap,
        admit: &mut impl FnMut(NodeId, Dist) -> bool,
    ) {
        if other.entries.is_empty() {
            return;
        }
        if self
            .entries
            .last()
            .is_none_or(|&(last, _)| last < other.entries[0].0)
        {
            self.entries
                .extend(other.entries.iter().copied().filter(|&(v, d)| admit(v, d)));
            return;
        }
        merge::with_dist_scratch(|scratch| {
            merge::merge_sorted_pruned_into(
                &self.entries,
                &other.entries,
                |d| d,
                Dist::min,
                admit,
                scratch,
            );
            std::mem::swap(&mut self.entries, scratch);
        });
    }

    /// `self ← other ⊕ extra`, overwriting `self`'s previous contents:
    /// one sorted merge of `other`'s entries with an **already
    /// node-sorted, key-deduplicated** entry slice, written directly
    /// into `self`'s buffer (no scratch, no re-sort). Collisions take
    /// the minimum. The single-merge fast path for callers that batch
    /// their admitted entries before combining (the LE-list recompute
    /// gathers all neighbors' surviving entries, then merges once).
    pub fn assign_merged_min(&mut self, other: &DistanceMap, extra: &[(NodeId, Dist)]) {
        self.assign_merged_min_entries(&other.entries, extra);
    }

    /// [`DistanceMap::assign_merged_min`] with the base list as a
    /// borrowed entry slice (a span-backed state), so the arena LE hot
    /// path combines straight out of the pool.
    pub fn assign_merged_min_entries(&mut self, base: &[(NodeId, Dist)], extra: &[(NodeId, Dist)]) {
        debug_assert!(
            extra.windows(2).all(|w| w[0].0 < w[1].0),
            "extra must be node-sorted with unique keys"
        );
        merge::merge_sorted_into(base, extra, |d| d, Dist::min, &mut self.entries);
    }

    /// In-place `self ← self ⊕ other` where `⊕` is the coordinate-wise
    /// minimum (Equation (2.6)): a sorted merge in `O(|self| + |other|)`
    /// through this thread's scratch buffer (allocation-free in steady
    /// state).
    pub fn merge_min(&mut self, other: &DistanceMap) {
        self.merge_min_entries(&other.entries);
    }

    /// [`DistanceMap::merge_min`] over a borrowed entry slice (cf.
    /// [`DistanceMap::merge_scaled_entries`]).
    pub fn merge_min_entries(&mut self, other: &[(NodeId, Dist)]) {
        if other.is_empty() {
            return;
        }
        if self
            .entries
            .last()
            .is_none_or(|&(last, _)| last < other[0].0)
        {
            self.entries.extend_from_slice(other);
            return;
        }
        merge::with_dist_scratch(|scratch| {
            merge::merge_sorted_into(&self.entries, other, |d| d, Dist::min, scratch);
            std::mem::swap(&mut self.entries, scratch);
        });
    }

    /// Runs `edit` on the raw entry vector, then restores the node-sorted
    /// min-deduplicated no-`∞` invariant. Lets filters rewrite a map in
    /// its own buffer instead of building a replacement map (the LE
    /// filter sorts by distance, filters, and hands the buffer back).
    pub fn edit_entries(&mut self, edit: impl FnOnce(&mut Vec<(NodeId, Dist)>)) {
        edit(&mut self.entries);
        self.entries.retain(|(_, d)| d.is_finite());
        self.entries.sort_unstable_by_key(|&(v, d)| (v, d));
        self.entries.dedup_by(|next, prev| prev.0 == next.0); // keeps first = min dist
    }
}

/// `true` iff `a` and `b` agree within relative tolerance `rel`
/// (infinities must match exactly).
pub fn dist_close(a: Dist, b: Dist, rel: f64) -> bool {
    match (a.is_finite(), b.is_finite()) {
        (true, true) => {
            let (x, y) = (a.value(), b.value());
            (x - y).abs() <= rel * x.abs().max(y.abs()).max(1.0)
        }
        (false, false) => true,
        _ => false,
    }
}

impl Semimodule<MinPlus> for DistanceMap {
    #[inline]
    fn zero() -> Self {
        DistanceMap::new()
    }

    #[inline]
    fn add_assign(&mut self, rhs: &Self) {
        self.merge_min(rhs);
    }

    /// `(s ⊙ x)_v = s + x_v` (Equation (2.7)); `∞ ⊙ x = ⊥` (zero
    /// preservation, Equation (2.2)).
    fn scale(&self, s: &MinPlus) -> Self {
        let d = s.0;
        if !d.is_finite() {
            return DistanceMap::new();
        }
        if d == Dist::ZERO {
            return self.clone();
        }
        DistanceMap {
            entries: self.entries.iter().map(|&(v, x)| (v, x + d)).collect(),
        }
    }

    #[inline]
    fn is_sane(&self) -> bool {
        self.entries.iter().all(|&(_, d)| !d.is_poisoned())
    }

    fn poison(&mut self) {
        match self.entries.first_mut() {
            Some(entry) => entry.1 = Dist::poisoned(),
            None => self.entries.push((0, Dist::poisoned())),
        }
    }
}

impl FromIterator<(NodeId, Dist)> for DistanceMap {
    fn from_iter<T: IntoIterator<Item = (NodeId, Dist)>>(iter: T) -> Self {
        DistanceMap::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(pairs: &[(NodeId, f64)]) -> DistanceMap {
        DistanceMap::from_entries(pairs.iter().map(|&(v, d)| (v, Dist::new(d))).collect())
    }

    #[test]
    fn from_entries_sorts_dedups_and_drops_infinite() {
        let m = DistanceMap::from_entries(vec![
            (3, Dist::new(1.0)),
            (1, Dist::new(2.0)),
            (3, Dist::new(0.5)),
            (2, Dist::INF),
        ]);
        assert_eq!(m.entries(), &[(1, Dist::new(2.0)), (3, Dist::new(0.5))]);
    }

    #[test]
    fn get_returns_infinity_for_missing() {
        let m = dm(&[(1, 2.0)]);
        assert_eq!(m.get(1), Dist::new(2.0));
        assert_eq!(m.get(7), Dist::INF);
    }

    #[test]
    fn merge_min_is_coordinatewise_min() {
        let mut a = dm(&[(1, 2.0), (3, 5.0)]);
        let b = dm(&[(1, 3.0), (2, 1.0), (3, 4.0)]);
        a.merge_min(&b);
        assert_eq!(a, dm(&[(1, 2.0), (2, 1.0), (3, 4.0)]));
    }

    #[test]
    fn merge_entry_keeps_minimum() {
        let mut a = dm(&[(1, 2.0)]);
        a.merge_entry(1, Dist::new(3.0));
        assert_eq!(a.get(1), Dist::new(2.0));
        a.merge_entry(1, Dist::new(1.0));
        assert_eq!(a.get(1), Dist::new(1.0));
        a.merge_entry(0, Dist::new(9.0));
        assert_eq!(a.get(0), Dist::new(9.0));
    }

    #[test]
    fn merge_scaled_matches_scale_then_merge() {
        let mut acc = dm(&[(1, 2.0), (3, 5.0), (7, 1.0)]);
        let other = dm(&[(1, 0.5), (2, 1.0), (9, 3.0)]);
        let mut expected = acc.clone();
        expected.merge_min(&other.scale(&MinPlus::new(1.5)));
        acc.merge_scaled(&other, Dist::new(1.5));
        assert_eq!(acc, expected);
    }

    #[test]
    fn merge_scaled_with_swaps_caller_scratch() {
        let mut acc = dm(&[(1, 2.0), (3, 5.0)]);
        let other = dm(&[(2, 1.0), (3, 1.0)]);
        let mut scratch: Vec<(NodeId, Dist)> = Vec::with_capacity(64);
        acc.merge_scaled_with(&other, Dist::new(1.0), &mut scratch);
        assert_eq!(acc, dm(&[(1, 2.0), (2, 2.0), (3, 2.0)]));
        // The buffers were swapped: the scratch now carries the
        // accumulator's previous entries (and its old capacity moved
        // into the accumulator), so repeated merges reuse allocations.
        assert_eq!(scratch, vec![(1, Dist::new(2.0)), (3, Dist::new(5.0))]);
        // Appending fast path leaves the scratch untouched.
        let tail = dm(&[(9, 1.0)]);
        scratch.clear();
        acc.merge_scaled_with(&tail, Dist::ZERO, &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(acc.get(9), Dist::new(1.0));
    }

    #[test]
    fn merge_scaled_pruned_always_admit_matches_unpruned() {
        let cases = [
            (
                dm(&[(1, 2.0), (3, 5.0), (7, 1.0)]),
                dm(&[(1, 0.5), (2, 1.0), (9, 3.0)]),
            ),
            (dm(&[]), dm(&[(2, 1.0), (9, 3.0)])), // empty-accumulator fast path
            (dm(&[(1, 2.0)]), dm(&[(5, 1.0), (9, 3.0)])), // disjoint-tail fast path
        ];
        for (acc0, other) in cases {
            let mut plain = acc0.clone();
            plain.merge_scaled(&other, Dist::new(1.5));
            let mut pruned = acc0.clone();
            pruned.merge_scaled_pruned(&other, Dist::new(1.5), &mut |_, _| true);
            assert_eq!(plain, pruned);
        }
    }

    #[test]
    fn merge_scaled_pruned_rejects_absent_keys_only() {
        let mut acc = dm(&[(1, 2.0), (3, 5.0)]);
        let other = dm(&[(1, 0.5), (2, 1.0), (9, 3.0)]);
        // Reject everything: collisions still combine, absent keys dropped.
        acc.merge_scaled_pruned(&other, Dist::new(1.0), &mut |_, _| false);
        assert_eq!(acc, dm(&[(1, 1.5), (3, 5.0)]));
    }

    #[test]
    fn merge_scaled_pruned_fast_paths_consult_predicate() {
        // Empty accumulator.
        let mut acc = DistanceMap::new();
        let other = dm(&[(2, 1.0), (4, 2.0)]);
        acc.merge_scaled_pruned(&other, Dist::new(1.0), &mut |v, _| v == 4);
        assert_eq!(acc, dm(&[(4, 3.0)]));
        // Disjoint tail append.
        let mut acc = dm(&[(1, 1.0)]);
        acc.merge_scaled_pruned(&other, Dist::new(1.0), &mut |v, _| v == 2);
        assert_eq!(acc, dm(&[(1, 1.0), (2, 2.0)]));
    }

    #[test]
    fn merge_min_pruned_matches_merge_min_when_all_admitted() {
        let mut plain = dm(&[(1, 2.0), (3, 5.0)]);
        let mut pruned = plain.clone();
        let other = dm(&[(1, 3.0), (2, 1.0), (3, 4.0)]);
        plain.merge_min(&other);
        pruned.merge_min_pruned(&other, &mut |_, _| true);
        assert_eq!(plain, pruned);
        // And the rejection path only affects absent keys.
        let mut rejecting = dm(&[(1, 2.0), (3, 5.0)]);
        rejecting.merge_min_pruned(&other, &mut |_, _| false);
        assert_eq!(rejecting, dm(&[(1, 2.0), (3, 4.0)]));
    }

    #[test]
    fn assign_merged_min_overwrites_with_single_merge() {
        let base = dm(&[(1, 2.0), (3, 5.0), (7, 1.0)]);
        let mut out = dm(&[(9, 9.0)]); // stale contents must vanish
        let extra = [
            (2, Dist::new(1.5)),
            (3, Dist::new(4.0)), // collision: min wins
            (8, Dist::new(0.5)),
        ];
        out.assign_merged_min(&base, &extra);
        assert_eq!(out, dm(&[(1, 2.0), (2, 1.5), (3, 4.0), (7, 1.0), (8, 0.5)]));
        // Empty extra reproduces `base` exactly.
        out.assign_merged_min(&base, &[]);
        assert_eq!(out, base);
    }

    #[test]
    fn scale_adds_uniformly_and_preserves_zero() {
        use crate::semiring::Semiring;
        let a = dm(&[(1, 2.0), (2, 0.0)]);
        let scaled = a.scale(&MinPlus::new(1.5));
        assert_eq!(scaled, dm(&[(1, 3.5), (2, 1.5)]));
        assert_eq!(a.scale(&<MinPlus as Semiring>::zero()), DistanceMap::new());
        assert_eq!(a.scale(&<MinPlus as Semiring>::one()), a);
    }

    #[test]
    fn semimodule_add_matches_merge() {
        let a = dm(&[(0, 1.0)]);
        let b = dm(&[(0, 0.5), (9, 2.0)]);
        let sum = Semimodule::<MinPlus>::add(&a, &b);
        assert_eq!(sum, dm(&[(0, 0.5), (9, 2.0)]));
    }
}
