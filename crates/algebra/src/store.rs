//! The epoch-arena state store: span-backed distance maps in one shared
//! pool.
//!
//! # Why
//!
//! The paper charges MBF-like iterations per **list entry** (Lemma 2.3,
//! Lemma 7.8): one hop costs `O(Σ_v |x_v|)`. A state vector stored as
//! `Vec<DistanceMap>` pays more than that model admits — every vertex
//! owns a private heap buffer, double-buffering `clone_from`s a full
//! list copy even for vertices whose state did not move, and `n`-sized
//! vectors of maps mean `Θ(n)` allocations per engine (times `Λ + 1`
//! levels in the oracle). At engine scale the merges stop being the
//! bottleneck; allocation and copy traffic are.
//!
//! [`EpochStore`] flattens the whole state vector `x ∈ D^V` into one
//! arena:
//!
//! * a shared **entry pool** (`Vec<(NodeId, Dist)>`) holding every
//!   vertex's non-`∞` coordinates back to back, with an **optional
//!   parallel rank column** (`Vec<u32>`) carrying per-entry auxiliary
//!   data — the LE lists store each entry's permutation rank there, so
//!   the domination probe reads `(dist, rank)` pairs straight out of
//!   the pool instead of chasing a rank table. Algorithms that never
//!   read ranks construct the store via
//!   [`EpochStore::with_rank_column`]`(n, false)` and skip the
//!   4 B/entry column entirely (16 instead of 20 bytes per append);
//! * a **span table**: vertex `v`'s state is the `(offset, len)` window
//!   `spans[v]` into the pool — the paper's `x_v ∈ D`, sorted by node
//!   id exactly like [`DistanceMap`].
//!
//! # Epochs and copy-on-write
//!
//! A hop never overwrites in place. New states are **appended** to the
//! pool (the next epoch) and committed by retargeting spans — a bump
//! and a pointer flip. A vertex untouched by a hop keeps its old span:
//! unchanged states cost **zero** copies, the copy-on-write that
//! replaces the former `clone_from` double-buffering. Superseded spans
//! become garbage; a **compaction** pass (amortized by a high-water
//! heuristic: compact when more than half the post-append pool would be
//! garbage) rewrites the live spans in vertex order into the shadow
//! pool and swaps the buffers.
//!
//! # Determinism
//!
//! Pool layout is a **pure function of the write sequence**: writers
//! append in a fixed order (the engine concatenates its per-chunk
//! append regions in chunk order; chunk boundaries depend only on the
//! schedule, never on `MTE_THREADS`), and the compaction trigger
//! depends only on pool length and live count — both deterministic. A
//! run's exported states, its work counters, *and* its internal arena
//! layout are therefore bit-identical across thread counts.
//!
//! No `unsafe` is involved: parallel workers write into chunk-local
//! append regions ([`SpanOut`] handles owned by the scheduler) and the
//! store concatenates them sequentially at commit time.

use crate::dist::Dist;
use crate::distance_map::DistanceMap;
use crate::NodeId;

/// Bytes a pool entry occupies in a **ranked** store: a 16-byte
/// `(NodeId, Dist)` pair (u32 + padding + f64) plus the 4-byte rank
/// column.
pub const ENTRY_BYTES: u64 = 20;

/// Bytes a pool entry occupies in an **unranked** store (see
/// [`EpochStore::with_rank_column`]): the `(NodeId, Dist)` pair alone.
pub const ENTRY_BYTES_UNRANKED: u64 = 16;

/// Pools shorter than this never compact — below the slack the garbage
/// cannot dominate the footprint and the pass would be pure overhead.
const MIN_COMPACTION_POOL: usize = 1024;

/// One vertex's state window into the pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Span {
    off: u32,
    len: u32,
}

/// Storage-layer accounting, surfaced through
/// `WorkStats`-style counters so the copy-traffic trajectory is visible
/// in the benchmark artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes of state entries written into the pool (appends, external
    /// assignments, and compaction copies). Copy-on-write keeps
    /// unchanged vertices off this tally entirely.
    pub bytes_copied: u64,
    /// Heap (re)allocations the store performed: pool/shadow/span-table
    /// growth events. Stays `O(log pool)` over a run — versus the `Θ(n)`
    /// per-vertex buffers of an owned state vector.
    pub alloc_count: u64,
    /// Peak pool footprint in bytes (entries + rank column), the arena's
    /// high-water mark.
    pub arena_bytes: u64,
    /// Number of compaction passes executed.
    pub compactions: u64,
}

/// Borrowed view of one vertex's state: the sorted entry slice plus the
/// parallel rank column — the `x_v ∈ D` the merge and probe kernels
/// read without materializing a [`DistanceMap`].
#[derive(Clone, Copy, Debug)]
pub struct DistanceSlice<'a> {
    /// Non-`∞` coordinates, sorted by node id (the [`DistanceMap`]
    /// invariant).
    pub entries: &'a [(NodeId, Dist)],
    /// Per-entry auxiliary column (`ranks[i]` belongs to `entries[i]`);
    /// the LE lists keep permutation ranks here, other algorithms zero.
    pub ranks: &'a [u32],
}

impl<'a> DistanceSlice<'a> {
    /// Number of entries (the paper's `|x_v|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the state is `⊥`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in node-id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Dist)> + 'a {
        self.entries.iter().copied()
    }

    /// Distance for node `v` (`∞` if absent).
    pub fn get(&self, v: NodeId) -> Dist {
        match self.entries.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.entries[i].1,
            Err(_) => Dist::INF,
        }
    }

    /// Materializes an owned [`DistanceMap`] (interop/export path).
    pub fn to_map(&self) -> DistanceMap {
        self.entries.iter().copied().collect()
    }
}

/// Append handle over a chunk-local region: parallel workers push their
/// recomputed states here (entry + rank column in lockstep), and the
/// store concatenates the regions in chunk order at commit time.
pub struct SpanOut<'a> {
    entries: &'a mut Vec<(NodeId, Dist)>,
    ranks: &'a mut Vec<u32>,
    ranked: bool,
}

impl<'a> SpanOut<'a> {
    /// Wraps a chunk's append buffers. Both columns must be in lockstep
    /// (equal length) — they are after any sequence of [`SpanOut::push`].
    pub fn new(entries: &'a mut Vec<(NodeId, Dist)>, ranks: &'a mut Vec<u32>) -> Self {
        Self::with_rank_column(entries, ranks, true)
    }

    /// As [`SpanOut::new`] with the rank column made explicit: an
    /// unranked handle (for algorithms whose
    /// `USES_RANK_COLUMN` marker is off) drops the per-entry rank
    /// values instead of buffering 4 dead bytes per entry.
    pub fn with_rank_column(
        entries: &'a mut Vec<(NodeId, Dist)>,
        ranks: &'a mut Vec<u32>,
        ranked: bool,
    ) -> Self {
        debug_assert!(!ranked || entries.len() == ranks.len());
        debug_assert!(ranked || ranks.is_empty());
        SpanOut {
            entries,
            ranks,
            ranked,
        }
    }

    /// Appends one entry with its rank-column value (dropped when the
    /// handle is unranked).
    #[inline]
    pub fn push(&mut self, v: NodeId, d: Dist, rank: u32) {
        self.entries.push((v, d));
        if self.ranked {
            self.ranks.push(rank);
        }
    }

    /// Entries written so far (across the whole chunk region).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing has been written to the chunk region yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The epoch-arena state store: one flat pool for a whole state vector
/// `x ∈ D^V`, span-backed with copy-on-write commits. See the module
/// docs for the design.
#[derive(Clone, Debug, Default)]
pub struct EpochStore {
    entries: Vec<(NodeId, Dist)>,
    ranks: Vec<u32>,
    spans: Vec<Span>,
    /// Sum of live span lengths; `entries.len() - live` is garbage.
    live: usize,
    /// Shadow columns the compactor writes into (ping-pong buffers).
    shadow_entries: Vec<(NodeId, Dist)>,
    shadow_ranks: Vec<u32>,
    /// Whether the parallel rank column is maintained. Off (the
    /// per-algorithm default), entries cost [`ENTRY_BYTES_UNRANKED`]
    /// instead of [`ENTRY_BYTES`] — sssp/source-detection appends used
    /// to carry 4 dead bytes per entry; only the LE lists read ranks.
    ranked: bool,
    stats: StoreStats,
}

impl EpochStore {
    /// An empty **ranked** store for `n` vertices, every state `⊥`.
    pub fn new(n: usize) -> Self {
        Self::with_rank_column(n, true)
    }

    /// An empty store with the rank column made explicit: algorithms
    /// that never read per-entry auxiliary data (their
    /// `USES_RANK_COLUMN` marker is off) skip the 4 B/entry column
    /// entirely — no buffering, no appends, no compaction copies.
    pub fn with_rank_column(n: usize, ranked: bool) -> Self {
        let mut store = EpochStore {
            ranked,
            ..EpochStore::default()
        };
        store.reset(n);
        store
    }

    /// `true` iff the store maintains the parallel rank column.
    #[inline]
    pub fn is_ranked(&self) -> bool {
        self.ranked
    }

    /// Bytes one pool entry occupies in this store.
    #[inline]
    pub fn entry_bytes(&self) -> u64 {
        if self.ranked {
            ENTRY_BYTES
        } else {
            ENTRY_BYTES_UNRANKED
        }
    }

    /// Clears the store back to `n` empty states, keeping buffer
    /// capacity (and accumulated stats).
    pub fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.ranks.clear();
        self.spans.clear();
        self.track_alloc(|s| {
            s.spans.resize(n, Span::default());
        });
        self.live = 0;
    }

    /// Number of vertices (span-table length).
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` iff the store holds no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Vertex `v`'s state as a borrowed view. In an unranked store the
    /// view's `ranks` slice is empty.
    #[inline]
    pub fn get(&self, v: NodeId) -> DistanceSlice<'_> {
        let s = self.spans[v as usize];
        let (a, mut b) = (s.off as usize, s.off as usize + s.len as usize);
        match mte_faults::check_for(
            mte_faults::FaultSite::ArenaSpanRead,
            &[
                mte_faults::FaultKind::Panic,
                mte_faults::FaultKind::TruncateSpan,
            ],
        ) {
            Some(mte_faults::FaultKind::Panic) => {
                mte_faults::trigger_panic(mte_faults::FaultSite::ArenaSpanRead)
            }
            Some(mte_faults::FaultKind::TruncateSpan) => {
                b = a + (b - a).saturating_sub(1);
            }
            _ => {}
        }
        DistanceSlice {
            entries: &self.entries[a..b],
            ranks: if self.ranked { &self.ranks[a..b] } else { &[] },
        }
    }

    /// Vertex `v`'s state as a borrowed view, bypassing the
    /// [`ArenaSpanRead`](mte_faults::FaultSite::ArenaSpanRead) fault
    /// site. Snapshot serialization uses this: a checkpoint must record
    /// the state that *is*, not the state an injected span-truncation
    /// pretends to read — persistence has its own `snapshot_write` /
    /// `snapshot_read` sites.
    #[inline]
    pub fn get_raw(&self, v: NodeId) -> DistanceSlice<'_> {
        let s = self.spans[v as usize];
        let (a, b) = (s.off as usize, s.off as usize + s.len as usize);
        DistanceSlice {
            entries: &self.entries[a..b],
            ranks: if self.ranked { &self.ranks[a..b] } else { &[] },
        }
    }

    /// Live entries across all spans (`Σ_v |x_v|`).
    #[inline]
    pub fn live_entries(&self) -> usize {
        self.live
    }

    /// Pool length including garbage from superseded epochs.
    #[inline]
    pub fn pool_entries(&self) -> usize {
        self.entries.len()
    }

    /// Storage accounting so far.
    #[inline]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Runs `f` over the store and counts column (re)allocations by
    /// capacity deltas.
    fn track_alloc(&mut self, f: impl FnOnce(&mut Self)) {
        let caps = (
            self.entries.capacity(),
            self.shadow_entries.capacity(),
            self.spans.capacity(),
        );
        f(self);
        let grown = [
            caps.0 != self.entries.capacity(),
            caps.1 != self.shadow_entries.capacity(),
            caps.2 != self.spans.capacity(),
        ];
        // The rank columns grow in lockstep with their entry columns;
        // counting the pair as one allocation event keeps the counter a
        // clean "buffers the storage layer acquired" tally.
        self.stats.alloc_count += grown.iter().filter(|&&g| g).count() as u64;
    }

    fn note_pool_footprint(&mut self) {
        let bytes = self.entries.len() as u64 * self.entry_bytes();
        self.stats.arena_bytes = self.stats.arena_bytes.max(bytes);
    }

    /// Opens the next epoch, given the number of entries about to be
    /// appended: compacts first iff more than half the post-append pool
    /// would be garbage (and the pool is past the slack threshold), so
    /// compaction cost amortizes against the appends that created the
    /// garbage. Deterministic: the decision depends only on pool length
    /// and live count.
    pub fn begin_epoch(&mut self, incoming: usize) {
        let projected = self.entries.len() + incoming;
        if projected > MIN_COMPACTION_POOL && projected > 2 * (self.live + incoming) {
            self.compact();
        }
    }

    /// Appends a chunk append region (entry + rank columns in lockstep)
    /// to the pool, returning the base offset its spans start at. The
    /// entries do **not** become live until [`EpochStore::set_span`]
    /// retargets a vertex into them.
    pub fn append_region(&mut self, entries: &[(NodeId, Dist)], ranks: &[u32]) -> u32 {
        if self.ranked {
            assert_eq!(entries.len(), ranks.len(), "columns out of lockstep");
        } else {
            debug_assert!(ranks.is_empty(), "rank data handed to an unranked store");
        }
        let base = self.entries.len();
        assert!(
            base + entries.len() <= u32::MAX as usize,
            "epoch-arena pool exceeds u32 offsets"
        );
        self.track_alloc(|s| {
            s.entries.extend_from_slice(entries);
            if s.ranked {
                s.ranks.extend_from_slice(ranks);
            }
        });
        self.stats.bytes_copied += entries.len() as u64 * self.entry_bytes();
        self.note_pool_footprint();
        base as u32
    }

    /// Commits vertex `v` to the window `[off, off + len)` of the pool
    /// (typically inside a region just appended). The previous span
    /// becomes garbage.
    pub fn set_span(&mut self, v: NodeId, off: u32, len: u32) {
        debug_assert!(off as usize + len as usize <= self.entries.len());
        let old = std::mem::replace(&mut self.spans[v as usize], Span { off, len });
        self.live = self.live - old.len as usize + len as usize;
    }

    /// Copy-on-write single-vertex assignment (external edits: oracle
    /// projection rewrites, test fixtures). Appends the new state and
    /// retargets the span; `aux` supplies the rank-column value per
    /// entry (never consulted by an unranked store).
    pub fn assign(
        &mut self,
        v: NodeId,
        entries: &[(NodeId, Dist)],
        mut aux: impl FnMut(NodeId) -> u32,
    ) {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be node-sorted with unique keys"
        );
        self.begin_epoch(entries.len());
        let base = self.entries.len();
        assert!(
            base + entries.len() <= u32::MAX as usize,
            "epoch-arena pool exceeds u32 offsets"
        );
        self.track_alloc(|s| {
            s.entries.extend_from_slice(entries);
            if s.ranked {
                s.ranks.extend(entries.iter().map(|&(u, _)| aux(u)));
            }
        });
        self.stats.bytes_copied += entries.len() as u64 * self.entry_bytes();
        self.note_pool_footprint();
        self.set_span(v, base as u32, entries.len() as u32);
    }

    /// Bulk-loads a whole owned state vector (the interop boundary:
    /// `initial_states`, differential fixtures). One pool allocation
    /// instead of `n` map buffers.
    pub fn import(&mut self, states: &[DistanceMap], mut aux: impl FnMut(NodeId) -> u32) {
        self.reset(states.len());
        let total: usize = states.iter().map(DistanceMap::len).sum();
        self.track_alloc(|s| {
            s.entries.reserve(total);
            if s.ranked {
                s.ranks.reserve(total);
            }
        });
        for (v, x) in states.iter().enumerate() {
            let base = self.entries.len() as u32;
            self.entries.extend_from_slice(x.entries());
            if self.ranked {
                self.ranks.extend(x.iter().map(|(u, _)| aux(u)));
            }
            self.spans[v] = Span {
                off: base,
                len: x.len() as u32,
            };
        }
        self.live = total;
        self.stats.bytes_copied += total as u64 * self.entry_bytes();
        self.note_pool_footprint();
    }

    /// Exports the state vector as owned maps (the interop/verification
    /// boundary; bit-identical to the spans' contents).
    pub fn export(&self) -> Vec<DistanceMap> {
        (0..self.spans.len())
            .map(|v| self.get(v as NodeId).to_map())
            .collect()
    }

    /// [`EpochStore::export`] through [`EpochStore::get_raw`]: the
    /// checkpoint-capture path, which must record the true pool
    /// contents without consuming `arena_span_read` fault arrivals.
    pub fn export_raw(&self) -> Vec<DistanceMap> {
        (0..self.spans.len())
            .map(|v| self.get_raw(v as NodeId).to_map())
            .collect()
    }

    /// Compacts the pool: copies live spans in vertex order into the
    /// shadow columns and swaps the buffers. Span windows move, their
    /// contents do not. The resulting layout is a pure function of the
    /// current spans.
    pub fn compact(&mut self) {
        self.track_alloc(|s| {
            s.shadow_entries.clear();
            s.shadow_ranks.clear();
            s.shadow_entries.reserve(s.live);
            if s.ranked {
                s.shadow_ranks.reserve(s.live);
            }
            for span in s.spans.iter_mut() {
                let (a, b) = (span.off as usize, span.off as usize + span.len as usize);
                span.off = s.shadow_entries.len() as u32;
                s.shadow_entries.extend_from_slice(&s.entries[a..b]);
                if s.ranked {
                    s.shadow_ranks.extend_from_slice(&s.ranks[a..b]);
                }
            }
            std::mem::swap(&mut s.entries, &mut s.shadow_entries);
            std::mem::swap(&mut s.ranks, &mut s.shadow_ranks);
        });
        self.stats.bytes_copied += self.live as u64 * self.entry_bytes();
        self.stats.compactions += 1;
        debug_assert_eq!(self.entries.len(), self.live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(pairs: &[(NodeId, f64)]) -> DistanceMap {
        pairs.iter().map(|&(v, d)| (v, Dist::new(d))).collect()
    }

    #[test]
    fn import_export_roundtrip() {
        let states = vec![dm(&[(0, 0.0), (3, 2.5)]), dm(&[]), dm(&[(1, 1.0)])];
        let mut store = EpochStore::new(states.len());
        store.import(&states, |v| v * 10);
        assert_eq!(store.export(), states);
        assert_eq!(store.live_entries(), 3);
        assert_eq!(store.get(0).ranks, &[0, 30]);
        assert_eq!(store.get(2).get(1), Dist::new(1.0));
        assert_eq!(store.get(2).get(9), Dist::INF);
    }

    #[test]
    fn assign_is_copy_on_write() {
        let mut store = EpochStore::new(3);
        store.import(&[dm(&[(0, 0.0)]), dm(&[(1, 0.0)]), dm(&[(2, 0.0)])], |_| 0);
        let before = store.get(1).entries.to_vec();
        store.assign(0, dm(&[(0, 0.0), (5, 4.0)]).entries(), |_| 7);
        // Vertex 1's span still reads its old (untouched) window.
        assert_eq!(store.get(1).entries, &before[..]);
        assert_eq!(store.get(0).entries, dm(&[(0, 0.0), (5, 4.0)]).entries());
        assert_eq!(store.get(0).ranks, &[7, 7]);
        // The superseded span is garbage, not lost live data.
        assert_eq!(store.live_entries(), 4);
        assert!(store.pool_entries() > store.live_entries());
    }

    #[test]
    fn append_region_and_set_span_commit() {
        let mut store = EpochStore::new(2);
        store.import(&[dm(&[(0, 0.0)]), dm(&[(1, 0.0)])], |_| 0);
        let region = [(2u32, Dist::new(1.0)), (4, Dist::new(2.0))];
        let base = store.append_region(&region, &[9, 9]);
        // Not live until committed.
        assert_eq!(store.live_entries(), 2);
        store.set_span(1, base, 2);
        assert_eq!(store.live_entries(), 3);
        assert_eq!(store.get(1).entries, &region[..]);
    }

    #[test]
    fn compaction_preserves_states_and_reclaims_garbage() {
        let n = 64;
        let mut store = EpochStore::new(n);
        store.import(
            &(0..n)
                .map(|v| dm(&[(v as NodeId, 0.0)]))
                .collect::<Vec<_>>(),
            |v| v,
        );
        // Churn vertex 0 to build garbage.
        for round in 1..200u32 {
            store.assign(0, dm(&[(0, 0.0), (1, round as f64)]).entries(), |v| v);
        }
        let snapshot = store.export();
        store.compact();
        assert_eq!(store.export(), snapshot);
        assert_eq!(store.pool_entries(), store.live_entries());
        // Rank column compacted in lockstep.
        assert_eq!(store.get(0).ranks, &[0, 1]);
    }

    #[test]
    fn high_water_heuristic_bounds_garbage() {
        let mut store = EpochStore::new(4);
        store.import(&[dm(&[]), dm(&[]), dm(&[]), dm(&[])], |_| 0);
        let big: Vec<(NodeId, Dist)> = (0..512).map(|i| (i, Dist::new(i as f64))).collect();
        for _ in 0..64 {
            store.assign(2, &big, |_| 0);
        }
        // Garbage never exceeds ~half the pool (plus the slack floor).
        assert!(store.pool_entries() <= 2 * store.live_entries() + 2 * MIN_COMPACTION_POOL);
        assert!(store.stats().compactions > 0);
        let stats = store.stats();
        assert!(stats.bytes_copied >= 64 * 512 * ENTRY_BYTES);
        assert!(stats.arena_bytes > 0);
        // The pool grows by doubling: allocation events stay tiny
        // relative to the number of writes.
        assert!(stats.alloc_count < 64);
    }

    #[test]
    fn layout_is_a_pure_function_of_the_write_sequence() {
        let build = || {
            let mut store = EpochStore::new(3);
            store.import(&[dm(&[(0, 0.0)]), dm(&[(1, 0.0)]), dm(&[(2, 0.0)])], |v| v);
            store.assign(1, dm(&[(1, 0.0), (2, 3.0)]).entries(), |v| v);
            let base = store.append_region(&[(7, Dist::new(1.5))], &[7]);
            store.set_span(0, base, 1);
            store.compact();
            store
        };
        let (a, b) = (build(), build());
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.ranks, b.ranks);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn unranked_store_drops_the_rank_column_and_its_bytes() {
        // Identical write sequences, ranked vs unranked: same states,
        // same layout, but the unranked store never touches the rank
        // column and accounts 16 B/entry instead of 20 — the 20% append
        // traffic the ROADMAP item targeted.
        let states = vec![dm(&[(0, 0.0), (3, 2.5)]), dm(&[(1, 1.0)]), dm(&[])];
        let write = |ranked: bool| {
            let mut store = EpochStore::with_rank_column(states.len(), ranked);
            store.import(&states, |v| v);
            store.assign(2, dm(&[(2, 0.0), (4, 1.0)]).entries(), |v| v);
            let base = store.append_region(&[(7, Dist::new(1.5))], if ranked { &[7] } else { &[] });
            store.set_span(1, base, 1);
            store.compact();
            store
        };
        let ranked = write(true);
        let unranked = write(false);
        assert!(ranked.is_ranked() && !unranked.is_ranked());
        assert_eq!(ranked.export(), unranked.export());
        assert_eq!(ranked.live_entries(), unranked.live_entries());
        assert!(unranked.get(0).ranks.is_empty());
        assert_eq!(ranked.get(0).ranks, &[0, 3]);
        // Byte accounting scales exactly with the entry size.
        let (rs, us) = (ranked.stats(), unranked.stats());
        assert_eq!(
            rs.bytes_copied * ENTRY_BYTES_UNRANKED,
            us.bytes_copied * ENTRY_BYTES
        );
        assert_eq!(
            rs.arena_bytes * ENTRY_BYTES_UNRANKED,
            us.arena_bytes * ENTRY_BYTES
        );
        assert!(us.arena_bytes < rs.arena_bytes);
    }

    #[test]
    fn unranked_span_out_drops_rank_pushes() {
        let mut entries = Vec::new();
        let mut ranks = Vec::new();
        let mut out = SpanOut::with_rank_column(&mut entries, &mut ranks, false);
        out.push(3, Dist::new(1.0), 30);
        out.push(5, Dist::new(2.0), 50);
        assert_eq!(out.len(), 2);
        assert!(ranks.is_empty());
    }

    #[test]
    fn span_out_keeps_columns_in_lockstep() {
        let mut entries = Vec::new();
        let mut ranks = Vec::new();
        let mut out = SpanOut::new(&mut entries, &mut ranks);
        assert!(out.is_empty());
        out.push(3, Dist::new(1.0), 30);
        out.push(5, Dist::new(2.0), 50);
        assert_eq!(out.len(), 2);
        assert_eq!(entries, vec![(3, Dist::new(1.0)), (5, Dist::new(2.0))]);
        assert_eq!(ranks, vec![30, 50]);
    }
}
