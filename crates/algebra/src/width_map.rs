//! The width-map semimodule `W = ((R≥0 ∪ {∞})^V, ⊕, ⊙)` over the max-min
//! semiring (Corollary 3.11 of the paper), used for all-pairs /
//! multi-source widest path computations.

use crate::dist::Dist;
use crate::maxmin::Width;
use crate::semimodule::Semimodule;
use crate::NodeId;

/// Sparse width map: non-zero coordinates of a vector in
/// `(R≥0 ∪ {∞})^V`, sorted by node id. The neutral element `⊥` is the
/// all-zero vector (Corollary 3.11), so zero-width entries are dropped.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WidthMap {
    entries: Vec<(NodeId, Width)>,
}

impl WidthMap {
    /// The all-zero map `⊥`.
    #[inline]
    pub fn new() -> Self {
        WidthMap {
            entries: Vec::new(),
        }
    }

    /// Map with a single entry, typically `{v ↦ ∞}` (Equation (3.10)).
    pub fn singleton(v: NodeId, w: Width) -> Self {
        if w == Width::zero_value() {
            WidthMap::new()
        } else {
            WidthMap {
                entries: vec![(v, w)],
            }
        }
    }

    /// Builds from arbitrary entries; duplicates resolved by maximum,
    /// zero entries dropped.
    pub fn from_entries(mut entries: Vec<(NodeId, Width)>) -> Self {
        entries.retain(|&(_, w)| w != Width::zero_value());
        entries.sort_unstable_by(|a, b| {
            (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1)))
        });
        entries.dedup_by(|next, prev| prev.0 == next.0); // keeps first = max width
        WidthMap { entries }
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the map is `⊥`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the width for `v` (`0` if absent).
    pub fn get(&self, v: NodeId) -> Width {
        match self.entries.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.entries[i].1,
            Err(_) => Width(Dist::ZERO),
        }
    }

    /// Iterates over non-zero entries in node-id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Width)> + '_ {
        self.entries.iter().copied()
    }

    /// Fused propagate-and-aggregate: `self ← self ⊕ (s ⊙ other)`
    /// (coordinate-wise `max(self_v, min(s, other_v))`) without
    /// materializing the scaled copy — the max-min analogue of
    /// [`crate::DistanceMap::merge_scaled`], merged through this
    /// thread's scratch buffer.
    pub fn merge_scaled(&mut self, other: &WidthMap, s: Width) {
        if s == Width::zero_value() || other.entries.is_empty() {
            return; // 0 ⊙ x = ⊥
        }
        if self.entries.is_empty() {
            self.entries
                .extend(other.entries.iter().map(|&(v, w)| (v, Width(w.0.min(s.0)))));
            return;
        }
        if self.entries.last().unwrap().0 < other.entries[0].0 {
            self.entries
                .extend(other.entries.iter().map(|&(v, w)| (v, Width(w.0.min(s.0)))));
            return;
        }
        crate::merge::with_width_scratch(|scratch| {
            crate::merge::merge_sorted_into(
                &self.entries,
                &other.entries,
                |w| Width(w.0.min(s.0)),
                |a, b| Width(a.0.max(b.0)),
                scratch,
            );
            std::mem::swap(&mut self.entries, scratch);
        });
    }
}

impl Width {
    #[inline]
    fn zero_value() -> Width {
        Width(Dist::ZERO)
    }
}

impl Semimodule<Width> for WidthMap {
    #[inline]
    fn zero() -> Self {
        WidthMap::new()
    }

    /// Coordinate-wise maximum (Equation (3.7)), merged through this
    /// thread's scratch buffer (allocation-free in steady state, see
    /// [`crate::merge`]).
    fn add_assign(&mut self, rhs: &Self) {
        if rhs.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            self.entries.extend_from_slice(&rhs.entries);
            return;
        }
        if self.entries.last().unwrap().0 < rhs.entries[0].0 {
            self.entries.extend_from_slice(&rhs.entries);
            return;
        }
        crate::merge::with_width_scratch(|scratch| {
            crate::merge::merge_sorted_into(
                &self.entries,
                &rhs.entries,
                |w| w,
                |a, b| Width(a.0.max(b.0)),
                scratch,
            );
            std::mem::swap(&mut self.entries, scratch);
        });
    }

    /// Coordinate-wise `min{s, x_v}` (Equation (3.8)); scaling by the
    /// semiring zero (width 0) yields `⊥`.
    fn scale(&self, s: &Width) -> Self {
        if *s == Width::zero_value() {
            return WidthMap::new();
        }
        WidthMap {
            entries: self
                .entries
                .iter()
                .map(|&(v, w)| (v, Width(w.0.min(s.0))))
                .collect(),
        }
    }

    #[inline]
    fn is_sane(&self) -> bool {
        self.entries.iter().all(|&(_, w)| !w.0.is_poisoned())
    }

    fn poison(&mut self) {
        match self.entries.first_mut() {
            Some(entry) => entry.1 = Width(Dist::poisoned()),
            None => self.entries.push((0, Width(Dist::poisoned()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Semiring;

    fn wm(pairs: &[(NodeId, f64)]) -> WidthMap {
        WidthMap::from_entries(pairs.iter().map(|&(v, w)| (v, Width::new(w))).collect())
    }

    #[test]
    fn add_is_coordinatewise_max() {
        let mut a = wm(&[(1, 2.0), (3, 5.0)]);
        a.add_assign(&wm(&[(1, 3.0), (2, 1.0)]));
        assert_eq!(a, wm(&[(1, 3.0), (2, 1.0), (3, 5.0)]));
    }

    #[test]
    fn scale_is_coordinatewise_min() {
        let a = wm(&[(1, 2.0), (3, 5.0)]);
        assert_eq!(a.scale(&Width::new(3.0)), wm(&[(1, 2.0), (3, 3.0)]));
        // Scaling by the semiring one (∞) is the identity.
        assert_eq!(a.scale(&<Width as Semiring>::one()), a);
        // Scaling by the semiring zero (0) collapses to ⊥.
        assert!(a.scale(&<Width as Semiring>::zero()).is_empty());
    }

    #[test]
    fn zero_entries_are_not_stored() {
        let a = WidthMap::from_entries(vec![(4, Width::new(0.0)), (5, Width::new(1.0))]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(4), Width::new(0.0));
    }
}
