//! Algebraic foundations for Moore-Bellman-Ford-like (MBF-like) algorithms.
//!
//! This crate implements the algebraic machinery of Friedrichs & Lenzen,
//! *Parallel Metric Tree Embedding based on an Algebraic View on
//! Moore-Bellman-Ford* (SPAA 2016), Sections 1.2, 2 and Appendix A:
//!
//! * [`Semiring`] — a ring without additive inverses (Definition A.2),
//! * [`Semimodule`] — scalar multiplication (propagation) plus a semigroup
//!   (aggregation) over a semiring (Definition A.3),
//! * [`Filter`] — a representative projection of a congruence relation
//!   (Definitions 2.4 and 2.6), the ingredient that makes MBF-like
//!   algorithms efficient,
//! * concrete semirings used by the paper: the min-plus (tropical) semiring
//!   [`minplus`], the max-min semiring [`maxmin`] (Section 3.2), the
//!   all-paths semiring [`allpaths`] (Section 3.3) and the Boolean semiring
//!   [`boolean`] (Section 3.4),
//! * the distance-map semimodule `D` (Definition 2.1) in [`distance_map`],
//! * the epoch-arena state store for whole vectors `x ∈ D^V` in
//!   [`store`]: one flat entry pool with per-vertex `(offset, len)`
//!   spans, copy-on-write epochs and amortized compaction — the
//!   storage backend of the production engine paths (the owned
//!   [`DistanceMap`] vector remains the semantics reference and interop
//!   type),
//! * the dense semiring block store for APSP-class state vectors in
//!   [`dense`]: row-major `n × k` matrices of semiring values with
//!   contiguous, cache-tiled relax/aggregate row kernels — the paper's
//!   matrix-semimodule view taken literally for states that are
//!   effectively full.
//!
//! The law-checking helpers in [`laws`] are used by the property-test suite
//! to verify every axiom the paper states for these structures.

pub mod allpaths;
pub mod boolean;
pub mod dense;
pub mod dist;
pub mod distance_map;
pub mod filter;
pub mod laws;
pub mod matrix;
pub mod maxmin;
pub mod merge;
pub mod minplus;
pub mod node_set;
pub mod semimodule;
pub mod semiring;
pub mod store;
pub mod width_map;

pub use allpaths::{AllPaths, Path};
pub use boolean::Bool;
pub use dense::{DenseBlock, DenseKernel, DenseState};
pub use dist::Dist;
pub use distance_map::DistanceMap;
pub use filter::{Filter, IdentityFilter};
pub use matrix::SemiringMatrix;
pub use maxmin::Width;
pub use minplus::MinPlus;
pub use node_set::NodeSet;
pub use semimodule::Semimodule;
pub use semiring::Semiring;
pub use store::{DistanceSlice, EpochStore, SpanOut, StoreStats};
pub use width_map::WidthMap;

/// Node identifier used across the workspace. `u32` keeps sparse state
/// entries small (12 bytes for a `(NodeId, Dist)` pair plus padding).
pub type NodeId = u32;
