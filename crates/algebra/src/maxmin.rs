//! The max-min semiring `S_{max,min} = (R≥0 ∪ {∞}, max, min)`
//! (Definition 3.9 / Lemma 3.10), used for widest-path problems.

use crate::dist::Dist;
use crate::semiring::Semiring;

/// Element of the max-min semiring: a path *width* (bottleneck capacity).
///
/// `⊕ = max` picks the wider of two alternatives; `⊙ = min` restricts a
/// path's width by an edge's width. Neutral elements are `0` for `⊕` and
/// `∞` for `⊙` (Lemma 3.10). `repr(transparent)` (layout = `f64`) so
/// dense rows of it can take the SIMD kernel fast path (see
/// [`crate::dense`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(transparent)]
pub struct Width(pub Dist);

impl Width {
    /// Finite width from a raw capacity.
    #[inline]
    pub fn new(v: f64) -> Self {
        Width(Dist::new(v))
    }

    /// Unbounded width (the multiplicative identity).
    pub const INF: Width = Width(Dist::INF);

    /// The underlying value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0.value()
    }
}

impl Semiring for Width {
    /// `0` — neutral for `max`, annihilating for `min`.
    #[inline]
    fn zero() -> Self {
        Width(Dist::ZERO)
    }

    /// `∞` — neutral for `min`.
    #[inline]
    fn one() -> Self {
        Width(Dist::INF)
    }

    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        Width(self.0.max(rhs.0))
    }

    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        Width(self.0.min(rhs.0))
    }

    #[inline]
    fn is_sane(&self) -> bool {
        !self.0.is_poisoned()
    }

    #[inline]
    fn poison(&mut self) {
        self.0 = Dist::poisoned();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_elements() {
        let x = Width::new(3.0);
        assert_eq!(Width::zero().add(&x), x);
        assert_eq!(Width::one().mul(&x), x);
    }

    #[test]
    fn zero_annihilates() {
        let x = Width::new(3.0);
        assert_eq!(Width::zero().mul(&x), Width::zero());
    }

    #[test]
    fn add_is_max_mul_is_min() {
        let a = Width::new(2.0);
        let b = Width::new(5.0);
        assert_eq!(a.add(&b), b);
        assert_eq!(a.mul(&b), a);
    }

    #[test]
    fn distributivity_spot_check() {
        // min{x, max{y, z}} = max{min{x,y}, min{x,z}} (Equation (B.6)).
        let x = Width::new(3.0);
        let y = Width::new(2.0);
        let z = Width::new(5.0);
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }
}
