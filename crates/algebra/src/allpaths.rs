//! The all-paths semiring `P_{min,+}` (Definition 3.17 of the paper),
//! required for problems that must distinguish different paths of equal
//! weight, such as the k-Shortest Distance Problem (k-SDP, Section 3.3).
//!
//! An element assigns a weight from `R≥0 ∪ {∞}` to every non-empty
//! directed **walk** over `V`; we say it *contains* the walks with finite
//! weight. `⊕` takes the walk-wise minimum; `⊙` concatenates contained
//! walks (Equations (3.14)/(3.15)).
//!
//! **Why walks rather than simple paths:** the paper states `P` as the
//! loop-free paths, but with that reading the k-SDP projection is *not* a
//! representative projection — filtering can discard a suboptimal simple
//! path whose extension stays simple while the kept optimum's extension
//! closes a loop and vanishes, breaking Equation (2.12). (Counterexample:
//! keep `(3,2,0)` over `(3,0)`, then multiply by `(2,3)`.) Lemma 3.22's
//! proof implicitly assumes every concatenation `π₁ ∘ π₂` exists, i.e.
//! walk semantics, which is what this implementation uses — our
//! congruence property tests found the discrepancy and verify the walk
//! version. k-SDP consequently reports the k shortest *walks* (Eppstein
//! semantics); with positive weights the shortest walk is a simple path.
//!
//! The multiplicative identity `1` contains *every* single-vertex path
//! `(v)` with weight 0 (Equation (3.17)) — a global object. We represent it
//! symbolically with the `has_identity` flag instead of materializing `V`.

use crate::dist::Dist;
use crate::semiring::Semiring;
use crate::NodeId;

/// A directed walk, stored as its vertex sequence (non-empty;
/// consecutive vertices distinct).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Path(Box<[NodeId]>);

impl Path {
    /// The zero-hop path `(v)`.
    pub fn single(v: NodeId) -> Path {
        Path(Box::new([v]))
    }

    /// The one-hop path `(v, w)`; panics if `v == w` (graphs have no
    /// self-loops).
    pub fn edge(v: NodeId, w: NodeId) -> Path {
        assert_ne!(v, w, "graphs have no self-loops");
        Path(Box::new([v, w]))
    }

    /// Builds a walk from a vertex sequence, returning `None` if it is
    /// empty or stutters (repeats a vertex consecutively).
    pub fn from_nodes(nodes: &[NodeId]) -> Option<Path> {
        if nodes.is_empty() || nodes.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(Path(nodes.into()))
    }

    /// Vertex sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.0
    }

    /// First vertex.
    #[inline]
    pub fn first(&self) -> NodeId {
        self.0[0]
    }

    /// Last vertex.
    #[inline]
    pub fn last(&self) -> NodeId {
        *self.0.last().unwrap()
    }

    /// Number of hops (`|p|` in the paper's notation).
    #[inline]
    pub fn hops(&self) -> usize {
        self.0.len() - 1
    }

    /// Concatenation `self ◦ other` (Equation (3.13)): defined iff
    /// `self.last() == other.first()`. Walks may revisit vertices (see
    /// the module docs on why this is required for the congruence laws).
    pub fn concat(&self, other: &Path) -> Option<Path> {
        if self.last() != other.first() {
            return None;
        }
        let mut nodes = Vec::with_capacity(self.0.len() + other.0.len() - 1);
        nodes.extend_from_slice(&self.0);
        nodes.extend_from_slice(&other.0[1..]);
        Some(Path(nodes.into_boxed_slice()))
    }
}

/// Element of the all-paths semiring `P_{min,+}`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AllPaths {
    /// If set, every single-vertex path `(v)` implicitly has weight 0.
    has_identity: bool,
    /// Explicitly contained paths with their weights, sorted by path,
    /// unique; all weights finite; no single-vertex entries while
    /// `has_identity` holds (they are dominated by the implicit 0).
    entries: Vec<(Path, Dist)>,
}

impl AllPaths {
    /// Element containing exactly one path.
    pub fn from_path(p: Path, w: Dist) -> AllPaths {
        AllPaths::normalize(false, vec![(p, w)])
    }

    /// The adjacency coefficient `a_vw` for an edge of weight `ω`
    /// (Equation (3.18)): contains only the path `(v, w)`.
    pub fn edge(v: NodeId, w: NodeId, weight: Dist) -> AllPaths {
        AllPaths::from_path(Path::edge(v, w), weight)
    }

    /// The initialization value for node `v` (Equation (3.19)): contains
    /// only the zero-hop path `(v)` with weight 0.
    pub fn source(v: NodeId) -> AllPaths {
        AllPaths::normalize(false, vec![(Path::single(v), Dist::ZERO)])
    }

    /// Weight assigned to `π` (`∞` when not contained).
    pub fn weight_of(&self, p: &Path) -> Dist {
        if self.has_identity && p.hops() == 0 {
            return Dist::ZERO;
        }
        match self.entries.binary_search_by(|(q, _)| q.cmp(p)) {
            Ok(i) => self.entries[i].1,
            Err(_) => Dist::INF,
        }
    }

    /// Explicit entries (does not enumerate the identity's implicit
    /// single-vertex paths).
    #[inline]
    pub fn entries(&self) -> &[(Path, Dist)] {
        &self.entries
    }

    /// Whether all single-vertex paths are implicitly contained at 0.
    #[inline]
    pub fn contains_identity(&self) -> bool {
        self.has_identity
    }

    /// Rebuilds an element from possibly unsorted/duplicated entries.
    pub fn normalize(has_identity: bool, mut entries: Vec<(Path, Dist)>) -> AllPaths {
        // When the identity flag holds, every (v) already has weight
        // min(0, w) = 0; explicit single-vertex entries are redundant.
        entries.retain(|(p, w)| w.is_finite() && !(has_identity && p.hops() == 0));
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        entries.dedup_by(|next, prev| prev.0 == next.0); // keeps min weight
        AllPaths {
            has_identity,
            entries,
        }
    }

    /// Keeps only entries satisfying the predicate (used by k-SDP filters).
    pub fn filter_entries(&self, keep: impl Fn(&Path, Dist) -> bool) -> AllPaths {
        AllPaths {
            has_identity: self.has_identity,
            entries: self
                .entries
                .iter()
                .filter(|(p, w)| keep(p, *w))
                .cloned()
                .collect(),
        }
    }
}

impl Semiring for AllPaths {
    /// `0 = (∞, …, ∞)` — contains no path (Equation (3.16)).
    fn zero() -> Self {
        AllPaths {
            has_identity: false,
            entries: Vec::new(),
        }
    }

    /// `1` — contains every `(v)` at weight 0 (Equation (3.17)).
    fn one() -> Self {
        AllPaths {
            has_identity: true,
            entries: Vec::new(),
        }
    }

    /// Path-wise minimum (Equation (3.14)).
    fn add(&self, rhs: &Self) -> Self {
        let mut entries = Vec::with_capacity(self.entries.len() + rhs.entries.len());
        entries.extend_from_slice(&self.entries);
        entries.extend_from_slice(&rhs.entries);
        AllPaths::normalize(self.has_identity || rhs.has_identity, entries)
    }

    /// Concatenation product (Equation (3.15)): the lightest two-split
    /// `π = π1 ◦ π2` with `π1` from `self` and `π2` from `rhs`.
    fn mul(&self, rhs: &Self) -> Self {
        let mut entries = Vec::new();
        for (p1, w1) in &self.entries {
            for (p2, w2) in &rhs.entries {
                if let Some(p) = p1.concat(p2) {
                    entries.push((p, *w1 + *w2));
                }
            }
        }
        if self.has_identity {
            // π1 = (first(π2)) at weight 0 ⇒ π2 carries over unchanged.
            entries.extend_from_slice(&rhs.entries);
        }
        if rhs.has_identity {
            entries.extend_from_slice(&self.entries);
        }
        AllPaths::normalize(self.has_identity && rhs.has_identity, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: f64) -> Dist {
        Dist::new(v)
    }

    #[test]
    fn concat_requires_matching_endpoint() {
        let ab = Path::edge(0, 1);
        let bc = Path::edge(1, 2);
        let ca = Path::edge(2, 0);
        assert_eq!(ab.concat(&bc).unwrap().nodes(), &[0, 1, 2]);
        assert!(ab.concat(&ca).is_none()); // endpoints do not match
        let abc = ab.concat(&bc).unwrap();
        // Walks may close cycles (required for the congruence laws).
        assert_eq!(abc.concat(&ca).unwrap().nodes(), &[0, 1, 2, 0]);
    }

    #[test]
    fn identity_is_neutral() {
        let x = AllPaths::edge(0, 1, d(2.0));
        assert_eq!(AllPaths::one().mul(&x), x);
        assert_eq!(x.mul(&AllPaths::one()), x);
    }

    #[test]
    fn zero_annihilates_and_is_neutral_for_add() {
        let x = AllPaths::edge(0, 1, d(2.0));
        assert_eq!(AllPaths::zero().mul(&x), AllPaths::zero());
        assert_eq!(x.mul(&AllPaths::zero()), AllPaths::zero());
        assert_eq!(AllPaths::zero().add(&x), x);
    }

    #[test]
    fn mul_concatenates_paths_and_adds_weights() {
        let ab = AllPaths::edge(0, 1, d(2.0));
        let bc = AllPaths::edge(1, 2, d(3.0));
        let prod = ab.mul(&bc);
        let p = Path::from_nodes(&[0, 1, 2]).unwrap();
        assert_eq!(prod.weight_of(&p), d(5.0));
        assert_eq!(prod.entries().len(), 1);
    }

    #[test]
    fn add_keeps_minimum_weight_per_path() {
        let p = Path::from_nodes(&[0, 1]).unwrap();
        let a = AllPaths::from_path(p.clone(), d(5.0));
        let b = AllPaths::from_path(p.clone(), d(2.0));
        assert_eq!(a.add(&b).weight_of(&p), d(2.0));
    }

    #[test]
    fn source_times_edge_builds_two_hop_path() {
        // a_vw ⊙ x_w with x_w = source(w): contains (v, w) at ω.
        let a = AllPaths::edge(7, 8, d(1.5));
        let x = AllPaths::source(8);
        let res = a.mul(&x);
        assert_eq!(res.weight_of(&Path::edge(7, 8)), d(1.5));
    }

    #[test]
    fn identity_single_vertex_weight_is_zero() {
        let one = AllPaths::one();
        assert_eq!(one.weight_of(&Path::single(42)), Dist::ZERO);
        assert_eq!(one.weight_of(&Path::edge(0, 1)), Dist::INF);
    }
}
