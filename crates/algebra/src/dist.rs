//! Non-negative distances with infinity: the carrier `R≥0 ∪ {∞}` of the
//! min-plus semiring (Section 1.2 of the paper).

use std::cmp::Ordering;
use std::fmt;
use std::ops::Add;

/// A non-negative distance, possibly infinite.
///
/// `Dist` wraps an `f64` that is guaranteed to be `>= 0` and never NaN,
/// which makes the ordering total ([`Ord`] is implemented). `∞` is the
/// additive identity of the min-plus semiring ([`crate::MinPlus`]) and the
/// "no information" value of distance maps.
///
/// `repr(transparent)`: a `Dist` is layout-identical to its `f64`, which
/// lets the dense row kernels ([`crate::dense`]) view whole rows of
/// wrapped values as `[f64]` for the SIMD fast paths.
#[derive(Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct Dist(f64);

impl Dist {
    /// Zero distance: the multiplicative identity of min-plus.
    pub const ZERO: Dist = Dist(0.0);
    /// Infinite distance: the additive identity of min-plus.
    pub const INF: Dist = Dist(f64::INFINITY);

    /// Creates a distance. Panics on NaN or negative input, the two values
    /// that would break the total order and the semiring laws.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v >= 0.0, "Dist must be non-negative and not NaN, got {v}");
        Dist(v)
    }

    /// Raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `true` iff the distance is not `∞`.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// A NaN distance, bypassing the [`Dist::new`] validation.
    ///
    /// **Fault-injection only.** The `mte_faults` harness uses this to
    /// corrupt states and assert the pipeline either detects the
    /// corruption or panics; no production path constructs it.
    #[inline]
    pub fn poisoned() -> Dist {
        Dist(f64::NAN)
    }

    /// `true` iff this distance holds the NaN payload that only
    /// [`Dist::poisoned`] can produce.
    #[inline]
    pub fn is_poisoned(self) -> bool {
        self.0.is_nan()
    }

    /// Minimum of two distances (`⊕` of min-plus).
    #[inline]
    pub fn min(self, other: Dist) -> Dist {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two distances.
    #[inline]
    pub fn max(self, other: Dist) -> Dist {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies by a non-negative scalar, preserving `∞`.
    #[inline]
    pub fn scaled(self, factor: f64) -> Dist {
        debug_assert!(factor >= 0.0 && !factor.is_nan());
        if self.0.is_infinite() {
            Dist::INF
        } else {
            Dist::new(self.0 * factor)
        }
    }
}

impl Eq for Dist {}

impl PartialOrd for Dist {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: no NaN can be constructed.
        self.0.partial_cmp(&other.0).expect("Dist is never NaN")
    }
}

impl Add for Dist {
    type Output = Dist;

    /// `⊙` of min-plus: ordinary addition with `∞` absorbing.
    #[inline]
    fn add(self, rhs: Dist) -> Dist {
        Dist(self.0 + rhs.0)
    }
}

impl From<f64> for Dist {
    #[inline]
    fn from(v: f64) -> Self {
        Dist::new(v)
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_inf_is_largest() {
        assert!(Dist::ZERO < Dist::new(1.0));
        assert!(Dist::new(1.0) < Dist::INF);
        assert_eq!(Dist::INF.cmp(&Dist::INF), Ordering::Equal);
    }

    #[test]
    fn addition_saturates_at_infinity() {
        assert_eq!(Dist::INF + Dist::new(3.0), Dist::INF);
        assert_eq!(Dist::new(2.0) + Dist::new(3.0), Dist::new(5.0));
    }

    #[test]
    fn min_max_behave() {
        let a = Dist::new(2.0);
        let b = Dist::new(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(Dist::INF), a);
    }

    #[test]
    fn scaling_preserves_infinity() {
        assert_eq!(Dist::INF.scaled(0.5), Dist::INF);
        assert_eq!(Dist::new(4.0).scaled(1.5), Dist::new(6.0));
    }

    #[test]
    #[should_panic]
    fn negative_rejected() {
        let _ = Dist::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = Dist::new(f64::NAN);
    }
}
