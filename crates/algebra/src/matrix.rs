//! Dense square matrices over a semiring: the Simple Linear Functions
//! (SLFs) of Section 2.4 made explicit.
//!
//! Lemma 2.14: SLFs (with function addition and concatenation) are
//! isomorphic to the matrix semiring over `S` — `(A ⊕ B)(x) = (A⊕B)x`
//! and `(A ∘ B)(x) = ABx`. This module provides that matrix semiring,
//! which also powers the paper's classic `Ω(n³)`-work baseline: the
//! fixpoint iteration `A^{(i+1)} = A^{(i)} A^{(i)}` reaching all-pairs
//! distances after `⌈log SPD(G)⌉` squarings (Section 1.1).

use crate::semimodule::Semimodule;
use crate::semiring::Semiring;
use rayon::prelude::*;

/// A dense `n × n` matrix over the semiring `S`, stored row-major.
#[derive(Clone, PartialEq, Debug)]
pub struct SemiringMatrix<S> {
    n: usize,
    data: Vec<S>,
}

impl<S: Semiring> SemiringMatrix<S> {
    /// The all-zero matrix (the zero of the matrix semiring).
    pub fn zeros(n: usize) -> Self {
        SemiringMatrix {
            n,
            data: vec![S::zero(); n * n],
        }
    }

    /// The identity matrix (ones on the diagonal).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, S::one());
        }
        m
    }

    /// Builds from a row-major element vector.
    pub fn from_rows(n: usize, data: Vec<S>) -> Self {
        assert_eq!(data.len(), n * n);
        SemiringMatrix { n, data }
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> &S {
        &self.data[i * self.n + j]
    }

    /// Element update.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        self.data[i * self.n + j] = v;
    }

    /// Matrix addition: `(A ⊕ B)_{ij} = a_{ij} ⊕ b_{ij}`
    /// (Equation (1.5)).
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.n);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a.add(b))
            .collect();
        SemiringMatrix { n: self.n, data }
    }

    /// Matrix product `(AB)_{ij} = ⊕_u a_{iu} ⊙ b_{uj}` (Equation (1.6)),
    /// parallelized over rows.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.n);
        let n = self.n;
        let data: Vec<S> = (0..n)
            .into_par_iter()
            .flat_map_iter(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                (0..n).map(move |j| {
                    let mut acc = S::zero();
                    for (u, a) in row.iter().enumerate() {
                        acc = acc.add(&a.mul(&rhs.data[u * n + j]));
                    }
                    acc
                })
            })
            .collect();
        SemiringMatrix { n, data }
    }

    /// Matrix–vector product over a semimodule: the SLF application
    /// `A(x)_v = ⊕_w a_{vw} ⊙ x_w` of Definition 2.12.
    pub fn apply<M: Semimodule<S>>(&self, x: &[M]) -> Vec<M> {
        assert_eq!(x.len(), self.n);
        let n = self.n;
        (0..n)
            .into_par_iter()
            .map(|i| {
                let mut acc = M::zero();
                for (w, coeff) in self.data[i * n..(i + 1) * n].iter().enumerate() {
                    acc.add_assign(&x[w].scale(coeff));
                }
                acc
            })
            .collect()
    }

    /// `A^{2^k}` by repeated squaring until the fixpoint `A² = A` is
    /// reached (at most `⌈log₂ cap⌉ + 1` squarings). Returns the fixpoint
    /// matrix and the number of squarings performed.
    pub fn square_to_fixpoint(&self, cap: usize) -> (Self, usize) {
        let mut cur = self.clone();
        let mut squarings = 0;
        let max = (cap.max(2) as f64).log2().ceil() as usize + 1;
        while squarings < max {
            let next = cur.mul(&cur);
            squarings += 1;
            if next == cur {
                break;
            }
            cur = next;
        }
        (cur, squarings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minplus::MinPlus;

    fn mp(v: f64) -> MinPlus {
        MinPlus::new(v)
    }

    #[test]
    fn identity_is_neutral() {
        let a = SemiringMatrix::from_rows(2, vec![mp(0.0), mp(3.0), mp(3.0), mp(0.0)]);
        let id = SemiringMatrix::<MinPlus>::identity(2);
        assert_eq!(id.mul(&a), a);
        assert_eq!(a.mul(&id), a);
    }

    #[test]
    fn minplus_product_is_shortest_two_hop() {
        // Path 0-1-2 with weights 1 and 2: A² must contain dist(0,2)=3.
        let inf = <MinPlus as Semiring>::zero();
        let a = SemiringMatrix::from_rows(
            3,
            vec![
                mp(0.0),
                mp(1.0),
                inf,
                mp(1.0),
                mp(0.0),
                mp(2.0),
                inf,
                mp(2.0),
                mp(0.0),
            ],
        );
        let a2 = a.mul(&a);
        assert_eq!(*a2.get(0, 2), mp(3.0));
    }

    #[test]
    fn squaring_reaches_fixpoint() {
        let inf = <MinPlus as Semiring>::zero();
        // Path of 4 nodes: SPD = 3 ⇒ 2 squarings suffice.
        let mut a = SemiringMatrix::zeros(4);
        for i in 0..4 {
            a.set(i, i, mp(0.0));
        }
        for i in 0..3 {
            a.set(i, i + 1, mp(1.0));
            a.set(i + 1, i, mp(1.0));
        }
        let (fix, squarings) = a.square_to_fixpoint(4);
        assert_eq!(*fix.get(0, 3), mp(3.0));
        assert!(squarings <= 3);
        let _ = inf;
    }

    #[test]
    fn apply_matches_manual_slf() {
        use crate::dist::Dist;
        use crate::distance_map::DistanceMap;
        let inf = <MinPlus as Semiring>::zero();
        let a = SemiringMatrix::from_rows(2, vec![mp(0.0), mp(5.0), mp(5.0), inf]);
        let x = vec![
            DistanceMap::singleton(0, Dist::ZERO),
            DistanceMap::singleton(1, Dist::ZERO),
        ];
        let y = a.apply(&x);
        assert_eq!(y[0].get(0), Dist::ZERO);
        assert_eq!(y[0].get(1), Dist::new(5.0));
        // Row 1 has an ∞ diagonal: node 1 forgets its own entry.
        assert_eq!(y[1].get(1), Dist::INF);
        assert_eq!(y[1].get(0), Dist::new(5.0));
    }
}
