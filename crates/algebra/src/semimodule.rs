//! The [`Semimodule`] trait (Definition A.3 of the paper).

use crate::semiring::Semiring;
use std::fmt::Debug;

/// A zero-preserving semimodule `M = (M, ⊕, ⊙)` over a semiring `S`.
///
/// `⊕ : M × M → M` models **aggregation** of node states and
/// `⊙ : S × M → M` models **propagation** of a node state over an edge.
/// Requirements (Definition A.3, Equations (2.1)–(2.5)):
///
/// * `(M, ⊕)` is a semigroup with neutral element `⊥` ([`zero`](Semimodule::zero)),
/// * `1 ⊙ x = x`, `s ⊙ (x ⊕ y) = sx ⊕ sy`, `(s ⊕ t)x = sx ⊕ tx`,
///   `(s ⊙ t)x = s(tx)`,
/// * zero-preservation: `0 ⊙ x = ⊥` (Equation (2.2): propagating over a
///   non-edge loses the information).
///
/// Like the semiring laws, these are verified by property tests via
/// [`crate::laws`].
pub trait Semimodule<S: Semiring>: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// The neutral element `⊥` of aggregation ("no information").
    fn zero() -> Self;
    /// In-place aggregation `self ← self ⊕ rhs`.
    fn add_assign(&mut self, rhs: &Self);
    /// Propagation `s ⊙ self`.
    fn scale(&self, s: &S) -> Self;

    /// Out-of-place aggregation.
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// Returns `true` iff `self` equals `⊥`.
    #[inline]
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Returns `false` iff `self` contains a value no semimodule operation
    /// can produce (e.g. a NaN distance injected by the fault harness).
    ///
    /// Defense-in-depth for the robustness audit; the fault registry's
    /// fired log remains the primary detector, since poisoned entries can
    /// be overwritten by later aggregations.
    #[inline]
    fn is_sane(&self) -> bool {
        true
    }

    /// Corrupts `self` with an insane value if the representation has one.
    /// Fault-injection only; the default is a no-op.
    #[inline]
    fn poison(&mut self) {}
}

/// Every semiring is a zero-preserving semimodule over itself
/// (used by the paper for SSSP and the forest-fire example, Section 3.1).
impl<S: Semiring> Semimodule<S> for S {
    #[inline]
    fn zero() -> Self {
        S::zero()
    }

    #[inline]
    fn add_assign(&mut self, rhs: &Self) {
        *self = Semiring::add(self, rhs);
    }

    #[inline]
    fn scale(&self, s: &S) -> Self {
        s.mul(self)
    }

    #[inline]
    fn is_sane(&self) -> bool {
        Semiring::is_sane(self)
    }

    #[inline]
    fn poison(&mut self) {
        Semiring::poison(self);
    }
}
