//! The min-plus (tropical) semiring `S_{min,+} = (R≥0 ∪ {∞}, min, +)`
//! (Section 1.2 of the paper), the workhorse of distance computations.

use crate::dist::Dist;
use crate::semiring::Semiring;

/// Element of the min-plus semiring. A thin wrapper around [`Dist`] so the
/// semiring structure (`⊕ = min`, `⊙ = +`) is expressed by the type.
/// `repr(transparent)` (layout = `f64`) so dense rows of it can take the
/// SIMD kernel fast path (see [`crate::dense`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(transparent)]
pub struct MinPlus(pub Dist);

impl MinPlus {
    /// Finite element from a raw weight.
    #[inline]
    pub fn new(v: f64) -> Self {
        MinPlus(Dist::new(v))
    }

    /// The underlying distance.
    #[inline]
    pub fn dist(self) -> Dist {
        self.0
    }
}

impl Semiring for MinPlus {
    /// `∞` — neutral for `min`, annihilating for `+`.
    #[inline]
    fn zero() -> Self {
        MinPlus(Dist::INF)
    }

    /// `0` — neutral for `+`.
    #[inline]
    fn one() -> Self {
        MinPlus(Dist::ZERO)
    }

    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        MinPlus(self.0.min(rhs.0))
    }

    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        MinPlus(self.0 + rhs.0)
    }

    #[inline]
    fn is_sane(&self) -> bool {
        !self.0.is_poisoned()
    }

    #[inline]
    fn poison(&mut self) {
        self.0 = Dist::poisoned();
    }
}

impl From<Dist> for MinPlus {
    #[inline]
    fn from(d: Dist) -> Self {
        MinPlus(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_elements() {
        let x = MinPlus::new(3.0);
        assert_eq!(MinPlus::zero().add(&x), x);
        assert_eq!(MinPlus::one().mul(&x), x);
    }

    #[test]
    fn zero_annihilates() {
        let x = MinPlus::new(3.0);
        assert_eq!(MinPlus::zero().mul(&x), MinPlus::zero());
        assert_eq!(x.mul(&MinPlus::zero()), MinPlus::zero());
    }

    #[test]
    fn add_is_min_mul_is_plus() {
        let a = MinPlus::new(2.0);
        let b = MinPlus::new(5.0);
        assert_eq!(a.add(&b), a);
        assert_eq!(a.mul(&b), MinPlus::new(7.0));
    }
}
