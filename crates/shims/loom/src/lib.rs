//! Offline vendored shim of the **loom** model checker.
//!
//! The build image has no registry access, so this crate reimplements the
//! slice of loom's API the workspace uses — `loom::model`,
//! `loom::thread::{spawn, JoinHandle, yield_now}`,
//! `loom::sync::{Mutex, Condvar}`, and `loom::sync::atomic` — on top of a
//! **cooperative scheduler with bounded exhaustive exploration**:
//!
//! * Model threads are real OS threads, but at most one is ever *active*:
//!   every synchronisation operation (atomic access, mutex lock/unlock,
//!   condvar wait/notify, spawn, join) is a *scheduling point* where the
//!   active thread hands control to a scheduler that picks the next
//!   thread to run. Between points a thread runs exclusively, so model
//!   state needs no further synchronisation.
//! * [`model`] re-runs the closure under **every** schedule reachable
//!   within the preemption bound: a depth-first search over the choice
//!   points, restarting the closure with a recorded decision prefix and
//!   taking the next unexplored branch (iterative context bounding,
//!   default 2 preemptions — override with `LOOM_MAX_PREEMPTIONS`).
//! * A state where no thread is runnable but not all have finished is
//!   reported as a **deadlock** — this is what catches lost-wakeup bugs
//!   (a parked worker whose notify raced past its predicate check).
//!
//! Differences from real loom, by design: the memory model is
//! sequentially consistent (orderings are accepted and ignored — relaxed
//! reorderings are *not* explored; the ThreadSanitizer CI job covers the
//! ordering axis on real hardware), condvars have no spurious wakeups,
//! and `notify_one` deterministically wakes the longest-waiting thread.
//! `Arc` is re-exported from `std` (threads are real, so `std`'s works).
//!
//! The shim's own unit tests run in the normal test suite (no `--cfg
//! loom` needed — only *consumers* gate themselves); they pin both
//! directions: racy programs are caught, correct ones pass.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to unwind model threads when an execution aborts
/// (another thread failed, or a deadlock was detected). Never observed by
/// user code: [`model`] re-raises the *original* failure.
struct ExecutionAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

/// One scheduling decision: which runnable thread ran, out of which.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Choice {
    options: Vec<usize>,
    chosen: usize,
}

struct State {
    threads: Vec<ThreadState>,
    active: usize,
    /// Mutex owners by mutex id (`None` = free).
    mutexes: Vec<Option<usize>>,
    /// Condvar wait queues by condvar id (FIFO).
    condvars: Vec<Vec<usize>>,
    /// Decisions taken this execution (only multi-option points).
    path: Vec<Choice>,
    /// Decision prefix replayed from the previous execution.
    seed: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    max_preemptions: usize,
    done: bool,
    abort: bool,
    failure: Option<Box<dyn Any + Send>>,
}

struct Exec {
    state: StdMutex<State>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(StdArc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (StdArc<Exec>, usize) {
    CTX.with(|c| c.borrow().clone())
        .expect("loom sync primitive used outside loom::model")
}

impl Exec {
    fn new(seed: Vec<Choice>, max_preemptions: usize) -> Self {
        Exec {
            state: StdMutex::new(State {
                threads: Vec::new(),
                active: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                path: Vec::new(),
                seed,
                cursor: 0,
                preemptions: 0,
                max_preemptions,
                done: false,
                abort: false,
                failure: None,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// Core scheduler step, called with the state lock held: pick the
    /// next active thread (or declare the execution done / deadlocked).
    fn choose_next(&self, st: &mut State, cur: usize) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|s| *s == ThreadState::Finished) {
                st.done = true;
            } else {
                st.failure = Some(Box::new(format!(
                    "deadlock: no runnable thread (states: {:?})",
                    st.threads
                )));
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let cur_runnable = runnable.contains(&cur);
        let mut options: Vec<usize> = Vec::new();
        if cur_runnable {
            // Continuing the current thread is free; switching away from
            // a runnable thread costs a preemption.
            options.push(cur);
            if st.preemptions < st.max_preemptions {
                options.extend(runnable.iter().copied().filter(|&t| t != cur));
            }
        } else {
            options = runnable;
        }
        let chosen = if options.len() == 1 {
            options[0]
        } else {
            let idx = if st.cursor < st.seed.len() {
                let c = &st.seed[st.cursor];
                assert_eq!(
                    c.options, options,
                    "loom: schedule replay diverged — the model closure must be \
                     deterministic apart from thread interleaving"
                );
                c.chosen
            } else {
                0
            };
            st.path.push(Choice {
                options: options.clone(),
                chosen: idx,
            });
            st.cursor += 1;
            options[idx]
        };
        if cur_runnable && chosen != cur {
            st.preemptions += 1;
        }
        st.active = chosen;
        self.cv.notify_all();
    }

    /// A scheduling point for thread `me`. If `me` blocked itself before
    /// calling, it parks here until unblocked *and* scheduled again.
    fn schedule(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            panic_any(ExecutionAbort);
        }
        self.choose_next(&mut st, me);
        while !(st.abort || (st.active == me && st.threads[me] == ThreadState::Runnable)) {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            panic_any(ExecutionAbort);
        }
    }

    /// Parks a freshly spawned thread until its first activation.
    fn wait_first_activation(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        while !(st.abort || (st.active == me && st.threads[me] == ThreadState::Runnable)) {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            panic_any(ExecutionAbort);
        }
    }

    /// Marks `me` finished, wakes joiners, and hands the token on.
    fn finish_thread(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[me] = ThreadState::Finished;
        for s in st.threads.iter_mut() {
            if *s == ThreadState::BlockedJoin(me) {
                *s = ThreadState::Runnable;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.choose_next(&mut st, me);
    }

    fn record_failure(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_none() {
            st.failure = Some(payload);
        }
        st.abort = true;
        self.cv.notify_all();
    }
}

/// Runs the model thread body, routing panics into the execution.
fn run_model_thread(exec: StdArc<Exec>, me: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec), me)));
    exec.wait_first_activation(me);
    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
        if !payload.is::<ExecutionAbort>() {
            exec.record_failure(payload);
        }
    }
    exec.finish_thread(me);
    CTX.with(|c| *c.borrow_mut() = None);
}

pub mod thread {
    //! Model-checked threads.

    use super::*;

    /// Handle to a model thread; mirrors [`std::thread::JoinHandle`].
    pub struct JoinHandle<T> {
        tid: usize,
        result: StdArc<StdMutex<Option<T>>>,
    }

    /// Spawns a model thread. It starts only when the scheduler picks it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, me) = ctx();
        let tid = exec.register_thread();
        let result: StdArc<StdMutex<Option<T>>> = StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let exec2 = StdArc::clone(&exec);
        let os_handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                run_model_thread(exec2, tid, move || {
                    let value = f();
                    *slot.lock().unwrap() = Some(value);
                });
            })
            .expect("failed to spawn model thread");
        exec.handles.lock().unwrap().push(os_handle);
        // Spawning is a scheduling point: the child is now runnable.
        exec.schedule(me);
        JoinHandle { tid, result }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the thread finishes.
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = ctx();
            loop {
                {
                    let mut st = exec.state.lock().unwrap();
                    if st.abort {
                        drop(st);
                        panic_any(ExecutionAbort);
                    }
                    if st.threads[self.tid] == ThreadState::Finished {
                        break;
                    }
                    st.threads[me] = ThreadState::BlockedJoin(self.tid);
                }
                exec.schedule(me);
            }
            match self.result.lock().unwrap().take() {
                Some(value) => Ok(value),
                // The target unwound via ExecutionAbort: this execution is
                // being torn down, so unwind too.
                None => panic_any(ExecutionAbort),
            }
        }
    }

    /// A bare scheduling point.
    pub fn yield_now() {
        let (exec, me) = ctx();
        exec.schedule(me);
    }
}

pub mod sync {
    //! Model-checked synchronisation primitives.

    use super::*;
    use std::cell::UnsafeCell;

    pub use std::sync::Arc;

    pub mod atomic {
        //! Sequentially consistent model atomics (orderings accepted and
        //! ignored — see the crate docs for what that trades away).

        use super::super::ctx;
        use std::cell::UnsafeCell;

        pub use std::sync::atomic::Ordering;

        /// An atomic usize whose every access is a scheduling point.
        pub struct AtomicUsize {
            v: UnsafeCell<usize>,
        }

        // SAFETY: only the single *active* model thread touches the cell,
        // and the scheduler's std mutex/condvar handoff orders every
        // access of one thread before the next (see crate docs).
        unsafe impl Sync for AtomicUsize {}
        // SAFETY: a usize is freely sendable; the cell adds no affinity.
        unsafe impl Send for AtomicUsize {}

        impl AtomicUsize {
            pub fn new(v: usize) -> Self {
                AtomicUsize {
                    v: UnsafeCell::new(v),
                }
            }

            pub fn load(&self, _order: Ordering) -> usize {
                let (exec, me) = ctx();
                exec.schedule(me);
                // SAFETY: exclusive access by the active thread (see the
                // `Sync` impl).
                unsafe { *self.v.get() }
            }

            pub fn store(&self, v: usize, _order: Ordering) {
                let (exec, me) = ctx();
                exec.schedule(me);
                // SAFETY: as for `load`.
                unsafe { *self.v.get() = v }
            }

            pub fn fetch_add(&self, n: usize, _order: Ordering) -> usize {
                let (exec, me) = ctx();
                exec.schedule(me);
                // SAFETY: as for `load`.
                unsafe {
                    let p = self.v.get();
                    let old = *p;
                    *p = old.wrapping_add(n);
                    old
                }
            }

            pub fn fetch_sub(&self, n: usize, _order: Ordering) -> usize {
                let (exec, me) = ctx();
                exec.schedule(me);
                // SAFETY: as for `load`.
                unsafe {
                    let p = self.v.get();
                    let old = *p;
                    *p = old.wrapping_sub(n);
                    old
                }
            }
        }

        /// An atomic bool whose every access is a scheduling point.
        pub struct AtomicBool {
            v: UnsafeCell<bool>,
        }

        // SAFETY: as for `AtomicUsize`.
        unsafe impl Sync for AtomicBool {}
        // SAFETY: as for `AtomicUsize`.
        unsafe impl Send for AtomicBool {}

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                AtomicBool {
                    v: UnsafeCell::new(v),
                }
            }

            pub fn load(&self, _order: Ordering) -> bool {
                let (exec, me) = ctx();
                exec.schedule(me);
                // SAFETY: as for `AtomicUsize::load`.
                unsafe { *self.v.get() }
            }

            pub fn store(&self, v: bool, _order: Ordering) {
                let (exec, me) = ctx();
                exec.schedule(me);
                // SAFETY: as for `AtomicUsize::load`.
                unsafe { *self.v.get() = v }
            }
        }
    }

    /// A model-checked mutex; mirrors [`std::sync::Mutex`] (without
    /// poisoning — `lock` always returns `Ok`, like loom's).
    pub struct Mutex<T> {
        id: usize,
        cell: UnsafeCell<T>,
    }

    // SAFETY: the scheduler enforces mutual exclusion — `cell` is only
    // touched through a guard, and only one thread holds the guard.
    unsafe impl<T: Send> Sync for Mutex<T> {}
    // SAFETY: ownership transfer of the protected value follows `T`.
    unsafe impl<T: Send> Send for Mutex<T> {}

    /// RAII guard; unlocking is a scheduling point.
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            let (exec, _me) = ctx();
            let mut st = exec.state.lock().unwrap();
            st.mutexes.push(None);
            Mutex {
                id: st.mutexes.len() - 1,
                cell: UnsafeCell::new(value),
            }
        }

        fn acquire(&self, exec: &Exec, me: usize) {
            loop {
                {
                    let mut st = exec.state.lock().unwrap();
                    if st.abort {
                        drop(st);
                        panic_any(ExecutionAbort);
                    }
                    if st.mutexes[self.id].is_none() {
                        st.mutexes[self.id] = Some(me);
                        return;
                    }
                    st.threads[me] = ThreadState::BlockedMutex(self.id);
                }
                exec.schedule(me);
            }
        }

        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            let (exec, me) = ctx();
            exec.schedule(me); // contention point before acquiring
            self.acquire(&exec, me);
            Ok(MutexGuard { mutex: self })
        }
    }

    fn release_mutex(st: &mut State, id: usize) {
        st.mutexes[id] = None;
        for s in st.threads.iter_mut() {
            if *s == ThreadState::BlockedMutex(id) {
                *s = ThreadState::Runnable;
            }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let (exec, me) = ctx();
            {
                let mut st = exec.state.lock().unwrap();
                release_mutex(&mut st, self.mutex.id);
            }
            // Unlock is a scheduling point — unless this drop runs during
            // an unwind (chunk panic, execution abort), where raising a
            // fresh panic would escalate to a process abort.
            if !std::thread::panicking() {
                exec.schedule(me);
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: this thread owns the mutex while the guard lives.
            unsafe { &*self.mutex.cell.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as for `deref`.
            unsafe { &mut *self.mutex.cell.get() }
        }
    }

    /// A model-checked condition variable; no spurious wakeups,
    /// `notify_one` wakes the longest-waiting thread.
    pub struct Condvar {
        id: usize,
    }

    impl Condvar {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            let (exec, _me) = ctx();
            let mut st = exec.state.lock().unwrap();
            st.condvars.push(Vec::new());
            Condvar {
                id: st.condvars.len() - 1,
            }
        }

        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            let (exec, me) = ctx();
            let mutex = guard.mutex;
            // Atomically (in model time): release the mutex and enqueue.
            std::mem::forget(guard);
            {
                let mut st = exec.state.lock().unwrap();
                release_mutex(&mut st, mutex.id);
                st.condvars[self.id].push(me);
                st.threads[me] = ThreadState::BlockedCondvar(self.id);
            }
            exec.schedule(me); // parks until notified *and* scheduled
            mutex.acquire(&exec, me);
            Ok(MutexGuard { mutex })
        }

        pub fn notify_one(&self) {
            let (exec, me) = ctx();
            {
                let mut st = exec.state.lock().unwrap();
                if !st.condvars[self.id].is_empty() {
                    let t = st.condvars[self.id].remove(0);
                    st.threads[t] = ThreadState::Runnable;
                }
            }
            exec.schedule(me);
        }

        pub fn notify_all(&self) {
            let (exec, me) = ctx();
            {
                let mut st = exec.state.lock().unwrap();
                let waiters = std::mem::take(&mut st.condvars[self.id]);
                for t in waiters {
                    st.threads[t] = ThreadState::Runnable;
                }
            }
            exec.schedule(me);
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(default)
}

/// Checks `f` under every thread schedule reachable within the
/// preemption bound, panicking with the first failure (assertion,
/// uncaught model-thread panic, or deadlock). Returns the number of
/// executions explored.
pub fn explored<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 500_000);
    let f = StdArc::new(f);
    let mut seed: Vec<Choice> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded {max_iterations} executions \
             (raise LOOM_MAX_ITERATIONS or shrink the model)"
        );
        let exec = StdArc::new(Exec::new(std::mem::take(&mut seed), max_preemptions));
        let tid = exec.register_thread();
        debug_assert_eq!(tid, 0);
        let body = StdArc::clone(&f);
        let exec2 = StdArc::clone(&exec);
        let root = std::thread::Builder::new()
            .name("loom-model-0".to_owned())
            .spawn(move || run_model_thread(exec2, tid, move || body()))
            .expect("failed to spawn model thread");
        exec.handles.lock().unwrap().push(root);
        // Initial state already has thread 0 active & runnable; wait for
        // the execution to finish (all threads done, or aborted).
        {
            let mut st = exec.state.lock().unwrap();
            while !(st.done || st.abort) {
                st = exec.cv.wait(st).unwrap();
            }
        }
        // Join every OS thread of this execution (spawns can no longer
        // happen once all model threads are finished or aborting).
        loop {
            let handle = exec.handles.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let (failure, path) = {
            let mut st = exec.state.lock().unwrap();
            (st.failure.take(), std::mem::take(&mut st.path))
        };
        if let Some(payload) = failure {
            eprintln!(
                "loom: schedule failed after {iterations} execution(s); \
                 {} decision point(s) on the failing path",
                path.len()
            );
            resume_unwind(payload);
        }
        // Backtrack: advance the deepest decision with an unexplored
        // branch, drop everything after it, and re-run.
        let mut next = path;
        loop {
            match next.last_mut() {
                None => break,
                Some(last) if last.chosen + 1 < last.options.len() => {
                    last.chosen += 1;
                    break;
                }
                Some(_) => {
                    next.pop();
                }
            }
        }
        if next.is_empty() {
            if std::env::var("LOOM_LOG").is_ok() {
                eprintln!("loom: explored {iterations} execution(s)");
            }
            return iterations;
        }
        seed = next;
    }
}

/// Model-checks `f` under every schedule within the preemption bound.
/// Mirrors loom's entry point; see [`explored`] for the variant that
/// reports how many executions ran.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    explored(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicBool as StdAtomicBool;
    use std::sync::atomic::Ordering as StdOrdering;
    use std::sync::Arc;

    #[test]
    fn atomic_rmw_is_atomic() {
        // fetch_add from two threads can never lose an increment.
        let n = super::explored(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let h = super::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
        assert!(n >= 2, "expected both interleavings, explored {n}");
    }

    #[test]
    fn racy_read_modify_write_is_caught() {
        // load-then-store increments CAN lose an update; the checker must
        // find the interleaving where the final value is 1.
        let observed_lost = Arc::new(StdAtomicBool::new(false));
        let seen = Arc::clone(&observed_lost);
        super::model(move || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let h = super::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            if c.load(Ordering::SeqCst) == 1 {
                seen.store(true, StdOrdering::SeqCst);
            }
        });
        assert!(
            observed_lost.load(StdOrdering::SeqCst),
            "the lost-update interleaving was never explored"
        );
    }

    #[test]
    fn mutex_prevents_lost_updates() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0usize));
            let m2 = Arc::clone(&m);
            let h = super::thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                *g += 1;
            });
            {
                let mut g = m.lock().unwrap();
                *g += 1;
            }
            h.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn assertion_failures_propagate() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let h = super::thread::spawn(|| 41usize);
                assert_eq!(h.join().unwrap(), 42, "intentional model failure");
            });
        }));
        assert!(err.is_err());
    }

    #[test]
    fn lost_wakeup_is_reported_as_deadlock() {
        // Buggy pattern: predicate checked *outside* the lock, so the
        // notify can land between the check and the wait.
        let err = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (flag2, pair2) = (Arc::clone(&flag), Arc::clone(&pair));
                let h = super::thread::spawn(move || {
                    if !flag2.load(Ordering::SeqCst) {
                        let guard = pair2.0.lock().unwrap();
                        let _guard = pair2.1.wait(guard).unwrap();
                    }
                });
                flag.store(true, Ordering::SeqCst);
                pair.1.notify_one();
                h.join().unwrap();
            });
        }));
        let payload = err.expect_err("the lost wakeup should deadlock");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn condvar_handoff_completes() {
        // Correct pattern: predicate under the lock; must never deadlock.
        super::model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let state2 = Arc::clone(&state);
            let h = super::thread::spawn(move || {
                let mut done = state2.0.lock().unwrap();
                *done = true;
                state2.1.notify_one();
            });
            {
                let mut done = state.0.lock().unwrap();
                while !*done {
                    done = state.1.wait(done).unwrap();
                }
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn join_returns_the_thread_value() {
        super::model(|| {
            let h = super::thread::spawn(|| 7usize);
            assert_eq!(h.join().unwrap(), 7);
        });
    }
}
