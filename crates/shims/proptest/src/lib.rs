//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the strategy combinators and macros its property tests use: range and
//! tuple strategies, [`Just`], [`any`], `prop_map`, weighted
//! [`prop_oneof!`], `proptest::collection::vec`, and the [`proptest!`] /
//! [`prop_assert!`] macros. Cases are generated deterministically (the
//! case index seeds a [`rand::rngs::StdRng`]); there is **no shrinking**
//! — a failing case reports its index and panics with the assertion
//! message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!`, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Deterministic source of test-case randomness.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Runner for the given case index (deterministic across runs).
    pub fn for_case(case: u64) -> TestRunner {
        TestRunner {
            rng: StdRng::seed_from_u64(0x9E3779B97F4A7C15 ^ case),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`
/// (generation only — no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value(runner)
    }
}

/// The `prop_map` adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<u32>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<f64>()
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn new_value(&self, runner: &mut TestRunner) -> A {
        A::arbitrary(runner)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..8)` — vectors of strategy-generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                runner.rng().gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Weighted choice between strategies with a common value type,
/// mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {{
        $crate::OneOf(vec![$(($weight as u32, $crate::Strategy::boxed($strategy))),+])
    }};
    ($($strategy:expr),+ $(,)?) => {{
        $crate::OneOf(vec![$((1u32, $crate::Strategy::boxed($strategy))),+])
    }};
}

/// The strategy built by [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<(u32, BoxedStrategy<T>)>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let total: u32 = self.0.iter().map(|(w, _)| *w).sum();
        let mut pick = runner.rng().gen_range(0..total.max(1));
        for (w, s) in &self.0 {
            if pick < *w {
                return s.new_value(runner);
            }
            pick -= w;
        }
        self.0
            .last()
            .expect("prop_oneof! of no arms")
            .1
            .new_value(runner)
    }
}

/// Asserts inside a `proptest!` body, failing the case (not the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Defines property tests, mirroring `proptest::proptest!`: each `fn`
/// runs `config.cases` deterministic cases of its `name in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut runner = $crate::TestRunner::for_case(case);
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut runner);)*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {} failed: {}", stringify!($name), e.0);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(v in collection::vec((0u32..5, any::<bool>()), 0..6)) {
            prop_assert!(v.len() < 6);
            for (x, _) in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn oneof_picks_all_arms(x in prop_oneof![2 => Just(1u32), 1 => Just(2u32)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRunner::for_case(5);
        let mut b = crate::TestRunner::for_case(5);
        let s = crate::any::<u64>();
        assert_eq!(
            crate::Strategy::new_value(&s, &mut a),
            crate::Strategy::new_value(&s, &mut b)
        );
    }
}
