//! Loom model checks of the worker-pool protocol.
//!
//! Built only under `RUSTFLAGS="--cfg loom"`; run with
//! `cargo test -p rayon --test loom_pool --release`. Each test explores
//! *every* thread schedule within the preemption bound (see the loom
//! shim's crate docs), so the properties below hold for all
//! interleavings of the submitter and the worker, not just the ones the
//! OS happened to produce:
//!
//! * the chunk-claim counter hands each chunk to exactly one thread;
//! * a panicking chunk is isolated (`catch_unwind`), its payload
//!   re-raised exactly once on the submitter, and the pool survives;
//! * shutdown's store-under-the-queue-lock cannot lose the wakeup of a
//!   worker that is between its stop check and its condvar wait — a lost
//!   wakeup would surface here as a deadlock.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use rayon::loom_internals::{build, execute};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

#[test]
fn chunks_run_exactly_once() {
    loom::model(|| {
        let (pool, handles) = build(2);
        let counts: Arc<Vec<AtomicUsize>> = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        execute(&pool, 3, &|i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        // `execute` returned, so every chunk ran — exactly once each,
        // under every claim interleaving.
        for c in counts.iter() {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
        pool.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn chunk_panic_is_isolated_and_reraised() {
    loom::model(|| {
        let (pool, handles) = build(2);
        let survivor_ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute(&pool, 2, &|i| {
                if i == 1 {
                    std::panic::panic_any("chunk boom");
                }
                survivor_ran.fetch_add(1, Ordering::SeqCst);
            });
        }));
        // The submitter re-raises the chunk's payload after all chunks
        // settled; the non-panicking chunk still ran.
        let payload = result.expect_err("chunk panic must re-raise on the submitter");
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "chunk boom");
        assert_eq!(survivor_ran.load(Ordering::SeqCst), 1);
        // Pool and worker survive the panic: a fresh job completes.
        let reran = AtomicUsize::new(0);
        execute(&pool, 2, &|_| {
            reran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(reran.load(Ordering::SeqCst), 2);
        pool.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn shutdown_wakes_parked_workers() {
    // No job at all: the worker may be anywhere between startup and its
    // condvar park when shutdown fires. If the stop store were not under
    // the queue lock, the schedule "worker sees queue empty + stop
    // unset → shutdown stores + notifies → worker parks" would deadlock
    // in `join` — the model reports exactly that as a failure.
    loom::model(|| {
        let (pool, handles) = build(2);
        pool.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn shutdown_after_work_drains_and_joins() {
    loom::model(|| {
        let (pool, handles) = build(2);
        let ran = AtomicUsize::new(0);
        execute(&pool, 2, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        pool.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });
}
