//! Chunk-splitting parallel iterators over slices, ranges and vectors,
//! with a **deterministic reduction tree**.
//!
//! # Execution model
//!
//! Every parallel iterator here is *indexed*: it knows its length and can
//! be split at an index. A consumer (`for_each`, `collect`, `reduce`,
//! `sum`, `max`, `count`) decomposes the iterator into `k` contiguous
//! chunks with boundaries `⌊i·len/k⌋` and hands them to the worker pool
//! (the private `pool` module); which *thread* runs which chunk is dynamic
//! (load-balanced by an atomic claim counter), but the chunk layout and
//! the combination order are functions of `len` alone.
//!
//! # Determinism guarantee
//!
//! `k = clamp(len / min_chunk_len, 1, 64)` depends only on the input
//! length (and the optional [`ParallelIterator::with_min_len`] override —
//! rayon's API for the same knob), never on the thread count. Reductions
//! fold each chunk sequentially left-to-right and then combine the chunk
//! results **in chunk order** — a fixed-shape reduction tree. Outputs are
//! therefore bit-identical for every `MTE_THREADS` value, including
//! non-associative floating-point folds; for associative operations they
//! also equal the plain sequential fold.

use crate::pool;
use std::cell::UnsafeCell;
use std::ops::Range;

/// Hard cap on chunks per operation: bounds per-call bookkeeping while
/// allowing up to 64-way parallelism.
const MAX_CHUNKS: usize = 64;

/// Default minimum elements per chunk; below `2 ×` this, an operation
/// runs inline on the caller. Override per call with
/// [`ParallelIterator::with_min_len`].
const DEFAULT_MIN_CHUNK_LEN: usize = 64;

/// Writable once-per-slot result cells shared across worker threads.
///
/// Soundness: the pool's claim counter hands each index to exactly one
/// thread, so `take`/`put` accesses to a given slot never race; the
/// submitting thread reads results only after the job completed.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: each slot is touched by exactly one thread at a time (the
// pool's claim counter hands out indices uniquely, and the submitter
// reads only after the completion barrier); `T: Send` covers the
// cross-thread handoff of the values themselves.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn filled(items: Vec<T>) -> Self {
        Slots(
            items
                .into_iter()
                .map(|x| UnsafeCell::new(Some(x)))
                .collect(),
        )
    }

    fn empty(len: usize) -> Self {
        Slots((0..len).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Caller contract: index `i` is owned by the calling thread.
    fn take(&self, i: usize) -> Option<T> {
        // SAFETY: slot `i` is owned by this thread (caller contract via
        // the pool's unique chunk claim), so the access cannot race.
        unsafe { (*self.0[i].get()).take() }
    }

    /// Caller contract: index `i` is owned by the calling thread.
    fn put(&self, i: usize, value: T) {
        // SAFETY: as in `take` — unique ownership of slot `i`.
        unsafe { *self.0[i].get() = Some(value) };
    }

    fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|cell| cell.into_inner().expect("missing chunk result"))
            .collect()
    }
}

/// Splits `iter` into the chunks covering `[⌊i·len/k⌋, ⌊(i+1)·len/k⌋)`
/// for chunk indices `lo..hi`, appending them to `out` in index order.
fn split_into<P: ParallelIterator>(
    iter: P,
    lo: usize,
    hi: usize,
    len: usize,
    k: usize,
    out: &mut Vec<P>,
) {
    if hi - lo == 1 {
        out.push(iter);
        return;
    }
    let mid = lo.midpoint(hi);
    let (left, right) = iter.split_at(mid * len / k - lo * len / k);
    split_into(left, lo, mid, len, k, out);
    split_into(right, mid, hi, len, k, out);
}

/// Evaluates `eval` over the fixed chunk decomposition of `iter`,
/// returning the per-chunk results **in chunk order**.
fn drive<P: ParallelIterator, R: Send>(iter: P, eval: &(dyn Fn(P) -> R + Sync)) -> Vec<R> {
    let len = iter.split_len();
    let k = (len / iter.min_chunk_len().max(1)).clamp(1, MAX_CHUNKS);
    if k == 1 {
        // Single-chunk operations never reach the pool, but they are
        // still one "chunk" of work: give the fault-injection site its
        // arrival so `worker_chunk` plans cover the small-input regime.
        pool::chunk_boundary();
        return vec![eval(iter)];
    }
    let mut parts = Vec::with_capacity(k);
    split_into(iter, 0, k, len, k, &mut parts);
    let parts = Slots::filled(parts);
    let results: Slots<R> = Slots::empty(k);
    pool::execute(&pool::current(), k, &|i| {
        let part = parts.take(i).expect("chunk claimed twice");
        results.put(i, eval(part));
    });
    results.into_vec()
}

/// An indexed, splittable parallel iterator (the drop-in subset of
/// `rayon::iter::ParallelIterator` + `IndexedParallelIterator` this
/// workspace uses). See the module docs for the execution model and the
/// determinism guarantee.
pub trait ParallelIterator: Send + Sized {
    /// The element type.
    type Item: Send;
    /// The sequential iterator a chunk decays to on its worker.
    type Seq: Iterator<Item = Self::Item>;

    /// Number of elements (splitting granularity for length-expanding
    /// adaptors like [`flat_map_iter`](Self::flat_map_iter)).
    #[doc(hidden)]
    fn split_len(&self) -> usize;

    /// Splits into `[0, mid)` and `[mid, len)`.
    #[doc(hidden)]
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Decays into a sequential iterator over this part's elements.
    #[doc(hidden)]
    fn into_seq(self) -> Self::Seq;

    /// Minimum elements per chunk (see [`with_min_len`](Self::with_min_len)).
    #[doc(hidden)]
    fn min_chunk_len(&self) -> usize {
        DEFAULT_MIN_CHUNK_LEN
    }

    /// Sets the minimum number of elements a chunk may hold, trading
    /// scheduling overhead for parallelism on short-but-heavy inputs
    /// (e.g. `with_min_len(1)` for "one task per item"). The chunk
    /// layout remains a pure function of `(len, min)` — never of the
    /// thread count — so determinism is unaffected.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Maps each element through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pairs elements with their global index, like [`Iterator::enumerate`].
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Zips with another indexed parallel iterator, truncating to the
    /// shorter length.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Maps each element to a *sequential* iterator and flattens —
    /// rayon's `flat_map_iter`. Splitting happens on the outer elements;
    /// produced lengths may vary per element.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Clone + Send + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Calls `f` on every element, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(self, &|chunk: Self| chunk.into_seq().for_each(&f));
    }

    /// Order-insensitive reduction with an identity factory, executed as
    /// a fixed-shape reduction tree: each chunk folds left-to-right, the
    /// chunk results combine in chunk order — bit-identical for every
    /// thread count.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        drive(self, &|chunk: Self| chunk.into_seq().reduce(&op))
            .into_iter()
            .flatten()
            .reduce(op)
            .unwrap_or_else(identity)
    }

    /// Sums the elements (per-chunk sums combined in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive(self, &|chunk: Self| chunk.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// The maximum element, `None` if empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|chunk: Self| chunk.into_seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// The minimum element, `None` if empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, &|chunk: Self| chunk.into_seq().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Number of elements (counted per chunk; `flat_map_iter` outputs
    /// are counted after expansion).
    fn count(self) -> usize {
        drive(self, &|chunk: Self| chunk.into_seq().count())
            .into_iter()
            .sum()
    }

    /// Collects into `C`, preserving element order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection types buildable from a parallel iterator, mirroring
/// `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the iterator's elements, in order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let parts = drive(iter, &|chunk: P| chunk.into_seq().collect::<Vec<T>>());
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            MinLen {
                base: l,
                min: self.min,
            },
            MinLen {
                base: r,
                min: self.min,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq()
    }

    fn min_chunk_len(&self) -> usize {
        self.min
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }

    fn min_chunk_len(&self) -> usize {
        self.base.min_chunk_len()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential side of [`Enumerate`]: indexes starting from the chunk's
/// global offset.
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + mid,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.base.into_seq(),
            next: self.offset,
        }
    }

    fn min_chunk_len(&self) -> usize {
        self.base.min_chunk_len()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn split_len(&self) -> usize {
        self.a.split_len().min(self.b.split_len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }

    fn min_chunk_len(&self) -> usize {
        self.a.min_chunk_len().min(self.b.min_chunk_len())
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Clone + Send + Sync,
{
    type Item = U::Item;
    type Seq = std::iter::FlatMap<P::Seq, U, F>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FlatMapIter {
                base: l,
                f: self.f.clone(),
            },
            FlatMapIter { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().flat_map(self.f)
    }

    fn min_chunk_len(&self) -> usize {
        self.base.min_chunk_len()
    }
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// Parallel iterator over `&[T]` (`par_iter`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn split_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (SliceIter { slice: l }, SliceIter { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]` (`par_iter_mut`).
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn split_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(mid);
        (SliceIterMut { slice: l }, SliceIterMut { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn split_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let right = self.vec.split_off(mid);
        (self, VecIter { vec: right })
    }

    fn into_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn split_len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, mid: usize) -> (Self, Self) {
                let mid = self.range.start + mid as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> Self::Iter {
                RangeIter { range: self }
            }
        }
    )*};
}

impl_range_par_iter!(u16, u32, u64, usize, i32, i64, isize);

// ---------------------------------------------------------------------
// Entry-point traits (the `rayon::prelude` surface)
// ---------------------------------------------------------------------

/// `self.into_par_iter()` — mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync, const N: usize> IntoParallelIterator for &'a [T; N] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        VecIter { vec: self }
    }
}

/// `self.par_iter()` — mirror of `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item: Send;

    /// Borrows `self`, yielding a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    type Item = <&'data C as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `self.par_iter_mut()` — mirror of
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item: Send;

    /// Mutably borrows `self`, yielding a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;
    type Item = <&'data mut C as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}
