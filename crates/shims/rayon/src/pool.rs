//! The scoped worker pool behind the parallel iterators.
//!
//! # Design
//!
//! One lazily-initialized **global pool** serves all parallel operations.
//! Its size comes from the `MTE_THREADS` environment variable (default:
//! [`std::thread::available_parallelism`]); a size of `N` means *total*
//! parallelism `N` — the submitting thread always participates, so the
//! pool spawns `N − 1` workers and `MTE_THREADS=1` runs everything inline
//! on the caller with zero synchronization.
//!
//! A parallel operation is a **job**: a closure `f(chunk_index)` plus an
//! atomic claim counter. Workers (and the caller) repeatedly claim the
//! next unclaimed chunk index and execute it, so chunks are dynamically
//! load-balanced while the *decomposition* into chunks stays fixed (see
//! [`crate::iter`] — that is what makes reductions deterministic). The
//! caller blocks until every chunk has finished, which is also what makes
//! the lifetime erasure below sound: borrowed data inside `f` outlives
//! every dereference of `f`.
//!
//! Nested parallel calls cannot deadlock: a caller never waits on work it
//! could do itself — it first claims chunks until none are left, and then
//! only waits on chunks that some other thread is *actively executing*.
//!
//! [`crate::ThreadPool::install`] temporarily overrides the pool used by
//! the current thread (and workers of a built pool route nested calls
//! back to their own pool), which is how the determinism test suite runs
//! the same computation under different thread counts in one process.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

// Under `--cfg loom` the pool's synchronisation primitives come from the
// loom model-checking shim: every lock/atomic/condvar op becomes a
// scheduling point and `tests/loom_pool.rs` exhaustively explores the
// claim/completion/shutdown protocols (see docs/ANALYSIS.md).
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(loom)]
use loom::thread::JoinHandle;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::thread::JoinHandle;

/// Shared state of one worker pool.
pub struct PoolInner {
    /// Total parallelism (participating caller + spawned workers).
    threads: usize,
    /// Pending job handles; workers pop and participate.
    queue: Mutex<VecDeque<Arc<JobCore>>>,
    /// Signals "queue non-empty or shutting down".
    available: Condvar,
    /// Set by [`shutdown`](Self::shutdown); workers exit once the queue
    /// drains.
    stop: AtomicBool,
}

impl PoolInner {
    /// Total parallelism of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn shutdown(&self) {
        // Store + notify under the queue mutex: a worker that just saw
        // the queue empty and `stop == false` holds this lock until it
        // parks on the condvar, so the notify cannot fall between its
        // check and its wait (lost wakeup ⇒ `Drop` hanging in `join`).
        let _queue = self.queue.lock().unwrap();
        self.stop.store(true, Ordering::Release);
        self.available.notify_all();
    }
}

/// One parallel operation: `total` chunks executed by whoever claims
/// them first, with completion tracked for the blocking submitter.
struct JobCore {
    /// The chunk body, lifetime-erased. Soundness: the submitter does not
    /// return from [`execute`] until `pending == 0`, and stragglers that
    /// observe an exhausted claim counter never dereference this.
    func: &'static (dyn Fn(usize) + Sync),
    /// Number of chunks.
    total: usize,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Chunks claimed but not yet finished + chunks unclaimed.
    pending: AtomicUsize,
    /// Guards the completion condvar (see [`JobCore::wait`]).
    done_lock: Mutex<()>,
    done: Condvar,
    /// First panic payload raised by a chunk, re-raised on the submitter.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Fault-injection hook at the chunk boundary: an armed `worker_chunk`
/// panic fault unwinds here, exercising the per-chunk `catch_unwind`
/// isolation (pool and workers survive; the submitter re-raises).
/// Chunk-boundary hook for parallel operations that bypass the pool
/// (single-chunk `drive` calls): fires an armed `worker_chunk` fault on
/// the caller, where it unwinds like any chunk panic of an inline run.
#[inline]
pub(crate) fn chunk_boundary() {
    worker_chunk_fault();
}

#[inline]
fn worker_chunk_fault() {
    if mte_faults::check_for(
        mte_faults::FaultSite::WorkerChunk,
        &[mte_faults::FaultKind::Panic],
    )
    .is_some()
    {
        mte_faults::trigger_panic(mte_faults::FaultSite::WorkerChunk);
    }
}

impl JobCore {
    /// Claims and runs chunks until the claim counter is exhausted.
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                worker_chunk_fault();
                (self.func)(i)
            })) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last chunk: take the lock (empty critical section) so a
                // waiter between its `pending` check and `wait` cannot
                // miss this wakeup.
                let _guard = self.done_lock.lock().unwrap();
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every chunk has finished.
    fn wait(&self) {
        let mut guard = self.done_lock.lock().unwrap();
        while self.pending.load(Ordering::Acquire) > 0 {
            guard = self.done.wait(guard).unwrap();
        }
    }
}

/// Runs `f(0), …, f(total − 1)` with the pool's parallelism, blocking
/// until all calls complete. Chunk-to-thread assignment is dynamic;
/// determinism must come from the chunk *contents* (each index touches
/// disjoint state, combined in index order by the caller).
pub fn execute(pool: &Arc<PoolInner>, total: usize, f: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    if pool.threads <= 1 || total == 1 {
        // Inline fast path: no workers to enlist (or nothing to split).
        // The chunk fault fires here too, so single-threaded runs
        // exercise the same injection sites (the panic propagates
        // directly — there is no pool state to protect).
        for i in 0..total {
            worker_chunk_fault();
            f(i);
        }
        return;
    }
    // SAFETY: lifetime erasure of the borrowed chunk body. Sound because
    // this function does not return until `pending == 0` — every thread
    // that dereferences `func` has finished by then — and stragglers that
    // observe an exhausted claim counter never dereference it (see
    // `JobCore::func`).
    let func: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    };
    let job = Arc::new(JobCore {
        func,
        total,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(total),
        done_lock: Mutex::new(()),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        // One queue entry per worker that could usefully help; entries
        // arriving after exhaustion see `next >= total` and return.
        let helpers = (pool.threads - 1).min(total - 1);
        let mut queue = pool.queue.lock().unwrap();
        for _ in 0..helpers {
            queue.push_back(Arc::clone(&job));
        }
    }
    pool.available.notify_all();
    job.participate();
    job.wait();
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

fn worker_loop(pool: Arc<PoolInner>) {
    // Nested parallel calls from inside a chunk body stay on this pool.
    CURRENT.with(|current| *current.borrow_mut() = Some(Arc::clone(&pool)));
    loop {
        let job = {
            let mut queue = pool.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if pool.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = pool.available.wait(queue).unwrap();
            }
        };
        job.participate();
    }
}

/// Builds a pool of total parallelism `threads` (spawning `threads − 1`
/// workers) and returns the shared state plus the worker handles.
pub fn build(threads: usize) -> (Arc<PoolInner>, Vec<JoinHandle<()>>) {
    let threads = threads.max(1);
    let inner = Arc::new(PoolInner {
        threads,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
    });
    let handles = (0..threads - 1)
        .map(|i| {
            let pool = Arc::clone(&inner);
            #[cfg(loom)]
            {
                let _ = i;
                loom::thread::spawn(move || worker_loop(pool))
            }
            #[cfg(not(loom))]
            {
                std::thread::Builder::new()
                    .name(format!("mte-rayon-{i}"))
                    .spawn(move || worker_loop(pool))
                    .expect("failed to spawn worker thread")
            }
        })
        .collect();
    (inner, handles)
}

/// Pool size requested by the environment: `MTE_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub(crate) fn threads_from_env() -> usize {
    std::env::var("MTE_THREADS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

static GLOBAL: OnceLock<Arc<PoolInner>> = OnceLock::new();

thread_local! {
    /// Per-thread pool override ([`crate::ThreadPool::install`] /
    /// worker threads); `None` routes to the global pool.
    static CURRENT: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
}

/// The pool parallel operations on this thread should use.
pub(crate) fn current() -> Arc<PoolInner> {
    CURRENT
        .with(|current| current.borrow().clone())
        .unwrap_or_else(|| {
            Arc::clone(GLOBAL.get_or_init(|| {
                // Global workers live for the process; handles detached.
                build(threads_from_env()).0
            }))
        })
}

/// Runs `f` with `pool` installed as this thread's current pool,
/// restoring the previous override afterwards (also on panic).
pub(crate) fn with_installed<R>(pool: &Arc<PoolInner>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolInner>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT.with(|current| *current.borrow_mut() = previous);
        }
    }
    let previous = CURRENT.with(|current| current.borrow_mut().replace(Arc::clone(pool)));
    let _restore = Restore(previous);
    f()
}
