//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the `par_iter`/`par_iter_mut`/`into_par_iter` entry points it uses and
//! executes them **sequentially**: each adaptor simply returns the
//! corresponding [`std::iter`] iterator, which supports the same `map`,
//! `for_each`, `enumerate`, `zip` and `collect` combinators downstream
//! code calls. Data-parallel speedups return the moment the real rayon is
//! substituted back in — call sites compile unchanged against either.

/// The drop-in prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Sequential re-implementations of the parallel iterator entry points.
pub mod iter {
    /// Marker alias: in this shim a "parallel iterator" *is* a standard
    /// iterator, so every adaptor chain type-checks identically. Also
    /// carries the rayon-only combinator names downstream code uses,
    /// forwarded to their sequential `std::iter` equivalents.
    pub trait ParallelIterator: Iterator + Sized {
        /// rayon's `flat_map_iter` (sequential-iterator flat map).
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// rayon's order-insensitive `reduce` with an identity factory.
        fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item,
            OP: Fn(Self::Item, Self::Item) -> Self::Item,
        {
            let first = self.next().unwrap_or_else(&identity);
            Iterator::fold(self, first, op)
        }
    }

    impl<I: Iterator + Sized> ParallelIterator for I {}

    /// `self.into_par_iter()` — sequential stand-in for
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Consumes `self`, yielding its (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `self.par_iter()` — sequential stand-in for
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed iterator type.
        type Iter: Iterator;

        /// Borrows `self`, yielding its (sequential) iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `self.par_iter_mut()` — sequential stand-in for
    /// `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The mutably borrowed iterator type.
        type Iter: Iterator;

        /// Mutably borrows `self`, yielding its (sequential) iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Runs two closures "in parallel" (sequentially here), mirroring
/// `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects() {
        let squares: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn slice_par_iter_and_mut() {
        let mut v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn par_iter_mut_enumerate_zip() {
        let mut out = vec![0usize; 4];
        let src = [10usize, 20, 30, 40];
        out.par_iter_mut()
            .zip(src.par_iter())
            .enumerate()
            .for_each(|(i, (o, s))| *o = i + s);
        assert_eq!(out, vec![10, 21, 32, 43]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
