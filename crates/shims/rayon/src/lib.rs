//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate — now backed by a **real thread pool**.
//!
//! The build environment has no network access, so this workspace vendors
//! the API subset it uses: `par_iter` / `par_iter_mut` / `into_par_iter`
//! over slices, vectors and integer ranges (with `map`, `zip`,
//! `enumerate`, `flat_map_iter`, `with_min_len` adaptors and `for_each`,
//! `collect`, `reduce`, `sum`, `max`, `min`, `count` consumers), a
//! genuinely forking [`join`], and [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`]. Call sites compile unchanged against registry
//! rayon — swap the `[workspace.dependencies]` path entry back to the
//! registry crate and everything keeps working (minus the guarantee
//! below, which registry rayon does not make).
//!
//! # Thread pool
//!
//! A lazily-initialized global worker pool executes all parallel
//! operations. Its size comes from the **`MTE_THREADS`** environment
//! variable (default: the machine's available parallelism); the
//! submitting thread participates, so `MTE_THREADS=1` runs everything
//! inline with zero synchronization and `MTE_THREADS=N` enlists `N − 1`
//! workers. Dedicated pools built via [`ThreadPoolBuilder`] and entered
//! with [`ThreadPool::install`] override the global pool for the scope of
//! the closure — that is how the determinism suite and the thread-scaling
//! benchmarks compare thread counts within one process.
//!
//! # Deterministic reduction tree
//!
//! Unlike registry rayon, every operation here is **bit-identical across
//! thread counts**: inputs split into chunks whose layout is a pure
//! function of the input length, chunks fold sequentially, and chunk
//! results combine in chunk order — a fixed-shape reduction tree. Which
//! thread executes which chunk is dynamic (work is claimed from an atomic
//! counter, so skewed chunks load-balance), but thread assignment never
//! influences any result, only wall time. See [`iter`] for details.

pub mod iter;
mod pool;

/// Pool internals re-exported for the loom model-checking suite
/// (`tests/loom_pool.rs`), which exhaustively explores the chunk-claim,
/// completion, and shutdown protocols. Only exists under `--cfg loom`;
/// the normal public API is unaffected.
#[cfg(loom)]
pub mod loom_internals {
    pub use crate::pool::{build, execute, PoolInner};
}

/// The drop-in prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// One-shot closure + result cells for [`join`], shared across threads.
///
/// Soundness: the pool's claim counter assigns each of the two task
/// indices to exactly one thread, and the submitter reads results only
/// after both tasks completed.
struct JoinCell<F, R>(UnsafeCell<Option<F>>, UnsafeCell<Option<R>>);

// SAFETY: the cells are accessed cross-thread only through `run`, which
// the pool's claim counter invokes at most once per cell (see the struct
// docs); `F: Send`/`R: Send` make moving the closure/result between the
// claiming thread and the submitter sound.
unsafe impl<F: Send, R: Send> Sync for JoinCell<F, R> {}

impl<F: FnOnce() -> R, R> JoinCell<F, R> {
    fn new(f: F) -> Self {
        JoinCell(UnsafeCell::new(Some(f)), UnsafeCell::new(None))
    }

    /// Caller contract: called at most once, by the claiming thread.
    fn run(&self) {
        // SAFETY: only the claiming thread reaches this cell (pool claim
        // counter), so the exclusive access cannot race.
        let f = unsafe { (*self.0.get()).take() }.expect("join task claimed twice");
        let r = f();
        // SAFETY: as above; the submitter reads the result cell only
        // after the job completed (pool completion barrier).
        unsafe { *self.1.get() = Some(r) };
    }

    fn into_result(self) -> R {
        self.1.into_inner().expect("join task did not run")
    }
}

/// Runs two closures, potentially in parallel on the current pool, and
/// returns both results — mirroring `rayon::join`. With a single-thread
/// pool the closures simply run in order on the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a = JoinCell::new(oper_a);
    let b = JoinCell::new(oper_b);
    pool::execute(&pool::current(), 2, &|i| {
        if i == 0 {
            a.run();
        } else {
            b.run();
        }
    });
    (a.into_result(), b.into_result())
}

/// The pool size parallel operations on the current thread will use —
/// mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    pool::current().threads()
}

/// One task's result under [`execute_isolated`]: the task's value, or
/// the panic payload it died with.
pub type TaskOutcome<R> = Result<R, Box<dyn Any + Send>>;

/// Drives `total` independent tasks on the current pool with **per-task
/// panic isolation**: task `i` runs `op(i)` under `catch_unwind`, and
/// the caller gets every task's outcome in index order — `Ok` with the
/// task's value, or `Err` with that task's caught panic payload.
///
/// This is the shard-aware drive the supervised sharded engine needs:
/// plain pool execution rethrows the *first* panic on the submitter and
/// discards the rest, which is right for fail-fast data parallelism but
/// useless for a supervisor that must know *which* shard died while the
/// siblings' results stay usable. No `rayon` upstream equivalent; the
/// shim exposes it because the pool's claim counter already guarantees
/// each index runs exactly once.
///
/// Panics injected *by the pool itself* (the `worker_chunk` fault site
/// fires before the task body) are outside the isolation boundary and
/// still propagate to the submitter, exactly like any other pool-level
/// failure.
pub fn execute_isolated<R, F>(total: usize, op: F) -> Vec<TaskOutcome<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<Mutex<Option<TaskOutcome<R>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    pool::execute(&pool::current(), total, &|i| {
        let outcome = catch_unwind(AssertUnwindSafe(|| op(i)));
        // The pool's claim counter hands each index to exactly one
        // thread, so this lock is never contended; it exists to make the
        // cross-thread handoff safe without `unsafe`.
        *slots[i].lock().expect("result slot poisoned") = Some(outcome);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("pool skipped a task index")
        })
        .collect()
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim's builder
/// cannot actually fail; the type exists for API compatibility with
/// registry rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated [`ThreadPool`], mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default configuration (`MTE_THREADS` /
    /// available-parallelism sizing).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's total parallelism; `0` (the default) means
    /// "size from the environment".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            pool::threads_from_env()
        } else {
            self.num_threads
        };
        let (inner, workers) = pool::build(threads);
        Ok(ThreadPool { inner, workers })
    }
}

/// A dedicated worker pool, mirroring `rayon::ThreadPool`. Parallel
/// operations run on this pool for the duration of an
/// [`install`](ThreadPool::install) scope. Dropping the pool shuts its
/// workers down.
pub struct ThreadPool {
    inner: Arc<pool::PoolInner>,
    #[cfg(not(loom))]
    workers: Vec<std::thread::JoinHandle<()>>,
    // Under the model-checking build the pool spawns loom-managed
    // threads; their handles expose the same `join` surface.
    #[cfg(loom)]
    workers: Vec<loom::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` with this pool installed as the current thread's pool:
    /// every parallel operation inside (including nested ones) uses this
    /// pool's parallelism. Returns `op`'s result.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_installed(&self.inner, op)
    }

    /// This pool's total parallelism.
    pub fn current_num_threads(&self) -> usize {
        self.inner.threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn range_into_par_iter_collects() {
        let squares: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        // Long enough to actually span several chunks.
        let n = 10_000u32;
        let v: Vec<u32> = (0..n).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v.len(), n as usize);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn slice_par_iter_and_mut() {
        let mut v: Vec<i64> = (0..5000).collect();
        let sum: i64 = v.par_iter().sum();
        assert_eq!(sum, 5000 * 4999 / 2);
        v.par_iter_mut().for_each(|x| *x += 10);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as i64 + 10));
    }

    #[test]
    fn par_iter_mut_enumerate_zip() {
        let mut out = vec![0usize; 4];
        let src = [10usize, 20, 30, 40];
        out.par_iter_mut()
            .zip(src.par_iter())
            .enumerate()
            .for_each(|(i, (o, s))| *o = i + s);
        assert_eq!(out, vec![10, 21, 32, 43]);
    }

    #[test]
    fn enumerate_offsets_are_global() {
        let n = 4096usize;
        let hits: Vec<usize> = (0..n)
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| {
                assert_eq!(i, x);
                i
            })
            .collect();
        assert_eq!(hits, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let flat: Vec<usize> = (0usize..300)
            .into_par_iter()
            .flat_map_iter(|i| (0..i % 3).map(move |j| i * 10 + j))
            .collect();
        let expected: Vec<usize> = (0usize..300)
            .flat_map(|i| (0..i % 3).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let n = 5000u64;
        let total = (0..n)
            .into_par_iter()
            .map(|x| x * 2)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, n * (n - 1));
        // Empty input hits the identity.
        let empty = (0u64..0).into_par_iter().reduce(|| 42, |a, b| a + b);
        assert_eq!(empty, 42);
    }

    #[test]
    fn max_min_count() {
        assert_eq!((0u32..1000).into_par_iter().max(), Some(999));
        assert_eq!((0u32..1000).into_par_iter().min(), Some(0));
        assert_eq!((0u32..0).into_par_iter().max(), None);
        assert_eq!((0u32..1000).into_par_iter().count(), 1000);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        // Non-associative f64 sums exercise the fixed-shape reduction
        // tree: bit-identical results even where associativity fails.
        let data: Vec<f64> = (0..100_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = || {
            data.par_iter()
                .map(|&x| x * 1.000001)
                .reduce(|| 0.0, |a, b| a + b)
        };
        let pools: Vec<_> = [1usize, 2, 3, 8]
            .iter()
            .map(|&t| ThreadPoolBuilder::new().num_threads(t).build().unwrap())
            .collect();
        let results: Vec<f64> = pools.iter().map(|p| p.install(run)).collect();
        for r in &results[1..] {
            assert_eq!(r.to_bits(), results[0].to_bits());
        }
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 3);
            inner.install(|| assert_eq!(super::current_num_threads(), 2));
            assert_eq!(super::current_num_threads(), 3);
        });
    }

    #[test]
    fn nested_parallelism_completes() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let total: u64 = pool.install(|| {
            (0u64..512)
                .into_par_iter()
                .with_min_len(1)
                .map(|i| (0u64..200).into_par_iter().map(|j| i + j).sum::<u64>())
                .sum()
        });
        let expected: u64 = (0u64..512)
            .map(|i| (0u64..200).map(|j| i + j).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0u32..10_000).into_par_iter().for_each(|i| {
                    if i == 7777 {
                        panic!("boom");
                    }
                });
            })
        }));
        assert!(caught.is_err());
        // The pool stays usable afterwards.
        let sum: u32 = pool.install(|| (0u32..100).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }
}
