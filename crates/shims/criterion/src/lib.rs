//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the benchmark-definition API it uses (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function`/`iter`, [`black_box`]) on top of a plain wall-clock
//! harness: each benchmark is warmed up, then timed over enough
//! iterations to fill the configured measurement window, and the
//! mean/min/max per-iteration times are printed. No statistics engine, no
//! HTML reports — but `cargo bench` produces comparable numbers and the
//! bench sources compile unchanged against the real criterion.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    /// Collected per-iteration mean, filled by [`Bencher::iter`].
    result: Option<BenchResult>,
}

struct BenchResult {
    iterations: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly: first for the warm-up window, then timed
    /// until the measurement window (or the sample budget) is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }

        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let deadline = Instant::now() + self.config.measurement_time;
        while iterations < self.config.sample_size as u64 || Instant::now() < deadline {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            iterations += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            if total > self.config.measurement_time * 4 {
                break; // slow samples: stop well past the window
            }
        }
        self.result = Some(BenchResult {
            iterations,
            total,
            min,
            max,
        });
    }
}

#[derive(Clone)]
struct GroupConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(3),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed-measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the minimum number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(r) if r.iterations > 0 => {
                let mean = r.total / r.iterations as u32;
                println!(
                    "{}/{}: mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
                    self.name, id, mean, r.min, r.max, r.iterations
                );
            }
            _ => println!("{}/{}: no samples collected", self.name, id),
        }
        self
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== benchmark group: {name} ==");
        BenchmarkGroup {
            name,
            config: GroupConfig::default(),
            _criterion: self,
        }
    }

    /// Defines and runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            config: GroupConfig::default(),
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls >= 3, "benchmark closure never ran");
    }
}
